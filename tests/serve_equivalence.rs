//! The serving headline guarantee, as a differential suite: under the
//! sim clock a served fleet — every home behind a byte-level wire
//! connection, every wake offered as a `Poll` frame and answered with a
//! `Report` — is bit-identical to the batch `run_scale` sweep. Grid,
//! rendered report, merged flight-recorder telemetry, and the delivery
//! log all match at any `--jobs` count and on either queue engine.

use coreda::core::metro::{
    run_scale, run_scale_traced, run_scale_walled, EngineKind, MetroConfig,
};
use coreda::des::time::SimDuration;
use coreda::serve::{serve_scale, ServeOptions};

fn cfg(jobs: usize, engine: EngineKind) -> MetroConfig {
    MetroConfig {
        homes: 6,
        horizon: SimDuration::from_secs(600),
        seed: 2007,
        jobs,
        engine,
        gap_min: SimDuration::from_secs(60),
        gap_max: SimDuration::from_secs(180),
        train_episodes: 120,
        ..MetroConfig::default()
    }
}

#[test]
fn served_equals_batch_on_both_engines_at_any_jobs() {
    for engine in [EngineKind::Wheel, EngineKind::Heap] {
        let batch = run_scale(&cfg(1, engine));
        let (walled, wal) = run_scale_walled(&cfg(1, engine));
        assert_eq!(walled, batch, "event logging must not perturb the batch run");
        let mut wire = None;
        for jobs in [1usize, 8] {
            let served = serve_scale(cfg(jobs, engine), &ServeOptions::default())
                .expect("six homes fit in u32");
            // Full structural equality plus the rendered bytes: the wire
            // round-trip of every wake must change nothing.
            assert_eq!(served.output.report, batch, "{engine} jobs {jobs}");
            assert_eq!(served.output.report.render(), batch.render());
            // Every prompt/escalation the clients saw as a `Deliver`
            // frame, in fleet order — the batch write-ahead log exactly.
            assert_eq!(served.log, wal, "{engine} jobs {jobs}");
            // Wire accounting is itself jobs-invariant: sharding moves
            // connections between workers, never frames between homes.
            match &wire {
                None => wire = Some(served.wire),
                Some(w) => assert_eq!(&served.wire, w, "{engine} jobs {jobs}"),
            }
        }
    }
}

#[test]
fn served_telemetry_is_bit_identical_to_the_traced_batch() {
    let traced = run_scale_traced(&cfg(1, EngineKind::Wheel));
    for jobs in [1usize, 8] {
        let opts = ServeOptions { record: false, trace: true, care: None };
        let served =
            serve_scale(cfg(jobs, EngineKind::Wheel), &opts).expect("six homes fit in u32");
        assert_eq!(served.output.report, traced.report, "jobs {jobs}");
        assert_eq!(
            served.output.telemetry.to_jsonl(),
            traced.telemetry.to_jsonl(),
            "served flight-recorder telemetry drifted from batch (jobs {jobs})"
        );
    }
}

#[test]
fn served_engines_agree_home_for_home() {
    // The wheel and the heap schedule wakes differently (sparse wakes vs
    // a dense tick poll), so whole-report equality is out (`des_events`
    // counts raw queue traffic) — but every home's outcome and every
    // delivery must agree, served, across engines *and* worker counts.
    let wheel = serve_scale(cfg(1, EngineKind::Wheel), &ServeOptions::default())
        .expect("six homes fit in u32");
    let heap = serve_scale(cfg(8, EngineKind::Heap), &ServeOptions::default())
        .expect("six homes fit in u32");
    assert_eq!(wheel.output.report.per_home, heap.output.report.per_home);
    assert_eq!(wheel.log, heap.log);
}
