//! End-to-end integration: the full sensor → radio → sensing → planning →
//! reminding pipeline across crates, for both catalog ADLs.

use coreda::prelude::*;

fn trained_system(spec: &AdlSpec, routine: &Routine, seed: u64) -> Coreda {
    let mut system = Coreda::new(spec.clone(), "integration user", CoredaConfig::default(), seed);
    let mut rng = SimRng::seed_from(seed ^ 0xFEED);
    for _ in 0..200 {
        system.planner_mut().train_episode(routine.steps(), &mut rng);
    }
    system
}

#[test]
fn both_adls_complete_clean_episodes_without_reminders() {
    for (i, spec) in catalog::all().into_iter().enumerate() {
        let routine = Routine::canonical(&spec);
        let mut system = trained_system(&spec, &routine, 100 + i as u64);
        let mut behavior = StochasticBehavior::new(PatientProfile::unimpaired("x"));
        let mut rng = SimRng::seed_from(200 + i as u64);
        let log = system.run_live(&routine, &mut behavior, &mut rng);
        assert!(
            log.completed_at().is_some(),
            "{} should complete:\n{}",
            spec.name(),
            log.render()
        );
        assert_eq!(
            log.reminders().len(),
            0,
            "{} clean run should need no reminders:\n{}",
            spec.name(),
            log.render()
        );
    }
}

#[test]
fn frozen_patient_is_rescued_in_both_adls() {
    for (i, spec) in catalog::all().into_iter().enumerate() {
        let routine = Routine::canonical(&spec);
        let mut system = trained_system(&spec, &routine, 300 + i as u64);
        let mut behavior = ScriptedBehavior::new().with_error(1, PatientAction::Freeze);
        let mut rng = SimRng::seed_from(400 + i as u64);
        let log = system.run_live(&routine, &mut behavior, &mut rng);
        let reminders = log.reminders();
        assert!(!reminders.is_empty(), "{}:\n{}", spec.name(), log.render());
        assert!(matches!(reminders[0].1.trigger, Trigger::IdleTimeout));
        // The prompt points at the correct next step of the routine.
        assert_eq!(Some(reminders[0].1.prompt.tool), routine.steps()[1].tool());
        assert!(log.completed_at().is_some(), "{}:\n{}", spec.name(), log.render());
        assert!(log.praise_count() >= 1);
    }
}

#[test]
fn wrong_tool_reminder_names_both_tools() {
    let tea = catalog::tea_making();
    let routine = Routine::canonical(&tea);
    let mut system = trained_system(&tea, &routine, 7);
    // The tea-cup, as in the paper's Figure 1. (Misusing the *kettle*
    // here would be indistinguishable from a missed pot detection — the
    // kettle is the step after next — and the tracker deliberately reads
    // that as a detection gap rather than crying wolf.)
    let wrong = ToolId::new(catalog::TEA_CUP);
    let mut behavior = ScriptedBehavior::new().with_error(1, PatientAction::WrongTool(wrong));
    let mut rng = SimRng::seed_from(8);
    let log = system.run_live(&routine, &mut behavior, &mut rng);
    let reminders = log.reminders();
    assert!(!reminders.is_empty(), "{}", log.render());
    let r = reminders[0].1;
    assert_eq!(r.trigger, Trigger::WrongTool { used: wrong });
    // Red LED on the misused kettle, green LED on the pot.
    let red = r.methods.iter().find_map(|m| match m {
        ReminderMethod::RedLed { tool, .. } => Some(*tool),
        _ => None,
    });
    let green = r.methods.iter().find_map(|m| match m {
        ReminderMethod::GreenLed { tool, .. } => Some(*tool),
        _ => None,
    });
    assert_eq!(red, Some(wrong));
    assert_eq!(green, Some(ToolId::new(catalog::POT)));
    assert!(log.completed_at().is_some());
}

#[test]
fn sensed_sequence_matches_ground_truth_on_clean_run() {
    // What sensing recognises should be (a subsequence of) what the
    // patient actually did, in order.
    let tea = catalog::tea_making();
    let routine = Routine::canonical(&tea);
    let mut system = trained_system(&tea, &routine, 21);
    let mut behavior = StochasticBehavior::new(PatientProfile::unimpaired("x"));
    let mut rng = SimRng::seed_from(22);
    let log = system.run_live(&routine, &mut behavior, &mut rng);
    let sensed: Vec<StepId> = log.sensed_steps().into_iter().filter(|s| !s.is_idle()).collect();
    // Every sensed step appears in routine order.
    let mut routine_iter = routine.steps().iter();
    for s in &sensed {
        assert!(
            routine_iter.any(|r| r == s),
            "sensed {s} out of order; sensed sequence {sensed:?}"
        );
    }
    assert!(!sensed.is_empty());
}

#[test]
fn offline_training_from_generated_recordings_reaches_table4_quality() {
    // Generator (adl crate) → planner (core crate): 120 mildly noisy
    // recordings suffice for perfect routine prediction.
    for spec in catalog::all() {
        let routine = Routine::canonical(&spec);
        let generator = EpisodeGenerator::new(
            spec.clone(),
            RoutineSet::single(routine.clone()),
            PatientProfile::mild("x"),
        );
        let mut rng = SimRng::seed_from(33);
        // Mildly impaired recordings are noisier than the paper's clean
        // demonstrations, so give the planner a longer horizon than the
        // paper's 120 samples.
        let episodes = generator.generate_batch(300, &mut rng);
        let mut system = Coreda::new(spec.clone(), "x", CoredaConfig::default(), 34);
        system.train_offline(&episodes, &mut rng);
        assert_eq!(
            system.planner().accuracy_vs_routine(&routine),
            1.0,
            "{} should be fully learned",
            spec.name()
        );
    }
}

#[test]
fn praise_text_matches_figure1() {
    let tea = catalog::tea_making();
    let routine = Routine::canonical(&tea);
    let mut system = trained_system(&tea, &routine, 55);
    let mut behavior = ScriptedBehavior::new().with_error(2, PatientAction::Freeze);
    let mut rng = SimRng::seed_from(56);
    let log = system.run_live(&routine, &mut behavior, &mut rng);
    assert!(
        log.entries().iter().any(|(_, k)| matches!(k, LogKind::Praised)),
        "rescue should end in praise"
    );
    // The praise text itself is fixed system-wide and surfaces at render
    // time (the log entry carries no string).
    assert_eq!(system.reminding().praise(), "Excellent!");
    assert!(log.render().contains("Excellent!"));
}
