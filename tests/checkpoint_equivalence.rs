//! The durability headline guarantee, as a differential suite:
//! run-to-T-then-snapshot-then-resume is bit-identical to an
//! uninterrupted run — for any checkpoint tick, any `jobs` count, and
//! either queue engine — plus codec-robustness proptests (round-trip
//! exactness; corruption, truncation, and unknown-version rejection).

use std::sync::OnceLock;

use coreda_core::checkpoint::{load_checkpoint, save_checkpoint, CheckpointError};
use coreda_core::metro::{
    resume_scale, resume_scale_traced, run_scale, run_scale_checkpointed,
    run_scale_checkpointed_traced, run_scale_traced, EngineKind, MetroConfig,
};
use coreda_des::time::{SimDuration, SimTime};
use coreda_sensornet::packet::crc16;
use proptest::prelude::*;

fn cfg(jobs: usize, engine: EngineKind) -> MetroConfig {
    MetroConfig {
        homes: 6,
        horizon: SimDuration::from_secs(600),
        seed: 2007,
        jobs,
        engine,
        gap_min: SimDuration::from_secs(60),
        gap_max: SimDuration::from_secs(180),
        train_episodes: 120,
        ..MetroConfig::default()
    }
}

#[test]
fn resume_equals_uninterrupted_across_the_grid() {
    // Checkpoint ticks spanning the run: the first serving instant, an
    // off-gap mid-run tick, a late tick, and the horizon itself.
    let ticks = [
        SimTime::from_millis(100),
        SimTime::from_secs(59),
        SimTime::from_secs(300),
        SimTime::from_secs(600),
    ];
    for engine in [EngineKind::Wheel, EngineKind::Heap] {
        let full = run_scale(&cfg(1, engine));
        let (_, snaps) = run_scale_checkpointed(&cfg(1, engine), &ticks);
        for (tick, snap) in ticks.iter().zip(&snaps) {
            for jobs in [1usize, 8] {
                let resumed = resume_scale(&cfg(jobs, engine), snap)
                    .unwrap_or_else(|e| panic!("resume at {tick:?}: {e}"));
                assert_eq!(
                    resumed, full,
                    "resume diverged: tick {tick:?}, jobs {jobs}, {engine:?} engine"
                );
            }
        }
    }
}

#[test]
fn snapshots_are_jobs_invariant_down_to_the_bytes() {
    let ticks = [SimTime::from_secs(120), SimTime::from_secs(480)];
    let (_, serial) = run_scale_checkpointed(&cfg(1, EngineKind::Wheel), &ticks);
    let (_, parallel) = run_scale_checkpointed(&cfg(8, EngineKind::Wheel), &ticks);
    assert_eq!(serial, parallel, "snapshot structs must not depend on sharding");
    for (a, b) in serial.iter().zip(&parallel) {
        assert_eq!(
            save_checkpoint(a, 1).to_vec(),
            save_checkpoint(b, 8).to_vec(),
            "snapshot bytes must not depend on encode parallelism either"
        );
    }
}

#[test]
fn engine_is_a_resume_time_free_choice() {
    // The digest excludes the engine: a snapshot taken under the wheel
    // resumes under dense heap polling (and vice versa) onto the same
    // per-home results. Only `des_events` is engine-shaped.
    let (_, wheel_snaps) =
        run_scale_checkpointed(&cfg(1, EngineKind::Wheel), &[SimTime::from_secs(300)]);
    let heap_resumed = resume_scale(&cfg(1, EngineKind::Heap), &wheel_snaps[0]).unwrap();
    assert_eq!(heap_resumed.per_home, run_scale(&cfg(1, EngineKind::Heap)).per_home);

    let (_, heap_snaps) =
        run_scale_checkpointed(&cfg(1, EngineKind::Heap), &[SimTime::from_secs(300)]);
    let wheel_resumed = resume_scale(&cfg(1, EngineKind::Wheel), &heap_snaps[0]).unwrap();
    assert_eq!(wheel_resumed.per_home, run_scale(&cfg(1, EngineKind::Wheel)).per_home);
}

#[test]
fn resumed_telemetry_merges_and_matches_at_any_jobs() {
    let full = run_scale_traced(&cfg(1, EngineKind::Wheel));
    let (_, snaps) =
        run_scale_checkpointed_traced(&cfg(1, EngineKind::Wheel), &[SimTime::from_secs(240)]);
    for jobs in [1usize, 8] {
        let resumed = resume_scale_traced(&cfg(jobs, EngineKind::Wheel), &snaps[0]).unwrap();
        assert_eq!(resumed.report, full.report, "jobs {jobs}");
        assert_eq!(
            resumed.telemetry, full.telemetry,
            "counters and trace rings must merge across the boundary, not reset (jobs {jobs})"
        );
    }
}

/// One mid-run snapshot, encoded once and shared by the robustness
/// proptests below (capturing it is the expensive part).
fn blob() -> &'static [u8] {
    static BLOB: OnceLock<Vec<u8>> = OnceLock::new();
    BLOB.get_or_init(|| {
        let (_, snaps) =
            run_scale_checkpointed(&cfg(1, EngineKind::Wheel), &[SimTime::from_secs(120)]);
        save_checkpoint(&snaps[0], 1).to_vec()
    })
}

proptest! {
    /// decode(encode(s)) == s for snapshots captured at arbitrary ticks.
    #[test]
    fn codec_round_trip_is_exact(tick_ms in 100u64..300_000, jobs in 1usize..9) {
        let tick = SimTime::from_millis(tick_ms);
        let short = MetroConfig {
            horizon: SimDuration::from_secs(300),
            ..cfg(jobs, EngineKind::Wheel)
        };
        let (_, snaps) = run_scale_checkpointed(&short, &[tick]);
        let encoded = save_checkpoint(&snaps[0], jobs);
        let decoded = load_checkpoint(&encoded, jobs).expect("fresh snapshot decodes");
        prop_assert_eq!(decoded, snaps[0].clone());
    }

    /// Flipping any single bit anywhere in a snapshot is detected.
    #[test]
    fn corrupted_snapshots_are_rejected(frac in 0.0f64..1.0, bit in 0u32..8) {
        let blob = blob();
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let idx = ((frac * blob.len() as f64) as usize).min(blob.len() - 1);
        let mut bad = blob.to_vec();
        bad[idx] ^= 1 << bit;
        prop_assert!(
            load_checkpoint(&bad, 1).is_err(),
            "a flipped bit at byte {} slipped through", idx
        );
    }

    /// Every strict prefix of a snapshot is rejected, not misparsed.
    #[test]
    fn truncated_snapshots_are_rejected(frac in 0.0f64..1.0) {
        let blob = blob();
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let keep = ((frac * blob.len() as f64) as usize).min(blob.len() - 1);
        prop_assert!(load_checkpoint(&blob[..keep], 1).is_err());
    }

    /// Any version byte other than the supported one is rejected by the
    /// version field itself (the checksum is re-stamped, so this is not
    /// the CRC catching it).
    #[test]
    fn unknown_versions_are_rejected(v in 0u8..=255) {
        let version = if v == coreda_core::checkpoint::VERSION { v.wrapping_add(1) } else { v };
        let blob = blob();
        let mut bad = blob.to_vec();
        bad[4] = version;
        let body = bad.len() - 2;
        let crc = crc16(&bad[..body]);
        bad[body..].copy_from_slice(&crc.to_be_bytes());
        prop_assert_eq!(
            load_checkpoint(&bad, 1).unwrap_err(),
            CheckpointError::UnsupportedVersion(version)
        );
    }
}
