//! The durability headline guarantee, as a differential suite:
//! run-to-T-then-snapshot-then-resume is bit-identical to an
//! uninterrupted run — for any checkpoint tick, any `jobs` count, and
//! either queue engine — plus codec-robustness proptests (round-trip
//! exactness; corruption, truncation, and unknown-version rejection).

use std::sync::OnceLock;

use coreda_core::checkpoint::{
    apply_delta, delta_checkpoint, load_checkpoint, load_delta, save_checkpoint, save_delta,
    CheckpointError,
};
use coreda_core::metro::{
    resume_scale, resume_scale_durable, resume_scale_traced, run_scale, run_scale_checkpointed,
    run_scale_checkpointed_traced, run_scale_durable, run_scale_traced, EngineKind, MetroConfig,
};
use coreda_core::wal::{decode_wal, decode_wal_tolerant, encode_wal};
use coreda_des::time::{SimDuration, SimTime};
use coreda_sensornet::packet::crc16;
use proptest::prelude::*;

fn cfg(jobs: usize, engine: EngineKind) -> MetroConfig {
    MetroConfig {
        homes: 6,
        horizon: SimDuration::from_secs(600),
        seed: 2007,
        jobs,
        engine,
        gap_min: SimDuration::from_secs(60),
        gap_max: SimDuration::from_secs(180),
        train_episodes: 120,
        ..MetroConfig::default()
    }
}

#[test]
fn resume_equals_uninterrupted_across_the_grid() {
    // Checkpoint ticks spanning the run: the first serving instant, an
    // off-gap mid-run tick, a late tick, and the horizon itself.
    let ticks = [
        SimTime::from_millis(100),
        SimTime::from_secs(59),
        SimTime::from_secs(300),
        SimTime::from_secs(600),
    ];
    for engine in [EngineKind::Wheel, EngineKind::Heap] {
        let full = run_scale(&cfg(1, engine));
        let (_, snaps) = run_scale_checkpointed(&cfg(1, engine), &ticks);
        for (tick, snap) in ticks.iter().zip(&snaps) {
            for jobs in [1usize, 8] {
                let resumed = resume_scale(&cfg(jobs, engine), snap)
                    .unwrap_or_else(|e| panic!("resume at {tick:?}: {e}"));
                assert_eq!(
                    resumed, full,
                    "resume diverged: tick {tick:?}, jobs {jobs}, {engine:?} engine"
                );
            }
        }
    }
}

#[test]
fn snapshots_are_jobs_invariant_down_to_the_bytes() {
    let ticks = [SimTime::from_secs(120), SimTime::from_secs(480)];
    let (_, serial) = run_scale_checkpointed(&cfg(1, EngineKind::Wheel), &ticks);
    let (_, parallel) = run_scale_checkpointed(&cfg(8, EngineKind::Wheel), &ticks);
    assert_eq!(serial, parallel, "snapshot structs must not depend on sharding");
    for (a, b) in serial.iter().zip(&parallel) {
        assert_eq!(
            save_checkpoint(a, 1).to_vec(),
            save_checkpoint(b, 8).to_vec(),
            "snapshot bytes must not depend on encode parallelism either"
        );
    }
}

#[test]
fn engine_is_a_resume_time_free_choice() {
    // The digest excludes the engine: a snapshot taken under the wheel
    // resumes under dense heap polling (and vice versa) onto the same
    // per-home results. Only `des_events` is engine-shaped.
    let (_, wheel_snaps) =
        run_scale_checkpointed(&cfg(1, EngineKind::Wheel), &[SimTime::from_secs(300)]);
    let heap_resumed = resume_scale(&cfg(1, EngineKind::Heap), &wheel_snaps[0]).unwrap();
    assert_eq!(heap_resumed.per_home, run_scale(&cfg(1, EngineKind::Heap)).per_home);

    let (_, heap_snaps) =
        run_scale_checkpointed(&cfg(1, EngineKind::Heap), &[SimTime::from_secs(300)]);
    let wheel_resumed = resume_scale(&cfg(1, EngineKind::Wheel), &heap_snaps[0]).unwrap();
    assert_eq!(wheel_resumed.per_home, run_scale(&cfg(1, EngineKind::Wheel)).per_home);
}

#[test]
fn resumed_telemetry_merges_and_matches_at_any_jobs() {
    let full = run_scale_traced(&cfg(1, EngineKind::Wheel));
    let (_, snaps) =
        run_scale_checkpointed_traced(&cfg(1, EngineKind::Wheel), &[SimTime::from_secs(240)]);
    for jobs in [1usize, 8] {
        let resumed = resume_scale_traced(&cfg(jobs, EngineKind::Wheel), &snaps[0]).unwrap();
        assert_eq!(resumed.report, full.report, "jobs {jobs}");
        assert_eq!(
            resumed.telemetry, full.telemetry,
            "counters and trace rings must merge across the boundary, not reset (jobs {jobs})"
        );
    }
}

#[test]
fn durable_resume_equals_uninterrupted_across_the_grid() {
    // The incremental flavour of the headline guarantee: base at the
    // first stop, deltas for the rest, write-ahead log throughout —
    // base → deltas → log-tail replay lands on the uninterrupted
    // result at any worker count and on either engine.
    let stops = [
        SimTime::from_millis(100),
        SimTime::from_secs(59),
        SimTime::from_secs(300),
        SimTime::from_secs(600),
    ];
    for engine in [EngineKind::Wheel, EngineKind::Heap] {
        let full = run_scale(&cfg(1, engine));
        let (report, run) = run_scale_durable(&cfg(1, engine), &stops);
        assert_eq!(report, full, "durable instrumentation must not perturb the run");
        for jobs in [1usize, 8] {
            let resumed = resume_scale_durable(&cfg(jobs, engine), &run)
                .unwrap_or_else(|e| panic!("durable resume, jobs {jobs}, {engine:?}: {e}"));
            assert_eq!(
                resumed, full,
                "durable resume diverged: jobs {jobs}, {engine:?} engine"
            );
        }
    }
}

#[test]
fn delta_chains_refuse_a_foreign_base() {
    // Each delta is fingerprint-bound to the exact snapshot it was
    // diffed against: the same run's earlier snapshot is not close
    // enough, and a different seed's snapshot fails on the digest.
    let stops = [SimTime::from_secs(120), SimTime::from_secs(240), SimTime::from_secs(360)];
    let (_, snaps) = run_scale_checkpointed(&cfg(1, EngineKind::Wheel), &stops);
    let late_delta = delta_checkpoint(&snaps[1], &snaps[2]);
    assert!(matches!(
        apply_delta(&snaps[0], &late_delta),
        Err(CheckpointError::BaseMismatch { .. })
    ));
    let foreign = MetroConfig { seed: 9, ..cfg(1, EngineKind::Wheel) };
    let (_, foreign_snaps) = run_scale_checkpointed(&foreign, &[SimTime::from_secs(240)]);
    assert!(matches!(
        apply_delta(&foreign_snaps[0], &late_delta),
        Err(CheckpointError::ConfigMismatch { .. })
    ));
}

/// One mid-run snapshot, encoded once and shared by the robustness
/// proptests below (capturing it is the expensive part).
fn blob() -> &'static [u8] {
    static BLOB: OnceLock<Vec<u8>> = OnceLock::new();
    BLOB.get_or_init(|| {
        let (_, snaps) =
            run_scale_checkpointed(&cfg(1, EngineKind::Wheel), &[SimTime::from_secs(120)]);
        save_checkpoint(&snaps[0], 1).to_vec()
    })
}

/// A mid-run delta and the whole run's write-ahead log, encoded once
/// and shared by the incremental robustness proptests.
fn durable_blobs() -> &'static (Vec<u8>, Vec<u8>) {
    static BLOBS: OnceLock<(Vec<u8>, Vec<u8>)> = OnceLock::new();
    BLOBS.get_or_init(|| {
        let config = cfg(1, EngineKind::Wheel);
        let stops = [SimTime::from_secs(120), SimTime::from_secs(480)];
        let (_, run) = run_scale_durable(&config, &stops);
        let delta = save_delta(&run.deltas[0], 1).to_vec();
        let wal = encode_wal(run.base.digest, &run.wal).to_vec();
        (delta, wal)
    })
}

proptest! {
    /// load(save(d)) == d and base + d rebuilds the later snapshot, for
    /// deltas spanning arbitrary intervals at any encode parallelism.
    #[test]
    fn delta_codec_round_trip_is_exact(base_ms in 100u64..150_000, span_ms in 100u64..150_000, jobs in 1usize..9) {
        let stops = [SimTime::from_millis(base_ms), SimTime::from_millis(base_ms + span_ms)];
        let short = MetroConfig {
            horizon: SimDuration::from_secs(300),
            ..cfg(jobs, EngineKind::Wheel)
        };
        let (_, snaps) = run_scale_checkpointed(&short, &stops);
        let delta = delta_checkpoint(&snaps[0], &snaps[1]);
        let decoded = load_delta(&save_delta(&delta, jobs), jobs).expect("fresh delta decodes");
        prop_assert_eq!(&decoded, &delta);
        prop_assert_eq!(apply_delta(&snaps[0], &decoded).unwrap(), snaps[1].clone());
    }

    /// Flipping any single bit anywhere in an encoded delta is detected.
    #[test]
    fn corrupted_deltas_are_rejected(frac in 0.0f64..1.0, bit in 0u32..8) {
        let (delta, _) = durable_blobs();
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let idx = ((frac * delta.len() as f64) as usize).min(delta.len() - 1);
        let mut bad = delta.clone();
        bad[idx] ^= 1 << bit;
        prop_assert!(
            load_delta(&bad, 1).is_err(),
            "a flipped bit at delta byte {} slipped through", idx
        );
    }

    /// Flipping any single bit anywhere in an encoded log is detected by
    /// the strict decoder (the whole-stream trailer, not just the chunk
    /// CRCs, makes this deterministic).
    #[test]
    fn corrupted_wal_streams_are_rejected(frac in 0.0f64..1.0, bit in 0u32..8) {
        let (_, wal) = durable_blobs();
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let idx = ((frac * wal.len() as f64) as usize).min(wal.len() - 1);
        let mut bad = wal.clone();
        bad[idx] ^= 1 << bit;
        prop_assert!(
            decode_wal(&bad).is_err(),
            "a flipped bit at log byte {} slipped through", idx
        );
    }

    /// A log cut anywhere — mid-chunk, mid-record, mid-length-prefix —
    /// fails the strict decoder, while the tolerant decoder salvages
    /// exactly the intact chunk prefix (what a kill-resume reads back).
    #[test]
    fn truncated_wal_chunks_fail_strict_and_salvage_tolerant(frac in 0.0f64..1.0) {
        let (_, wal) = durable_blobs();
        let full = decode_wal(wal).expect("pristine log decodes").1;
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let keep = ((frac * wal.len() as f64) as usize).min(wal.len() - 1);
        prop_assert!(decode_wal(&wal[..keep]).is_err());
        if let Ok(tail) = decode_wal_tolerant(&wal[..keep]) {
            prop_assert!(tail.valid_bytes <= keep, "salvage cannot claim torn bytes");
            prop_assert!(tail.records.len() <= full.len());
            prop_assert_eq!(
                &full[..tail.records.len()], &tail.records[..],
                "salvaged records must be a prefix of the pristine stream"
            );
        }
    }

    /// decode(encode(s)) == s for snapshots captured at arbitrary ticks.
    #[test]
    fn codec_round_trip_is_exact(tick_ms in 100u64..300_000, jobs in 1usize..9) {
        let tick = SimTime::from_millis(tick_ms);
        let short = MetroConfig {
            horizon: SimDuration::from_secs(300),
            ..cfg(jobs, EngineKind::Wheel)
        };
        let (_, snaps) = run_scale_checkpointed(&short, &[tick]);
        let encoded = save_checkpoint(&snaps[0], jobs);
        let decoded = load_checkpoint(&encoded, jobs).expect("fresh snapshot decodes");
        prop_assert_eq!(decoded, snaps[0].clone());
    }

    /// Flipping any single bit anywhere in a snapshot is detected.
    #[test]
    fn corrupted_snapshots_are_rejected(frac in 0.0f64..1.0, bit in 0u32..8) {
        let blob = blob();
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let idx = ((frac * blob.len() as f64) as usize).min(blob.len() - 1);
        let mut bad = blob.to_vec();
        bad[idx] ^= 1 << bit;
        prop_assert!(
            load_checkpoint(&bad, 1).is_err(),
            "a flipped bit at byte {} slipped through", idx
        );
    }

    /// Every strict prefix of a snapshot is rejected, not misparsed.
    #[test]
    fn truncated_snapshots_are_rejected(frac in 0.0f64..1.0) {
        let blob = blob();
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let keep = ((frac * blob.len() as f64) as usize).min(blob.len() - 1);
        prop_assert!(load_checkpoint(&blob[..keep], 1).is_err());
    }

    /// Any version byte other than the supported one is rejected by the
    /// version field itself (the checksum is re-stamped, so this is not
    /// the CRC catching it).
    #[test]
    fn unknown_versions_are_rejected(v in 0u8..=255) {
        let version = if v == coreda_core::checkpoint::VERSION { v.wrapping_add(1) } else { v };
        let blob = blob();
        let mut bad = blob.to_vec();
        bad[4] = version;
        let body = bad.len() - 2;
        let crc = crc16(&bad[..body]);
        bad[body..].copy_from_slice(&crc.to_be_bytes());
        prop_assert_eq!(
            load_checkpoint(&bad, 1).unwrap_err(),
            CheckpointError::UnsupportedVersion(version)
        );
    }
}
