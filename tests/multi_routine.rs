//! Future work §4.1 — multi-routine plans: one user, several valid orders
//! for the same ADL.

use coreda::prelude::*;

fn routines() -> (AdlSpec, Routine, Routine) {
    let tea = catalog::tea_making();
    let ids = tea.step_ids();
    let a = Routine::canonical(&tea);
    let b = Routine::new(&tea, vec![ids[1], ids[0], ids[2], ids[3]]);
    (tea, a, b)
}

#[test]
fn mixed_training_learns_both_routines() {
    let (tea, a, b) = routines();
    let generator = EpisodeGenerator::new(
        tea.clone(),
        RoutineSet::weighted(vec![(a.clone(), 1.0), (b.clone(), 1.0)]),
        PatientProfile::unimpaired("x"),
    );
    let mut planner = PlanningSubsystem::new(&tea, PlanningConfig::default());
    let mut rng = SimRng::seed_from(1);
    for _ in 0..500 {
        let ep = generator.generate_clean(&mut rng);
        planner.train_episode(&ep.step_ids(), &mut rng);
    }
    assert_eq!(planner.accuracy_vs_routine(&a), 1.0, "routine A fully predicted");
    assert_eq!(planner.accuracy_vs_routine(&b), 1.0, "routine B fully predicted");
}

#[test]
fn skewed_mixture_still_learns_the_rare_routine() {
    let (tea, a, b) = routines();
    let generator = EpisodeGenerator::new(
        tea.clone(),
        RoutineSet::weighted(vec![(a.clone(), 4.0), (b.clone(), 1.0)]),
        PatientProfile::unimpaired("x"),
    );
    let mut planner = PlanningSubsystem::new(&tea, PlanningConfig::default());
    let mut rng = SimRng::seed_from(2);
    for _ in 0..800 {
        let ep = generator.generate_clean(&mut rng);
        planner.train_episode(&ep.step_ids(), &mut rng);
    }
    assert_eq!(planner.accuracy_vs_routine(&a), 1.0);
    assert!(
        planner.accuracy_vs_routine(&b) >= 2.0 / 3.0,
        "the 20% routine should be mostly learned: {}",
        planner.accuracy_vs_routine(&b)
    );
}

#[test]
fn live_episodes_succeed_under_either_routine() {
    let (tea, a, b) = routines();
    let mut system = Coreda::new(tea.clone(), "Ms. Mori", CoredaConfig::default(), 3);
    let generator = EpisodeGenerator::new(
        tea,
        RoutineSet::weighted(vec![(a.clone(), 1.0), (b.clone(), 1.0)]),
        PatientProfile::unimpaired("x"),
    );
    let mut rng = SimRng::seed_from(4);
    for _ in 0..500 {
        let ep = generator.generate_clean(&mut rng);
        system.planner_mut().train_episode(&ep.step_ids(), &mut rng);
    }
    for routine in [&a, &b] {
        let mut behavior = ScriptedBehavior::new().with_error(2, PatientAction::Freeze);
        let log = system.run_live(routine, &mut behavior, &mut rng);
        assert!(log.completed_at().is_some(), "{}", log.render());
        let reminders = log.reminders();
        assert!(!reminders.is_empty());
        assert_eq!(
            Some(reminders[0].1.prompt.tool),
            routine.steps()[2].tool(),
            "the prompt follows the routine in use:\n{}",
            log.render()
        );
    }
}

#[test]
fn dressing_catalog_multi_routines_are_learnable() {
    // The paper's named future-work case: dressing with several valid
    // orders. Train on the catalog's weighted mixture and verify each
    // order predicts correctly wherever its (prev, cur) states are
    // unambiguous across the mixture.
    let dressing = catalog::dressing();
    let set = coreda::adl::activity::catalog::dressing_routines(&dressing);
    let gen = EpisodeGenerator::new(
        dressing.clone(),
        set.clone(),
        PatientProfile::unimpaired("x"),
    );
    let mut planner = PlanningSubsystem::new(&dressing, PlanningConfig::default());
    let mut rng = SimRng::seed_from(77);
    for _ in 0..1200 {
        let ep = gen.generate_clean(&mut rng);
        planner.train_episode(&ep.step_ids(), &mut rng);
    }
    // A (prev, cur) pair is ambiguous if different routines continue it
    // differently; everywhere else the planner must be exact.
    use std::collections::HashMap;
    let mut continuations: HashMap<(StepId, StepId), std::collections::HashSet<StepId>> =
        HashMap::new();
    for (r, _) in set.routines() {
        for (p, c, n) in r.transitions() {
            continuations.entry((p, c)).or_default().insert(n);
        }
    }
    for ((p, c), nexts) in &continuations {
        if nexts.len() == 1 {
            let want = nexts.iter().next().unwrap();
            assert_eq!(
                planner.predict_tool(*p, *c),
                want.tool(),
                "unambiguous state ({p}, {c}) must predict {want}"
            );
        }
    }
    // And there is at least one unambiguous non-initial state, so the
    // check is not vacuous.
    assert!(continuations.values().filter(|n| n.len() == 1).count() >= 3);
}

#[test]
fn single_routine_state_pairs_disambiguate_diverging_orders() {
    // The mechanism behind multi-routine support: the (prev, cur) state
    // of routine A never collides with routine B's when they diverge at
    // the start, so predictions stay routine-specific.
    let (tea, a, b) = routines();
    let mut states = std::collections::HashSet::new();
    for r in [&a, &b] {
        for (prev, cur, _) in r.transitions() {
            states.insert((prev, cur));
        }
    }
    assert_eq!(states.len(), 6, "3 transitions per routine, all distinct");
    let _ = tea;
}
