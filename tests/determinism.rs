//! Reproducibility: every layer of the stack is a pure function of its
//! seed, and the facade exposes everything the examples need.

use coreda::prelude::*;

#[test]
fn whole_system_run_is_reproducible() {
    let run = || {
        let tea = catalog::tea_making();
        let routine = Routine::canonical(&tea);
        let mut system = Coreda::new(tea, "x", CoredaConfig::default(), 42);
        let mut rng = SimRng::seed_from(43);
        for _ in 0..150 {
            system.planner_mut().train_episode(routine.steps(), &mut rng);
        }
        let mut behavior = StochasticBehavior::new(PatientProfile::moderate("x"));
        system.run_live(&routine, &mut behavior, &mut rng)
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "identical seeds must give identical timelines");
}

#[test]
fn different_seeds_give_different_stochastic_runs() {
    let run = |seed: u64| {
        let tea = catalog::tea_making();
        let routine = Routine::canonical(&tea);
        let mut system = Coreda::new(tea, "x", CoredaConfig::default(), seed);
        let mut rng = SimRng::seed_from(seed ^ 1);
        for _ in 0..50 {
            system.planner_mut().train_episode(routine.steps(), &mut rng);
        }
        let mut behavior = StochasticBehavior::new(PatientProfile::severe("x"));
        system.run_live(&routine, &mut behavior, &mut rng)
    };
    // Severe patients err randomly; two seeds almost surely differ.
    assert_ne!(run(1), run(2));
}

#[test]
fn episode_generation_is_seed_deterministic() {
    let generate = || {
        let tea = catalog::tea_making();
        let generator = EpisodeGenerator::new(
            tea.clone(),
            RoutineSet::single(Routine::canonical(&tea)),
            PatientProfile::moderate("x"),
        );
        let mut rng = SimRng::seed_from(99);
        generator.generate_batch(50, &mut rng)
    };
    assert_eq!(generate(), generate());
}

#[test]
fn facade_reexports_cover_the_stack() {
    // Compile-time check that the prelude names resolve and basic
    // cross-crate plumbing works through the facade alone.
    let node = PavenetNode::new(
        NodeId::new(1),
        SignalModel::accelerometer(0.03, 0.45, 0.5),
        Thresholds::default(),
    );
    assert_eq!(node.uid(), NodeId::new(1));

    let mut net = StarNetwork::new(LinkConfig::default());
    net.register(node.uid());
    assert_eq!(net.node_count(), 1);

    let det = Detector::new(Thresholds::default());
    assert!(det.thresholds().accel > 0.0);

    let t = SimTime::from_secs(13) + SimDuration::from_secs(10);
    assert_eq!(t, SimTime::from_secs(23));

    // RL toolbox through the non-prelude path.
    use coreda::rl::{ProblemShape, QTable};
    let q = QTable::new(ProblemShape::new(2, 2));
    assert_eq!(q.max_abs_value(), 0.0);
}

#[test]
fn figure1_scenario_is_stable_across_calls() {
    assert_eq!(scenario::figure1(2007), scenario::figure1(2007));
}
