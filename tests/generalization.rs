//! Design criterion 4: the system generalises to ADLs it has never seen —
//! new tools, new step counts, personalised orders — through the public
//! API alone.

use coreda::prelude::*;

/// A six-step cooking activity, larger than anything in the catalog.
fn cooking() -> AdlSpec {
    let acc = |duty: f64| SignalModel::accelerometer(0.03, 0.45, duty);
    let tools = vec![
        Tool::new(ToolId::new(40), "fridge", acc(0.5)),
        Tool::new(ToolId::new(41), "knife", acc(0.7)),
        Tool::new(ToolId::new(42), "pan", acc(0.6)),
        Tool::new(ToolId::new(43), "spatula", acc(0.6)),
        Tool::new(ToolId::new(44), "plate", acc(0.5)),
        Tool::new(ToolId::new(45), "fork", acc(0.45)),
    ];
    let steps = vec![
        Step::new("Take ingredients from the fridge", ToolId::new(40), 5.0, 1.0),
        Step::new("Chop the vegetables", ToolId::new(41), 8.0, 1.5),
        Step::new("Heat the pan", ToolId::new(42), 4.0, 0.8),
        Step::new("Stir fry", ToolId::new(43), 7.0, 1.4),
        Step::new("Plate the food", ToolId::new(44), 4.0, 0.8),
        Step::new("Eat", ToolId::new(45), 6.0, 1.2),
    ];
    AdlSpec::new("Cooking", tools, steps)
}

#[test]
fn six_step_adl_is_fully_learnable() {
    let adl = cooking();
    let routine = Routine::canonical(&adl);
    let mut planner = PlanningSubsystem::new(&adl, PlanningConfig::default());
    let mut rng = SimRng::seed_from(1);
    for _ in 0..300 {
        planner.train_episode(routine.steps(), &mut rng);
    }
    assert_eq!(planner.accuracy_vs_routine(&routine), 1.0);
    // The MDP scaled with the activity: (6 steps + idle)² states.
    assert_eq!(planner.encoder().shape().states(), 49);
    assert_eq!(planner.encoder().shape().actions(), 12);
}

#[test]
fn live_episode_works_on_a_new_adl() {
    let adl = cooking();
    let routine = Routine::canonical(&adl);
    let mut system = Coreda::new(adl, "Chef", CoredaConfig::default(), 2);
    let mut rng = SimRng::seed_from(3);
    for _ in 0..300 {
        system.planner_mut().train_episode(routine.steps(), &mut rng);
    }
    let mut behavior = ScriptedBehavior::new()
        .with_error(2, PatientAction::Freeze)
        .with_error(4, PatientAction::WrongTool(ToolId::new(45)));
    let log = system.run_live(&routine, &mut behavior, &mut rng);
    assert!(log.completed_at().is_some(), "{}", log.render());
    assert!(log.reminders().len() >= 2, "{}", log.render());
}

#[test]
fn personalised_order_on_new_adl_beats_preplanned_baseline() {
    let adl = cooking();
    let ids = adl.step_ids();
    // This cook heats the pan before chopping.
    let personal =
        Routine::new(&adl, vec![ids[0], ids[2], ids[1], ids[3], ids[4], ids[5]]);
    let mut planner = PlanningSubsystem::new(&adl, PlanningConfig::default());
    let mut rng = SimRng::seed_from(4);
    for _ in 0..300 {
        planner.train_episode(personal.steps(), &mut rng);
    }
    let learned = coreda::core::baseline::routine_accuracy(&planner, &personal);
    let baseline = CanonicalReminder::new(&adl);
    let preplanned = coreda::core::baseline::routine_accuracy(&baseline, &personal);
    assert_eq!(learned, 1.0);
    assert!(preplanned < 1.0);
}

#[test]
fn sensing_subsystem_derives_timeouts_for_new_tools() {
    let adl = cooking();
    let sensing = SensingSubsystem::new(&adl);
    for step in adl.steps() {
        let timeout = sensing.idle_timeout(step.id());
        assert!(
            timeout.as_secs_f64() >= step.mean_duration_s(),
            "timeout for {} must exceed its mean duration",
            step.name()
        );
    }
}

#[test]
fn two_adls_can_run_side_by_side() {
    // One CoReDA instance per ADL, as deployed in a real home; tool ids
    // are globally unique so the step spaces never collide.
    let tea = catalog::tea_making();
    let tooth = catalog::tooth_brushing();
    let tea_routine = Routine::canonical(&tea);
    let tooth_routine = Routine::canonical(&tooth);
    let mut rng = SimRng::seed_from(5);
    let mut tea_sys = Coreda::new(tea, "x", CoredaConfig::default(), 6);
    let mut tooth_sys = Coreda::new(tooth, "x", CoredaConfig::default(), 7);
    for _ in 0..200 {
        tea_sys.planner_mut().train_episode(tea_routine.steps(), &mut rng);
        tooth_sys.planner_mut().train_episode(tooth_routine.steps(), &mut rng);
    }
    assert_eq!(tea_sys.planner().accuracy_vs_routine(&tea_routine), 1.0);
    assert_eq!(tooth_sys.planner().accuracy_vs_routine(&tooth_routine), 1.0);
    // Foreign steps are politely ignored rather than confused.
    assert_eq!(
        tea_sys.planner().predict(StepId::IDLE, tooth_routine.first()),
        None,
        "tea planner must not opine on tooth-brushing states"
    );
}
