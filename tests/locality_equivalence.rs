//! The epoch-tiling headline guarantee, as a differential suite:
//! locality-aware wake scheduling ([`SchedMode::Epoch`]) is a pure
//! performance knob. Every deterministic artifact — the per-home grid
//! and rendered report, the flight-recorder telemetry down to its JSONL
//! bytes, the write-ahead event log down to its encoded bytes, the care
//! escalation log, and the served wire outcome — is bit-identical to
//! the strict `(due, seq)` sweep at any `--jobs`, on either queue
//! engine, batch or served.
//!
//! The commutativity argument the suite enforces: an epoch window only
//! reorders wakes *across distinct homes*, and homes never interact, so
//! per-home sequences (the only state-bearing order) are untouched.

use coreda::core::escalation::CarePolicy;
use coreda::core::metro::{
    resume_scale, run_scale_care_walled, run_scale_checkpointed, run_scale_traced, EngineKind,
    MetroConfig, SchedMode,
};
use coreda::core::{config_digest, encode_wal};
use coreda::des::time::{SimDuration, SimTime};
use coreda::serve::{serve_scale, ServeOptions};

fn cfg(jobs: usize, engine: EngineKind, sched: SchedMode) -> MetroConfig {
    MetroConfig {
        homes: 24,
        horizon: SimDuration::from_secs(900),
        seed: 2007,
        jobs,
        engine,
        sched,
        gap_min: SimDuration::from_secs(60),
        gap_max: SimDuration::from_secs(180),
        idle_close: SimDuration::from_secs(120),
        train_episodes: 120,
        ..MetroConfig::default()
    }
}

/// Report, WAL bytes, and care log: epoch ≡ strict for every
/// (jobs, engine) combination, against the single strict jobs=1 wheel
/// reference where the engine allows (per-home grids are also
/// engine-invariant, DES event counts are not).
#[test]
fn epoch_tiling_matches_strict_order_everywhere() {
    let policy = CarePolicy::default();
    for engine in [EngineKind::Wheel, EngineKind::Heap] {
        let (strict_report, strict_wal, strict_care) =
            run_scale_care_walled(&cfg(1, engine, SchedMode::Strict), &policy);
        for jobs in [1usize, 8] {
            let (report, wal, care) =
                run_scale_care_walled(&cfg(jobs, engine, SchedMode::Epoch), &policy);
            assert_eq!(report, strict_report, "{engine} jobs={jobs}: report diverged");
            assert_eq!(report.render(), strict_report.render());
            assert_eq!(wal, strict_wal, "{engine} jobs={jobs}: WAL diverged");
            // Byte-level: the durable encoding of the log is identical too.
            let digest = config_digest(&cfg(jobs, engine, SchedMode::Epoch));
            assert_eq!(
                encode_wal(digest, &wal),
                encode_wal(digest, &strict_wal),
                "{engine} jobs={jobs}: encoded WAL bytes diverged"
            );
            assert_eq!(care, strict_care, "{engine} jobs={jobs}: care log diverged");
        }
    }
}

/// Telemetry equivalence at the serialization boundary: the JSONL the
/// trace CLI writes is byte-identical between scheduling modes.
#[test]
fn epoch_telemetry_jsonl_is_byte_identical_to_strict() {
    for engine in [EngineKind::Wheel, EngineKind::Heap] {
        let strict = run_scale_traced(&cfg(1, engine, SchedMode::Strict));
        for jobs in [1usize, 8] {
            let epoch = run_scale_traced(&cfg(jobs, engine, SchedMode::Epoch));
            assert_eq!(epoch.report, strict.report, "{engine} jobs={jobs}");
            assert_eq!(
                epoch.telemetry.to_jsonl(),
                strict.telemetry.to_jsonl(),
                "{engine} jobs={jobs}: telemetry JSONL diverged"
            );
        }
    }
}

/// Served ≡ batch across the mode boundary: an epoch-tiled served fleet
/// (every wake a `Poll` frame over the wire) reproduces the strict
/// batch run — report, delivery log, and the wire accounting is itself
/// sched-invariant.
#[test]
fn epoch_served_fleet_matches_the_strict_batch_run() {
    for engine in [EngineKind::Wheel, EngineKind::Heap] {
        let (strict_report, strict_wal, _) =
            run_scale_care_walled(&cfg(1, engine, SchedMode::Strict), &CarePolicy::default());
        let strict_served = serve_scale(cfg(1, engine, SchedMode::Strict), &ServeOptions::default())
            .expect("small fleets fit in u32");
        for jobs in [1usize, 8] {
            let served = serve_scale(cfg(jobs, engine, SchedMode::Epoch), &ServeOptions::default())
                .expect("small fleets fit in u32");
            assert_eq!(served.output.report, strict_report, "{engine} jobs={jobs}");
            assert_eq!(served.log, strict_wal, "{engine} jobs={jobs}: served log diverged");
            assert_eq!(
                served.wire, strict_served.wire,
                "{engine} jobs={jobs}: wire accounting diverged across sched modes"
            );
        }
    }
}

/// Checkpoints cross the mode boundary: a fleet snapshot captured under
/// strict order resumes under epoch tiling (and vice versa) to the
/// exact uninterrupted per-home grid.
#[test]
fn checkpoints_are_sched_agnostic() {
    let strict = cfg(1, EngineKind::Wheel, SchedMode::Strict);
    let epoch = cfg(1, EngineKind::Wheel, SchedMode::Epoch);
    let (full, _, _) = run_scale_care_walled(&strict, &CarePolicy::default());
    let stop = SimTime::from_millis(strict.horizon.as_millis() / 3);
    let (_, ckpts) = run_scale_checkpointed(&strict, &[stop]);
    let resumed = resume_scale(&epoch, &ckpts[0]).expect("sched is digest-excluded");
    assert_eq!(resumed.per_home, full.per_home, "strict→epoch resume diverged");
    let (_, ckpts) = run_scale_checkpointed(&epoch, &[stop]);
    let resumed = resume_scale(&strict, &ckpts[0]).expect("sched is digest-excluded");
    assert_eq!(resumed.per_home, full.per_home, "epoch→strict resume diverged");
}
