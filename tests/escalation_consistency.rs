//! The caregiver escalation overlay inherits the fleet's determinism
//! contract wholesale: the escalation log — every raise, ack, and
//! resolution, with its severity and trigger — is bit-identical at any
//! worker count, on either queue engine, and whether the fleet runs in
//! batch or behind the online serving front end. The monitor is a pure
//! fold over the write-ahead event log, so any divergence here means
//! the underlying event stream itself diverged.

use coreda::core::escalation::CarePolicy;
use coreda::core::metro::{run_scale, run_scale_care, EngineKind, MetroConfig};
use coreda::des::time::SimDuration;
use coreda::serve::{serve_scale, ServeOptions};

fn metro_cfg(jobs: usize, engine: EngineKind) -> MetroConfig {
    MetroConfig {
        homes: 16,
        horizon: SimDuration::from_secs(900),
        seed: 2007,
        jobs,
        engine,
        gap_min: SimDuration::from_secs(60),
        gap_max: SimDuration::from_secs(180),
        idle_close: SimDuration::from_secs(120),
        train_episodes: 120,
        ..MetroConfig::default()
    }
}

/// A policy eager enough that a 900 s horizon raises real escalations —
/// an empty log would make every equality below vacuous.
fn eager_policy() -> CarePolicy {
    CarePolicy {
        prompt_failure_streak: 1,
        missed_adl_streak: 1,
        drift_window: 4,
        drift_min_reminders: 2,
        ack_delay_ms: [30_000, 15_000, 5_000],
        resolve_after_ms: 20_000,
        ..CarePolicy::default()
    }
}

#[test]
fn escalation_log_is_byte_identical_at_jobs_1_and_8() {
    let policy = eager_policy();
    let (serial_report, serial) = run_scale_care(&metro_cfg(1, EngineKind::Wheel), &policy);
    let (parallel_report, parallel) = run_scale_care(&metro_cfg(8, EngineKind::Wheel), &policy);
    assert!(!serial.events.is_empty(), "the eager policy must actually fire");
    // Full structural equality of every event, then the rendered bytes.
    assert_eq!(serial.events, parallel.events);
    assert_eq!(serial.render_log(), parallel.render_log());
    assert_eq!(serial.render(), parallel.render());
    assert_eq!(serial.analytics, parallel.analytics);
    assert_eq!(serial_report, parallel_report);
}

#[test]
fn escalation_log_is_engine_invariant() {
    let policy = eager_policy();
    let (_, wheel) = run_scale_care(&metro_cfg(1, EngineKind::Wheel), &policy);
    let (_, heap) = run_scale_care(&metro_cfg(1, EngineKind::Heap), &policy);
    assert_eq!(wheel.events, heap.events);
    assert_eq!(wheel.render_log(), heap.render_log());
    assert_eq!(wheel.analytics, heap.analytics);
}

#[test]
fn served_escalations_equal_the_batch_overlay() {
    let policy = eager_policy();
    let (_, batch) = run_scale_care(&metro_cfg(1, EngineKind::Wheel), &policy);
    for jobs in [1usize, 8] {
        let opts =
            ServeOptions { record: false, trace: false, care: Some(policy.clone()) };
        let served = serve_scale(metro_cfg(jobs, EngineKind::Wheel), &opts)
            .expect("sixteen homes fit in u32");
        let care = served.care.as_ref().expect("care was requested");
        // The served overlay — every event having ridden the wire as an
        // `Escalate` frame — is the batch overlay, byte for byte.
        assert_eq!(care.events, batch.events, "jobs {jobs}");
        assert_eq!(care.render_log(), batch.render_log(), "jobs {jobs}");
        assert_eq!(care.analytics, batch.analytics, "jobs {jobs}");
        assert_eq!(
            served.wire.escalations,
            batch.events.len() as u64,
            "every escalation event must reach a client as one frame (jobs {jobs})"
        );
    }
}

#[test]
fn the_overlay_never_perturbs_the_fleet() {
    // Care is observation only: the report with the monitor attached is
    // the report without it, bit for bit.
    let plain = run_scale(&metro_cfg(2, EngineKind::Wheel));
    let (report, _) = run_scale_care(&metro_cfg(2, EngineKind::Wheel), &eager_policy());
    assert_eq!(plain, report);
    assert_eq!(plain.render(), report.render());
}
