//! Fleet-engine regression test: every sweep ported onto the parallel
//! engine must return byte-identical results at any worker count. The
//! single-worker engine is a plain serial `map` (no threads spawned), so
//! jobs=1 is the reference the parallel runs are held to.

use coreda_bench::{ablation, baseline_cmp, contention, fig4, radio_loss, table3, table4};
use coreda_core::fleet::FleetEngine;

const JOBS: usize = 8;

fn engines() -> (FleetEngine, FleetEngine) {
    (FleetEngine::new(1), FleetEngine::new(JOBS))
}

#[test]
fn ablation_sweeps_are_worker_count_invariant() {
    let (serial, parallel) = engines();
    let lambdas = [0.0, 0.6];

    let a = ablation::lambda_sweep_with(serial, &lambdas, 40, 3, 2007);
    let b = ablation::lambda_sweep_with(parallel, &lambdas, 40, 3, 2007);
    assert_eq!(a, b, "lambda sweep must not depend on worker count");
    // The rendered report is byte-identical too — the strongest form of
    // "same results" a caller can observe.
    assert_eq!(ablation::render("t", &a), ablation::render("t", &b));

    // The algorithm-family points carry a NaN field (minimal_fraction is
    // not applicable there), and NaN != NaN under PartialEq; the debug
    // string is still a bit-exact float comparison.
    let a = ablation::algorithm_family_with(serial, 40, 2, 2007);
    let b = ablation::algorithm_family_with(parallel, 40, 2, 2007);
    assert_eq!(
        format!("{a:?}"),
        format!("{b:?}"),
        "algorithm family must not depend on worker count"
    );

    let a = ablation::reward_shapes_with(serial, 40, 2, 2007);
    let b = ablation::reward_shapes_with(parallel, 40, 2, 2007);
    assert_eq!(a, b, "reward shapes must not depend on worker count");

    let a = ablation::fast_learning_with(serial, 30, 2, 2007);
    let b = ablation::fast_learning_with(parallel, 30, 2, 2007);
    assert_eq!(
        format!("{a:?}"),
        format!("{b:?}"),
        "fast learning must not depend on worker count"
    );
}

#[test]
fn figure4_curves_are_worker_count_invariant() {
    let (serial, parallel) = engines();
    let a = fig4::run_with(serial, 40, 4, 2007);
    let b = fig4::run_with(parallel, 40, 4, 2007);
    assert_eq!(a, b);
    assert_eq!(fig4::render(&a), fig4::render(&b));
}

#[test]
fn extraction_tables_are_worker_count_invariant() {
    let (serial, parallel) = engines();
    let link = Default::default();
    let a = table3::run_with_link_on(serial, 30, 2007, link);
    let b = table3::run_with_link_on(parallel, 30, 2007, link);
    assert_eq!(a, b);
    assert_eq!(table3::render(&a), table3::render(&b));

    let a = table4::run_on(serial, 40, 2007);
    let b = table4::run_on(parallel, 40, 2007);
    assert_eq!(a, b);
}

#[test]
fn failure_and_scaling_sweeps_are_worker_count_invariant() {
    let (serial, parallel) = engines();
    let a = radio_loss::run_on(serial, 20, 20, 2, 2007);
    let b = radio_loss::run_on(parallel, 20, 20, 2, 2007);
    assert_eq!(a, b);

    let a = contention::run_on(serial, 10, 2007);
    let b = contention::run_on(parallel, 10, 2007);
    assert_eq!(a, b);
}

#[test]
fn baseline_studies_are_worker_count_invariant() {
    let (serial, parallel) = engines();
    let tea = coreda::prelude::catalog::tea_making();
    let a = baseline_cmp::accuracy_study_with(serial, &tea, 3, 2007);
    let b = baseline_cmp::accuracy_study_with(parallel, &tea, 3, 2007);
    assert_eq!(a, b);

    let a = baseline_cmp::live_study_with(serial, 4, 2007);
    let b = baseline_cmp::live_study_with(parallel, 4, 2007);
    assert_eq!(a, b);
}
