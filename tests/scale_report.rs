//! Unit coverage for [`ScaleReport`] aggregation and rendering.
//!
//! The render golden file (`tests/golden/scale_report.txt`) pins the
//! exact caregiver-facing summary format: the report is part of the CLI
//! contract and must not drift silently.

use coreda::core::metro::{EngineKind, HomeStats, ScaleReport};
use coreda::des::time::SimDuration;

fn stats(
    episodes_started: u64,
    episodes_completed: u64,
    reminders: u64,
    praises: u64,
    pipeline_ticks: u64,
    energy_uj: f64,
) -> HomeStats {
    HomeStats {
        episodes_started,
        episodes_completed,
        reminders,
        praises,
        sessions_started: episodes_started,
        sessions_completed: episodes_completed,
        sessions_abandoned: episodes_started - episodes_completed,
        cross_activity_flags: 1,
        pipeline_ticks,
        energy_uj,
    }
}

fn report(per_home: Vec<HomeStats>) -> ScaleReport {
    ScaleReport {
        homes: per_home.len(),
        horizon: SimDuration::from_secs(600),
        engine: EngineKind::Wheel,
        per_home,
        des_events: 12_345,
        events: None,
    }
}

#[test]
fn totals_of_an_empty_fleet_are_zero() {
    let r = report(vec![]);
    let t = r.totals();
    assert_eq!(t, HomeStats::default());
    assert_eq!(r.pipeline_ticks(), 0);
}

#[test]
fn totals_of_a_single_home_are_that_home() {
    let home = stats(4, 3, 7, 3, 6_000, 1_500.0);
    let r = report(vec![home]);
    assert_eq!(r.totals(), home);
    assert_eq!(r.pipeline_ticks(), 6_000);
}

#[test]
fn totals_sum_across_homes() {
    let r = report(vec![stats(4, 3, 7, 3, 6_000, 1_500.0), stats(2, 2, 1, 2, 4_000, 500.0)]);
    let t = r.totals();
    assert_eq!(t.episodes_started, 6);
    assert_eq!(t.episodes_completed, 5);
    assert_eq!(t.reminders, 8);
    assert_eq!(t.praises, 5);
    assert_eq!(t.cross_activity_flags, 2);
    assert_eq!(r.pipeline_ticks(), 10_000);
    assert!((t.energy_uj - 2_000.0).abs() < 1e-9);
}

#[test]
fn totals_saturate_instead_of_wrapping() {
    // A pathological (fuzzed or hand-built) report must not panic in
    // debug builds or wrap in release ones.
    let mut big = stats(1, 1, 1, 1, u64::MAX, 0.0);
    big.episodes_started = u64::MAX;
    let r = report(vec![big, stats(4, 3, 7, 3, 6_000, 0.0)]);
    let t = r.totals();
    assert_eq!(t.episodes_started, u64::MAX);
    assert_eq!(t.pipeline_ticks, u64::MAX);
    assert_eq!(r.pipeline_ticks(), u64::MAX);
    assert_eq!(t.episodes_completed, 4);
}

#[test]
fn render_matches_the_golden_file() {
    let r = report(vec![stats(4, 3, 7, 3, 6_000, 1_500.0), stats(2, 2, 1, 2, 4_000, 500.0)]);
    let golden_path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/scale_report.txt");
    let golden = std::fs::read_to_string(&golden_path)
        .unwrap_or_else(|e| panic!("{}: {e}", golden_path.display()));
    assert_eq!(
        r.render(),
        golden,
        "ScaleReport::render drifted from the golden file; if the change \
         is intentional, update tests/golden/scale_report.txt"
    );
}
