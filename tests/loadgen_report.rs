//! The load-generator report golden (`tests/golden/loadgen_report.txt`)
//! pins the deterministic body of `coreda-cli loadgen` — fleet shape,
//! handshake, frame and byte counts, report/delivery/close accounting.
//! Every one of those figures is a pure function of the config under
//! the sim clock, so the golden doubles as a wire-traffic regression
//! net: a codec or serve-loop change that moves a single frame shows up
//! as a diff here. The wall-clock timing lines stay out of the golden
//! (and are checked for shape instead).

use coreda::core::metro::MetroConfig;
use coreda::des::time::SimDuration;
use coreda::serve::run_loadgen;

/// The exact config the golden was captured under — the CLI's
/// `loadgen --homes 4 --hours 0.2 --jobs 1 --seed 2007`.
fn golden_cfg() -> MetroConfig {
    MetroConfig {
        homes: 4,
        horizon: SimDuration::from_millis(720_000),
        seed: 2007,
        jobs: 1,
        ..MetroConfig::default()
    }
}

#[test]
fn report_body_matches_the_golden_file() {
    let report = run_loadgen(golden_cfg(), None).expect("four homes fit in u32");
    let golden_path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/loadgen_report.txt");
    let golden = std::fs::read_to_string(&golden_path)
        .unwrap_or_else(|e| panic!("{}: {e}", golden_path.display()));
    assert_eq!(
        report.render(),
        golden,
        "LoadgenReport::render drifted from the golden file; if the change \
         is intentional, update tests/golden/loadgen_report.txt"
    );
}

/// A run with zero deliveries must say so in the deterministic body —
/// the second golden (`tests/golden/loadgen_report_empty.txt`) pins the
/// explicit `delivery latency: (no deliveries)` line so the empty case
/// can never silently regress back to a missing line.
#[test]
fn empty_run_body_matches_the_empty_golden_file() {
    let quiet = MetroConfig { horizon: SimDuration::from_secs(1), ..golden_cfg() };
    let report = run_loadgen(quiet, None).expect("four homes fit in u32");
    assert_eq!(report.wire.delivers, 0, "a 1 s horizon must deliver nothing");
    let golden_path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden/loadgen_report_empty.txt");
    let golden = std::fs::read_to_string(&golden_path)
        .unwrap_or_else(|e| panic!("{}: {e}", golden_path.display()));
    assert!(golden.contains("delivery latency: (no deliveries)"));
    assert_eq!(
        report.render(),
        golden,
        "empty-run body drifted from the golden file; if the change is \
         intentional, update tests/golden/loadgen_report_empty.txt"
    );
}

#[test]
fn timing_lines_have_quantiles_but_stay_out_of_the_body() {
    let report = run_loadgen(golden_cfg(), None).expect("four homes fit in u32");
    let timing = report.render_timing();
    assert!(timing.contains("wall:"), "{timing}");
    assert!(timing.contains("p50") && timing.contains("p95") && timing.contains("p99"), "{timing}");
    assert!(
        !report.render().contains("wall:"),
        "wall-clock figures are nondeterministic and must not leak into the golden body"
    );
}
