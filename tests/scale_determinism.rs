//! Metro-scale serving is bit-deterministic: the worker count is a pure
//! wall-clock knob, and the timing-wheel engine reproduces the dense
//! heap-polling baseline home for home.

use coreda_core::metro::{run_scale, run_scale_traced, EngineKind, MetroConfig};
use coreda_des::time::SimDuration;

fn metro_cfg(jobs: usize, engine: EngineKind) -> MetroConfig {
    MetroConfig {
        homes: 64,
        horizon: SimDuration::from_secs(900),
        seed: 2007,
        jobs,
        engine,
        gap_min: SimDuration::from_secs(60),
        gap_max: SimDuration::from_secs(180),
        idle_close: SimDuration::from_secs(120),
        train_episodes: 120,
        ..MetroConfig::default()
    }
}

#[test]
fn sixty_four_homes_are_byte_identical_at_jobs_1_and_8() {
    let serial = run_scale(&metro_cfg(1, EngineKind::Wheel));
    let parallel = run_scale(&metro_cfg(8, EngineKind::Wheel));
    // Full structural equality: every per-home counter, every energy
    // figure, and the DES event count.
    assert_eq!(serial, parallel);
    // And the rendered report is byte-identical.
    assert_eq!(serial.render(), parallel.render());
}

#[test]
fn heap_baseline_is_also_jobs_invariant() {
    let serial = run_scale(&metro_cfg(1, EngineKind::Heap));
    let parallel = run_scale(&metro_cfg(8, EngineKind::Heap));
    assert_eq!(serial, parallel);
}

#[test]
fn wheel_engine_reproduces_heap_baseline_per_home() {
    let wheel = run_scale(&metro_cfg(1, EngineKind::Wheel));
    let heap = run_scale(&metro_cfg(1, EngineKind::Heap));
    // Identical serving decisions in every home; only the raw DES event
    // count differs (dense polling pops an event per home per 100 ms,
    // the wheel wakes homes only when something can happen).
    assert_eq!(wheel.per_home, heap.per_home);
    assert!(
        wheel.des_events < heap.des_events,
        "wheel {w} should pop fewer events than heap {h}",
        w = wheel.des_events,
        h = heap.des_events
    );
}

#[test]
fn telemetry_is_byte_identical_at_jobs_1_and_8() {
    let serial = run_scale_traced(&metro_cfg(1, EngineKind::Wheel));
    let parallel = run_scale_traced(&metro_cfg(8, EngineKind::Wheel));
    // Full structural equality of every recorder: counters, latency
    // histograms, and trace-event rings, home for home.
    assert_eq!(serial.telemetry, parallel.telemetry);
    // And both exports are byte-identical.
    assert_eq!(serial.telemetry.render_summary(), parallel.telemetry.render_summary());
    assert_eq!(serial.telemetry.to_jsonl(), parallel.telemetry.to_jsonl());
    // The traced report equals the untraced one: recording never
    // perturbs the simulation.
    assert_eq!(serial.report, run_scale(&metro_cfg(1, EngineKind::Wheel)));
}

#[test]
fn telemetry_is_engine_invariant() {
    let wheel = run_scale_traced(&metro_cfg(1, EngineKind::Wheel));
    let heap = run_scale_traced(&metro_cfg(1, EngineKind::Heap));
    assert_eq!(wheel.telemetry, heap.telemetry);
    assert_eq!(wheel.telemetry.to_jsonl(), heap.telemetry.to_jsonl());
}

#[test]
fn the_fleet_actually_did_something() {
    let report = run_scale(&metro_cfg(4, EngineKind::Wheel));
    let totals = report.totals();
    assert_eq!(report.per_home.len(), 64);
    assert!(totals.episodes_started >= 64, "{totals:?}");
    assert!(totals.episodes_completed > 0, "{totals:?}");
    assert!(totals.sessions_started > 0, "{totals:?}");
    assert!(totals.pipeline_ticks > 10_000, "{totals:?}");
    assert!(totals.energy_uj > 0.0, "{totals:?}");
}
