//! Golden coverage for the flight-recorder summary render.
//!
//! The golden file (`tests/golden/trace_summary.txt`) pins the exact
//! telemetry summary the `trace` CLI command prints below its header:
//! the summary is part of the CLI contract and must not drift silently.
//! It is also jobs- and engine-invariant, so one golden file covers
//! every way of producing it.

use coreda::core::metro::{
    resume_scale_traced, run_scale_checkpointed_traced, run_scale_traced, MetroConfig,
};
use coreda::des::time::{SimDuration, SimTime};

fn golden_cfg() -> MetroConfig {
    MetroConfig {
        homes: 4,
        horizon: SimDuration::from_secs(600),
        seed: 2007,
        jobs: 1,
        ..MetroConfig::default()
    }
}

fn golden() -> String {
    let golden_path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/trace_summary.txt");
    std::fs::read_to_string(&golden_path)
        .unwrap_or_else(|e| panic!("{}: {e}", golden_path.display()))
}

#[test]
fn trace_summary_matches_the_golden_file() {
    let out = run_scale_traced(&golden_cfg());
    assert_eq!(
        out.telemetry.render_summary(),
        golden(),
        "Telemetry::render_summary drifted from the golden file; if the \
         change is intentional, update tests/golden/trace_summary.txt"
    );
}

/// A run snapshotted mid-way and resumed must render the *same* golden
/// summary: telemetry counters, latency histograms and trace rings merge
/// across the snapshot boundary instead of resetting. (A reset would
/// roughly halve every counter and be caught byte-for-byte here.)
#[test]
fn resumed_trace_summary_matches_the_same_golden_file() {
    let cfg = golden_cfg();
    let (_, snaps) = run_scale_checkpointed_traced(&cfg, &[SimTime::from_secs(300)]);
    let resumed = resume_scale_traced(&cfg, &snaps[0]).expect("snapshot matches its own config");
    assert_eq!(
        resumed.telemetry.render_summary(),
        golden(),
        "a resumed run's telemetry summary must describe the whole run, \
         not just the tail after the snapshot"
    );
}
