//! Golden coverage for the flight-recorder summary render.
//!
//! The golden file (`tests/golden/trace_summary.txt`) pins the exact
//! telemetry summary the `trace` CLI command prints below its header:
//! the summary is part of the CLI contract and must not drift silently.
//! It is also jobs- and engine-invariant, so one golden file covers
//! every way of producing it.

use coreda::core::metro::{run_scale_traced, MetroConfig};
use coreda::des::time::SimDuration;

#[test]
fn trace_summary_matches_the_golden_file() {
    let cfg = MetroConfig {
        homes: 4,
        horizon: SimDuration::from_secs(600),
        seed: 2007,
        jobs: 1,
        ..MetroConfig::default()
    };
    let out = run_scale_traced(&cfg);
    let golden_path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/trace_summary.txt");
    let golden = std::fs::read_to_string(&golden_path)
        .unwrap_or_else(|e| panic!("{}: {e}", golden_path.display()));
    assert_eq!(
        out.telemetry.render_summary(),
        golden,
        "Telemetry::render_summary drifted from the golden file; if the \
         change is intentional, update tests/golden/trace_summary.txt"
    );
}
