//! Home-level integration: the session tracker watching a realistic
//! report stream produced by the actual sensing pipeline (nodes → CSMA
//! medium → ARQ → base station), across two activities performed back to
//! back with a mid-activity confusion.

use coreda::core::sessions::{SessionEvent, SessionTracker};
use coreda::prelude::*;
use coreda::sensornet::{BaseStation, LinkConfig, PavenetNode, StarNetwork};

/// Simulates `tool` being used for `secs` seconds starting at `start`,
/// pushing every accepted report into `tracker` and collecting events.
#[allow(clippy::too_many_arguments)]
fn use_tool(
    spec: &AdlSpec,
    tool: ToolId,
    start_s: u64,
    secs: u64,
    net: &mut StarNetwork,
    base: &mut BaseStation,
    nodes: &mut Vec<PavenetNode>,
    tracker: &mut SessionTracker,
    rng: &mut SimRng,
) -> Vec<SessionEvent> {
    let t = spec.tool(tool).expect("tool in spec");
    if !nodes.iter().any(|n| n.uid() == t.id().into()) {
        let node = PavenetNode::new(t.id().into(), t.signal(), Thresholds::default());
        net.register(node.uid());
        nodes.push(node);
    }
    let node = nodes
        .iter_mut()
        .find(|n| n.uid() == t.id().into())
        .expect("just ensured");
    let mut events = Vec::new();
    for tick in 0..secs * 10 {
        let now_ms = start_s * 1000 + tick * 100;
        if let Some(p) = node.sample_tick(true, now_ms, rng) {
            if net.send_uplink(&p, rng).is_delivered() {
                if let Some(accepted) = base.receive(p) {
                    events.extend(
                        tracker.on_report(accepted.src, SimTime::from_millis(now_ms)),
                    );
                }
            }
        }
    }
    events
}

#[test]
fn a_morning_at_home_is_recognised() {
    let tea = catalog::tea_making();
    let tooth = catalog::tooth_brushing();
    let mut tracker = SessionTracker::new(
        &[tea.clone(), tooth.clone()],
        SimDuration::from_secs(90),
    );
    let mut net = StarNetwork::new(LinkConfig::default());
    let mut base = BaseStation::new();
    let mut nodes = Vec::new();
    let mut rng = SimRng::seed_from(2007);
    let mut all_events = Vec::new();

    // 07:00 — tooth-brushing, all four steps.
    let mut t = 0u64;
    for step in tooth.steps() {
        all_events.extend(use_tool(
            &tooth, step.tool(), t, 6, &mut net, &mut base, &mut nodes, &mut tracker, &mut rng,
        ));
        t += 7;
    }
    // A long quiet gap closes the session (checked via on_tick).
    if let Some(ev) = tracker.on_tick(SimTime::from_secs(t + 120)) {
        all_events.push(ev);
    }
    t += 150;

    // 07:03 — tea-making, but mid-way the user wanders to the toothbrush
    // once (a cross-activity confusion), then finishes the tea.
    let tea_steps = tea.step_ids();
    for (i, &step) in tea_steps.iter().enumerate() {
        all_events.extend(use_tool(
            &tea,
            step.tool().unwrap(),
            t,
            6,
            &mut net,
            &mut base,
            &mut nodes,
            &mut tracker,
            &mut rng,
        ));
        t += 7;
        if i == 1 {
            // The confusion: two seconds on the toothbrush.
            all_events.extend(use_tool(
                &tooth,
                ToolId::new(catalog::BRUSH),
                t,
                2,
                &mut net,
                &mut base,
                &mut nodes,
                &mut tracker,
                &mut rng,
            ));
            t += 3;
        }
    }
    if let Some(ev) = tracker.on_tick(SimTime::from_secs(t + 120)) {
        all_events.push(ev);
    }

    // The recognised story: tooth session (completed), tea session with a
    // cross-activity flag (completed). Events carry interned name ids;
    // resolve through the tracker that issued them.
    let starts: Vec<&str> = all_events
        .iter()
        .filter_map(|e| match e {
            SessionEvent::Started { activity, .. } => Some(tracker.activity_name(*activity)),
            _ => None,
        })
        .collect();
    assert_eq!(starts, vec!["Tooth-brushing", "Tea-making"], "{all_events:#?}");

    let ends: Vec<(&str, bool)> = all_events
        .iter()
        .filter_map(|e| match e {
            SessionEvent::Ended { activity, completed, .. } => {
                Some((tracker.activity_name(*activity), *completed))
            }
            _ => None,
        })
        .collect();
    assert_eq!(
        ends,
        vec![("Tooth-brushing", true), ("Tea-making", true)],
        "{all_events:#?}"
    );

    let confusions: Vec<_> = all_events
        .iter()
        .filter(|e| matches!(e, SessionEvent::CrossActivityUse { .. }))
        .collect();
    assert!(
        !confusions.is_empty(),
        "the toothbrush grab mid-tea must be flagged: {all_events:#?}"
    );
    for c in confusions {
        if let SessionEvent::CrossActivityUse { active, foreign, tool, .. } = c {
            assert_eq!(tracker.activity_name(*active), "Tea-making");
            assert_eq!(tracker.activity_name(*foreign), "Tooth-brushing");
            assert_eq!(*tool, ToolId::new(catalog::BRUSH));
        }
    }
}

#[test]
fn home_and_tracker_agree_on_tool_ownership() {
    let mut home = CoredaHome::new("x", CoredaConfig::default(), 1);
    home.install(catalog::tea_making()).unwrap();
    home.install(catalog::tooth_brushing()).unwrap();
    let tracker = SessionTracker::new(
        &[catalog::tea_making(), catalog::tooth_brushing()],
        SimDuration::from_secs(60),
    );
    let _ = tracker; // ownership checked through the home below
    for adl in [catalog::tea_making(), catalog::tooth_brushing()] {
        for tool in adl.tools() {
            assert_eq!(home.owner_of(tool.id()), Some(adl.name()));
        }
    }
}
