//! Replays the checked-in DST regression corpus (`tests/corpus/`).
//!
//! Each `.seed.json` entry is a deterministic fault plan. Entries with no
//! `expect_violation` are regression guards: they once reproduced a real
//! bug (or stress a fault kind) and must now pass every oracle; entries
//! naming an oracle must still trip exactly it. The same corpus gates
//! `make ci` via `coreda-cli replay --dir tests/corpus`.

use std::path::{Path, PathBuf};

use coreda::core::metro::EngineKind;
use coreda::testkit::corpus;
use coreda::testkit::harness::Harness;
use coreda::testkit::json;

fn corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus")
}

#[test]
fn corpus_replays_match_expectations() {
    let harness = Harness::new();
    let outcomes = corpus::replay_dir(&harness, &corpus_dir()).expect("corpus replays");
    assert!(outcomes.len() >= 8, "corpus shrank to {} entries", outcomes.len());
    let failed: Vec<String> =
        outcomes.iter().filter(|o| !o.pass).map(|o| o.render()).collect();
    assert!(failed.is_empty(), "corpus regressions:\n{}", failed.join("\n"));
}

#[test]
fn corpus_plans_are_engine_invariant() {
    let harness = Harness::new();
    let mut checked = 0;
    for entry in std::fs::read_dir(corpus_dir()).expect("corpus dir") {
        let path = entry.expect("dir entry").path();
        if !path.to_string_lossy().ends_with(".seed.json") {
            continue;
        }
        let text = std::fs::read_to_string(&path).expect("corpus entry");
        let plan = json::from_json(&text).unwrap_or_else(|e| panic!("{path:?}: {e}"));
        let wheel = harness.run(&plan, EngineKind::Wheel);
        let heap = harness.run(&plan, EngineKind::Heap);
        assert_eq!(wheel, heap, "engines diverged on {path:?}");
        checked += 1;
    }
    assert!(checked >= 8, "only {checked} corpus entries checked");
}

/// The kill-resume corpus entry dies mid-run (radio loss and severe
/// lapses both active), round-trips through the binary checkpoint codec,
/// and must replay clean — including the `resume_equivalence` oracle,
/// which [`Harness::check`] runs against the uninterrupted ghost
/// whenever the plan contains a kill.
#[test]
fn kill_resume_corpus_entry_matches_its_ghost() {
    let harness = Harness::new();
    let path = corpus_dir().join("kill-resume-mid-lapse.seed.json");
    let text = std::fs::read_to_string(&path).expect("kill-resume corpus entry");
    let plan = json::from_json(&text).expect("parse kill-resume entry");
    assert!(
        plan.faults.iter().any(|f| f.kind == coreda::testkit::plan::FaultKind::CheckpointKillResume),
        "entry lost its kill fault: {plan:?}"
    );
    let outcome = harness.check(&plan);
    assert!(
        outcome.violations.is_empty(),
        "kill-resume replay regressed: {:?}",
        outcome.violations
    );
}

/// The frame-fault corpus entries target the served ingestion path:
/// transport storms (duplicated / reordered / delayed `Report` frames)
/// and a mid-session hangup. `replay_dir` routes them through the
/// served differential automatically; this pins the routing itself.
#[test]
fn frame_fault_corpus_entries_route_through_the_served_pipeline() {
    let mut seen = 0;
    for name in ["frame-transport-storm.seed.json", "frame-hangup-mid-session.seed.json"] {
        let text = std::fs::read_to_string(corpus_dir().join(name)).expect("served corpus entry");
        let plan = json::from_json(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(plan.has_frame_faults(), "{name} lost its frame faults: {plan:?}");
        let violations = coreda::testkit::served::check_served(&plan);
        assert!(violations.is_empty(), "{name} regressed: {violations:?}");
        seen += 1;
    }
    assert_eq!(seen, 2);
}

#[test]
fn corpus_round_trips_through_the_serializer() {
    for entry in std::fs::read_dir(corpus_dir()).expect("corpus dir") {
        let path = entry.expect("dir entry").path();
        if !path.to_string_lossy().ends_with(".seed.json") {
            continue;
        }
        let text = std::fs::read_to_string(&path).expect("corpus entry");
        let plan = json::from_json(&text).unwrap_or_else(|e| panic!("{path:?}: {e}"));
        let reparsed = json::from_json(&json::to_json(&plan)).expect("round trip");
        assert_eq!(plan, reparsed, "{path:?} does not round-trip");
    }
}
