//! Robustness integration tests: lossy radios, non-compliant patients,
//! severe dementia — does the system stay safe and productive?
//!
//! Radio faults are built from the DST harness's fault vocabulary
//! ([`coreda::testkit::plan::FaultKind`]) via `link_config()`, so the
//! conditions exercised here are exactly the ones the fuzzer generates —
//! the two fault models cannot drift apart.

use coreda::prelude::*;
use coreda::testkit::behavior::StubbornBehavior;
use coreda::testkit::plan::FaultKind;

fn train(system: &mut Coreda, routine: &Routine, seed: u64) {
    let mut rng = SimRng::seed_from(seed);
    for _ in 0..200 {
        system.planner_mut().train_episode(routine.steps(), &mut rng);
    }
}

/// A `CoredaConfig` whose link layer runs under the given radio fault.
fn config_under(fault: FaultKind) -> CoredaConfig {
    let link = fault.link_config().expect("a radio fault");
    CoredaConfig { link, ..CoredaConfig::default() }
}

#[test]
fn episodes_complete_over_a_lossy_radio() {
    let tea = catalog::tea_making();
    let routine = Routine::canonical(&tea);
    let config = config_under(FaultKind::RadioLoss {
        model: LossModel::Bernoulli { p: 0.3 },
        max_retries: 3,
    });
    let mut system = Coreda::new(tea, "x", config, 1);
    train(&mut system, &routine, 2);
    let mut rng = SimRng::seed_from(3);
    let mut completed = 0;
    for _ in 0..10 {
        let mut behavior = StochasticBehavior::new(PatientProfile::mild("x"));
        let log = system.run_live(&routine, &mut behavior, &mut rng);
        if log.completed_at().is_some() {
            completed += 1;
        }
    }
    assert!(completed >= 9, "30% frame loss should be absorbed by ARQ: {completed}/10");
}

#[test]
fn bursty_channel_is_survivable() {
    let tea = catalog::tea_making();
    let routine = Routine::canonical(&tea);
    let config = config_under(FaultKind::RadioLoss {
        model: LossModel::GilbertElliott {
            p_good_to_bad: 0.05,
            p_bad_to_good: 0.2,
            loss_good: 0.02,
            loss_bad: 0.7,
        },
        max_retries: 3,
    });
    let mut system = Coreda::new(tea, "x", config, 4);
    train(&mut system, &routine, 5);
    let mut rng = SimRng::seed_from(6);
    let mut behavior = StochasticBehavior::new(PatientProfile::unimpaired("x"));
    let log = system.run_live(&routine, &mut behavior, &mut rng);
    assert!(log.completed_at().is_some(), "{}", log.render());
}

#[test]
fn unanswered_reminders_escalate_to_specific() {
    // A patient who ignores the first few prompts: re-prompts must come,
    // escalated to the specific level ("more blinks", personalised text).
    let tea = catalog::tea_making();
    let routine = Routine::canonical(&tea);
    let mut system = Coreda::new(tea, "Mr. Kim", CoredaConfig::default(), 7);
    train(&mut system, &routine, 8);
    let mut behavior =
        StubbornBehavior::new(ScriptedBehavior::new().with_error(1, PatientAction::Freeze), 2);
    let mut rng = SimRng::seed_from(9);
    let log = system.run_live(&routine, &mut behavior, &mut rng);
    assert_eq!(behavior.ignored(), 2, "both early prompts were ignored");
    let reminders = log.reminders();
    assert!(
        reminders.len() >= 2,
        "ignored prompts should be repeated:\n{}",
        log.render()
    );
    assert_eq!(
        reminders[1].1.prompt.level,
        ReminderLevel::Specific,
        "the re-prompt escalates:\n{}",
        log.render()
    );
    // The specific text is personalised.
    let text = reminders[1]
        .1
        .methods
        .iter()
        .find_map(|m| match m {
            ReminderMethod::TextMessage(t) => Some(t.clone()),
            _ => None,
        })
        .unwrap();
    assert!(text.contains("Mr. Kim"), "specific text is personalised: {text}");
    assert!(log.completed_at().is_some());
}

#[test]
fn severe_patient_eventually_finishes_every_episode() {
    let tooth = catalog::tooth_brushing();
    let routine = Routine::canonical(&tooth);
    let mut system = Coreda::new(tooth, "x", CoredaConfig::default(), 10);
    train(&mut system, &routine, 11);
    let mut rng = SimRng::seed_from(12);
    for trial in 0..8 {
        let mut behavior = StochasticBehavior::new(PatientProfile::severe("x"));
        let log = system.run_live(&routine, &mut behavior, &mut rng);
        assert!(
            log.completed_at().is_some(),
            "trial {trial} did not complete:\n{}",
            log.render()
        );
    }
}

#[test]
fn totally_dead_radio_means_no_reminders_but_patient_self_recovers() {
    let tea = catalog::tea_making();
    let routine = Routine::canonical(&tea);
    let config = config_under(FaultKind::RadioLoss {
        model: LossModel::Bernoulli { p: 1.0 },
        max_retries: 1,
    });
    let mut system = Coreda::new(tea, "x", config, 13);
    train(&mut system, &routine, 14);
    let mut behavior = ScriptedBehavior::new().with_error(1, PatientAction::Freeze);
    let mut rng = SimRng::seed_from(15);
    let log = system.run_live(&routine, &mut behavior, &mut rng);
    // Nothing is sensed, so nothing can be prompted…
    assert_eq!(log.reminders().len(), 0, "{}", log.render());
    assert!(log.sensed_steps().is_empty());
    // …but the behaviour model's self-recovery still finishes the ADL.
    assert!(log.completed_at().is_some(), "{}", log.render());
}
