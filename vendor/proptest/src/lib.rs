//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API the workspace tests use:
//! the `proptest!` macro, `Strategy` with `prop_map`/`boxed`, `any::<T>()`,
//! integer/float range strategies, `Just`, `prop_oneof!`,
//! `collection::vec`, `option::of`, a printable-string strategy for
//! `"\PC{lo,hi}"`-style patterns, and the `prop_assert*` macros.
//!
//! Inputs are drawn from a deterministic per-test RNG (seeded from the
//! test's name), so failures reproduce exactly on re-run. There is no
//! shrinking: a failing case panics with the normal assert message.
//! Case count defaults to 64 and honours `PROPTEST_CASES`.

// A vendored stand-in is not held to the workspace's lint bar.
#![allow(clippy::all, clippy::pedantic, clippy::nursery)]

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Number of random cases each `proptest!` test runs.
pub fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

// ---------------------------------------------------------------------------
// Deterministic RNG (splitmix64-seeded xoshiro256++)
// ---------------------------------------------------------------------------

/// Deterministic RNG used to drive strategies. Seeded from the test name,
/// so every run of a given test sees the same input sequence.
pub struct TestRng {
    state: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TestRng {
    pub fn seeded(seed: u64) -> Self {
        let mut s = seed;
        Self {
            state: [
                splitmix64(&mut s),
                splitmix64(&mut s),
                splitmix64(&mut s),
                splitmix64(&mut s),
            ],
        }
    }

    /// Seed from the test's name (FNV-1a), keeping runs reproducible.
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self::seeded(h)
    }

    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.state;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s = [s0, s1, s2, s3];
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        self.state = s;
        result
    }

    /// Uniform f64 in [0, 1).
    pub fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform u128 below `n` (n > 0).
    pub fn below(&mut self, n: u128) -> u128 {
        debug_assert!(n > 0);
        let wide = u128::from(self.next_u64()) << 64 | u128::from(self.next_u64());
        wide % n
    }
}

// ---------------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------------

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Constant strategy: always yields a clone of the wrapped value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// ---------------------------------------------------------------------------
// any::<T>()
// ---------------------------------------------------------------------------

/// Types with a full-domain default strategy.
pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($ty:ty),*) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $ty
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The default strategy for `T`: uniform over the whole domain.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

// ---------------------------------------------------------------------------
// Range strategies
// ---------------------------------------------------------------------------

macro_rules! int_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add(rng.below(span) as $ty)
            }
        }

        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                if span == 0 {
                    // Full-domain inclusive range of a 128-bit type cannot
                    // occur here; span 0 only means hi - lo + 1 overflowed.
                    return rng.next_u64() as $ty;
                }
                lo.wrapping_add(rng.below(span) as $ty)
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.uniform() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        // Hitting the exact endpoint has measure zero either way; include
        // it explicitly now and then so `..=1.0` really can yield 1.0.
        if rng.next_u64() % 64 == 0 {
            return hi;
        }
        lo + rng.uniform() * (hi - lo)
    }
}

// ---------------------------------------------------------------------------
// Tuple strategies
// ---------------------------------------------------------------------------

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

// ---------------------------------------------------------------------------
// Union (prop_oneof!)
// ---------------------------------------------------------------------------

pub mod strategy {
    use super::{BoxedStrategy, Strategy, TestRng};

    /// Uniform choice over boxed alternatives; backs `prop_oneof!`.
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Self { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.arms.len() as u128) as usize;
            self.arms[idx].generate(rng)
        }
    }
}

// ---------------------------------------------------------------------------
// Collections
// ---------------------------------------------------------------------------

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Inclusive length bounds for [`vec`].
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            Self { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            Self { lo: *r.start(), hi: *r.end() }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Strategy for `Vec`s whose elements come from `element` and whose
    /// length lies in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo + 1) as u128;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    use super::{Strategy, TestRng};

    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `Option` strategy: `None` one time in four, `Some` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64() % 4 == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

// ---------------------------------------------------------------------------
// String strategy ("\PC{lo,hi}" patterns)
// ---------------------------------------------------------------------------

/// Pool of printable characters for string patterns: full printable ASCII
/// plus a few multi-byte code points so UTF-8 boundaries get exercised.
const PRINTABLE_EXTRAS: &[char] = &['é', 'ß', 'λ', 'Ж', '中', '☕', '𝛼'];

impl Strategy for &str {
    type Value = String;

    /// Interprets the pattern as "printable characters", honouring a
    /// trailing `{lo,hi}` repetition count (the only regex feature the
    /// workspace tests rely on, via `\PC{lo,hi}`).
    fn generate(&self, rng: &mut TestRng) -> String {
        let (lo, hi) = parse_repeat(self).unwrap_or((0, 16));
        let len = lo + rng.below((hi - lo + 1) as u128) as usize;
        (0..len)
            .map(|_| {
                let roll = rng.below(100) as usize;
                if roll < 90 {
                    // printable ASCII: 0x20..=0x7E
                    char::from(0x20 + rng.below(0x5F) as u8)
                } else {
                    PRINTABLE_EXTRAS[rng.below(PRINTABLE_EXTRAS.len() as u128) as usize]
                }
            })
            .collect()
    }
}

fn parse_repeat(pattern: &str) -> Option<(usize, usize)> {
    let open = pattern.rfind('{')?;
    let close = pattern.rfind('}')?;
    let body = pattern.get(open + 1..close)?;
    let (lo, hi) = body.split_once(',')?;
    Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cases = $crate::cases();
                let mut rng = $crate::TestRng::for_test(stringify!($name));
                for _case in 0..cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                    $body
                }
            }
        )*
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_ne!($left, $right, $($fmt)+) };
}

pub mod prelude {
    pub use crate::{any, Arbitrary, BoxedStrategy, Just, Strategy, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_per_test_name() {
        let mut a = TestRng::for_test("alpha");
        let mut b = TestRng::for_test("alpha");
        let mut c = TestRng::for_test("beta");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::seeded(7);
        for _ in 0..2_000 {
            let v = Strategy::generate(&(3usize..9), &mut rng);
            assert!((3..9).contains(&v));
            let w = Strategy::generate(&(1u8..=255), &mut rng);
            assert!(w >= 1);
            let f = Strategy::generate(&(-1.5f64..2.5), &mut rng);
            assert!((-1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn string_pattern_honours_repeat_bounds() {
        let mut rng = TestRng::seeded(11);
        for _ in 0..500 {
            let s = Strategy::generate(&"\\PC{0,300}", &mut rng);
            assert!(s.chars().count() <= 300);
            assert!(s.chars().all(|c| !c.is_control()));
        }
    }

    proptest! {
        #[test]
        fn macro_round_trip(xs in crate::collection::vec(0u64..100, 1..20), flag in any::<bool>()) {
            prop_assert!(!xs.is_empty());
            prop_assert!(xs.iter().all(|&x| x < 100));
            let _ = flag;
        }
    }
}
