//! Offline stand-in for `serde`.
//!
//! Exposes the two trait names and the derive macros under the paths the
//! workspace imports (`use serde::{Deserialize, Serialize}`). The derives
//! expand to nothing and the traits are blanket-implemented markers: the
//! workspace never serializes through serde (persistence uses its own
//! binary format), it only decorates types for future use.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}
