//! Offline stand-in for the `bytes` crate.
//!
//! Implements the subset CoReDA uses for wire frames and policy blobs:
//! `BytesMut` as a growable big-endian writer, `Bytes` as a cheap
//! reference-counted immutable view, `Buf` as a cursor over `&[u8]`,
//! and `BufMut` for the `put_*` writers. All multi-byte integers are
//! big-endian, matching the real crate's `put_u16`/`get_u16` family.

use std::ops::Deref;
use std::sync::Arc;

/// Immutable, cheaply cloneable byte buffer.
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    pub fn new() -> Self {
        Self { data: Arc::from(&[][..]) }
    }

    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self { data: Arc::from(data) }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Self { data: Arc::from(v.into_boxed_slice()) }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Self::copy_from_slice(v)
    }
}

/// Growable byte buffer with big-endian `put_*` writers.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        Self { data: Vec::new() }
    }

    pub fn with_capacity(capacity: usize) -> Self {
        Self { data: Vec::with_capacity(capacity) }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// Read cursor over a byte source. Implemented for `&[u8]`, which
/// advances the slice itself — `let mut buf: &[u8] = ...; buf.get_u8()`.
pub trait Buf {
    fn remaining(&self) -> usize;

    fn chunk(&self) -> &[u8];

    fn advance(&mut self, cnt: usize);

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    fn get_u16(&mut self) -> u16 {
        let mut raw = [0u8; 2];
        raw.copy_from_slice(&self.chunk()[..2]);
        self.advance(2);
        u16::from_be_bytes(raw)
    }

    fn get_u32(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        raw.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_be_bytes(raw)
    }

    fn get_u64(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_be_bytes(raw)
    }

    fn get_f64(&mut self) -> f64 {
        f64::from_bits(self.get_u64())
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

/// Append-only writer with big-endian `put_*` methods.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_big_endian() {
        let mut w = BytesMut::with_capacity(32);
        w.put_u8(0xAB);
        w.put_u16(0x1234);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(0x0102_0304_0506_0708);
        w.put_f64(-1.5);
        let frozen = w.freeze();
        assert_eq!(frozen.len(), 1 + 2 + 4 + 8 + 8);
        assert_eq!(frozen[1..3], [0x12, 0x34]);

        let mut r: &[u8] = &frozen;
        assert_eq!(r.get_u8(), 0xAB);
        assert_eq!(r.get_u16(), 0x1234);
        assert_eq!(r.get_u32(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64(), 0x0102_0304_0506_0708);
        assert_eq!(r.get_f64(), -1.5);
        assert!(!r.has_remaining());
    }

    #[test]
    fn clone_is_cheap_view() {
        let b = Bytes::from(vec![1, 2, 3]);
        let c = b.clone();
        assert_eq!(&*b, &*c);
        assert_eq!(b.to_vec(), vec![1, 2, 3]);
    }
}
