//! Offline stand-in for `criterion`.
//!
//! A lightweight timing harness exposing the API surface the workspace
//! benches use: `black_box`, `Criterion::benchmark_group`,
//! `BenchmarkGroup::{sample_size, bench_function, finish}`,
//! `Bencher::iter`, and the `criterion_group!`/`criterion_main!` macros.
//!
//! Each benchmark is calibrated to a short fixed measurement window and
//! reports median/mean ns-per-iteration to stdout. There is no statistical
//! analysis, plotting, or HTML report — just honest wall-clock numbers so
//! `cargo bench` works in an offline build.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

const TARGET_SAMPLE_TIME: Duration = Duration::from_millis(40);
const DEFAULT_SAMPLES: usize = 10;

#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\ngroup: {name}");
        BenchmarkGroup { _parent: self, samples: DEFAULT_SAMPLES }
    }

    pub fn bench_function<F>(&mut self, name: &str, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, DEFAULT_SAMPLES, f);
    }

    pub fn final_summary(&mut self) {}
}

pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    samples: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(2);
        self
    }

    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, self.samples, f);
        self
    }

    pub fn finish(self) {}
}

fn run_benchmark<F>(name: &str, samples: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher { iters: 1, elapsed: Duration::ZERO };

    // Calibrate: grow the iteration count until one sample takes long
    // enough to measure reliably.
    loop {
        bencher.elapsed = Duration::ZERO;
        f(&mut bencher);
        if bencher.elapsed >= TARGET_SAMPLE_TIME || bencher.iters >= 1 << 24 {
            break;
        }
        let grow = if bencher.elapsed.is_zero() {
            16.0
        } else {
            let ratio = TARGET_SAMPLE_TIME.as_secs_f64() / bencher.elapsed.as_secs_f64();
            ratio.clamp(1.5, 16.0)
        } as u64;
        bencher.iters = (bencher.iters * grow.max(2)).min(1 << 24);
    }

    let mut per_iter: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        bencher.elapsed = Duration::ZERO;
        f(&mut bencher);
        per_iter.push(bencher.elapsed.as_secs_f64() * 1e9 / bencher.iters as f64);
    }
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter[per_iter.len() / 2];
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    println!("  {name:<40} median {median:>12.1} ns/iter  mean {mean:>12.1} ns/iter  ({} iters/sample)", bencher.iters);
}

pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_times_something() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("selftest");
        group.sample_size(3);
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.finish();
    }
}
