//! Offline stand-in for `serde_derive`.
//!
//! The build environment has no registry access, so the real proc-macro
//! crate cannot be fetched. CoReDA only decorates types with
//! `#[derive(Serialize, Deserialize)]` — nothing in the workspace calls a
//! serde serializer — so the derives can expand to nothing. The real
//! crates drop back in by flipping the `vendor/` paths in the workspace
//! manifest.

use proc_macro::TokenStream;

/// No-op `Serialize` derive.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
