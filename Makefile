# Convenience targets for the CoReDA reproduction.

.PHONY: all build test bench bench-fleet bench-scale ci fuzz doc clippy examples repro clean

all: build test

build:
	cargo build --workspace

test:
	cargo test --workspace

bench:
	cargo bench --workspace

# Fleet-engine throughput at 1/2/4/8 workers; writes BENCH_fleet.json.
bench-fleet:
	cargo bench -p coreda-bench --bench fleet_micro

# Metro-scale serving grid (100/1k/10k/100k homes), the timing-wheel vs
# binary-heap engine duel, the epoch-tiled vs strict scheduling duel at
# the 100k cache cliff, and snapshot encode/restore throughput for a
# 1k-home checkpoint; writes BENCH_scale.json (release builds only).
bench-scale:
	cargo bench -p coreda-bench --bench scale_micro

# The tier-1 gate: release build, full test suite, the determinism
# regressions (parallel sweeps, metro serving, and flight-recorder
# telemetry byte-identical to serial; timing wheel byte-identical to the
# heap queue), the checkpoint/resume equivalence suite (full snapshots
# AND delta-chain + write-ahead-log resume, bit-identical at any
# cadence/jobs/engine), the wire-format fixture replay, the
# trace-summary golden, doc and clippy lints, a fixed-seed
# simulation-testing fuzz budget (plus a second budget with
# checkpoint-kill-resume faults injected into every plan — each kill
# exercises the delta codec, torn-WAL recovery and the compaction path;
# the harness logs every wake to its WAL by construction), the DST
# regression corpus replay (including kill-mid-compaction), a 100k-home
# arena smoke serve, and the bench-regression gate: fresh 10k-home
# throughput within 10 % of the committed BENCH_scale.json figure, the
# committed telemetry overhead under 12 %, and — deterministically, by
# byte count — the steady-state 1k-home delta checkpoint no larger than
# 15 % of a full snapshot. The online serving front end gates too: the
# serve≡batch differential (report, telemetry, and delivery log
# byte-identical across jobs 1↔8 and wheel↔heap), the wire-codec
# proptests (every single-bit flip, truncation and foreign version of
# every frame kind rejected), the loadgen report goldens (including the
# explicit zero-deliveries body), a served-path fuzz budget (transport
# fault plans through the real wire), and a 1k-home load-generator
# smoke under the sim clock. The caregiver escalation overlay gates
# alongside: the escalation_consistency suite (escalation logs
# byte-identical across jobs 1↔8, wheel↔heap, and served≡batch), a
# care-path fuzz budget drawing caregiver-outage fault plans against
# the escalation_consistency oracle, and — via bench_check — the
# committed care-overlay overhead under 5 %. Epoch-tiled wake
# scheduling gates through the locality_equivalence differential
# (epoch ≡ strict down to WAL bytes, telemetry JSONL, care logs and
# the served wire outcome, across jobs and engines, with sched-
# agnostic checkpoints), the drain_until proptests riding the des
# suite, the 100k-home smoke serve (epoch-tiled by default), and
# bench_check's 100k-home throughput floor next to the 10k one.
ci:
	cargo build --release
	cargo test -q
	cargo test -q --test fleet_determinism
	cargo test -q --test scale_determinism
	cargo test -q --test checkpoint_equivalence
	cargo test -q --test serve_equivalence
	cargo test -q --test escalation_consistency
	cargo test -q --test locality_equivalence
	cargo test -q --test loadgen_report
	cargo test -q --test wire_format
	cargo test -q --test trace_summary
	cargo test -q -p coreda-des --test proptests
	cargo test -q -p coreda-serve --test proptests
	cargo doc --workspace --no-deps
	cargo clippy --workspace --all-targets -- -D warnings
	cargo run --release -p coreda-cli -- fuzz --seconds 30 --seed 2007
	cargo run --release -p coreda-cli -- fuzz --seconds 15 --seed 2008 --kill-resume true
	cargo run --release -p coreda-cli -- fuzz --seconds 15 --seed 2009 --served true
	cargo run --release -p coreda-cli -- fuzz --seconds 15 --seed 2010 --care true
	cargo run --release -p coreda-cli -- replay --dir tests/corpus
	cargo run --release -p coreda-cli -- scale --homes 100000 --hours 0.1 --seed 2007
	cargo run --release -p coreda-cli -- loadgen --homes 1000 --hours 0.1 --seed 2007
	cargo run --release -p coreda-bench --bin bench_check

# Longer fuzzing session under a fresh seed; violations shrink to
# .seed.json repros under fuzz-out/ for triage and corpus promotion.
# The second budget fuzzes the served ingestion path: transport fault
# plans (duplicated / reordered / delayed frames, mid-session hangups)
# through the real wire codec, checked against batch on both engines.
# The third fuzzes the caregiver escalation overlay: caregiver-outage
# plans against the escalation_consistency oracle.
fuzz:
	cargo run --release -p coreda-cli -- fuzz --seconds 300 --seed $$(date +%s) --out fuzz-out
	cargo run --release -p coreda-cli -- fuzz --seconds 120 --seed $$(date +%s) --served true --out fuzz-out
	cargo run --release -p coreda-cli -- fuzz --seconds 120 --seed $$(date +%s) --care true --out fuzz-out

doc:
	cargo doc --workspace --no-deps

clippy:
	cargo clippy --workspace --all-targets

examples:
	for ex in quickstart tea_making tooth_brushing custom_adl multi_routine smart_home year_in_the_life; do \
		cargo run --release --example $$ex; \
	done

# Regenerate every table and figure of the paper plus the extended studies.
repro:
	cargo run --release -p coreda-bench --bin repro_table3
	cargo run --release -p coreda-bench --bin repro_fig4
	cargo run --release -p coreda-bench --bin repro_table4
	cargo run --release -p coreda-bench --bin repro_fig1
	cargo run --release -p coreda-bench --bin repro_ablation
	cargo run --release -p coreda-bench --bin repro_baselines
	cargo run --release -p coreda-bench --bin repro_radio_loss
	cargo run --release -p coreda-bench --bin repro_adaptation
	cargo run --release -p coreda-bench --bin repro_energy
	cargo run --release -p coreda-bench --bin repro_burden
	cargo run --release -p coreda-bench --bin repro_contention

clean:
	cargo clean
