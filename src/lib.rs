//! # CoReDA — a Context-aware Reminding system for Daily Activities
//!
//! A from-scratch Rust reproduction of *"A Context-aware Reminding System
//! for Daily Activities of Dementia Patients"* (Si, Kim, Kawanishi,
//! Morikawa — ICDCS 2007 workshops), including every substrate the paper
//! relied on: the PAVENET wireless sensor motes, a synthetic replacement
//! for the physical sensors and the human subject, and the slice of "RL
//! Toolbox 2.0" the planner needs.
//!
//! This facade crate re-exports the workspace members:
//!
//! | Crate | Contents |
//! |---|---|
//! | [`des`] | deterministic discrete-event simulation kernel |
//! | [`sensornet`] | PAVENET node model, signals, detection, radio, network |
//! | [`rl`] | tabular RL toolbox (Q-learning, SARSA, TD(λ), Dyna-Q) |
//! | [`adl`] | activities, tools, routines, patient behaviour |
//! | [`core`] | the CoReDA system: sensing + planning + reminding |
//! | [`serve`] | online serving: wire protocol, ingestion loop, load generator |
//! | [`testkit`] | deterministic simulation testing: fault plans, oracles, shrinking |
//!
//! # Quick start
//!
//! ```
//! use coreda::prelude::*;
//!
//! // 1. Pick an activity and the user's personal routine.
//! let tea = catalog::tea_making();
//! let routine = Routine::canonical(&tea);
//!
//! // 2. Let CoReDA learn the routine from recorded episodes.
//! let mut system = Coreda::new(tea, "Mr. Tanaka", CoredaConfig::default(), 2007);
//! let mut rng = SimRng::seed_from(1);
//! for _ in 0..150 {
//!     system.planner_mut().train_episode(routine.steps(), &mut rng);
//! }
//!
//! // 3. Run a live episode: a patient who freezes mid-activity gets
//! //    prompted and finishes.
//! let mut behavior = StochasticBehavior::new(PatientProfile::moderate("Mr. Tanaka"));
//! let log = system.run_live(&routine, &mut behavior, &mut rng);
//! assert!(log.completed_at().is_some());
//! ```

#![warn(missing_docs)]

pub use coreda_adl as adl;
pub use coreda_core as core;
pub use coreda_des as des;
pub use coreda_rl as rl;
pub use coreda_sensornet as sensornet;
pub use coreda_serve as serve;
pub use coreda_testkit as testkit;

/// One-stop imports for applications built on CoReDA.
pub mod prelude {
    pub use coreda_adl::activity::{catalog, AdlSpec};
    pub use coreda_adl::episode::{Episode, EpisodeGenerator};
    pub use coreda_adl::patient::{PatientAction, PatientProfile};
    pub use coreda_adl::routine::{Routine, RoutineSet};
    pub use coreda_adl::step::{Step, StepId};
    pub use coreda_adl::tool::{Tool, ToolId};
    pub use coreda_core::baseline::{CanonicalReminder, MdpPlanner, NextStepPredictor};
    pub use coreda_core::home::{CoredaHome, HomeError};
    pub use coreda_core::live::{
        EpisodeLog, LogKind, PatientBehavior, ScriptedBehavior, StochasticBehavior,
    };
    pub use coreda_core::planning::{LearnerKind, PlanningConfig, PlanningSubsystem, RewardConfig};
    pub use coreda_core::reminding::{
        Prompt, Reminder, ReminderLevel, ReminderMethod, RemindingSubsystem, Trigger,
    };
    pub use coreda_core::persistence;
    pub use coreda_core::scenario;
    pub use coreda_core::sensing::SensingSubsystem;
    pub use coreda_core::system::{Coreda, CoredaConfig};
    pub use coreda_des::rng::SimRng;
    pub use coreda_des::time::{SimDuration, SimTime};
    pub use coreda_sensornet::detect::{Detector, Thresholds};
    pub use coreda_sensornet::network::{LinkConfig, StarNetwork};
    pub use coreda_sensornet::node::{NodeId, PavenetNode};
    pub use coreda_sensornet::radio::LossModel;
    pub use coreda_sensornet::signal::SignalModel;
}
