//! The fuzz driver: expand seeds into plans, check them under a
//! wall-clock budget, shrink what fires, and write `.seed.json` repros.
//!
//! Plan `i` of a campaign is always `derive_seed(campaign_seed, "plan",
//! i)` — the stream of plans is fixed by the campaign seed; the wall
//! clock only decides how far down the stream the run gets. Every plan
//! runs on both engines with all oracles attached ([`Harness::check`]),
//! and passing plans accumulate into batches that re-run through the
//! fleet engine at `jobs > 1` for the jobs-equivalence differential.

use std::io::Write as _;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use coreda_core::fleet::{derive_seed, FleetEngine};
use coreda_core::metro::EngineKind;
use coreda_core::telemetry::Telemetry;

use crate::harness::{Harness, RunResult};
use crate::json;
use crate::plan::FaultPlan;
use crate::shrink;

/// Passing plans per jobs-differential batch: big enough that the
/// parallel re-run amortises thread startup, small enough that a
/// divergence is localised to a handful of seeds.
pub const JOBS_BATCH: usize = 16;

/// A fuzz campaign's knobs.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Wall-clock budget in seconds.
    pub seconds: u64,
    /// Campaign seed; every plan seed derives from it.
    pub seed: u64,
    /// Worker count for the jobs-equivalence differential.
    pub jobs: usize,
    /// Where to write shrunken `.seed.json` repros (`None` = don't).
    pub out_dir: Option<PathBuf>,
    /// Where to write flight-record `.trace.jsonl` dumps for violations
    /// (`None` = next to the repros in `out_dir`).
    pub trace_dir: Option<PathBuf>,
    /// Hard cap on plans regardless of remaining budget.
    pub max_plans: usize,
    /// Layer a [`FaultPlan::with_kill_resume`] process death onto every
    /// generated plan, so each run also exercises the durability codecs
    /// — the full checkpoint on the first death, the incremental delta
    /// codec on later deaths, and a write-ahead log torn mid-chunk every
    /// time — plus the `resume_equivalence` oracle against its ghost.
    pub kill_resume: bool,
    /// Fuzz the served ingestion path instead of the in-process
    /// pipeline: plans come from [`FaultPlan::generate_served`] (wire
    /// transport faults only) and run through
    /// [`crate::served::check_served`], whose differential already spans
    /// both engines and two worker counts — so served campaigns skip the
    /// separate jobs batch.
    pub served: bool,
    /// Fuzz the caregiver escalation overlay: plans come from
    /// [`FaultPlan::generate_care`] (caregiver no-ack outage windows)
    /// and run through [`crate::care::check_care`], whose
    /// `escalation_consistency` differential spans both engines, two
    /// worker counts, and the served path — so care campaigns also skip
    /// the separate jobs batch.
    pub care: bool,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            seconds: 60,
            seed: 2007,
            jobs: 3,
            out_dir: None,
            trace_dir: None,
            max_plans: usize::MAX,
            kill_resume: false,
            served: false,
            care: false,
        }
    }
}

/// One violation the campaign found, already shrunk.
#[derive(Debug, Clone)]
pub struct FoundViolation {
    /// Seed of the originally generated plan.
    pub plan_seed: u64,
    /// Name of the oracle that fired.
    pub oracle: String,
    /// The oracle's account of the failure.
    pub detail: String,
    /// Minimal reproducing plan (`expect_violation` filled in).
    pub shrunk: FaultPlan,
    /// Deterministic re-runs the shrink spent.
    pub shrink_runs: usize,
    /// Where the repro was written, when `out_dir` was set.
    pub file: Option<PathBuf>,
    /// Where the flight record was written, when `out_dir` was set: a
    /// JSONL dump of the shrunk plan re-run with the recorder on, whose
    /// last trace events lead straight up to the violation.
    pub trace_file: Option<PathBuf>,
}

/// Campaign summary.
#[derive(Debug, Clone, Default)]
pub struct FuzzReport {
    /// Campaign seed.
    pub seed: u64,
    /// Distinct fault plans checked.
    pub plans_run: usize,
    /// Plans re-run through the parallel jobs differential.
    pub jobs_checked: usize,
    /// Violations found (shrunk, in discovery order).
    pub violations: Vec<FoundViolation>,
    /// Wall-clock time spent.
    pub elapsed: Duration,
}

impl FuzzReport {
    /// Whether the campaign is clean.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }

    /// Human-readable summary for the CLI.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "fuzz: seed {seed}, {n} plans in {secs:.1}s ({rate:.1}/s), \
             {jobs} jobs-differential re-runs\n",
            seed = self.seed,
            n = self.plans_run,
            secs = self.elapsed.as_secs_f64(),
            rate = self.plans_run as f64 / self.elapsed.as_secs_f64().max(1e-9),
            jobs = self.jobs_checked,
        ));
        if self.passed() {
            out.push_str("fuzz: no oracle violations\n");
        } else {
            out.push_str(&format!("fuzz: {} VIOLATION(S)\n", self.violations.len()));
            for v in &self.violations {
                out.push_str(&format!(
                    "  [{oracle}] plan seed {seed}: {detail}\n    shrunk to {n} fault(s) over \
                     {horizon} ms in {runs} runs{file}\n",
                    oracle = v.oracle,
                    seed = v.plan_seed,
                    detail = v.detail,
                    n = v.shrunk.faults.len(),
                    horizon = v.shrunk.horizon_ms,
                    runs = v.shrink_runs,
                    file = v
                        .file
                        .as_ref()
                        .map(|p| format!(" -> {}", p.display()))
                        .unwrap_or_default(),
                ));
                if let Some(trace) = &v.trace_file {
                    out.push_str(&format!("    flight record -> {}\n", trace.display()));
                }
            }
        }
        out
    }
}

/// Runs a campaign on a freshly built [`Harness`].
///
/// # Errors
///
/// Only I/O errors from writing repro files; simulation itself cannot
/// fail.
pub fn fuzz(cfg: &FuzzConfig) -> std::io::Result<FuzzReport> {
    fuzz_with(&Harness::new(), cfg)
}

/// Runs a campaign on an existing harness (reuses the trained planners).
///
/// # Errors
///
/// Only I/O errors from writing repro files.
pub fn fuzz_with(harness: &Harness, cfg: &FuzzConfig) -> std::io::Result<FuzzReport> {
    let start = Instant::now();
    let budget = Duration::from_secs(cfg.seconds);
    let engine = FleetEngine::new(cfg.jobs);
    let mut report = FuzzReport { seed: cfg.seed, ..FuzzReport::default() };
    let mut batch: Vec<(FaultPlan, RunResult)> = Vec::new();

    let mut index = 0u64;
    while start.elapsed() < budget && report.plans_run < cfg.max_plans {
        let plan_seed = derive_seed(cfg.seed, "plan", index);
        index += 1;
        if cfg.served {
            let plan = FaultPlan::generate_served(plan_seed);
            let violations = crate::served::check_served(&plan);
            report.plans_run += 1;
            for violation in violations {
                record_violation(harness, cfg, &mut report, plan_seed, &plan, &violation)?;
            }
            continue;
        }
        if cfg.care {
            let plan = FaultPlan::generate_care(plan_seed);
            let violations = crate::care::check_care(&plan);
            report.plans_run += 1;
            for violation in violations {
                record_violation(harness, cfg, &mut report, plan_seed, &plan, &violation)?;
            }
            continue;
        }
        let mut plan = FaultPlan::generate(plan_seed, harness.tool_ids());
        if cfg.kill_resume {
            plan = plan.with_kill_resume();
        }
        let outcome = harness.check(&plan);
        report.plans_run += 1;
        if outcome.violations.is_empty() {
            batch.push((plan, outcome.wheel));
            if batch.len() >= JOBS_BATCH {
                flush_jobs_batch(harness, &engine, &mut batch, cfg, &mut report)?;
            }
        } else {
            for violation in outcome.violations {
                record_violation(harness, cfg, &mut report, plan_seed, &plan, &violation)?;
            }
        }
    }
    flush_jobs_batch(harness, &engine, &mut batch, cfg, &mut report)?;
    report.elapsed = start.elapsed();
    Ok(report)
}

/// Re-runs the batched plans at `jobs > 1` and checks the differential.
fn flush_jobs_batch(
    harness: &Harness,
    engine: &FleetEngine,
    batch: &mut Vec<(FaultPlan, RunResult)>,
    cfg: &FuzzConfig,
    report: &mut FuzzReport,
) -> std::io::Result<()> {
    if batch.is_empty() {
        return Ok(());
    }
    let drained: Vec<(FaultPlan, RunResult)> = std::mem::take(batch);
    let (plans, serial): (Vec<FaultPlan>, Vec<RunResult>) = drained.into_iter().unzip();
    let parallel = engine.map(plans.clone(), |plan| harness.run(&plan, EngineKind::Wheel));
    report.jobs_checked += plans.len();
    if let Some(violation) = crate::oracles::check_jobs(&serial, &parallel) {
        // Attribute the divergence to the first differing plan so the
        // repro is a single seed, not the whole batch.
        let culprit = serial
            .iter()
            .zip(&parallel)
            .position(|(s, p)| s != p)
            .unwrap_or(0);
        let plan = &plans[culprit];
        record_violation(harness, cfg, report, plan.seed, plan, &violation)?;
    }
    Ok(())
}

fn record_violation(
    harness: &Harness,
    cfg: &FuzzConfig,
    report: &mut FuzzReport,
    plan_seed: u64,
    plan: &FaultPlan,
    violation: &crate::oracles::Violation,
) -> std::io::Result<()> {
    // Served plans shrink through the served differential and care
    // plans through the escalation one; the in-process harness cannot
    // reproduce a wire-level or caregiver-channel fault.
    let shrunk = if plan.has_care_faults() {
        shrink::shrink_with(crate::care::check_care, plan, violation.oracle)
    } else if plan.has_frame_faults() {
        shrink::shrink_with(crate::served::check_served, plan, violation.oracle)
    } else {
        shrink::shrink(harness, plan, violation.oracle)
    };
    let file = match &cfg.out_dir {
        Some(dir) => {
            std::fs::create_dir_all(dir)?;
            let path = dir.join(format!("{}-{plan_seed:016x}.seed.json", violation.oracle));
            let mut f = std::fs::File::create(&path)?;
            f.write_all(json::to_json(&shrunk.plan).as_bytes())?;
            Some(path)
        }
        None => None,
    };
    // Flight record: re-run the shrunk plan with the recorder on
    // (bit-identical to the violating run — recording draws no
    // randomness) and dump it next to the repro. The ring's last events
    // are the pipeline activity leading up to the violation.
    // No flight record for served or care plans: the recorder rides the
    // in-process drive loop, which neither repro path touches.
    let trace_file = match cfg.trace_dir.as_ref().or(cfg.out_dir.as_ref()) {
        Some(_) if plan.has_frame_faults() || plan.has_care_faults() => None,
        Some(dir) => {
            std::fs::create_dir_all(dir)?;
            let (_, rec) = harness.run_recorded(&shrunk.plan, EngineKind::Wheel);
            let telemetry = Telemetry { homes: vec![rec], ..Telemetry::default() };
            let trace_path =
                dir.join(format!("{}-{plan_seed:016x}.trace.jsonl", violation.oracle));
            let mut tf = std::fs::File::create(&trace_path)?;
            tf.write_all(telemetry.to_jsonl().as_bytes())?;
            Some(trace_path)
        }
        None => None,
    };
    report.violations.push(FoundViolation {
        plan_seed,
        oracle: violation.oracle.to_owned(),
        detail: violation.detail.clone(),
        shrunk: shrunk.plan,
        shrink_runs: shrunk.runs,
        file,
        trace_file,
    });
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campaign_runs_and_counts_plans() {
        let harness = Harness::new();
        let cfg = FuzzConfig { seconds: 600, max_plans: 3, jobs: 2, ..FuzzConfig::default() };
        let report = fuzz_with(&harness, &cfg).unwrap();
        assert_eq!(report.plans_run, 3);
        // Every passing plan must have gone through the jobs differential.
        assert!(report.jobs_checked <= report.plans_run);
        if report.passed() {
            assert_eq!(report.jobs_checked, report.plans_run, "{report:?}");
        }
        assert!(report.render().contains("3 plans"));
    }

    #[test]
    fn violations_dump_an_explanatory_flight_record() {
        let harness = Harness::new();
        let dir = std::env::temp_dir()
            .join(format!("coreda-fuzz-trace-test-{}", std::process::id()));
        let cfg = FuzzConfig { out_dir: Some(dir.clone()), ..FuzzConfig::default() };
        let plan = FaultPlan::generate(derive_seed(cfg.seed, "plan", 0), harness.tool_ids());
        let violation = crate::oracles::Violation {
            oracle: "synthetic",
            detail: "forced for the dump test".to_owned(),
        };
        let mut report = FuzzReport::default();
        record_violation(&harness, &cfg, &mut report, plan.seed, &plan, &violation).unwrap();
        let found = &report.violations[0];
        let trace_path = found.trace_file.as_ref().expect("flight record written");
        let jsonl = std::fs::read_to_string(trace_path).unwrap();
        assert!(jsonl.lines().count() >= 2, "summary line + home line: {jsonl}");
        assert!(jsonl.contains("\"kind\":\"summary\""), "{jsonl}");
        assert!(jsonl.contains("\"events\""), "per-home trace events: {jsonl}");
        assert!(
            jsonl.contains("episode_started"),
            "ring should hold pipeline events leading to the violation: {jsonl}"
        );
        assert!(report.render().contains("flight record"), "{}", report.render());
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn plan_stream_is_seed_deterministic() {
        let harness = Harness::new();
        let first = FaultPlan::generate(derive_seed(99, "plan", 0), harness.tool_ids());
        let again = FaultPlan::generate(derive_seed(99, "plan", 0), harness.tool_ids());
        assert_eq!(first, again);
    }
}
