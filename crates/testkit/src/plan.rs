//! Fault plans: the single vocabulary of everything the harness can
//! break, with timed activation windows.
//!
//! A plan is pure data derived from a seed — running the same plan twice
//! is bit-identical, which is what makes shrinking and `.seed.json`
//! replay possible.

use coreda_des::rng::SimRng;
use coreda_sensornet::network::LinkConfig;
use coreda_sensornet::radio::LossModel;

/// The serving pipeline's tick, mirrored here so plan windows can be
/// reasoned about on the same 100 ms grid.
pub const TICK_MS: u64 = 100;

/// One kind of injectable fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// Every radio link switches to `model` for the window (burst noise,
    /// microwave interference, a metal pot on the antenna...).
    RadioLoss {
        /// Loss process during the window.
        model: LossModel,
        /// ARQ retransmission budget during the window.
        max_retries: u8,
    },
    /// The node strapped to `tool` crashes at the window start and
    /// reboots at its end.
    NodeCrash {
        /// Raw tool id (= PAVENET uid).
        tool: u16,
    },
    /// The sensor on `tool` mis-detects: spurious use while idle
    /// (`false_positive`) and missed use while active (`false_negative`).
    SensorFlip {
        /// Raw tool id.
        tool: u16,
        /// P(report "in use" per sample while the tool is idle).
        false_positive: f64,
        /// P(report "idle" per sample while the tool is in use).
        false_negative: f64,
    },
    /// The node on `tool` stamps its reports with a skewed clock.
    ClockSkew {
        /// Raw tool id.
        tool: u16,
        /// Offset added to the node's report timestamps.
        skew_ms: i64,
    },
    /// The patient ignores every prompt during the window.
    NonCompliance,
    /// The patient's lapses spike: elevated freeze and wrong-tool rates
    /// at step boundaries (a bad day, paper §2.2's severe profile).
    SevereLapses,
    /// During the window the patient's routine permutes: steps `swap_a`
    /// and `swap_b` (mod routine length) trade places — even in the
    /// middle of a running episode.
    RoutineDrift {
        /// First swapped position.
        swap_a: u8,
        /// Second swapped position.
        swap_b: u8,
    },
    /// The serving process dies at the window start (`from_ms`): the
    /// home's complete state round-trips through the binary checkpoint
    /// codec, the event queue is lost, and a freshly rebuilt home
    /// resumes from the decoded snapshot. The window end is ignored — a
    /// kill is an instant, not an interval. Not drawn by
    /// [`FaultPlan::generate`]; injected via
    /// [`FaultPlan::with_kill_resume`] or written by hand.
    CheckpointKillResume,
    /// Served-path transport fault: every client's `Report` frames whose
    /// watermark falls in the window are sent twice. Like
    /// [`FaultKind::CheckpointKillResume`], never drawn by
    /// [`FaultPlan::generate`]; served plans come from
    /// [`FaultPlan::generate_served`] or are written by hand.
    FrameDup,
    /// Served-path transport fault: adjacent `Report` frames in the
    /// window arrive in inverted order.
    FrameReorder,
    /// Served-path transport fault: `Report` frames in the window are
    /// held one flush and arrive after the wake they were for.
    FrameDelay,
    /// Served-path transport fault: one seed-derived home's client hangs
    /// up at the window start (the window end is ignored — a hangup is
    /// an instant). The home freezes; every other home must be
    /// untouched.
    FrameDisconnect,
    /// Caregiver-channel fault: the caregiver answers no escalation
    /// whose acknowledgment falls due inside the window — the ack slips
    /// to the window end plus the severity's delay. Pure policy input
    /// (`CarePolicy::no_ack_windows`), so faulted runs stay
    /// deterministic. Never drawn by [`FaultPlan::generate`]; care
    /// plans come from [`FaultPlan::generate_care`].
    CaregiverNoAck,
}

impl FaultKind {
    /// Short stable name (file names, shrink logs).
    #[must_use]
    pub const fn name(&self) -> &'static str {
        match self {
            FaultKind::RadioLoss { .. } => "radio_loss",
            FaultKind::NodeCrash { .. } => "node_crash",
            FaultKind::SensorFlip { .. } => "sensor_flip",
            FaultKind::ClockSkew { .. } => "clock_skew",
            FaultKind::NonCompliance => "non_compliance",
            FaultKind::SevereLapses => "severe_lapses",
            FaultKind::RoutineDrift { .. } => "routine_drift",
            FaultKind::CheckpointKillResume => "checkpoint_kill_resume",
            FaultKind::FrameDup => "frame_dup",
            FaultKind::FrameReorder => "frame_reorder",
            FaultKind::FrameDelay => "frame_delay",
            FaultKind::FrameDisconnect => "frame_disconnect",
            FaultKind::CaregiverNoAck => "caregiver_no_ack",
        }
    }

    /// Whether this is a served-path transport fault — the kinds the
    /// wire-level [`FaultPlan::generate_served`] plans are made of and
    /// the in-process pipeline never sees.
    #[must_use]
    pub const fn is_frame_fault(&self) -> bool {
        matches!(
            self,
            FaultKind::FrameDup
                | FaultKind::FrameReorder
                | FaultKind::FrameDelay
                | FaultKind::FrameDisconnect
        )
    }

    /// Whether this is a caregiver-channel fault — the kinds the
    /// escalation campaign's [`FaultPlan::generate_care`] plans are made
    /// of, applied as policy input rather than injected into the
    /// pipeline or the wire.
    #[must_use]
    pub const fn is_care_fault(&self) -> bool {
        matches!(self, FaultKind::CaregiverNoAck)
    }

    /// The link-layer configuration a radio fault corresponds to; `None`
    /// for non-radio faults. Integration tests build their networks from
    /// this so the two fault vocabularies cannot drift apart.
    #[must_use]
    pub fn link_config(&self) -> Option<LinkConfig> {
        match *self {
            FaultKind::RadioLoss { model, max_retries } => {
                Some(LinkConfig { loss: model, max_retries, ..LinkConfig::default() })
            }
            _ => None,
        }
    }
}

/// A fault active over `[from_ms, to_ms)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fault {
    /// What breaks.
    pub kind: FaultKind,
    /// Window start (inclusive), ms of simulated time.
    pub from_ms: u64,
    /// Window end (exclusive), ms of simulated time.
    pub to_ms: u64,
}

impl Fault {
    /// Whether the window covers `now_ms`.
    #[must_use]
    pub const fn active_at(&self, now_ms: u64) -> bool {
        self.from_ms <= now_ms && now_ms < self.to_ms
    }

    /// Window length in ms.
    #[must_use]
    pub const fn window_ms(&self) -> u64 {
        self.to_ms.saturating_sub(self.from_ms)
    }
}

/// A complete deterministic test case: seed, horizon, fault windows, and
/// (for corpus entries) the oracle the plan is expected to trip.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for every random stream of the run (behavior, radios,
    /// episode scheduling). Independent of the faults.
    pub seed: u64,
    /// Simulated horizon in ms.
    pub horizon_ms: u64,
    /// Fault windows, applied in order.
    pub faults: Vec<Fault>,
    /// `Some(oracle_name)` for corpus entries that must reproduce a
    /// violation; `None` for plans expected to pass every oracle.
    pub expect_violation: Option<String>,
}

impl FaultPlan {
    /// Expands `seed` into a randomized plan over the given tool ids
    /// (raw PAVENET uids across every activity in the home).
    ///
    /// # Panics
    ///
    /// Panics if `tools` is empty.
    #[must_use]
    pub fn generate(seed: u64, tools: &[u16]) -> FaultPlan {
        assert!(!tools.is_empty(), "a fault plan needs at least one tool to target");
        let mut rng = SimRng::seed_from(seed).substream("fault-plan", 0);
        let horizon_ms = round_to_tick(rng.uniform_range(120_000.0, 480_000.0) as u64);
        let n_faults = 1 + (rng.uniform_range(0.0, 4.0) as usize).min(3);
        let faults = (0..n_faults).map(|_| generate_fault(&mut rng, tools, horizon_ms)).collect();
        FaultPlan { seed, horizon_ms, faults, expect_violation: None }
    }

    /// Adds a [`FaultKind::CheckpointKillResume`] at a seed-derived tick
    /// strictly inside the horizon, so a fuzz campaign exercises
    /// kill-and-resume on top of whatever else the plan breaks. The tick
    /// comes from its own substream — plans with and without the kill
    /// are otherwise identical, which is exactly what the
    /// `resume_equivalence` oracle compares.
    #[must_use]
    pub fn with_kill_resume(mut self) -> FaultPlan {
        let mut rng = SimRng::seed_from(self.seed).substream("kill-tick", 0);
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss, clippy::cast_precision_loss)]
        let at_ms =
            round_to_tick(rng.uniform_range(TICK_MS as f64, self.horizon_ms as f64 * 0.9) as u64);
        self.faults.push(Fault { kind: FaultKind::CheckpointKillResume, from_ms: at_ms, to_ms: at_ms });
        self
    }

    /// Expands `seed` into a served-path transport-fault plan: shorter
    /// horizons (three engines' worth of simulation per check) and only
    /// the wire-level [`FaultKind::is_frame_fault`] kinds. Disjoint from
    /// [`FaultPlan::generate`] — the in-process campaign never draws
    /// frame faults, and the served campaign never draws pipeline ones.
    #[must_use]
    pub fn generate_served(seed: u64) -> FaultPlan {
        let mut rng = SimRng::seed_from(seed).substream("served-plan", 0);
        let horizon_ms = round_to_tick(rng.uniform_range(60_000.0, 180_000.0) as u64);
        let n_faults = 1 + (rng.uniform_range(0.0, 3.0) as usize).min(2);
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let faults = (0..n_faults)
            .map(|_| {
                let from_ms = round_to_tick(rng.uniform_range(0.0, horizon_ms as f64 * 0.8) as u64);
                let len_ms = round_to_tick(rng.uniform_range(5_000.0, horizon_ms as f64 * 0.5) as u64);
                let to_ms = (from_ms + len_ms).min(horizon_ms);
                let kind = match (rng.uniform_range(0.0, 4.0) as usize).min(3) {
                    0 => FaultKind::FrameDup,
                    1 => FaultKind::FrameReorder,
                    2 => FaultKind::FrameDelay,
                    _ => FaultKind::FrameDisconnect,
                };
                Fault { kind, from_ms, to_ms }
            })
            .collect();
        FaultPlan { seed, horizon_ms, faults, expect_violation: None }
    }

    /// Expands `seed` into a caregiver-channel fault plan for the
    /// escalation campaign: outage windows during which no escalation is
    /// acknowledged, over horizons long enough for full raise → ack →
    /// resolve lifecycles. Disjoint from the other generators — pipeline
    /// and served campaigns never draw caregiver faults.
    #[must_use]
    pub fn generate_care(seed: u64) -> FaultPlan {
        let mut rng = SimRng::seed_from(seed).substream("care-plan", 0);
        let horizon_ms = round_to_tick(rng.uniform_range(120_000.0, 300_000.0) as u64);
        let n_faults = 1 + usize::from(rng.chance(0.5));
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let faults = (0..n_faults)
            .map(|_| {
                let from_ms = round_to_tick(rng.uniform_range(0.0, horizon_ms as f64 * 0.8) as u64);
                let len_ms =
                    round_to_tick(rng.uniform_range(5_000.0, horizon_ms as f64 * 0.4) as u64);
                Fault {
                    kind: FaultKind::CaregiverNoAck,
                    from_ms,
                    // Outage windows may outlive the horizon: an ack due
                    // near the end can slip past it and never happen.
                    to_ms: from_ms + len_ms,
                }
            })
            .collect();
        FaultPlan { seed, horizon_ms, faults, expect_violation: None }
    }

    /// Whether the plan targets the served ingestion path (routes
    /// replay and shrinking through the served harness).
    #[must_use]
    pub fn has_frame_faults(&self) -> bool {
        self.faults.iter().any(|f| f.kind.is_frame_fault())
    }

    /// Whether the plan carries caregiver-channel faults (routes replay
    /// and shrinking through the escalation differential).
    #[must_use]
    pub fn has_care_faults(&self) -> bool {
        self.faults.iter().any(|f| f.kind.is_care_fault())
    }

    /// All tool ids the plan's targeted faults touch.
    pub fn targeted_tools(&self) -> impl Iterator<Item = u16> + '_ {
        self.faults.iter().filter_map(|f| match f.kind {
            FaultKind::NodeCrash { tool }
            | FaultKind::SensorFlip { tool, .. }
            | FaultKind::ClockSkew { tool, .. } => Some(tool),
            _ => None,
        })
    }
}

fn round_to_tick(ms: u64) -> u64 {
    (ms / TICK_MS).max(1) * TICK_MS
}

#[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
fn generate_fault(rng: &mut SimRng, tools: &[u16], horizon_ms: u64) -> Fault {
    let from_ms = round_to_tick(rng.uniform_range(0.0, horizon_ms as f64 * 0.8) as u64);
    let len_ms = round_to_tick(rng.uniform_range(5_000.0, horizon_ms as f64 * 0.5) as u64);
    let to_ms = (from_ms + len_ms).min(horizon_ms);
    let tool = *rng.choose(tools);
    let kind = match (rng.uniform_range(0.0, 7.0) as usize).min(6) {
        0 => {
            let model = if rng.chance(0.5) {
                LossModel::Bernoulli { p: rng.uniform_range(0.1, 1.0) }
            } else {
                LossModel::GilbertElliott {
                    p_good_to_bad: rng.uniform_range(0.01, 0.2),
                    p_bad_to_good: rng.uniform_range(0.05, 0.5),
                    loss_good: rng.uniform_range(0.0, 0.1),
                    loss_bad: rng.uniform_range(0.5, 1.0),
                }
            };
            let max_retries = if rng.chance(0.2) { 1 } else { 3 };
            FaultKind::RadioLoss { model, max_retries }
        }
        1 => FaultKind::NodeCrash { tool },
        2 => FaultKind::SensorFlip {
            tool,
            false_positive: rng.uniform_range(0.0, 0.05),
            false_negative: rng.uniform_range(0.0, 0.6),
        },
        3 => FaultKind::ClockSkew {
            tool,
            skew_ms: rng.uniform_range(-30_000.0, 30_000.0) as i64,
        },
        4 => FaultKind::NonCompliance,
        5 => FaultKind::SevereLapses,
        _ => FaultKind::RoutineDrift {
            swap_a: rng.uniform_range(0.0, 8.0) as u8,
            swap_b: rng.uniform_range(0.0, 8.0) as u8,
        },
    };
    Fault { kind, from_ms, to_ms }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOOLS: &[u16] = &[3, 4, 5, 6];

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(FaultPlan::generate(42, TOOLS), FaultPlan::generate(42, TOOLS));
    }

    #[test]
    fn distinct_seeds_give_distinct_plans() {
        let plans: Vec<FaultPlan> = (0..50).map(|s| FaultPlan::generate(s, TOOLS)).collect();
        let first = &plans[0];
        assert!(plans.iter().any(|p| p.faults != first.faults));
    }

    #[test]
    fn windows_fit_the_horizon_and_grid() {
        for seed in 0..200 {
            let plan = FaultPlan::generate(seed, TOOLS);
            assert_eq!(plan.horizon_ms % TICK_MS, 0);
            assert!(!plan.faults.is_empty());
            for f in &plan.faults {
                assert!(f.from_ms <= f.to_ms, "{f:?}");
                assert!(f.to_ms <= plan.horizon_ms, "{f:?}");
            }
        }
    }

    #[test]
    fn every_kind_is_eventually_generated() {
        let mut seen = std::collections::BTreeSet::new();
        for seed in 0..500 {
            for f in FaultPlan::generate(seed, TOOLS).faults {
                seen.insert(f.kind.name());
            }
        }
        for kind in [
            "radio_loss",
            "node_crash",
            "sensor_flip",
            "clock_skew",
            "non_compliance",
            "severe_lapses",
            "routine_drift",
        ] {
            assert!(seen.contains(kind), "fault kind {kind} never generated");
        }
    }

    #[test]
    fn kill_resume_is_opt_in_and_lands_on_the_grid() {
        // generate() never draws the kind: it is injected, not random.
        for seed in 0..500 {
            assert!(FaultPlan::generate(seed, TOOLS)
                .faults
                .iter()
                .all(|f| f.kind != FaultKind::CheckpointKillResume));
        }
        for seed in 0..50 {
            let plan = FaultPlan::generate(seed, TOOLS).with_kill_resume();
            let kill = plan.faults.last().unwrap();
            assert_eq!(kill.kind, FaultKind::CheckpointKillResume);
            assert_eq!(kill.from_ms, kill.to_ms, "a kill is an instant");
            assert_eq!(kill.from_ms % TICK_MS, 0);
            assert!(kill.from_ms >= TICK_MS && kill.from_ms < plan.horizon_ms, "{kill:?}");
            assert_eq!(plan, FaultPlan::generate(seed, TOOLS).with_kill_resume());
        }
    }

    #[test]
    fn frame_faults_are_never_drawn_by_the_pipeline_generator() {
        for seed in 0..500 {
            assert!(FaultPlan::generate(seed, TOOLS).faults.iter().all(|f| !f.kind.is_frame_fault()));
        }
    }

    #[test]
    fn served_plans_are_deterministic_and_frame_only() {
        let mut seen = std::collections::BTreeSet::new();
        for seed in 0..200 {
            let plan = FaultPlan::generate_served(seed);
            assert_eq!(plan, FaultPlan::generate_served(seed));
            assert_eq!(plan.horizon_ms % TICK_MS, 0);
            assert!(plan.has_frame_faults());
            for f in &plan.faults {
                assert!(f.kind.is_frame_fault(), "{f:?}");
                assert!(f.from_ms <= f.to_ms && f.to_ms <= plan.horizon_ms, "{f:?}");
                seen.insert(f.kind.name());
            }
        }
        for kind in ["frame_dup", "frame_reorder", "frame_delay", "frame_disconnect"] {
            assert!(seen.contains(kind), "served fault kind {kind} never generated");
        }
    }

    #[test]
    fn care_plans_are_deterministic_and_caregiver_only() {
        for seed in 0..200 {
            let plan = FaultPlan::generate_care(seed);
            assert_eq!(plan, FaultPlan::generate_care(seed));
            assert_eq!(plan.horizon_ms % TICK_MS, 0);
            assert!(plan.has_care_faults());
            assert!(!plan.has_frame_faults());
            for f in &plan.faults {
                assert_eq!(f.kind, FaultKind::CaregiverNoAck);
                assert!(f.from_ms <= f.to_ms, "{f:?}");
            }
            // The other generators never draw caregiver faults.
            assert!(!FaultPlan::generate(seed, TOOLS).has_care_faults());
            assert!(!FaultPlan::generate_served(seed).has_care_faults());
        }
    }

    #[test]
    fn radio_faults_convert_to_link_configs() {
        let kind = FaultKind::RadioLoss { model: LossModel::Bernoulli { p: 0.3 }, max_retries: 1 };
        let cfg = kind.link_config().unwrap();
        assert_eq!(cfg.loss, LossModel::Bernoulli { p: 0.3 });
        assert_eq!(cfg.max_retries, 1);
        assert!(FaultKind::NonCompliance.link_config().is_none());
    }
}
