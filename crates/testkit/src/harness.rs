//! The deterministic run harness: one simulated home served under a
//! [`FaultPlan`], on either engine, with every observable event tapped.
//!
//! The home mirrors `coreda_core::metro`'s per-instant pipeline — one
//! [`Coreda`] system per activity, a home-wide [`SessionTracker`], and
//! counter-derived random streams — so what the fuzzer exercises is the
//! real serving logic, not a test double. Fault windows are applied
//! lazily at poll instants by comparing *desired* against *applied*
//! state; because quiet stretches neither draw randomness nor transmit,
//! lazy application is observationally identical across the wheel and
//! heap engines.

use coreda_adl::activity::{catalog, AdlSpec};
use coreda_adl::patient::PatientProfile;
use coreda_adl::routine::Routine;
use coreda_adl::tool::ToolId;
use coreda_core::checkpoint::{
    apply_delta, delta_checkpoint, load_checkpoint, load_delta, save_checkpoint, save_delta,
    HomeCheckpoint, MetroCheckpoint,
};
use coreda_core::fleet::derive_seed;
use coreda_core::metro::HomeStats;
use coreda_core::live::{EpisodeLog, LogKind, StochasticBehavior};
use coreda_core::metro::EngineKind;
use coreda_core::planning::PlanningSubsystem;
use coreda_core::reminding::{ReminderLevel, ReminderMethod, Trigger};
use coreda_core::sessions::{SessionEvent, SessionTracker};
use coreda_core::system::{Coreda, CoredaConfig, LiveEpisode};
use coreda_core::telemetry::{Ctr, HomeRecorder, TraceKind};
use coreda_core::wal::{self, decode_wal_tolerant, encode_wal, WalRecord};
use coreda_des::rng::SimRng;
use coreda_des::sim::Simulator;
use coreda_des::time::{SimDuration, SimTime};
use coreda_sensornet::radio::LossModel;

use crate::behavior::FaultyBehavior;
use crate::oracles::{self, Violation};
use crate::plan::{FaultKind, FaultPlan};

/// One event on the run's observable tap, in stream order. `Copy` and
/// fully comparable: differential oracles check whole traces for exact
/// equality.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceEvent {
    /// A live episode began for activity `act`.
    EpisodeStarted {
        /// Instant, ms.
        at_ms: u64,
        /// Activity index within the home.
        act: usize,
    },
    /// The running episode finished.
    EpisodeEnded {
        /// Instant, ms.
        at_ms: u64,
        /// Activity index within the home.
        act: usize,
        /// Whether the patient completed the ADL.
        completed: bool,
    },
    /// The sensing subsystem recognised a step (raw [`StepId`], 0 = idle).
    ///
    /// [`StepId`]: coreda_adl::step::StepId
    StepSensed {
        /// Instant, ms.
        at_ms: u64,
        /// Raw step id (0 = idle).
        step: u16,
    },
    /// A reminder was delivered.
    Reminder {
        /// Instant, ms.
        at_ms: u64,
        /// The prompted tool.
        prompt_tool: u16,
        /// Whether the reminder was at the specific level.
        specific: bool,
        /// The wrongly used tool, for wrong-tool triggers.
        wrong_tool: Option<u16>,
        /// The tool whose red LED the reminder blinks, if any.
        red_led_tool: Option<u16>,
    },
    /// The user followed a prompt and was praised.
    Praise {
        /// Instant, ms.
        at_ms: u64,
    },
    /// The session tracker opened a session.
    SessionStarted {
        /// Instant, ms.
        at_ms: u64,
        /// Interned activity name index.
        activity: u32,
    },
    /// The session tracker closed a session.
    SessionEnded {
        /// Instant, ms.
        at_ms: u64,
        /// Interned activity name index.
        activity: u32,
        /// Whether the terminal tool was seen.
        completed: bool,
    },
    /// A foreign tool was used during an open session.
    CrossActivityUse {
        /// Instant, ms.
        at_ms: u64,
        /// Interned name index of the open session's activity.
        active: u32,
        /// Interned name index of the foreign tool's activity.
        foreign: u32,
        /// The foreign tool.
        tool: u16,
    },
}

impl TraceEvent {
    /// The instant the event happened, ms.
    #[must_use]
    pub const fn at_ms(&self) -> u64 {
        match *self {
            TraceEvent::EpisodeStarted { at_ms, .. }
            | TraceEvent::EpisodeEnded { at_ms, .. }
            | TraceEvent::StepSensed { at_ms, .. }
            | TraceEvent::Reminder { at_ms, .. }
            | TraceEvent::Praise { at_ms }
            | TraceEvent::SessionStarted { at_ms, .. }
            | TraceEvent::SessionEnded { at_ms, .. }
            | TraceEvent::CrossActivityUse { at_ms, .. } => at_ms,
        }
    }
}

/// Counter summary of one run; part of the differential fingerprint.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RunStats {
    /// Episodes begun.
    pub episodes_started: u64,
    /// Episodes the patient completed.
    pub episodes_completed: u64,
    /// Reminders issued.
    pub reminders: u64,
    /// Praises issued.
    pub praises: u64,
    /// 100 ms pipeline ticks executed.
    pub pipeline_ticks: u64,
    /// Total node energy, µJ.
    pub energy_uj: f64,
}

/// Everything one run produced. Two runs of the same plan must compare
/// equal whatever engine or worker count produced them.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// The observable event stream, in order.
    pub trace: Vec<TraceEvent>,
    /// Counter summary.
    pub stats: RunStats,
    /// Every Q value of every planner after the run (online learning is
    /// on, so live serving moves these).
    pub q_values: Vec<f64>,
    /// The write-ahead event log: one compact record per state-mutating
    /// poll instant, derived from the same observable tap the oracles
    /// watch. Part of the differential fingerprint — killed, resumed,
    /// and cross-engine runs must log identically.
    pub wal: Vec<WalRecord>,
}

/// The outcome of checking one plan: both engines run, all oracles
/// applied, traces compared.
#[derive(Debug, Clone)]
pub struct CheckOutcome {
    /// Oracle violations, in detection order (empty = plan passed).
    pub violations: Vec<Violation>,
    /// The wheel-engine run (the canonical result).
    pub wheel: RunResult,
}

impl CheckOutcome {
    /// Whether any oracle fired.
    #[must_use]
    pub fn violated(&self) -> bool {
        !self.violations.is_empty()
    }
}

/// The reusable fixture: trained planner templates plus the system
/// configuration every plan run clones from. Building one is the
/// expensive part (offline training); running a plan is cheap.
#[derive(Debug)]
pub struct Harness {
    specs: Vec<AdlSpec>,
    templates: Vec<PlanningSubsystem>,
    config: CoredaConfig,
    tool_ids: Vec<u16>,
}

/// Seed domain for template training — fixed so every harness instance
/// (and every fuzz process) starts from identical planners.
const TRAIN_SEED: u64 = 2007;
const TRAIN_EPISODES: usize = 150;
/// Quiet-gap bounds between a home's episodes (shorter than metro's so a
/// plan packs several episodes into a few simulated minutes).
const GAP_MIN_MS: f64 = 20_000.0;
const GAP_MAX_MS: f64 = 60_000.0;
const IDLE_CLOSE: SimDuration = SimDuration::from_secs(120);

impl Default for Harness {
    fn default() -> Self {
        Harness::new()
    }
}

impl Harness {
    /// Builds the fixture: tea-making + tooth-brushing systems with
    /// online learning enabled (so the Q-bound oracle watches live
    /// updates) and planners trained on the canonical routines.
    #[must_use]
    pub fn new() -> Self {
        let specs = vec![catalog::tea_making(), catalog::tooth_brushing()];
        let config = CoredaConfig { online_learning: true, ..CoredaConfig::default() };
        let templates: Vec<PlanningSubsystem> = specs
            .iter()
            .enumerate()
            .map(|(act, spec)| {
                let routine = Routine::canonical(spec);
                let mut planner = PlanningSubsystem::new(spec, config.planning);
                let mut rng =
                    SimRng::seed_from(derive_seed(TRAIN_SEED, "dst-train", act as u64));
                for _ in 0..TRAIN_EPISODES {
                    planner.train_episode(routine.steps(), &mut rng);
                }
                planner
            })
            .collect();
        let tool_ids = specs
            .iter()
            .flat_map(|s| s.tools().iter().map(|t| t.id().raw()))
            .collect();
        Harness { specs, templates, config, tool_ids }
    }

    /// Raw tool ids across every activity — the target space for plan
    /// generation.
    #[must_use]
    pub fn tool_ids(&self) -> &[u16] {
        &self.tool_ids
    }

    /// The Q-bound the oracle enforces: `terminal / (1 - γ)` with a 25 %
    /// margin for eligibility-trace transients.
    #[must_use]
    pub fn q_bound(&self) -> f64 {
        let planning = self.config.planning;
        planning.reward.terminal.abs().max(planning.reward.minimal.abs()) / (1.0 - planning.gamma)
            * 1.25
    }

    /// Runs `plan` once on the given engine.
    #[must_use]
    pub fn run(&self, plan: &FaultPlan, engine: EngineKind) -> RunResult {
        HomeRun::new(self, plan).drive(engine).0
    }

    /// [`Harness::run`] with the flight recorder on: returns the run
    /// result (bit-identical to an unrecorded run — recording draws no
    /// randomness) plus the home's recorder, whose trace ring holds the
    /// last events leading up to whatever happened.
    #[must_use]
    pub fn run_recorded(&self, plan: &FaultPlan, engine: EngineKind) -> (RunResult, HomeRecorder) {
        let mut home = HomeRun::new(self, plan);
        home.rec = Some(HomeRecorder::new());
        let (result, rec) = home.drive(engine);
        (result, rec.unwrap_or_default())
    }

    /// The full check: run on both engines, stream the wheel trace
    /// through every invariant oracle, verify the Q bound, and require
    /// the two engine traces to be bit-identical. Plans containing
    /// [`FaultKind::CheckpointKillResume`] additionally run a *ghost* —
    /// the same plan with the kills stripped — and require the
    /// killed-and-resumed run to match it exactly.
    #[must_use]
    pub fn check(&self, plan: &FaultPlan) -> CheckOutcome {
        let wheel = self.run(plan, EngineKind::Wheel);
        let heap = self.run(plan, EngineKind::Heap);
        let mut violations = oracles::check_trace(&wheel.trace, plan.horizon_ms);
        if let Some(v) = oracles::check_q(&wheel.q_values, self.q_bound()) {
            violations.push(v);
        }
        if let Some(v) = oracles::check_engines(&wheel, &heap) {
            violations.push(v);
        }
        if plan.faults.iter().any(|f| f.kind == FaultKind::CheckpointKillResume) {
            let ghost_plan = FaultPlan {
                faults: plan
                    .faults
                    .iter()
                    .filter(|f| f.kind != FaultKind::CheckpointKillResume)
                    .cloned()
                    .collect(),
                ..plan.clone()
            };
            let ghost = self.run(&ghost_plan, EngineKind::Wheel);
            if let Some(v) = oracles::check_resume(&wheel, &ghost) {
                violations.push(v);
            }
        }
        CheckOutcome { violations, wheel }
    }
}

/// Aggregate fault state actually applied to the systems, compared by
/// value against the desired state each poll.
#[derive(Debug, Clone, PartialEq)]
struct AppliedFaults {
    link: LossModel,
    /// Per targeted tool: (tool, failed, false_positive, false_negative,
    /// skew_ms).
    tools: Vec<(u16, bool, f64, f64, i64)>,
    non_compliant: bool,
    lapsing: bool,
    drifting: bool,
}

/// One home being driven under a plan.
struct HomeRun<'a> {
    harness: &'a Harness,
    plan: &'a FaultPlan,
    systems: Vec<(Coreda, Routine, Routine)>,
    behavior: FaultyBehavior<StochasticBehavior>,
    tracker: SessionTracker,
    root: SimRng,
    sched_rng: SimRng,
    episode: Option<(usize, LiveEpisode, SimRng, EpisodeLog, usize)>,
    ep_index: u64,
    next_start: SimTime,
    last_handled: Option<SimTime>,
    applied: AppliedFaults,
    base_link: LossModel,
    trace: Vec<TraceEvent>,
    stats: RunStats,
    /// Flight recorder: `Some` for [`Harness::run_recorded`] runs.
    rec: Option<HomeRecorder>,
    /// Session events buffered while `live_tick` holds the recorder.
    scratch_sessions: Vec<SessionEvent>,
    /// Write-ahead event log, one record per state-mutating poll.
    wal: Vec<WalRecord>,
    /// The previous kill's decoded snapshot: later kills round-trip an
    /// incremental delta against it instead of a full checkpoint.
    base: Option<MetroCheckpoint>,
}

impl<'a> HomeRun<'a> {
    fn new(harness: &'a Harness, plan: &'a FaultPlan) -> Self {
        let name = "dst-home";
        let systems: Vec<(Coreda, Routine, Routine)> = harness
            .specs
            .iter()
            .enumerate()
            .map(|(act, spec)| {
                let seed = derive_seed(plan.seed, "dst-system", act as u64);
                let mut system = Coreda::new(spec.clone(), name, harness.config, seed);
                *system.planner_mut() = harness.templates[act].clone();
                let canonical = Routine::canonical(spec);
                let drifted = drifted_routine(spec, &canonical, plan);
                (system, canonical, drifted)
            })
            .collect();
        let root = SimRng::seed_from(derive_seed(plan.seed, "dst-home", 0));
        let sched_rng = root.substream("sched", 0);
        let base_link = harness.config.link.loss;
        let mut run = HomeRun {
            harness,
            plan,
            systems,
            behavior: FaultyBehavior::new(StochasticBehavior::new(PatientProfile::moderate(
                name,
            ))),
            tracker: SessionTracker::new(&harness.specs, IDLE_CLOSE),
            root,
            sched_rng,
            episode: None,
            ep_index: 0,
            next_start: SimTime::ZERO,
            last_handled: None,
            applied: AppliedFaults {
                link: base_link,
                tools: harness.tool_ids.iter().map(|&t| (t, false, 0.0, 0.0, 0)).collect(),
                non_compliant: false,
                lapsing: false,
                drifting: false,
            },
            base_link,
            trace: Vec::new(),
            stats: RunStats::default(),
            rec: None,
            scratch_sessions: Vec::new(),
            wal: Vec::new(),
            base: None,
        };
        let first = run.draw_gap();
        run.next_start = align_up(SimTime::ZERO + first);
        run
    }

    fn draw_gap(&mut self) -> SimDuration {
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let ms = self.sched_rng.uniform_range(GAP_MIN_MS, GAP_MAX_MS) as u64;
        SimDuration::from_millis(ms)
    }

    /// Desired fault aggregates at `now`, derived purely from the plan.
    fn desired(&self, now_ms: u64) -> AppliedFaults {
        let mut want = AppliedFaults {
            link: self.base_link,
            tools: self.applied.tools.iter().map(|&(t, ..)| (t, false, 0.0, 0.0, 0)).collect(),
            non_compliant: false,
            lapsing: false,
            drifting: false,
        };
        for fault in &self.plan.faults {
            if !fault.active_at(now_ms) {
                continue;
            }
            match fault.kind {
                FaultKind::RadioLoss { model, .. } => want.link = model,
                FaultKind::NodeCrash { tool } => {
                    if let Some(slot) = want.tools.iter_mut().find(|s| s.0 == tool) {
                        slot.1 = true;
                    }
                }
                FaultKind::SensorFlip { tool, false_positive, false_negative } => {
                    if let Some(slot) = want.tools.iter_mut().find(|s| s.0 == tool) {
                        slot.2 = false_positive;
                        slot.3 = false_negative;
                    }
                }
                FaultKind::ClockSkew { tool, skew_ms } => {
                    if let Some(slot) = want.tools.iter_mut().find(|s| s.0 == tool) {
                        slot.4 = skew_ms;
                    }
                }
                FaultKind::NonCompliance => want.non_compliant = true,
                FaultKind::SevereLapses => want.lapsing = true,
                FaultKind::RoutineDrift { .. } => want.drifting = true,
                // A kill is not a fault *window*: it interrupts the
                // drive loop itself and leaves the aggregates alone.
                FaultKind::CheckpointKillResume => {}
                // Frame faults live on the served wire, outside the
                // in-process pipeline; the served harness applies them.
                FaultKind::FrameDup
                | FaultKind::FrameReorder
                | FaultKind::FrameDelay
                | FaultKind::FrameDisconnect
                | FaultKind::CaregiverNoAck => {}
            }
        }
        want
    }

    /// Applies any delta between desired and applied fault state. Never
    /// draws randomness, so it is engine-invariant to apply this lazily.
    fn apply_faults(&mut self, now: SimTime) {
        let want = self.desired(now.as_millis());
        self.apply_aggregate(want);
    }

    /// Applies `want` as the fault aggregate regardless of the plan's
    /// windows. Resume uses this directly: faults are applied lazily at
    /// poll instants and a kill tick need not be one, so the rebuilt
    /// home must mirror the *dying* run's applied state — the state the
    /// snapshot's node flags were captured under — not the plan's
    /// desired state at the kill instant. Marking a window as applied
    /// without its node-level effect would stop the delta machine from
    /// ever applying it.
    fn apply_aggregate(&mut self, want: AppliedFaults) {
        if want == self.applied {
            return;
        }
        if want.link != self.applied.link {
            for (system, _, _) in &mut self.systems {
                system.set_link_loss(want.link);
            }
        }
        for (want_slot, have_slot) in want.tools.iter().zip(&self.applied.tools) {
            let &(tool, failed, fp, fne, skew) = want_slot;
            let id = ToolId::new(tool);
            if failed != have_slot.1 {
                for (system, _, _) in &mut self.systems {
                    system.set_node_failed(id, failed);
                }
            }
            if (fp, fne) != (have_slot.2, have_slot.3) {
                for (system, _, _) in &mut self.systems {
                    system.set_sensor_flip(id, fp, fne);
                }
            }
            if skew != have_slot.4 {
                for (system, _, _) in &mut self.systems {
                    system.set_clock_skew(id, skew);
                }
            }
        }
        self.behavior.non_compliant = want.non_compliant;
        self.behavior.lapsing = want.lapsing;
        self.applied = want;
    }

    /// Drains fresh episode-log entries into the trace.
    fn drain_log(trace: &mut Vec<TraceEvent>, log: &EpisodeLog, cursor: &mut usize) {
        for (at, kind) in &log.entries()[*cursor..] {
            let at_ms = at.as_millis();
            match kind {
                LogKind::StepSensed(step) => {
                    trace.push(TraceEvent::StepSensed { at_ms, step: step.raw() });
                }
                LogKind::ReminderIssued(rem) => {
                    let wrong_tool = match rem.trigger {
                        Trigger::WrongTool { used } => Some(used.raw()),
                        Trigger::IdleTimeout => None,
                    };
                    let red_led_tool = rem.methods.iter().find_map(|m| match m {
                        ReminderMethod::RedLed { tool, .. } => Some(tool.raw()),
                        _ => None,
                    });
                    trace.push(TraceEvent::Reminder {
                        at_ms,
                        prompt_tool: rem.prompt.tool.raw(),
                        specific: rem.prompt.level == ReminderLevel::Specific,
                        wrong_tool,
                        red_led_tool,
                    });
                }
                LogKind::Praised => trace.push(TraceEvent::Praise { at_ms }),
                // Ground-truth entries (patient froze/misused/started) are
                // not system observations; oracles only see what the
                // pipeline itself could know.
                _ => {}
            }
        }
        *cursor = log.entries().len();
    }

    /// Mirrors a session event into the flight recorder (same mapping as
    /// metro's recorder, so fuzz flight dumps read like scale traces).
    fn record_session_event(rec: &mut HomeRecorder, ev: SessionEvent) {
        match ev {
            SessionEvent::Started { activity, at } => {
                rec.inc(Ctr::SessionsStarted);
                rec.event(at, TraceKind::SessionStarted { name: activity });
            }
            SessionEvent::Ended { activity, at, completed } => {
                rec.inc(if completed { Ctr::SessionsCompleted } else { Ctr::SessionsAbandoned });
                rec.event(at, TraceKind::SessionEnded { name: activity, completed });
            }
            SessionEvent::CrossActivityUse { active, at, .. } => {
                rec.inc(Ctr::CrossActivityFlags);
                rec.event(at, TraceKind::CrossActivity { name: active });
            }
        }
    }

    fn trace_session_event(trace: &mut Vec<TraceEvent>, ev: SessionEvent) {
        trace.push(match ev {
            SessionEvent::Started { activity, at } => TraceEvent::SessionStarted {
                at_ms: at.as_millis(),
                activity: activity.index() as u32,
            },
            SessionEvent::Ended { activity, at, completed } => TraceEvent::SessionEnded {
                at_ms: at.as_millis(),
                activity: activity.index() as u32,
                completed,
            },
            SessionEvent::CrossActivityUse { active, foreign, tool, at } => {
                TraceEvent::CrossActivityUse {
                    at_ms: at.as_millis(),
                    active: active.index() as u32,
                    foreign: foreign.index() as u32,
                    tool: tool.raw(),
                }
            }
        });
    }

    /// The canonical per-instant sequence, mirroring metro's
    /// `poll_instant` with fault application in front.
    fn poll_instant(&mut self, now: SimTime) {
        self.apply_faults(now);
        let wal_mark = self.trace.len();

        // 1. Begin the next episode when its start arrives.
        if self.episode.is_none() && now >= self.next_start {
            let act = usize::try_from(self.ep_index).unwrap_or(usize::MAX) % self.systems.len();
            let mut rng = self.root.substream("episode", self.ep_index);
            let mut log = EpisodeLog::new();
            let drifting = self.applied.drifting;
            let (system, canonical, drifted) = &mut self.systems[act];
            let routine: &Routine = if drifting { drifted } else { canonical };
            let ep =
                system.begin_live(routine, &mut self.behavior, now, &mut rng, Some(&mut log));
            let mut cursor = 0usize;
            self.trace.push(TraceEvent::EpisodeStarted { at_ms: now.as_millis(), act });
            Self::drain_log(&mut self.trace, &log, &mut cursor);
            self.episode = Some((act, ep, rng, log, cursor));
            self.stats.episodes_started += 1;
            if let Some(rec) = self.rec.as_mut() {
                rec.inc(Ctr::EpisodesStarted);
                #[allow(clippy::cast_possible_truncation)]
                rec.event(
                    now,
                    TraceKind::EpisodeStarted {
                        episode: self.ep_index.min(u64::from(u32::MAX)) as u32,
                    },
                );
            }
        }

        // 2. Run the running episode's 100 ms pipeline tick.
        let mut finished = None;
        if let Some((act, ep, rng, log, cursor)) = self.episode.as_mut() {
            if now >= ep.next_tick_at() {
                let drifting = self.applied.drifting;
                let (system, canonical, drifted) = &mut self.systems[*act];
                let routine: &Routine = if drifting { drifted } else { canonical };
                let tracker = &mut self.tracker;
                let trace = &mut self.trace;
                let scratch = &mut self.scratch_sessions;
                let out = system.live_tick(
                    ep,
                    routine,
                    &mut self.behavior,
                    now,
                    rng,
                    Some(log),
                    self.rec.as_mut(),
                    &mut |src, at| {
                        for ev in tracker.on_report(src, at) {
                            Self::trace_session_event(trace, ev);
                            scratch.push(ev);
                        }
                    },
                );
                Self::drain_log(&mut self.trace, log, cursor);
                self.stats.pipeline_ticks += 1;
                self.stats.reminders += u64::from(out.reminders);
                self.stats.praises += u64::from(out.praises);
                if out.completed_now {
                    self.stats.episodes_completed += 1;
                }
                if let Some(rec) = self.rec.as_mut() {
                    for ev in self.scratch_sessions.drain(..) {
                        Self::record_session_event(rec, ev);
                    }
                    if out.completed_now {
                        rec.inc(Ctr::EpisodesCompleted);
                    }
                    if out.finished {
                        rec.event(now, TraceKind::EpisodeEnded { completed: out.completed_now });
                    }
                } else {
                    self.scratch_sessions.clear();
                }
                if out.finished {
                    finished = Some((*act, ep.completed()));
                }
            }
        }

        // 3. Home-wide idle close (the tracker's clock tick).
        if let Some(ev) = self.tracker.on_tick(now) {
            Self::trace_session_event(&mut self.trace, ev);
            if let Some(rec) = self.rec.as_mut() {
                Self::record_session_event(rec, ev);
            }
        }

        // 4. Episode cleanup: draw the quiet gap and schedule the next.
        if let Some((act, completed)) = finished {
            self.trace.push(TraceEvent::EpisodeEnded { at_ms: now.as_millis(), act, completed });
            self.episode = None;
            self.ep_index += 1;
            let gap = self.draw_gap();
            self.next_start = align_up(now + gap);
        }

        // 5. Write-ahead log: fold this instant's fresh trace entries
        // into one compact record (metro's `poll_wake` shape). Derived
        // from the observable tap alone, so the run cannot feel it.
        let mut rec = WalRecord {
            at: now,
            home: 0,
            act: wal::NO_ACT,
            flags: 0,
            reminders: 0,
            praises: 0,
            sessions_started: 0,
            sessions_completed: 0,
            sessions_abandoned: 0,
            cross_activity: 0,
        };
        let bump = |c: &mut u8| *c = c.saturating_add(1);
        for ev in &self.trace[wal_mark..] {
            match *ev {
                TraceEvent::EpisodeStarted { act, .. } => {
                    rec.flags |= wal::EPISODE_STARTED;
                    rec.act = u8::try_from(act).unwrap_or(wal::NO_ACT - 1);
                }
                TraceEvent::EpisodeEnded { completed, .. } => {
                    rec.flags |= wal::EPISODE_ENDED;
                    if completed {
                        rec.flags |= wal::EPISODE_COMPLETED;
                    }
                }
                TraceEvent::Reminder { .. } => bump(&mut rec.reminders),
                TraceEvent::Praise { .. } => bump(&mut rec.praises),
                TraceEvent::SessionStarted { .. } => bump(&mut rec.sessions_started),
                TraceEvent::SessionEnded { completed: true, .. } => {
                    bump(&mut rec.sessions_completed);
                }
                TraceEvent::SessionEnded { completed: false, .. } => {
                    bump(&mut rec.sessions_abandoned);
                }
                TraceEvent::CrossActivityUse { .. } => bump(&mut rec.cross_activity),
                TraceEvent::StepSensed { .. } => {}
            }
        }
        if !rec.is_trivial() {
            self.wal.push(rec);
        }
    }

    /// Runs the wheel loop until `until`, scheduling follow-up events
    /// against the full-run horizon `end` (so events past a kill point
    /// land in the queue and get captured as pending).
    fn wheel_segment(&mut self, sim: &mut Simulator<()>, until: SimTime, end: SimTime) {
        while sim.step_until(until).is_some() {
            let now = sim.now();
            if self.last_handled == Some(now) {
                continue;
            }
            self.last_handled = Some(now);
            self.poll_instant(now);
            if let Some((_, ep, ..)) = &self.episode {
                let due = ep.next_tick_at();
                if due <= end {
                    sim.schedule_at(due, ());
                }
            } else {
                if self.next_start <= end {
                    sim.schedule_at(self.next_start, ());
                }
                if let Some(deadline) = self.tracker.idle_deadline() {
                    let due = align_up(deadline);
                    if due <= end {
                        sim.schedule_at(due, ());
                    }
                }
            }
        }
    }

    /// Heap-engine counterpart of [`HomeRun::wheel_segment`].
    fn heap_segment(&mut self, sim: &mut Simulator<()>, until: SimTime, end: SimTime) {
        while sim.step_until(until).is_some() {
            let now = sim.now();
            self.last_handled = Some(now);
            self.poll_instant(now);
            let next = now + Coreda::TICK;
            if next <= end {
                sim.schedule_at(next, ());
            }
        }
    }

    /// The plan's process-death instants, sorted and clamped to the
    /// horizon.
    fn kill_ticks(&self) -> Vec<SimTime> {
        let mut kills: Vec<SimTime> = self
            .plan
            .faults
            .iter()
            .filter(|f| f.kind == FaultKind::CheckpointKillResume)
            .map(|f| SimTime::from_millis(f.from_ms.min(self.plan.horizon_ms)))
            .collect();
        kills.sort();
        kills
    }

    /// Simulates a process death at `kill`: the home's complete state
    /// round-trips through the real binary checkpoint codec, the event
    /// queue dies, and a freshly rebuilt home restores from the decoded
    /// bytes and re-arms the queue. Harness bookkeeping that is not
    /// system state — the observable trace, the episode log and its
    /// drain cursor — survives in memory, exactly as a log shipped off
    /// the box would.
    fn kill_and_resume(mut self, sim: &mut Simulator<()>, kill: SimTime) -> HomeRun<'a> {
        let pending: Vec<SimTime> =
            sim.drain_pending().into_iter().map(|(due, ())| due).collect();
        let snapshot = HomeCheckpoint {
            systems: self.systems.iter().map(|(s, ..)| s.export_state()).collect(),
            tracker: self.tracker.export_active(),
            root: self.root.state_parts(),
            sched: self.sched_rng.state_parts(),
            episode: self
                .episode
                .as_ref()
                .map(|(act, ep, rng, _, _)| (*act, ep.export_state(), rng.state_parts())),
            ep_index: self.ep_index,
            next_start: self.next_start,
            last_handled: self.last_handled,
            stats: HomeStats {
                episodes_started: self.stats.episodes_started,
                episodes_completed: self.stats.episodes_completed,
                reminders: self.stats.reminders,
                praises: self.stats.praises,
                pipeline_ticks: self.stats.pipeline_ticks,
                ..HomeStats::default()
            },
            pending,
            rec: self.rec.as_ref().map(HomeRecorder::export_state),
        };
        let manifest = MetroCheckpoint {
            at: kill,
            digest: 0,
            des_events: sim.processed(),
            homes: vec![snapshot],
        };
        // The durability artifacts die with the process and are read
        // back the way a restart would read them. First death: the full
        // snapshot round-trips the checkpoint codec. Later deaths: only
        // an incremental delta against the previous death's snapshot
        // round-trips, and base + delta must rebuild the dying state
        // exactly — the compaction path under kill-resume fuzzing.
        let decoded = match self.base.take() {
            Some(base) => {
                let delta = delta_checkpoint(&base, &manifest);
                let blob = save_delta(&delta, 1);
                let delta = load_delta(&blob, 1).expect("a self-made delta must decode");
                let rebuilt = apply_delta(&base, &delta).expect("the delta fits its own base");
                assert_eq!(rebuilt, manifest, "base + delta must rebuild the dying state");
                rebuilt
            }
            None => {
                let blob = save_checkpoint(&manifest, 1);
                load_checkpoint(&blob, 1).expect("a self-made checkpoint must decode")
            }
        };
        // The write-ahead log is torn mid-chunk by the death; the
        // tolerant decoder must salvage exactly an intact record prefix
        // from the torn bytes. The in-memory log then survives like the
        // trace does — as a log shipped off the box would.
        let wal_blob = encode_wal(0, &self.wal);
        let cut = wal_blob.len().saturating_sub(7).max(wal::HEADER_BYTES);
        let torn =
            decode_wal_tolerant(&wal_blob[..cut]).expect("the header survives a torn tail");
        assert!(
            torn.records.len() <= self.wal.len()
                && torn.records[..] == self.wal[..torn.records.len()],
            "salvaged records must be an intact prefix of the dying run's log"
        );
        let ck = &decoded.homes[0];

        let mut fresh = HomeRun::new(self.harness, self.plan);
        // Fault *configuration* (loss model, behavior flags) is not in
        // the snapshot and must be applied before state restore:
        // installing a loss model resets channel state, which the
        // snapshot then overwrites with the exact values. Crucially the
        // dying run's lazily-*applied* aggregate is replayed, not the
        // plan's desired state at the kill instant — a fault window that
        // opened between two poll instants has not touched the systems
        // yet, and pretending it had would leave its node-level effect
        // unapplied forever (caught by the kill-resume fuzzer:
        // tests/corpus/kill-resume-lazy-crash.seed.json).
        fresh.apply_aggregate(self.applied.clone());
        for ((system, ..), state) in fresh.systems.iter_mut().zip(&ck.systems) {
            system.restore_state(state).expect("checkpoint matches the rebuilt home");
        }
        fresh.tracker.restore_active(ck.tracker);
        fresh.root = SimRng::from_state_parts(ck.root.0, ck.root.1);
        fresh.sched_rng = SimRng::from_state_parts(ck.sched.0, ck.sched.1);
        fresh.episode = ck.episode.as_ref().map(|&(act, ref eps, rng)| {
            let (_, _, _, log, cursor) = self
                .episode
                .take()
                .expect("the snapshot has a live episode, so the killed run had one");
            (act, LiveEpisode::from_state(eps), SimRng::from_state_parts(rng.0, rng.1), log, cursor)
        });
        fresh.ep_index = ck.ep_index;
        fresh.next_start = ck.next_start;
        fresh.last_handled = ck.last_handled;
        fresh.stats = RunStats {
            episodes_started: ck.stats.episodes_started,
            episodes_completed: ck.stats.episodes_completed,
            reminders: ck.stats.reminders,
            praises: ck.stats.praises,
            pipeline_ticks: ck.stats.pipeline_ticks,
            energy_uj: 0.0,
        };
        fresh.trace = std::mem::take(&mut self.trace);
        if self.rec.is_some() {
            let mut rec = HomeRecorder::new();
            if let Some(state) = &ck.rec {
                rec.restore_state(state);
            }
            fresh.rec = Some(rec);
        }
        for &due in &ck.pending {
            sim.schedule_at(due, ());
        }
        fresh.wal = std::mem::take(&mut self.wal);
        fresh.base = Some(decoded);
        fresh
    }

    fn drive(mut self, engine: EngineKind) -> (RunResult, Option<HomeRecorder>) {
        let end = SimTime::ZERO + SimDuration::from_millis(self.plan.horizon_ms);
        let kills = self.kill_ticks();
        match engine {
            EngineKind::Wheel => {
                let mut sim: Simulator<()> = Simulator::new();
                if self.next_start <= end {
                    sim.schedule_at(self.next_start, ());
                }
                for &kill in &kills {
                    self.wheel_segment(&mut sim, kill, end);
                    self = self.kill_and_resume(&mut sim, kill);
                }
                self.wheel_segment(&mut sim, end, end);
            }
            EngineKind::Heap => {
                let mut sim: Simulator<()> = Simulator::with_heap_queue();
                sim.schedule_at(SimTime::ZERO, ());
                for &kill in &kills {
                    self.heap_segment(&mut sim, kill, end);
                    self = self.kill_and_resume(&mut sim, kill);
                }
                self.heap_segment(&mut sim, end, end);
            }
        }
        self.stats.energy_uj = self.systems.iter().map(|(s, ..)| s.total_energy_uj()).sum();
        let q_values = self
            .systems
            .iter()
            .flat_map(|(s, ..)| s.planner().q_table().values())
            .collect();
        (RunResult { trace: self.trace, stats: self.stats, q_values, wal: self.wal }, self.rec)
    }
}

/// The smallest instant on the 100 ms serving grid at or after `t`.
fn align_up(t: SimTime) -> SimTime {
    let tick = Coreda::TICK.as_millis();
    SimTime::from_millis(t.as_millis().div_ceil(tick) * tick)
}

/// The routine the activity drifts to: the last `RoutineDrift` fault's
/// swap applied to the canonical order (identical indices leave the
/// routine unchanged — a vacuous drift).
fn drifted_routine(spec: &AdlSpec, canonical: &Routine, plan: &FaultPlan) -> Routine {
    let swap = plan.faults.iter().rev().find_map(|f| match f.kind {
        FaultKind::RoutineDrift { swap_a, swap_b } => Some((swap_a, swap_b)),
        _ => None,
    });
    let Some((a, b)) = swap else {
        return canonical.clone();
    };
    let mut steps = canonical.steps().to_vec();
    let len = steps.len();
    let (a, b) = (a as usize % len, b as usize % len);
    steps.swap(a, b);
    Routine::new(spec, steps)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn harness() -> Harness {
        Harness::new()
    }

    #[test]
    fn clean_plan_runs_and_serves() {
        let h = harness();
        let plan = FaultPlan {
            seed: 7,
            horizon_ms: 240_000,
            faults: vec![],
            expect_violation: None,
        };
        let result = h.run(&plan, EngineKind::Wheel);
        assert!(result.stats.episodes_started >= 2, "{:?}", result.stats);
        assert!(result.stats.pipeline_ticks > 100);
        assert!(result.trace.iter().any(|e| matches!(e, TraceEvent::SessionStarted { .. })));
        assert!(result.q_values.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn runs_are_deterministic() {
        let h = harness();
        let plan = FaultPlan::generate(11, h.tool_ids());
        assert_eq!(h.run(&plan, EngineKind::Wheel), h.run(&plan, EngineKind::Wheel));
    }

    #[test]
    fn wheel_and_heap_traces_agree_under_faults() {
        let h = harness();
        for seed in [1u64, 2, 3] {
            let plan = FaultPlan::generate(seed, h.tool_ids());
            let wheel = h.run(&plan, EngineKind::Wheel);
            let heap = h.run(&plan, EngineKind::Heap);
            assert_eq!(wheel, heap, "engines diverged on seed {seed}: {plan:?}");
        }
    }

    #[test]
    fn recorded_run_matches_unrecorded_run() {
        let h = harness();
        let plan = FaultPlan::generate(5, h.tool_ids());
        let plain = h.run(&plan, EngineKind::Wheel);
        let (recorded, rec) = h.run_recorded(&plan, EngineKind::Wheel);
        assert_eq!(plain, recorded, "recording must not perturb the run");
        assert_eq!(rec.counter(Ctr::EpisodesStarted), plain.stats.episodes_started);
        assert_eq!(rec.counter(Ctr::Praises), plain.stats.praises);
        assert!(!rec.ring().is_empty(), "the trace ring should hold events");
        let (heap, heap_rec) = h.run_recorded(&plan, EngineKind::Heap);
        assert_eq!(recorded, heap);
        assert_eq!(rec, heap_rec, "recorders must agree across engines");
    }


    #[test]
    fn kill_and_resume_matches_the_ghost_run() {
        let h = harness();
        for seed in [4u64, 9, 21] {
            let killed = FaultPlan::generate(seed, h.tool_ids()).with_kill_resume();
            let ghost = FaultPlan {
                faults: killed
                    .faults
                    .iter()
                    .filter(|f| f.kind != FaultKind::CheckpointKillResume)
                    .cloned()
                    .collect(),
                ..killed.clone()
            };
            for engine in [EngineKind::Wheel, EngineKind::Heap] {
                assert_eq!(
                    h.run(&killed, engine),
                    h.run(&ghost, engine),
                    "resume diverged from the uninterrupted run: seed {seed}, {engine:?}"
                );
            }
        }
    }

    #[test]
    fn double_kill_still_matches_the_ghost() {
        let h = harness();
        let base = FaultPlan::generate(13, h.tool_ids());
        let mut killed = base.clone();
        for at in [30_000, 90_000] {
            killed.faults.push(crate::plan::Fault {
                kind: FaultKind::CheckpointKillResume,
                from_ms: at,
                to_ms: at,
            });
        }
        assert_eq!(h.run(&killed, EngineKind::Wheel), h.run(&base, EngineKind::Wheel));
    }

    #[test]
    fn recorder_survives_the_kill() {
        let h = harness();
        let killed = FaultPlan::generate(6, h.tool_ids()).with_kill_resume();
        let ghost = FaultPlan {
            faults: killed
                .faults
                .iter()
                .filter(|f| f.kind != FaultKind::CheckpointKillResume)
                .cloned()
                .collect(),
            ..killed.clone()
        };
        let (killed_run, killed_rec) = h.run_recorded(&killed, EngineKind::Wheel);
        let (ghost_run, ghost_rec) = h.run_recorded(&ghost, EngineKind::Wheel);
        assert_eq!(killed_run, ghost_run);
        assert_eq!(
            killed_rec, ghost_rec,
            "telemetry must merge across the snapshot boundary, not reset"
        );
    }

    #[test]
    fn check_flags_nothing_on_a_killed_clean_plan() {
        let h = harness();
        let plan = FaultPlan {
            seed: 7,
            horizon_ms: 240_000,
            faults: vec![crate::plan::Fault {
                kind: FaultKind::CheckpointKillResume,
                from_ms: 60_000,
                to_ms: 60_000,
            }],
            expect_violation: None,
        };
        let outcome = h.check(&plan);
        assert!(!outcome.violated(), "{:?}", outcome.violations);
    }

    #[test]
    fn crash_window_silences_the_node() {
        let h = harness();
        // Crash the tea activity's first tool for the whole run.
        let tool = h.tool_ids()[0];
        let plan = FaultPlan {
            seed: 3,
            horizon_ms: 240_000,
            faults: vec![crate::plan::Fault {
                kind: FaultKind::NodeCrash { tool },
                from_ms: 0,
                to_ms: 240_000,
            }],
            expect_violation: None,
        };
        let faulted = h.run(&plan, EngineKind::Wheel);
        let clean = h.run(
            &FaultPlan { faults: vec![], ..plan.clone() },
            EngineKind::Wheel,
        );
        assert!(
            faulted.stats.energy_uj < clean.stats.energy_uj,
            "a crashed node must not burn sampling energy: {} vs {}",
            faulted.stats.energy_uj,
            clean.stats.energy_uj
        );
    }
}
