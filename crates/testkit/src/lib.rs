//! Deterministic simulation testing (DST) for CoReDA.
//!
//! FoundationDB-style harness: a seed deterministically expands into a
//! [`plan::FaultPlan`] — timed windows of radio loss bursts, node
//! crashes, sensing flips, clock skew, patient non-compliance / severe
//! lapses, and routine drift — which the real [`Coreda`] pipeline then
//! serves under, while every session event and reminder streams through
//! the invariant [`oracles`]. Each plan runs on *both* serving engines
//! (timing wheel and dense heap polling), and batches re-run through the
//! fleet engine at `jobs > 1`; any divergence is itself an oracle
//! violation. When an oracle fires, [`shrink`] reduces the plan — drop
//! faults, halve windows, halve the horizon — to a minimal repro that
//! [`json`] serializes as a `.seed.json` replay file for the regression
//! corpus.
//!
//! Entry points: `coreda fuzz --seconds N --seed S` ([`fuzz::fuzz`]) and
//! `coreda replay <file>` ([`corpus`]).
//!
//! [`Coreda`]: coreda_core::system::Coreda

pub mod behavior;
pub mod care;
pub mod corpus;
pub mod fuzz;
pub mod harness;
pub mod json;
pub mod oracles;
pub mod plan;
pub mod served;
pub mod shrink;

pub use harness::{Harness, RunResult};
pub use oracles::Violation;
pub use plan::{Fault, FaultKind, FaultPlan};
