//! Caregiver-escalation harness: run fault plans against the care
//! overlay and check the `escalation_consistency` contract as oracles.
//!
//! A care plan carries only [`FaultKind::is_care_fault`] kinds —
//! caregiver outage windows applied as [`CarePolicy::no_ack_windows`]
//! policy input. The contract under test:
//!
//! - **Fires exactly when policy says**: the escalation log must equal
//!   an independent re-derivation of the policy table from the run's
//!   WAL — streak thresholds, drift windows, and the closed-form
//!   caregiver ack/resolve due times, outage windows included.
//! - **Never flaps**: per `(home, trigger)` the lifecycle strictly
//!   alternates raise → ack → resolve; an open escalation absorbs
//!   further threshold crossings.
//! - **Caregiver outages are honored**: no acknowledgment lands inside
//!   a no-ack window.
//! - **Determinism**: the care output is bit-identical across queue
//!   engines and worker counts, and the served path (escalations as
//!   `Escalate` frames) equals the batch overlay.

use coreda_core::escalation::{CareEvent, CareEventKind, CarePolicy, CareTrigger};
use coreda_core::metro::{
    resume_scale, run_scale, run_scale_care, run_scale_care_walled, run_scale_checkpointed,
    EngineKind, MetroConfig,
};
use coreda_core::wal::{WalRecord, EPISODE_COMPLETED, EPISODE_ENDED};
use coreda_des::time::{SimDuration, SimTime};
use coreda_serve::{serve_scale, ServeOptions};

use crate::oracles::Violation;
use crate::plan::{FaultKind, FaultPlan};

/// The oracle name every care violation reports under.
pub const ORACLE: &str = "escalation_consistency";

/// Homes per care check: small enough that every plan runs one walled
/// batch, one heap re-run, and one served fleet quickly; big enough
/// that the home-order merge of escalation logs is exercised.
pub const CARE_HOMES: usize = 3;

/// The fleet configuration a care plan expands to.
#[must_use]
pub fn care_config(plan: &FaultPlan, engine: EngineKind, jobs: usize) -> MetroConfig {
    MetroConfig {
        homes: CARE_HOMES,
        horizon: SimDuration::from_millis(plan.horizon_ms),
        seed: plan.seed,
        jobs,
        engine,
        train_episodes: 60,
        // Care horizons are short; compress the between-episode gaps so
        // streaks and trend windows actually accumulate (see served.rs).
        gap_min: SimDuration::from_secs(10),
        gap_max: SimDuration::from_secs(40),
        idle_close: SimDuration::from_secs(30),
        ..MetroConfig::default()
    }
}

/// The escalation policy a care plan runs under: thresholds eager
/// enough to trip within the short horizons, plus the plan's caregiver
/// outage windows.
#[must_use]
pub fn care_policy(plan: &FaultPlan) -> CarePolicy {
    let mut policy = CarePolicy {
        prompt_failure_streak: 1,
        missed_adl_streak: 1,
        drift_window: 4,
        drift_min_reminders: 2,
        ack_delay_ms: [30_000, 15_000, 5_000],
        resolve_after_ms: 20_000,
        ..CarePolicy::default()
    };
    for f in &plan.faults {
        if f.kind == FaultKind::CaregiverNoAck {
            policy.no_ack_windows.push((f.from_ms, f.to_ms));
        }
    }
    policy
}

/// One expected lifecycle event: `(at_ms, kind, trigger)`. Severity is
/// always `trigger.severity()` and checked separately.
type Expected = (u64, CareEventKind, CareTrigger);

/// Re-derives the full expected escalation log for one home from its
/// WAL records and the policy — independently of [`CareMonitor`]: no
/// due-event queue, just the closed-form caregiver timing (an
/// escalation raised at `t` is acked at `ack_due_ms(t)` and resolved
/// `resolve_after_ms` later, horizon permitting, with the trigger
/// re-armed from the resolve instant on).
///
/// [`CareMonitor`]: coreda_core::escalation::CareMonitor
fn expected_home_events(
    policy: &CarePolicy,
    wal: &[WalRecord],
    home: u32,
    horizon_ms: u64,
) -> Vec<Expected> {
    let mut out: Vec<Expected> = Vec::new();
    // `Some(resolve_due)` while the trigger's escalation is open; the
    // slot re-arms at records from `resolve_due` on.
    let mut open: [Option<u64>; 3] = [None; 3];
    let mut fail_streak = 0u64;
    let mut missed_streak = 0u64;
    let mut window_episodes = 0u64;
    let mut window_reminders = 0u64;
    let mut baseline: Option<u64> = None;

    fn try_raise(
        out: &mut Vec<Expected>,
        open: &mut [Option<u64>; 3],
        policy: &CarePolicy,
        horizon_ms: u64,
        trigger: CareTrigger,
        now: u64,
    ) -> bool {
        let slot = trigger as usize;
        if open[slot].is_some_and(|resolve_due| now < resolve_due) {
            return false; // absorbed by the open escalation: never-flap
        }
        out.push((now, CareEventKind::Raised, trigger));
        let ack_due = policy.ack_due_ms(now, trigger.severity());
        if ack_due <= horizon_ms {
            out.push((ack_due, CareEventKind::Acked, trigger));
        }
        let resolve_due = ack_due.saturating_add(policy.resolve_after_ms);
        if resolve_due <= horizon_ms {
            out.push((resolve_due, CareEventKind::Resolved, trigger));
        }
        open[slot] = Some(resolve_due);
        true
    }

    for rec in wal.iter().filter(|r| r.home == home) {
        let now = rec.at.as_millis();
        let reminders = u64::from(rec.reminders);
        window_reminders += reminders;
        if rec.praises > 0 {
            fail_streak = 0;
        } else if reminders > 0 {
            fail_streak += reminders;
            if fail_streak >= policy.prompt_failure_streak
                && try_raise(
                    &mut out,
                    &mut open,
                    policy,
                    horizon_ms,
                    CareTrigger::RepeatedPromptFailures,
                    now,
                )
            {
                fail_streak = 0;
            }
        }
        if rec.flags & EPISODE_ENDED != 0 {
            if rec.flags & EPISODE_COMPLETED != 0 {
                missed_streak = 0;
            } else {
                missed_streak += 1;
                if missed_streak >= policy.missed_adl_streak
                    && try_raise(
                        &mut out,
                        &mut open,
                        policy,
                        horizon_ms,
                        CareTrigger::MissedCriticalAdl,
                        now,
                    )
                {
                    missed_streak = 0;
                }
            }
            window_episodes += 1;
            if window_episodes >= policy.drift_window {
                let w = window_reminders;
                match baseline {
                    None => baseline = Some(w),
                    Some(base) => {
                        if w >= policy.drift_min_reminders
                            && w.saturating_mul(policy.drift_den)
                                > base.saturating_mul(policy.drift_num)
                        {
                            try_raise(
                                &mut out,
                                &mut open,
                                policy,
                                horizon_ms,
                                CareTrigger::ComplianceDrift,
                                now,
                            );
                        }
                    }
                }
                window_episodes = 0;
                window_reminders = 0;
            }
        }
    }
    // Tie order between a drained caregiver action and a same-instant
    // raise is a seq detail; compare as sorted multisets instead.
    out.sort_unstable_by_key(|&(at, kind, trigger)| (at, trigger as u8, kind as u8));
    out
}

fn actual_home_events(events: &[CareEvent], home: u32) -> Vec<Expected> {
    let mut out: Vec<Expected> = events
        .iter()
        .filter(|e| e.home == home)
        .map(|e| (e.at.as_millis(), e.kind, e.trigger))
        .collect();
    out.sort_unstable_by_key(|&(at, kind, trigger)| (at, trigger as u8, kind as u8));
    out
}

fn in_windows(windows: &[(u64, u64)], at_ms: u64) -> bool {
    windows.iter().any(|&(from, to)| from <= at_ms && at_ms < to)
}

/// Structural checks on the actual log alone: global `(at, home, seq)`
/// order, per-home contiguous sequence numbers, per-trigger lifecycle
/// alternation (never-flap), fixed trigger→severity mapping, no event
/// past the horizon, and no ack inside a caregiver outage.
fn check_log_shape(
    policy: &CarePolicy,
    events: &[CareEvent],
    horizon_ms: u64,
) -> Vec<Violation> {
    let mut violations = Vec::new();
    if !events.is_sorted_by_key(|e| (e.at, e.home, e.seq)) {
        violations.push(Violation {
            oracle: ORACLE,
            detail: "escalation log is not sorted by (at, home, seq)".to_owned(),
        });
    }
    for home in 0..CARE_HOMES as u32 {
        let mut next_seq = 0u32;
        // Lifecycle state per trigger: 0 = closed, 1 = raised, 2 = acked.
        let mut state = [0u8; 3];
        let mut ordered: Vec<&CareEvent> = events.iter().filter(|e| e.home == home).collect();
        ordered.sort_unstable_by_key(|e| e.seq);
        for e in ordered {
            if e.seq != next_seq {
                violations.push(Violation {
                    oracle: ORACLE,
                    detail: format!(
                        "home {home}: seq {} where {next_seq} was expected — per-home \
                         sequence numbers must be contiguous from 0",
                        e.seq
                    ),
                });
            }
            next_seq = e.seq + 1;
            if e.at.as_millis() > horizon_ms {
                violations.push(Violation {
                    oracle: ORACLE,
                    detail: format!("home {home}: event #{} past the horizon", e.seq),
                });
            }
            if e.severity != e.trigger.severity() {
                violations.push(Violation {
                    oracle: ORACLE,
                    detail: format!(
                        "home {home}: {} event carries severity {} instead of the \
                         trigger's fixed {}",
                        e.trigger.name(),
                        e.severity.name(),
                        e.trigger.severity().name()
                    ),
                });
            }
            let slot = e.trigger as usize;
            let (want, next) = match e.kind {
                CareEventKind::Raised => (0, 1),
                CareEventKind::Acked => (1, 2),
                CareEventKind::Resolved => (2, 0),
            };
            if state[slot] != want {
                violations.push(Violation {
                    oracle: ORACLE,
                    detail: format!(
                        "home {home}: {} {:?} out of lifecycle order (flap or skipped \
                         caregiver action)",
                        e.trigger.name(),
                        e.kind
                    ),
                });
            }
            state[slot] = next;
            if e.kind == CareEventKind::Acked
                && in_windows(&policy.no_ack_windows, e.at.as_millis())
            {
                violations.push(Violation {
                    oracle: ORACLE,
                    detail: format!(
                        "home {home}: ack at {} ms lands inside a caregiver no-ack window",
                        e.at.as_millis()
                    ),
                });
            }
        }
    }
    violations
}

/// Runs a care plan through the full differential: walled batch
/// reference (wheel, `jobs = 1`), batch heap at `jobs = 2`, served
/// fleet at `jobs = 2`, plus the WAL re-derivation and log-shape
/// oracles. Returns the violations (empty = contract holds).
#[must_use]
pub fn check_care(plan: &FaultPlan) -> Vec<Violation> {
    let policy = care_policy(plan);
    let (_, wal, care) = run_scale_care_walled(&care_config(plan, EngineKind::Wheel, 1), &policy);
    let mut violations = Vec::new();

    let (_, care_heap) = run_scale_care(&care_config(plan, EngineKind::Heap, 2), &policy);
    if care_heap != care {
        violations.push(Violation {
            oracle: ORACLE,
            detail: "care output diverged between wheel (jobs 1) and heap (jobs 2)".to_owned(),
        });
    }

    let opts = ServeOptions { care: Some(policy.clone()), ..ServeOptions::default() };
    let served = serve_scale(care_config(plan, EngineKind::Wheel, 2), &opts)
        .expect("care DST fleets are far below the u32 ceiling");
    if served.care.as_ref() != Some(&care) {
        violations.push(Violation {
            oracle: ORACLE,
            detail: "served care output diverged from the batch overlay".to_owned(),
        });
    }
    if served.wire.escalations != care.events.len() as u64 {
        violations.push(Violation {
            oracle: ORACLE,
            detail: format!(
                "{} Escalate frames on the wire for {} escalation events",
                served.wire.escalations,
                care.events.len()
            ),
        });
    }

    // Fleet-level process death: snapshot at each kill tick, resume,
    // and require the resumed fleet to be bit-identical to the
    // uninterrupted run. Kill ticks are deliberately allowed to land
    // *inside* an epoch window — the tiled sweep must clip the window
    // exactly at the stop, or the snapshot would carry wakes the
    // strict-order resume never saw.
    let kills: Vec<SimTime> = {
        let mut ks: Vec<SimTime> = plan
            .faults
            .iter()
            .filter(|f| f.kind == FaultKind::CheckpointKillResume)
            .map(|f| SimTime::from_millis(f.from_ms))
            .filter(|&t| t > SimTime::ZERO && t.as_millis() < plan.horizon_ms)
            .collect();
        ks.sort_unstable();
        ks.dedup();
        ks
    };
    if !kills.is_empty() {
        let cfg = care_config(plan, EngineKind::Wheel, 1);
        let full = run_scale(&cfg);
        let (_, ckpts) = run_scale_checkpointed(&cfg, &kills);
        for (ckpt, &at) in ckpts.iter().zip(&kills) {
            match resume_scale(&cfg, ckpt) {
                Ok(resumed) if resumed == full => {}
                Ok(_) => violations.push(Violation {
                    oracle: ORACLE,
                    detail: format!(
                        "kill-resume at {at} diverged from the uninterrupted fleet"
                    ),
                }),
                Err(e) => violations.push(Violation {
                    oracle: ORACLE,
                    detail: format!("kill-resume at {at} failed to restore: {e:?}"),
                }),
            }
        }
    }

    violations.extend(check_log_shape(&policy, &care.events, plan.horizon_ms));

    for home in 0..CARE_HOMES as u32 {
        let expected = expected_home_events(&policy, &wal, home, plan.horizon_ms);
        let actual = actual_home_events(&care.events, home);
        if expected != actual {
            violations.push(Violation {
                oracle: ORACLE,
                detail: format!(
                    "home {home}: escalation log disagrees with the policy re-derivation \
                     from the WAL ({} events expected, {} emitted)",
                    expected.len(),
                    actual.len()
                ),
            });
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::Fault;

    #[test]
    fn generated_care_plans_hold_the_contract() {
        let mut fired = false;
        for seed in 0..3 {
            let plan = FaultPlan::generate_care(seed);
            assert_eq!(check_care(&plan), vec![], "seed {seed}: {plan:?}");
            let policy = care_policy(&plan);
            let (_, _, care) =
                run_scale_care_walled(&care_config(&plan, EngineKind::Wheel, 1), &policy);
            fired |= !care.events.is_empty();
        }
        assert!(fired, "care checks are vacuous: no plan ever escalated");
    }

    #[test]
    fn outage_windows_reach_the_policy_and_shift_acks() {
        let plan = FaultPlan {
            seed: 5,
            horizon_ms: 240_000,
            faults: vec![Fault {
                kind: FaultKind::CaregiverNoAck,
                from_ms: 0,
                to_ms: 120_000,
            }],
            expect_violation: None,
        };
        let policy = care_policy(&plan);
        assert_eq!(policy.no_ack_windows, vec![(0, 120_000)]);
        assert_eq!(check_care(&plan), vec![]);
        let (_, _, care) =
            run_scale_care_walled(&care_config(&plan, EngineKind::Wheel, 1), &policy);
        assert!(
            care.events
                .iter()
                .filter(|e| e.kind == CareEventKind::Acked)
                .all(|e| e.at.as_millis() >= 120_000),
            "an ack landed inside the outage: {care:?}"
        );
    }

    #[test]
    fn a_sabotaged_log_trips_the_oracle() {
        // The structural checker must reject a duplicated raise (flap).
        let plan = FaultPlan::generate_care(0);
        let policy = care_policy(&plan);
        let (_, _, care) =
            run_scale_care_walled(&care_config(&plan, EngineKind::Wheel, 1), &policy);
        let Some(raised) = care
            .events
            .iter()
            .find(|e| e.kind == CareEventKind::Raised)
            .copied()
        else {
            return; // nothing escalated under this seed; covered above
        };
        let mut sabotaged = care.events.clone();
        let mut dup = raised;
        dup.seq = u32::try_from(sabotaged.iter().filter(|e| e.home == dup.home).count())
            .expect("tiny log");
        sabotaged.push(dup);
        let shape = check_log_shape(&policy, &sabotaged, plan.horizon_ms);
        assert!(
            shape.iter().any(|v| v.detail.contains("flap")),
            "duplicate raise went unnoticed: {shape:?}"
        );
    }
}
