//! Served-path harness: run fault plans against the online serving
//! front end (`coreda-serve`) instead of the in-process pipeline, and
//! check the serving determinism contract as oracles.
//!
//! A served plan carries only [`FaultKind::is_frame_fault`] kinds —
//! transport faults on the client→server wire: duplicated, reordered,
//! and delayed `Report` frames, plus a mid-session hangup. The contract
//! under test:
//!
//! - **Transport invisibility** (`served_batch_equivalence`): reports
//!   are advisory, so short of a hangup the served fleet must equal the
//!   batch [`run_scale_walled`] run byte-for-byte — report, telemetry
//!   grid, and delivery log — no matter how the wire mangles frames.
//! - **Disconnect freeze** (`served_disconnect_freeze`): a hangup
//!   freezes exactly the hung-up home — its deliveries are a strict
//!   prefix of the batch run's, all before the cut — and every other
//!   home stays bit-identical to batch.
//! - **Engine equivalence** (`served_engine_equivalence`): the served
//!   wheel at `jobs = 1` and the served heap at `jobs = 2` agree on
//!   every connected home, so the contract holds across both queue
//!   engines and worker counts at once.

use coreda_core::metro::{run_scale_walled, EngineKind, MetroConfig, ScaleReport, ServeCtx};
use coreda_core::wal::WalRecord;
use coreda_des::time::SimDuration;
use coreda_des::SimClock;
use coreda_serve::{serve_fleet, FaultyPipe, MoteClient, PipeFaults, ServeOptions, ServeOutcome};

use crate::oracles::Violation;
use crate::plan::{FaultKind, FaultPlan};

/// Homes per served check: small enough that every plan runs one batch
/// reference plus two served engines quickly, big enough that a frozen
/// home has connected neighbours to diverge.
pub const SERVED_HOMES: usize = 3;

/// The fleet configuration a served plan expands to.
#[must_use]
pub fn served_config(plan: &FaultPlan, engine: EngineKind, jobs: usize) -> MetroConfig {
    MetroConfig {
        homes: SERVED_HOMES,
        horizon: SimDuration::from_millis(plan.horizon_ms),
        seed: plan.seed,
        jobs,
        engine,
        train_episodes: 60,
        // Served horizons are short (three simulations per check), so
        // compress the between-episode gaps or most plans would end
        // before the first wake — vacuously green oracles test nothing.
        gap_min: SimDuration::from_secs(10),
        gap_max: SimDuration::from_secs(40),
        idle_close: SimDuration::from_secs(30),
        ..MetroConfig::default()
    }
}

/// Expands the plan's frame faults into the pipe fault windows every
/// client gets, plus the seed-derived `(home, cut_ms)` hangup if any
/// `FrameDisconnect` is present (the earliest window start wins).
#[must_use]
pub fn pipe_faults(plan: &FaultPlan) -> (PipeFaults, Option<(u32, u64)>) {
    let mut faults = PipeFaults::default();
    let mut disconnect: Option<(u32, u64)> = None;
    for f in &plan.faults {
        match f.kind {
            FaultKind::FrameDup => faults.dup.push((f.from_ms, f.to_ms)),
            FaultKind::FrameReorder => faults.reorder.push((f.from_ms, f.to_ms)),
            FaultKind::FrameDelay => faults.delay.push((f.from_ms, f.to_ms)),
            FaultKind::FrameDisconnect => {
                #[allow(clippy::cast_possible_truncation)]
                let home = (plan.seed % SERVED_HOMES as u64) as u32;
                let cut = disconnect.map_or(f.from_ms, |(_, c)| c.min(f.from_ms));
                disconnect = Some((home, cut));
            }
            _ => {}
        }
    }
    (faults, disconnect)
}

/// Serves `cfg` with every client behind a [`FaultyPipe`] carrying the
/// plan's transport faults.
#[must_use]
pub fn serve_with_faults(
    cfg: MetroConfig,
    base: &PipeFaults,
    disconnect: Option<(u32, u64)>,
) -> ServeOutcome {
    let ctx = ServeCtx::new(cfg).expect("served DST fleets are far below the u32 ceiling");
    let make = |home: u32, digest: u64| {
        let mut faults = base.clone();
        if let Some((h, cut)) = disconnect {
            if h == home {
                faults.disconnect_at_ms = Some(cut);
            }
        }
        FaultyPipe::new(MoteClient::new(home, digest), faults)
    };
    serve_fleet(&ctx, &ServeOptions::default(), &make, &SimClock)
}

fn per_home_log(log: &[WalRecord], home: u32) -> Vec<WalRecord> {
    log.iter().filter(|r| r.home == home).copied().collect()
}

/// Checks one served outcome against the batch reference.
fn check_against_batch(
    engine: EngineKind,
    served: &ServeOutcome,
    batch: &ScaleReport,
    batch_log: &[WalRecord],
    disconnect: Option<(u32, u64)>,
) -> Vec<Violation> {
    let mut violations = Vec::new();
    let report = &served.output.report;
    match disconnect {
        None => {
            // Byte-for-byte: the full report on the same engine, the
            // full log on either (deliveries are state-derived).
            let full = engine == batch.engine && *report != *batch;
            let stats = report.per_home != batch.per_home;
            let log = served.log != batch_log;
            if full || stats || log {
                violations.push(Violation {
                    oracle: "served_batch_equivalence",
                    detail: format!(
                        "served {engine} diverged from batch with no disconnect \
                         (report differs: {stats}, log differs: {log})",
                    ),
                });
            }
        }
        Some((down, cut)) => {
            for (h, (s, b)) in report.per_home.iter().zip(&batch.per_home).enumerate() {
                if h as u32 != down && s != b {
                    violations.push(Violation {
                        oracle: "served_batch_equivalence",
                        detail: format!(
                            "served {engine}: home {h} diverged from batch but only \
                             home {down} disconnected",
                        ),
                    });
                }
                if h as u32 != down {
                    let (sl, bl) = (per_home_log(&served.log, h as u32), per_home_log(batch_log, h as u32));
                    if sl != bl {
                        violations.push(Violation {
                            oracle: "served_batch_equivalence",
                            detail: format!(
                                "served {engine}: home {h} delivery log diverged from \
                                 batch but only home {down} disconnected",
                            ),
                        });
                    }
                }
            }
            let served_down = per_home_log(&served.log, down);
            let batch_down = per_home_log(batch_log, down);
            let prefix = batch_down.starts_with(&served_down);
            let frozen = served_down.iter().all(|r| r.at.as_millis() < cut);
            if !prefix || !frozen {
                violations.push(Violation {
                    oracle: "served_disconnect_freeze",
                    detail: format!(
                        "served {engine}: home {down} hung up at {cut} ms but its \
                         deliveries are not a pre-cut prefix of batch \
                         (prefix: {prefix}, all pre-cut: {frozen})",
                    ),
                });
            }
        }
    }
    violations
}

/// Runs a served plan through the full differential: batch reference,
/// served wheel (`jobs = 1`), served heap (`jobs = 2`), with every
/// oracle attached. Returns the violations (empty = contract holds).
#[must_use]
pub fn check_served(plan: &FaultPlan) -> Vec<Violation> {
    let (faults, disconnect) = pipe_faults(plan);
    let (batch, batch_log) = run_scale_walled(&served_config(plan, EngineKind::Wheel, 1));
    let wheel = serve_with_faults(served_config(plan, EngineKind::Wheel, 1), &faults, disconnect);
    let heap = serve_with_faults(served_config(plan, EngineKind::Heap, 2), &faults, disconnect);

    let mut violations = Vec::new();
    violations.extend(check_against_batch(EngineKind::Wheel, &wheel, &batch, &batch_log, disconnect));
    violations.extend(check_against_batch(EngineKind::Heap, &heap, &batch, &batch_log, disconnect));

    // Engine/jobs differential on every connected home. The frozen home
    // is excluded: the freeze lands on the first *wake* past the cut,
    // and wake granularity is the one thing the engines don't share.
    let down = disconnect.map(|(h, _)| h);
    let engines_agree = wheel
        .output
        .report
        .per_home
        .iter()
        .zip(&heap.output.report.per_home)
        .enumerate()
        .filter(|(h, _)| Some(*h as u32) != down)
        .all(|(h, (w, p))| {
            w == p && per_home_log(&wheel.log, h as u32) == per_home_log(&heap.log, h as u32)
        });
    if !engines_agree {
        violations.push(Violation {
            oracle: "served_engine_equivalence",
            detail: "served wheel (jobs 1) and served heap (jobs 2) diverged on a \
                     connected home"
                .to_owned(),
        });
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::Fault;

    fn transport_plan() -> FaultPlan {
        FaultPlan {
            seed: 11,
            horizon_ms: 90_000,
            faults: vec![
                // Disjoint windows: delay wins over reorder wins over
                // dup where they overlap, so stacking them would shadow
                // the earlier kinds entirely.
                Fault { kind: FaultKind::FrameDup, from_ms: 0, to_ms: 30_000 },
                Fault { kind: FaultKind::FrameReorder, from_ms: 30_000, to_ms: 60_000 },
                Fault { kind: FaultKind::FrameDelay, from_ms: 60_000, to_ms: 90_000 },
            ],
            expect_violation: None,
        }
    }

    #[test]
    fn transport_faults_are_invisible() {
        let plan = transport_plan();
        assert_eq!(check_served(&plan), vec![], "dup/reorder/delay must not perturb the fleet");
        // The faults really were on the wire, not optimised away.
        let (faults, disconnect) = pipe_faults(&plan);
        assert!(disconnect.is_none());
        let outcome =
            serve_with_faults(served_config(&plan, EngineKind::Wheel, 1), &faults, disconnect);
        assert!(outcome.wire.dup_frames > 0, "{:?}", outcome.wire);
        assert!(outcome.wire.late_reports > 0, "{:?}", outcome.wire);
    }

    #[test]
    fn disconnect_freezes_only_the_hung_up_home() {
        let mut plan = transport_plan();
        plan.faults.push(Fault { kind: FaultKind::FrameDisconnect, from_ms: 40_000, to_ms: 40_000 });
        assert_eq!(check_served(&plan), vec![]);
        let (faults, disconnect) = pipe_faults(&plan);
        let (down, _) = disconnect.expect("plan has a disconnect");
        let outcome =
            serve_with_faults(served_config(&plan, EngineKind::Wheel, 1), &faults, disconnect);
        assert_eq!(outcome.wire.disconnects, 1);
        assert!(outcome.wire.skipped_wakes > 0, "{:?}", outcome.wire);
        assert!(u64::from(down) < SERVED_HOMES as u64);
    }

    #[test]
    fn generated_served_plans_hold_the_contract() {
        for seed in 0..3 {
            let plan = FaultPlan::generate_served(seed);
            assert_eq!(check_served(&plan), vec![], "seed {seed}: {plan:?}");
        }
    }
}
