//! Invariant oracles: properties every run must satisfy under *any*
//! fault plan.
//!
//! Event-stream oracles implement [`Oracle`] and watch the trace one
//! event at a time; [`check_trace`] runs the standard set. Whole-run
//! oracles ([`check_q`], [`check_engines`], [`check_jobs`]) compare
//! final state and cross-run fingerprints.

use crate::harness::{RunResult, TraceEvent};

/// One oracle violation: which invariant broke and how.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// Stable oracle name (used in `.seed.json` expectations and shrink
    /// equivalence).
    pub oracle: &'static str,
    /// Human-readable account of the failure.
    pub detail: String,
}

/// An invariant watching the event stream.
pub trait Oracle {
    /// Stable name.
    fn name(&self) -> &'static str;
    /// Observes one event; returns the failure detail on violation.
    fn observe(&mut self, ev: &TraceEvent) -> Result<(), String>;
    /// Called once after the last event, with the run horizon.
    fn finish(&mut self, _horizon_ms: u64) -> Result<(), String> {
        Ok(())
    }
}

/// The standard event-stream oracle set.
#[must_use]
pub fn standard_oracles() -> Vec<Box<dyn Oracle>> {
    vec![
        Box::new(SessionLegality::default()),
        Box::new(NoRedBlinkOnPromptedTool),
        Box::new(EscalationMonotonicity::default()),
        Box::new(IdleTimeoutLiveness::default()),
    ]
}

/// Streams `trace` through the standard oracles; returns every violation.
#[must_use]
pub fn check_trace(trace: &[TraceEvent], horizon_ms: u64) -> Vec<Violation> {
    let mut oracles = standard_oracles();
    let mut violations = Vec::new();
    let mut dead: Vec<bool> = vec![false; oracles.len()];
    for ev in trace {
        for (oracle, dead) in oracles.iter_mut().zip(dead.iter_mut()) {
            if *dead {
                continue;
            }
            if let Err(detail) = oracle.observe(ev) {
                violations.push(Violation { oracle: oracle.name(), detail });
                // One report per oracle per run: later anomalies are
                // usually echoes of the first broken state.
                *dead = true;
            }
        }
    }
    for (oracle, dead) in oracles.iter_mut().zip(dead.iter_mut()) {
        if !*dead {
            if let Err(detail) = oracle.finish(horizon_ms) {
                violations.push(Violation { oracle: oracle.name(), detail });
            }
        }
    }
    violations
}

/// Q-table soundness: every value finite and inside the analytic bound
/// (`terminal / (1 - γ)`, with margin for eligibility-trace transients).
#[must_use]
pub fn check_q(q_values: &[f64], bound: f64) -> Option<Violation> {
    for (i, &v) in q_values.iter().enumerate() {
        if !v.is_finite() {
            return Some(Violation {
                oracle: "q_bound",
                detail: format!("q value #{i} is not finite: {v}"),
            });
        }
        if v.abs() > bound {
            return Some(Violation {
                oracle: "q_bound",
                detail: format!("q value #{i} = {v} exceeds bound {bound}"),
            });
        }
    }
    None
}

/// Differential oracle: the wheel and heap engines must produce
/// bit-identical runs for the same plan.
#[must_use]
pub fn check_engines(wheel: &RunResult, heap: &RunResult) -> Option<Violation> {
    differential("engine_equivalence", "wheel", wheel, "heap", heap)
}

/// Differential oracle: a run that died at a checkpoint and resumed from
/// the decoded snapshot — a full one for the first death, an incremental
/// delta against the previous death's base after that, with the
/// write-ahead log torn mid-chunk each time — must be bit-identical to
/// the ghost run that was never interrupted, logged records included.
#[must_use]
pub fn check_resume(resumed: &RunResult, ghost: &RunResult) -> Option<Violation> {
    differential("resume_equivalence", "resumed", resumed, "ghost", ghost)
}

///// Differential oracle: a batch re-run at `jobs > 1` must reproduce the
/// serial results element for element.
#[must_use]
pub fn check_jobs(serial: &[RunResult], parallel: &[RunResult]) -> Option<Violation> {
    if serial.len() != parallel.len() {
        return Some(Violation {
            oracle: "jobs_equivalence",
            detail: format!(
                "batch size diverged: serial {s} vs parallel {p}",
                s = serial.len(),
                p = parallel.len()
            ),
        });
    }
    for (i, (s, p)) in serial.iter().zip(parallel).enumerate() {
        if let Some(mut v) = differential("jobs_equivalence", "jobs=1", s, "jobs=N", p) {
            v.detail = format!("plan #{i} in batch: {}", v.detail);
            return Some(v);
        }
    }
    None
}

fn differential(
    oracle: &'static str,
    left_name: &str,
    left: &RunResult,
    right_name: &str,
    right: &RunResult,
) -> Option<Violation> {
    if left == right {
        return None;
    }
    let detail = if left.stats != right.stats {
        format!(
            "{left_name} stats {ls:?} != {right_name} stats {rs:?}",
            ls = left.stats,
            rs = right.stats
        )
    } else if left.trace != right.trace {
        let at = left
            .trace
            .iter()
            .zip(&right.trace)
            .position(|(a, b)| a != b)
            .unwrap_or_else(|| left.trace.len().min(right.trace.len()));
        format!(
            "traces diverge at event #{at}: {l:?} vs {r:?} (lengths {ll}/{rl})",
            l = left.trace.get(at),
            r = right.trace.get(at),
            ll = left.trace.len(),
            rl = right.trace.len()
        )
    } else if left.wal != right.wal {
        let at = left
            .wal
            .iter()
            .zip(&right.wal)
            .position(|(a, b)| a != b)
            .unwrap_or_else(|| left.wal.len().min(right.wal.len()));
        format!(
            "write-ahead logs diverge at record #{at}: {l:?} vs {r:?} (lengths {ll}/{rl})",
            l = left.wal.get(at),
            r = right.wal.get(at),
            ll = left.wal.len(),
            rl = right.wal.len()
        )
    } else {
        "q tables diverged".to_string()
    };
    Some(Violation { oracle, detail })
}

/// Session state-machine legality: `Started` only on a closed tracker,
/// `Ended`/`CrossActivityUse` only on the open session's activity.
#[derive(Debug, Default)]
pub struct SessionLegality {
    open: Option<u32>,
}

impl Oracle for SessionLegality {
    fn name(&self) -> &'static str {
        "session_legality"
    }

    fn observe(&mut self, ev: &TraceEvent) -> Result<(), String> {
        match *ev {
            TraceEvent::SessionStarted { at_ms, activity } => {
                if let Some(open) = self.open {
                    return Err(format!(
                        "session for activity {activity} started at {at_ms} ms while activity {open} is still open"
                    ));
                }
                self.open = Some(activity);
            }
            TraceEvent::SessionEnded { at_ms, activity, .. } => match self.open {
                Some(open) if open == activity => self.open = None,
                Some(open) => {
                    return Err(format!(
                        "session for activity {activity} ended at {at_ms} ms but activity {open} is the one open"
                    ))
                }
                None => {
                    return Err(format!(
                        "session for activity {activity} ended at {at_ms} ms with no session open"
                    ))
                }
            },
            TraceEvent::CrossActivityUse { at_ms, active, .. } => match self.open {
                Some(open) if open == active => {}
                _ => {
                    return Err(format!(
                        "cross-activity flag at {at_ms} ms names activity {active} but that session is not open"
                    ))
                }
            },
            _ => {}
        }
        Ok(())
    }
}

/// The reminding layer must never red-blink the tool its own prompt is
/// simultaneously green-blinking: "stop using the kettle — use the
/// kettle" is an incoherent instruction for a confused user.
#[derive(Debug)]
pub struct NoRedBlinkOnPromptedTool;

impl Oracle for NoRedBlinkOnPromptedTool {
    fn name(&self) -> &'static str {
        "no_red_blink_on_prompted_tool"
    }

    fn observe(&mut self, ev: &TraceEvent) -> Result<(), String> {
        if let TraceEvent::Reminder { at_ms, prompt_tool, red_led_tool: Some(red), .. } = *ev {
            if red == prompt_tool {
                return Err(format!(
                    "reminder at {at_ms} ms red-blinks tool {red} while prompting that same tool"
                ));
            }
        }
        Ok(())
    }
}

/// Escalation monotonicity (minimal → specific): once a prompt in the
/// current streak went unanswered, every follow-up reminder before the
/// next advance must be at the specific level.
///
/// Any non-idle sense resets the tracked streak: it may be an advance or
/// a lookahead resync, both of which legitimately restart escalation,
/// and the trace alone cannot tell those apart from a wrong-tool use
/// (which does not reset). The oracle therefore under-approximates — a
/// stuck escalation counter is still caught by the next reminder of the
/// streak, which has no sense at its instant — but it never flags the
/// ambiguous coincidence.
#[derive(Debug, Default)]
pub struct EscalationMonotonicity {
    streak: u32,
}

impl Oracle for EscalationMonotonicity {
    fn name(&self) -> &'static str {
        "escalation_monotonicity"
    }

    fn observe(&mut self, ev: &TraceEvent) -> Result<(), String> {
        match *ev {
            TraceEvent::Reminder { at_ms, specific, .. } => {
                if self.streak > 0 && !specific {
                    return Err(format!(
                        "reminder #{n} of the streak at {at_ms} ms regressed to the minimal level",
                        n = self.streak + 1
                    ));
                }
                self.streak += 1;
            }
            TraceEvent::Praise { .. }
            | TraceEvent::EpisodeStarted { .. }
            | TraceEvent::EpisodeEnded { .. } => {
                self.streak = 0;
            }
            TraceEvent::StepSensed { step, .. } if step != 0 => {
                self.streak = 0;
            }
            _ => {}
        }
        Ok(())
    }
}

/// StepID 0 liveness: an idle detection while a session is open must,
/// within [`IdleTimeoutLiveness::BOUND_MS`], lead to a prompt, a session
/// close, a fresh step, or the episode's end — the system may never
/// shrug at a stalled user and do nothing.
#[derive(Debug, Default)]
pub struct IdleTimeoutLiveness {
    session_open: bool,
    pending_idle: Option<u64>,
}

impl IdleTimeoutLiveness {
    /// The response bound: the 120 s session idle-close plus margin for
    /// detection latency.
    pub const BOUND_MS: u64 = 150_000;

    fn check_deadline(&self, now_ms: u64) -> Result<(), String> {
        if let Some(t0) = self.pending_idle {
            if now_ms > t0 + Self::BOUND_MS {
                return Err(format!(
                    "idle sensed at {t0} ms with a session open drew no prompt, close, or progress within {} ms",
                    Self::BOUND_MS
                ));
            }
        }
        Ok(())
    }
}

impl Oracle for IdleTimeoutLiveness {
    fn name(&self) -> &'static str {
        "idle_timeout_liveness"
    }

    fn observe(&mut self, ev: &TraceEvent) -> Result<(), String> {
        self.check_deadline(ev.at_ms())?;
        match *ev {
            TraceEvent::SessionStarted { .. } => self.session_open = true,
            TraceEvent::SessionEnded { .. } => {
                self.session_open = false;
                self.pending_idle = None;
            }
            TraceEvent::StepSensed { at_ms, step } => {
                if step == 0 {
                    if self.session_open && self.pending_idle.is_none() {
                        self.pending_idle = Some(at_ms);
                    }
                } else {
                    self.pending_idle = None;
                }
            }
            TraceEvent::Reminder { .. } | TraceEvent::EpisodeEnded { .. } => {
                self.pending_idle = None;
            }
            _ => {}
        }
        Ok(())
    }

    fn finish(&mut self, horizon_ms: u64) -> Result<(), String> {
        self.check_deadline(horizon_ms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reminder(at_ms: u64, specific: bool) -> TraceEvent {
        TraceEvent::Reminder { at_ms, prompt_tool: 3, specific, wrong_tool: None, red_led_tool: None }
    }

    #[test]
    fn legal_session_stream_passes() {
        let trace = [
            TraceEvent::SessionStarted { at_ms: 100, activity: 0 },
            TraceEvent::CrossActivityUse { at_ms: 200, active: 0, foreign: 1, tool: 9 },
            TraceEvent::SessionEnded { at_ms: 300, activity: 0, completed: true },
            TraceEvent::SessionStarted { at_ms: 400, activity: 1 },
            TraceEvent::SessionEnded { at_ms: 500, activity: 1, completed: false },
        ];
        assert_eq!(check_trace(&trace, 1_000), vec![]);
    }

    #[test]
    fn double_start_is_flagged() {
        let trace = [
            TraceEvent::SessionStarted { at_ms: 100, activity: 0 },
            TraceEvent::SessionStarted { at_ms: 200, activity: 1 },
        ];
        let violations = check_trace(&trace, 1_000);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].oracle, "session_legality");
    }

    #[test]
    fn red_blink_on_prompted_tool_is_flagged() {
        let trace = [TraceEvent::Reminder {
            at_ms: 100,
            prompt_tool: 4,
            specific: false,
            wrong_tool: Some(4),
            red_led_tool: Some(4),
        }];
        let violations = check_trace(&trace, 1_000);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].oracle, "no_red_blink_on_prompted_tool");
    }

    #[test]
    fn red_blink_on_a_different_tool_is_fine() {
        let trace = [TraceEvent::Reminder {
            at_ms: 100,
            prompt_tool: 4,
            specific: false,
            wrong_tool: Some(5),
            red_led_tool: Some(5),
        }];
        assert_eq!(check_trace(&trace, 1_000), vec![]);
    }

    #[test]
    fn escalation_regression_is_flagged() {
        let trace = [reminder(100, false), reminder(15_100, false)];
        let violations = check_trace(&trace, 20_000);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].oracle, "escalation_monotonicity");
    }

    #[test]
    fn escalated_streak_passes() {
        let trace = [reminder(100, false), reminder(15_100, true), reminder(30_100, true)];
        assert_eq!(check_trace(&trace, 40_000), vec![]);
    }

    #[test]
    fn advance_resets_the_streak() {
        let trace = [
            reminder(100, false),
            TraceEvent::StepSensed { at_ms: 5_000, step: 4 },
            TraceEvent::Praise { at_ms: 5_000 },
            reminder(40_000, false),
        ];
        assert_eq!(check_trace(&trace, 50_000), vec![]);
    }

    #[test]
    fn stuck_escalation_is_caught_on_the_next_plain_reminder() {
        // A reminder sharing its instant with a non-idle sense is
        // ambiguous (wrong-tool use vs resync) and excused — but a stuck
        // escalation counter shows again 15 s later with no sense to
        // hide behind, and that one is flagged.
        let trace = [
            reminder(100, false),
            TraceEvent::StepSensed { at_ms: 15_100, step: 9 },
            reminder(15_100, false),
            reminder(30_100, false),
        ];
        let violations = check_trace(&trace, 40_000);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].oracle, "escalation_monotonicity");
    }

    #[test]
    fn resync_with_same_instant_reminder_restarts_the_streak() {
        // A lookahead resync resets the product's escalation counter; a
        // re-prompt landing at the same instant may legitimately drop
        // back to minimal.
        let trace = [
            reminder(100, false),
            TraceEvent::StepSensed { at_ms: 15_100, step: 9 },
            reminder(15_100, false),
        ];
        assert_eq!(check_trace(&trace, 20_000), vec![]);
    }

    #[test]
    fn unanswered_idle_with_open_session_is_flagged() {
        let trace = [
            TraceEvent::SessionStarted { at_ms: 1_000, activity: 0 },
            TraceEvent::StepSensed { at_ms: 2_000, step: 0 },
        ];
        let violations = check_trace(&trace, 500_000);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].oracle, "idle_timeout_liveness");
    }

    #[test]
    fn idle_answered_by_session_close_passes() {
        let trace = [
            TraceEvent::SessionStarted { at_ms: 1_000, activity: 0 },
            TraceEvent::StepSensed { at_ms: 2_000, step: 0 },
            TraceEvent::SessionEnded { at_ms: 122_000, activity: 0, completed: false },
        ];
        assert_eq!(check_trace(&trace, 500_000), vec![]);
    }

    #[test]
    fn idle_without_a_session_is_exempt() {
        // Total radio blackout: nothing sensed ever opened a session, so
        // there is nothing the server could close or prompt about.
        let trace = [TraceEvent::StepSensed { at_ms: 2_000, step: 0 }];
        assert_eq!(check_trace(&trace, 500_000), vec![]);
    }

    #[test]
    fn q_bound_flags_nan_and_overflow() {
        assert!(check_q(&[0.0, 1.0], 10.0).is_none());
        assert_eq!(check_q(&[f64::NAN], 10.0).unwrap().oracle, "q_bound");
        assert_eq!(check_q(&[11.0], 10.0).unwrap().oracle, "q_bound");
        assert_eq!(check_q(&[f64::INFINITY], 10.0).unwrap().oracle, "q_bound");
    }
}
