//! Hand-rolled `.seed.json` serialization for [`FaultPlan`].
//!
//! The repo is offline, so there is no serde; the format is small enough
//! that a direct writer and a recursive-descent parser are simpler than a
//! dependency anyway. Numbers round-trip exactly: integers are written as
//! integers (seeds are full 64-bit values, beyond `f64` precision, so the
//! parser keeps the raw digits), and floats are written with `{:?}`,
//! which Rust guarantees re-parses to the same bits.

use crate::plan::{Fault, FaultKind, FaultPlan};
use coreda_sensornet::radio::LossModel;

/// Format version stamped into every file; bump on breaking changes.
pub const FORMAT_VERSION: u64 = 1;

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

/// Serializes a plan to pretty-printed `.seed.json` text.
#[must_use]
pub fn to_json(plan: &FaultPlan) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"version\": {FORMAT_VERSION},\n"));
    out.push_str(&format!("  \"seed\": {},\n", plan.seed));
    out.push_str(&format!("  \"horizon_ms\": {},\n", plan.horizon_ms));
    if let Some(oracle) = &plan.expect_violation {
        out.push_str(&format!("  \"expect_violation\": {},\n", quote(oracle)));
    }
    out.push_str("  \"faults\": [");
    for (i, fault) in plan.faults.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    ");
        write_fault(&mut out, fault);
    }
    if plan.faults.is_empty() {
        out.push_str("]\n");
    } else {
        out.push_str("\n  ]\n");
    }
    out.push_str("}\n");
    out
}

fn write_fault(out: &mut String, fault: &Fault) {
    out.push_str(&format!(
        "{{\"kind\": {}, \"from_ms\": {}, \"to_ms\": {}",
        quote(fault.kind.name()),
        fault.from_ms,
        fault.to_ms
    ));
    match fault.kind {
        FaultKind::RadioLoss { model, max_retries } => {
            match model {
                LossModel::Perfect => out.push_str(", \"model\": \"perfect\""),
                LossModel::Bernoulli { p } => {
                    out.push_str(&format!(", \"model\": \"bernoulli\", \"p\": {p:?}"));
                }
                LossModel::GilbertElliott {
                    p_good_to_bad,
                    p_bad_to_good,
                    loss_good,
                    loss_bad,
                } => {
                    out.push_str(&format!(
                        ", \"model\": \"gilbert_elliott\", \"p_good_to_bad\": {p_good_to_bad:?}, \
                         \"p_bad_to_good\": {p_bad_to_good:?}, \"loss_good\": {loss_good:?}, \
                         \"loss_bad\": {loss_bad:?}"
                    ));
                }
            }
            out.push_str(&format!(", \"max_retries\": {max_retries}"));
        }
        FaultKind::NodeCrash { tool } => out.push_str(&format!(", \"tool\": {tool}")),
        FaultKind::SensorFlip { tool, false_positive, false_negative } => {
            out.push_str(&format!(
                ", \"tool\": {tool}, \"false_positive\": {false_positive:?}, \
                 \"false_negative\": {false_negative:?}"
            ));
        }
        FaultKind::ClockSkew { tool, skew_ms } => {
            out.push_str(&format!(", \"tool\": {tool}, \"skew_ms\": {skew_ms}"));
        }
        FaultKind::NonCompliance
        | FaultKind::SevereLapses
        | FaultKind::CheckpointKillResume
        | FaultKind::FrameDup
        | FaultKind::FrameReorder
        | FaultKind::FrameDelay
        | FaultKind::FrameDisconnect
        | FaultKind::CaregiverNoAck => {}
        FaultKind::RoutineDrift { swap_a, swap_b } => {
            out.push_str(&format!(", \"swap_a\": {swap_a}, \"swap_b\": {swap_b}"));
        }
    }
    out.push('}');
}

fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

/// Parses `.seed.json` text back into a plan.
///
/// # Errors
///
/// Returns a human-readable message on malformed JSON, unknown fields of
/// the wrong type, an unsupported `version`, or an unknown fault kind.
pub fn from_json(text: &str) -> Result<FaultPlan, String> {
    let value = Parser { bytes: text.as_bytes(), pos: 0 }.parse_document()?;
    let obj = value.as_obj().ok_or("top level must be an object")?;
    let version = get_u64(obj, "version")?;
    if version != FORMAT_VERSION {
        return Err(format!("unsupported version {version} (expected {FORMAT_VERSION})"));
    }
    let seed = get_u64(obj, "seed")?;
    let horizon_ms = get_u64(obj, "horizon_ms")?;
    let expect_violation = match find(obj, "expect_violation") {
        None | Some(Value::Null) => None,
        Some(Value::Str(s)) => Some(s.clone()),
        Some(_) => return Err("expect_violation must be a string or null".into()),
    };
    let faults_val = find(obj, "faults").ok_or("missing field faults")?;
    let faults_arr = faults_val.as_arr().ok_or("faults must be an array")?;
    let mut faults = Vec::with_capacity(faults_arr.len());
    for (i, fv) in faults_arr.iter().enumerate() {
        faults.push(parse_fault(fv).map_err(|e| format!("fault #{i}: {e}"))?);
    }
    Ok(FaultPlan { seed, horizon_ms, faults, expect_violation })
}

fn parse_fault(value: &Value) -> Result<Fault, String> {
    let obj = value.as_obj().ok_or("must be an object")?;
    let from_ms = get_u64(obj, "from_ms")?;
    let to_ms = get_u64(obj, "to_ms")?;
    if to_ms < from_ms {
        return Err(format!("window ends before it starts ({from_ms}..{to_ms})"));
    }
    let kind_name = get_str(obj, "kind")?;
    let kind = match kind_name {
        "radio_loss" => {
            let model = match get_str(obj, "model")? {
                "perfect" => LossModel::Perfect,
                "bernoulli" => LossModel::Bernoulli { p: get_f64(obj, "p")? },
                "gilbert_elliott" => LossModel::GilbertElliott {
                    p_good_to_bad: get_f64(obj, "p_good_to_bad")?,
                    p_bad_to_good: get_f64(obj, "p_bad_to_good")?,
                    loss_good: get_f64(obj, "loss_good")?,
                    loss_bad: get_f64(obj, "loss_bad")?,
                },
                other => return Err(format!("unknown loss model {other:?}")),
            };
            let max_retries = u8::try_from(get_u64(obj, "max_retries")?)
                .map_err(|_| "max_retries out of range")?;
            FaultKind::RadioLoss { model, max_retries }
        }
        "node_crash" => FaultKind::NodeCrash { tool: get_tool(obj)? },
        "sensor_flip" => FaultKind::SensorFlip {
            tool: get_tool(obj)?,
            false_positive: get_f64(obj, "false_positive")?,
            false_negative: get_f64(obj, "false_negative")?,
        },
        "clock_skew" => {
            FaultKind::ClockSkew { tool: get_tool(obj)?, skew_ms: get_i64(obj, "skew_ms")? }
        }
        "non_compliance" => FaultKind::NonCompliance,
        "severe_lapses" => FaultKind::SevereLapses,
        "checkpoint_kill_resume" => FaultKind::CheckpointKillResume,
        "frame_dup" => FaultKind::FrameDup,
        "frame_reorder" => FaultKind::FrameReorder,
        "frame_delay" => FaultKind::FrameDelay,
        "frame_disconnect" => FaultKind::FrameDisconnect,
        "caregiver_no_ack" => FaultKind::CaregiverNoAck,
        "routine_drift" => FaultKind::RoutineDrift {
            swap_a: u8::try_from(get_u64(obj, "swap_a")?).map_err(|_| "swap_a out of range")?,
            swap_b: u8::try_from(get_u64(obj, "swap_b")?).map_err(|_| "swap_b out of range")?,
        },
        other => return Err(format!("unknown fault kind {other:?}")),
    };
    Ok(Fault { kind, from_ms, to_ms })
}

fn get_tool(obj: &[(String, Value)]) -> Result<u16, String> {
    u16::try_from(get_u64(obj, "tool")?).map_err(|_| "tool id out of range".into())
}

// -- generic JSON value ------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Value {
    Null,
    Bool(bool),
    /// Raw digit run; converted on demand so 64-bit seeds survive intact.
    Num(String),
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

impl Value {
    fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }
}

fn find<'a>(obj: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn get_num<'a>(obj: &'a [(String, Value)], key: &str) -> Result<&'a str, String> {
    match find(obj, key) {
        Some(Value::Num(raw)) => Ok(raw),
        Some(_) => Err(format!("field {key} must be a number")),
        None => Err(format!("missing field {key}")),
    }
}

fn get_u64(obj: &[(String, Value)], key: &str) -> Result<u64, String> {
    get_num(obj, key)?.parse().map_err(|_| format!("field {key} is not a u64"))
}

fn get_i64(obj: &[(String, Value)], key: &str) -> Result<i64, String> {
    get_num(obj, key)?.parse().map_err(|_| format!("field {key} is not an i64"))
}

fn get_f64(obj: &[(String, Value)], key: &str) -> Result<f64, String> {
    get_num(obj, key)?.parse().map_err(|_| format!("field {key} is not an f64"))
}

fn get_str<'a>(obj: &'a [(String, Value)], key: &str) -> Result<&'a str, String> {
    match find(obj, key) {
        Some(Value::Str(s)) => Ok(s),
        Some(_) => Err(format!("field {key} must be a string")),
        None => Err(format!("missing field {key}")),
    }
}

// -- recursive descent -------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn parse_document(mut self) -> Result<Value, String> {
        let value = self.parse_value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(format!("trailing garbage at byte {}", self.pos));
        }
        Ok(value)
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, String> {
        self.skip_ws();
        self.bytes.get(self.pos).copied().ok_or_else(|| "unexpected end of input".into())
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        let got = self.peek()?;
        if got != b {
            return Err(format!(
                "expected {:?} at byte {}, found {:?}",
                b as char, self.pos, got as char
            ));
        }
        self.pos += 1;
        Ok(())
    }

    fn eat_keyword(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, String> {
        match self.peek()? {
            b'{' => self.parse_object(),
            b'[' => self.parse_array(),
            b'"' => Ok(Value::Str(self.parse_string()?)),
            b't' if self.eat_keyword("true") => Ok(Value::Bool(true)),
            b'f' if self.eat_keyword("false") => Ok(Value::Bool(false)),
            b'n' if self.eat_keyword("null") => Ok(Value::Null),
            b'-' | b'0'..=b'9' => self.parse_number(),
            other => Err(format!("unexpected {:?} at byte {}", other as char, self.pos)),
        }
    }

    fn parse_object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.expect(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                other => {
                    return Err(format!("expected ',' or '}}' found {:?}", other as char));
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.parse_value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                other => {
                    return Err(format!("expected ',' or ']' found {:?}", other as char));
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or("unterminated string")?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self.bytes.get(self.pos).ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            out.push(
                                char::from_u32(code).ok_or("\\u escape is not a scalar value")?,
                            );
                        }
                        other => return Err(format!("bad escape \\{}", other as char)),
                    }
                }
                // Multi-byte UTF-8: copy the raw continuation bytes through.
                b if b >= 0x80 => {
                    let start = self.pos - 1;
                    while matches!(self.bytes.get(self.pos), Some(c) if c & 0xC0 == 0x80) {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| "invalid UTF-8 in string")?,
                    );
                }
                b => out.push(b as char),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while matches!(
            self.bytes.get(self.pos),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err("empty number".into());
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("digits are ASCII")
            .to_owned();
        // Validate eagerly so garbage fails at parse time, not field access.
        raw.parse::<f64>().map_err(|_| format!("malformed number {raw:?}"))?;
        Ok(Value::Num(raw))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_plan() -> FaultPlan {
        FaultPlan {
            seed: u64::MAX - 12345,
            horizon_ms: 240_000,
            faults: vec![
                Fault {
                    kind: FaultKind::RadioLoss {
                        model: LossModel::Bernoulli { p: 0.372_519 },
                        max_retries: 1,
                    },
                    from_ms: 0,
                    to_ms: 60_000,
                },
                Fault {
                    kind: FaultKind::RadioLoss {
                        model: LossModel::GilbertElliott {
                            p_good_to_bad: 0.05,
                            p_bad_to_good: 0.2,
                            loss_good: 0.02,
                            loss_bad: 0.7,
                        },
                        max_retries: 3,
                    },
                    from_ms: 10_000,
                    to_ms: 90_000,
                },
                Fault { kind: FaultKind::NodeCrash { tool: 4 }, from_ms: 5_000, to_ms: 25_000 },
                Fault {
                    kind: FaultKind::SensorFlip {
                        tool: 5,
                        false_positive: 0.012_345_678_9,
                        false_negative: 0.4,
                    },
                    from_ms: 0,
                    to_ms: 240_000,
                },
                Fault {
                    kind: FaultKind::ClockSkew { tool: 6, skew_ms: -15_250 },
                    from_ms: 100,
                    to_ms: 200,
                },
                Fault { kind: FaultKind::NonCompliance, from_ms: 0, to_ms: 100 },
                Fault { kind: FaultKind::SevereLapses, from_ms: 0, to_ms: 100 },
                Fault {
                    kind: FaultKind::CheckpointKillResume,
                    from_ms: 60_000,
                    to_ms: 60_000,
                },
                Fault {
                    kind: FaultKind::RoutineDrift { swap_a: 1, swap_b: 3 },
                    from_ms: 0,
                    to_ms: 100,
                },
                Fault { kind: FaultKind::FrameDup, from_ms: 0, to_ms: 30_000 },
                Fault { kind: FaultKind::FrameReorder, from_ms: 10_000, to_ms: 50_000 },
                Fault { kind: FaultKind::FrameDelay, from_ms: 0, to_ms: 240_000 },
                Fault { kind: FaultKind::FrameDisconnect, from_ms: 90_000, to_ms: 90_000 },
            ],
            expect_violation: Some("no_red_blink_on_prompted_tool".into()),
        }
    }

    #[test]
    fn round_trips_every_fault_kind() {
        let plan = full_plan();
        let text = to_json(&plan);
        assert_eq!(from_json(&text).unwrap(), plan);
    }

    #[test]
    fn round_trips_without_expectation() {
        let plan = FaultPlan { expect_violation: None, ..full_plan() };
        let text = to_json(&plan);
        assert!(!text.contains("expect_violation"));
        assert_eq!(from_json(&text).unwrap(), plan);
    }

    #[test]
    fn round_trips_generated_plans() {
        for seed in 0..50 {
            let plan = FaultPlan::generate(seed, &[3, 4, 5, 6]);
            assert_eq!(from_json(&to_json(&plan)).unwrap(), plan, "seed {seed}");
        }
    }

    #[test]
    fn full_seed_precision_survives() {
        let plan = FaultPlan {
            seed: 0xDEAD_BEEF_CAFE_F00D,
            horizon_ms: 120_000,
            faults: vec![Fault { kind: FaultKind::NonCompliance, from_ms: 0, to_ms: 1 }],
            expect_violation: None,
        };
        assert_eq!(from_json(&to_json(&plan)).unwrap().seed, 0xDEAD_BEEF_CAFE_F00D);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_json("").is_err());
        assert!(from_json("{").is_err());
        assert!(from_json("[]").is_err());
        assert!(from_json("{\"version\": 1}").is_err());
        assert!(from_json("{\"version\": 99, \"seed\": 1, \"horizon_ms\": 1, \"faults\": []}")
            .is_err());
        let bad_kind = "{\"version\": 1, \"seed\": 1, \"horizon_ms\": 1, \
                        \"faults\": [{\"kind\": \"warp_core\", \"from_ms\": 0, \"to_ms\": 1}]}";
        assert!(from_json(bad_kind).unwrap_err().contains("warp_core"));
    }

    #[test]
    fn accepts_null_expectation() {
        let text = "{\"version\": 1, \"seed\": 7, \"horizon_ms\": 1000, \
                    \"expect_violation\": null, \"faults\": []}";
        assert_eq!(from_json(text).unwrap().expect_violation, None);
    }
}
