//! Patient-behavior wrappers the fault windows drive.

use coreda_adl::activity::AdlSpec;
use coreda_adl::patient::PatientAction;
use coreda_adl::routine::Routine;
use coreda_adl::step::Step;
use coreda_adl::tool::Tool;
use coreda_core::live::PatientBehavior;
use coreda_core::reminding::Prompt;
use coreda_des::rng::SimRng;
use coreda_des::time::SimDuration;

/// Wraps any behavior with the plan-driven patient faults: during a
/// non-compliance window every prompt is ignored; during a severe-lapse
/// window step boundaries freeze or grab a wrong tool at elevated rates.
///
/// The harness flips the two flags from the fault windows before each
/// pipeline tick, so the extra random draws happen at exactly the same
/// instants whichever engine drives the run.
#[derive(Debug)]
pub struct FaultyBehavior<B> {
    inner: B,
    /// Active non-compliance window: ignore every prompt.
    pub non_compliant: bool,
    /// Active severe-lapse window: error-prone step boundaries.
    pub lapsing: bool,
}

impl<B: PatientBehavior> FaultyBehavior<B> {
    /// Wraps `inner` with both fault flags off.
    pub fn new(inner: B) -> Self {
        FaultyBehavior { inner, non_compliant: false, lapsing: false }
    }
}

impl<B: PatientBehavior> PatientBehavior for FaultyBehavior<B> {
    fn at_boundary(
        &mut self,
        idx: usize,
        routine: &Routine,
        spec: &AdlSpec,
        rng: &mut SimRng,
    ) -> PatientAction {
        if self.lapsing {
            let roll = rng.uniform_range(0.0, 1.0);
            if roll < 0.25 {
                return PatientAction::Freeze;
            }
            if roll < 0.5 && !spec.tools().is_empty() {
                let tool = rng.choose(spec.tools());
                return PatientAction::WrongTool(Tool::id(tool));
            }
        }
        self.inner.at_boundary(idx, routine, spec, rng)
    }

    fn step_duration(&mut self, step: &Step, rng: &mut SimRng) -> SimDuration {
        self.inner.step_duration(step, rng)
    }

    fn complies(&mut self, prompt: &Prompt, rng: &mut SimRng) -> bool {
        if self.non_compliant {
            // Deliberately no inner draw: the window overrides the
            // patient, it does not consult them.
            return false;
        }
        self.inner.complies(prompt, rng)
    }
}

/// Ignores the first `ignore_first` prompts of the run, then behaves as
/// `inner` — the "stubborn patient" of the failure-injection tests, who
/// forces escalation from minimal to specific reminders.
#[derive(Debug)]
pub struct StubbornBehavior<B> {
    inner: B,
    ignore_first: usize,
    ignored: usize,
}

impl<B: PatientBehavior> StubbornBehavior<B> {
    /// Wraps `inner`, ignoring the first `ignore_first` prompts.
    pub fn new(inner: B, ignore_first: usize) -> Self {
        StubbornBehavior { inner, ignore_first, ignored: 0 }
    }

    /// Prompts ignored so far.
    #[must_use]
    pub const fn ignored(&self) -> usize {
        self.ignored
    }
}

impl<B: PatientBehavior> PatientBehavior for StubbornBehavior<B> {
    fn at_boundary(
        &mut self,
        idx: usize,
        routine: &Routine,
        spec: &AdlSpec,
        rng: &mut SimRng,
    ) -> PatientAction {
        self.inner.at_boundary(idx, routine, spec, rng)
    }

    fn step_duration(&mut self, step: &Step, rng: &mut SimRng) -> SimDuration {
        self.inner.step_duration(step, rng)
    }

    fn complies(&mut self, prompt: &Prompt, rng: &mut SimRng) -> bool {
        if self.ignored < self.ignore_first {
            self.ignored += 1;
            return false;
        }
        self.inner.complies(prompt, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coreda_core::live::ScriptedBehavior;
    use coreda_core::reminding::ReminderLevel;
    use coreda_adl::tool::ToolId;

    fn prompt() -> Prompt {
        Prompt { tool: ToolId::new(3), level: ReminderLevel::Minimal }
    }

    #[test]
    fn stubborn_ignores_then_complies() {
        let mut b = StubbornBehavior::new(ScriptedBehavior::new(), 2);
        let mut rng = SimRng::seed_from(1);
        assert!(!b.complies(&prompt(), &mut rng));
        assert!(!b.complies(&prompt(), &mut rng));
        assert!(b.complies(&prompt(), &mut rng));
        assert_eq!(b.ignored(), 2);
    }

    #[test]
    fn non_compliance_window_overrides_inner() {
        let mut b = FaultyBehavior::new(ScriptedBehavior::new());
        let mut rng = SimRng::seed_from(1);
        assert!(b.complies(&prompt(), &mut rng), "scripted behavior always complies");
        b.non_compliant = true;
        assert!(!b.complies(&prompt(), &mut rng));
        b.non_compliant = false;
        assert!(b.complies(&prompt(), &mut rng));
    }
}
