//! Regression-corpus replay: deterministically re-run checked-in
//! `.seed.json` plans and compare against their recorded expectations.
//!
//! A corpus entry either expects a named oracle violation (a shrunken
//! repro of a once-real bug — the named oracle must still fire) or
//! expects a clean pass (every oracle must stay silent). Replays are
//! bit-identical to the original fuzz run because a plan carries its own
//! seed and the harness draws every stream from it.

use std::path::{Path, PathBuf};

use crate::harness::Harness;
use crate::json;
use crate::oracles::Violation;

/// The result of replaying one corpus entry.
#[derive(Debug, Clone)]
pub struct ReplayOutcome {
    /// Source file, when replayed from disk.
    pub file: Option<PathBuf>,
    /// The plan's own seed.
    pub plan_seed: u64,
    /// The oracle the entry expects to fire (`None` = expects clean).
    pub expected: Option<String>,
    /// What actually fired.
    pub violations: Vec<Violation>,
    /// Whether reality matched the expectation.
    pub pass: bool,
}

impl ReplayOutcome {
    /// One-line summary for the CLI.
    #[must_use]
    pub fn render(&self) -> String {
        let name = self
            .file
            .as_ref()
            .and_then(|p| p.file_name())
            .map_or_else(|| format!("seed {:#x}", self.plan_seed), |n| n.to_string_lossy().into_owned());
        let verdict = if self.pass { "ok" } else { "FAIL" };
        let expectation = match &self.expected {
            Some(oracle) => format!("expects {oracle}"),
            None => "expects clean".to_owned(),
        };
        let got = if self.violations.is_empty() {
            "clean".to_owned()
        } else {
            self.violations
                .iter()
                .map(|v| v.oracle)
                .collect::<Vec<_>>()
                .join(", ")
        };
        format!("{verdict:4} {name} ({expectation}; got {got})")
    }
}

/// Replays a plan from `.seed.json` text.
///
/// # Errors
///
/// Returns the parse error for malformed text.
pub fn replay_str(harness: &Harness, text: &str) -> Result<ReplayOutcome, String> {
    let plan = json::from_json(text)?;
    // Frame-fault plans target the served ingestion path and care plans
    // the escalation overlay: the in-process harness cannot apply
    // either, so they replay through their own differentials instead.
    let violations = if plan.has_care_faults() {
        crate::care::check_care(&plan)
    } else if plan.has_frame_faults() {
        crate::served::check_served(&plan)
    } else {
        harness.check(&plan).violations
    };
    let pass = match &plan.expect_violation {
        Some(oracle) => violations.iter().any(|v| v.oracle == *oracle),
        None => violations.is_empty(),
    };
    Ok(ReplayOutcome {
        file: None,
        plan_seed: plan.seed,
        expected: plan.expect_violation,
        violations,
        pass,
    })
}

/// Replays one `.seed.json` file.
///
/// # Errors
///
/// Returns I/O failures and parse errors as a message naming the file.
pub fn replay_file(harness: &Harness, path: &Path) -> Result<ReplayOutcome, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("{}: {e}", path.display()))?;
    let mut outcome =
        replay_str(harness, &text).map_err(|e| format!("{}: {e}", path.display()))?;
    outcome.file = Some(path.to_path_buf());
    Ok(outcome)
}

/// Replays every `*.seed.json` under `dir`, in file-name order.
///
/// # Errors
///
/// Fails on an unreadable directory, an unreadable or malformed entry,
/// or an empty corpus (an empty directory usually means a wrong path —
/// silently passing would be worse).
pub fn replay_dir(harness: &Harness, dir: &Path) -> Result<Vec<ReplayOutcome>, String> {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("{}: {e}", dir.display()))?
        .filter_map(Result::ok)
        .map(|entry| entry.path())
        .filter(|p| p.file_name().is_some_and(|n| n.to_string_lossy().ends_with(".seed.json")))
        .collect();
    paths.sort();
    if paths.is_empty() {
        return Err(format!("{}: no .seed.json entries", dir.display()));
    }
    paths.iter().map(|p| replay_file(harness, p)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::FaultPlan;

    #[test]
    fn clean_plan_replays_as_pass() {
        let harness = Harness::new();
        let plan = FaultPlan {
            seed: 7,
            horizon_ms: 120_000,
            faults: vec![],
            expect_violation: None,
        };
        let outcome = replay_str(&harness, &json::to_json(&plan)).unwrap();
        assert!(outcome.pass, "{outcome:?}");
        assert!(outcome.render().starts_with("ok"));
    }

    #[test]
    fn wrong_expectation_fails_the_replay() {
        let harness = Harness::new();
        let plan = FaultPlan {
            seed: 7,
            horizon_ms: 120_000,
            faults: vec![],
            expect_violation: Some("q_bound".into()),
        };
        let outcome = replay_str(&harness, &json::to_json(&plan)).unwrap();
        assert!(!outcome.pass, "a clean run cannot satisfy an expected violation");
        assert!(outcome.render().starts_with("FAIL"));
    }

    #[test]
    fn malformed_text_is_an_error() {
        let harness = Harness::new();
        assert!(replay_str(&harness, "not json").is_err());
    }
}
