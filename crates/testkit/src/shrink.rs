//! Greedy fault-plan shrinking: reduce a violating plan to a minimal
//! repro while the same oracle keeps firing.
//!
//! Classic delta-debugging-lite. Each pass proposes strictly smaller
//! candidates — drop one fault, halve the horizon, halve one window from
//! the tail or the head — re-runs the full deterministic check, and keeps
//! the first candidate that still trips the *same* oracle. Passes repeat
//! from the smaller plan until a fixpoint or the run budget is spent.

use crate::harness::Harness;
use crate::oracles::Violation;
use crate::plan::{FaultPlan, TICK_MS};

/// Hard cap on deterministic re-runs per shrink; each run simulates the
/// whole plan on both engines, so this bounds shrink latency.
pub const MAX_SHRINK_RUNS: usize = 200;

/// Horizons are never shrunk below this — a run needs room for at least
/// one full episode plus the idle-close window.
pub const MIN_HORIZON_MS: u64 = 60_000;

/// A shrink result: the minimal plan plus how many re-runs it cost.
#[derive(Debug, Clone, PartialEq)]
pub struct Shrunk {
    /// Minimal reproducing plan, with `expect_violation` filled in so it
    /// can be written straight into the regression corpus.
    pub plan: FaultPlan,
    /// Deterministic re-runs spent.
    pub runs: usize,
}

/// Shrinks `plan` while `oracle` (a [`crate::oracles::Violation::oracle`]
/// name) keeps firing under [`Harness::check`].
#[must_use]
pub fn shrink(harness: &Harness, plan: &FaultPlan, oracle: &str) -> Shrunk {
    shrink_with(|p| harness.check(p).violations, plan, oracle)
}

/// Shrinks `plan` under an arbitrary deterministic check — the same
/// greedy passes as [`shrink`], parameterised so the served-path harness
/// (whose plans the in-process [`Harness`] cannot reproduce) shrinks
/// through its own pipeline.
#[must_use]
pub fn shrink_with<F>(check: F, plan: &FaultPlan, oracle: &str) -> Shrunk
where
    F: Fn(&FaultPlan) -> Vec<Violation>,
{
    let mut best = plan.clone();
    let mut runs = 0usize;
    'passes: loop {
        for candidate in candidates(&best) {
            if runs >= MAX_SHRINK_RUNS {
                break 'passes;
            }
            runs += 1;
            let still_fires = check(&candidate).iter().any(|v| v.oracle == oracle);
            if still_fires {
                best = candidate;
                // Restart from the smaller plan: earlier candidates that
                // failed may succeed now that something else shrank.
                continue 'passes;
            }
        }
        break;
    }
    best.expect_violation = Some(oracle.to_owned());
    Shrunk { plan: best, runs }
}

/// Strictly smaller variants of `plan`, cheapest reductions first.
pub(crate) fn candidates(plan: &FaultPlan) -> Vec<FaultPlan> {
    let mut out = Vec::new();

    // Drop one fault at a time (keep at least one: an all-clear plan
    // cannot reproduce anything the fault model caused).
    if plan.faults.len() > 1 {
        for i in 0..plan.faults.len() {
            let mut p = plan.clone();
            p.faults.remove(i);
            out.push(p);
        }
    }

    // Halve the horizon, clamping windows into the new range.
    let half_horizon = round_to_tick((plan.horizon_ms / 2).max(MIN_HORIZON_MS));
    if half_horizon < plan.horizon_ms {
        let mut p = plan.clone();
        p.horizon_ms = half_horizon;
        for f in &mut p.faults {
            f.from_ms = f.from_ms.min(half_horizon);
            f.to_ms = f.to_ms.min(half_horizon);
        }
        out.push(p);
    }

    // Halve each window from the tail, then from the head.
    for i in 0..plan.faults.len() {
        let f = plan.faults[i];
        let len = f.window_ms();
        if len > TICK_MS {
            let half = round_to_tick(len / 2);
            let mut tail = plan.clone();
            tail.faults[i].to_ms = f.from_ms + half;
            out.push(tail);
            let mut head = plan.clone();
            head.faults[i].from_ms = f.to_ms - half;
            out.push(head);
        }
    }

    out
}

fn round_to_tick(ms: u64) -> u64 {
    (ms / TICK_MS).max(1) * TICK_MS
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{Fault, FaultKind};

    fn plan() -> FaultPlan {
        FaultPlan {
            seed: 9,
            horizon_ms: 240_000,
            faults: vec![
                Fault { kind: FaultKind::NonCompliance, from_ms: 0, to_ms: 100_000 },
                Fault { kind: FaultKind::SevereLapses, from_ms: 50_000, to_ms: 200_000 },
            ],
            expect_violation: None,
        }
    }

    #[test]
    fn candidates_are_strictly_smaller() {
        let base = plan();
        let base_mass: u64 = base.faults.iter().map(Fault::window_ms).sum();
        for c in candidates(&base) {
            let mass: u64 = c.faults.iter().map(Fault::window_ms).sum();
            let smaller = c.faults.len() < base.faults.len()
                || c.horizon_ms < base.horizon_ms
                || mass < base_mass;
            assert!(smaller, "candidate is not smaller: {c:?}");
            assert_eq!(c.seed, base.seed, "shrinking must never change the seed");
            for f in &c.faults {
                assert!(f.from_ms <= f.to_ms);
                assert!(f.to_ms <= c.horizon_ms);
                assert_eq!(f.from_ms % TICK_MS, 0);
                assert_eq!(f.to_ms % TICK_MS, 0);
            }
        }
    }

    #[test]
    fn never_drops_the_last_fault() {
        let mut single = plan();
        single.faults.truncate(1);
        assert!(candidates(&single).iter().all(|c| !c.faults.is_empty()));
    }

    #[test]
    fn horizon_respects_the_floor() {
        let mut short = plan();
        short.horizon_ms = MIN_HORIZON_MS;
        assert!(candidates(&short).iter().all(|c| c.horizon_ms >= MIN_HORIZON_MS));
    }
}
