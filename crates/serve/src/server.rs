//! The serving loop: one [`crate::metro_session`]-backed session per
//! shard, each home fronted by a byte-level [`Client`] connection.
//!
//! The server owns the simulation. Clients never advance state — their
//! `Report` frames only move a per-connection *watermark* the server
//! uses as flow-control metadata (late/stale/duplicate accounting).
//! That inversion is what makes the served path deterministic: under
//! the sim clock a served fleet is bit-identical to the batch
//! [`coreda_core::run_scale`] sweep at any worker count and either
//! queue engine, no matter what the transport does short of a hangup.

use std::time::Instant;

use coreda_core::escalation::{CareOutput, CarePolicy};
use coreda_core::fleet::FleetEngine;
use coreda_core::metro::{collect_served, FleetTooLarge, MetroConfig, ServeCtx, TraceOutput};
use coreda_core::wal::WalRecord;
use coreda_des::stats::Histogram;
use coreda_des::time::SimTime;
use coreda_des::{Clock, SimClock};

use crate::client::{Client, MoteClient};
use crate::wire::{encode_frame, try_decode, Frame};

/// Latency histogram shape shared by every shard so the fleet merge is
/// well-defined: `[0, 10 ms)` in 64 bins of ~156 µs, measured in µs.
const LATENCY_LO_US: f64 = 0.0;
const LATENCY_HI_US: f64 = 10_000.0;
const LATENCY_BINS: usize = 64;

/// What the served pipeline observes beyond the simulation itself.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServeOptions {
    /// Tap per-home event streams into the report (as `run_scale_traced`).
    pub record: bool,
    /// Run the per-home flight recorder (as the `trace` paths).
    pub trace: bool,
    /// Run the caregiver escalation overlay: escalation lifecycle
    /// events ride the served path as `Escalate` frames, and the
    /// outcome carries the fleet care output.
    pub care: Option<CarePolicy>,
}

/// Wire-level accounting for a served run. Every counter is a pure
/// function of the frame streams, so under the sim clock the whole
/// struct is deterministic — which is what lets the load-generator
/// golden pin it byte-for-byte.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WireStats {
    /// Client→server frames decoded.
    pub frames_in: u64,
    /// Server→client frames encoded.
    pub frames_out: u64,
    /// Client→server bytes received.
    pub bytes_in: u64,
    /// Server→client bytes sent.
    pub bytes_out: u64,
    /// `Hello` handshakes received.
    pub hellos: u64,
    /// `Welcome` acceptances sent.
    pub welcomes: u64,
    /// Handshakes rejected (wrong home or config digest).
    pub handshake_rejects: u64,
    /// `Poll` wake offers sent.
    pub polls: u64,
    /// `Report` frames received (including duplicates and stale ones).
    pub reports: u64,
    /// `Deliver` prompt frames sent.
    pub delivers: u64,
    /// `Escalate` caregiver frames sent.
    pub escalations: u64,
    /// `Bye` frames sent.
    pub byes_out: u64,
    /// Reports repeating the connection's last sequence number.
    pub dup_frames: u64,
    /// Reports older than one already accepted (reordering).
    pub stale_reports: u64,
    /// Wakes served before the home's watermark had caught up
    /// (delayed or missing reports — served anyway; reports are
    /// advisory).
    pub late_reports: u64,
    /// Client hangups (`Bye` received).
    pub disconnects: u64,
    /// Wakes consumed for disconnected homes without touching state.
    pub skipped_wakes: u64,
    /// Client→server buffers abandoned on a framing error.
    pub decode_errors: u64,
}

impl WireStats {
    /// Folds another shard's counters into this one.
    pub fn absorb(&mut self, other: &WireStats) {
        self.frames_in += other.frames_in;
        self.frames_out += other.frames_out;
        self.bytes_in += other.bytes_in;
        self.bytes_out += other.bytes_out;
        self.hellos += other.hellos;
        self.welcomes += other.welcomes;
        self.handshake_rejects += other.handshake_rejects;
        self.polls += other.polls;
        self.reports += other.reports;
        self.delivers += other.delivers;
        self.escalations += other.escalations;
        self.byes_out += other.byes_out;
        self.dup_frames += other.dup_frames;
        self.stale_reports += other.stale_reports;
        self.late_reports += other.late_reports;
        self.disconnects += other.disconnects;
        self.skipped_wakes += other.skipped_wakes;
        self.decode_errors += other.decode_errors;
    }
}

/// A served fleet's merged result: the batch-identical simulation
/// output, the fleet-ordered delivery log, the wire accounting, and the
/// wall-clock delivery-latency histogram (µs from wake instant to
/// `Deliver` encode; only meaningful under a wall clock).
#[derive(Debug)]
pub struct ServeOutcome {
    /// Report + telemetry, bit-identical to the batch run under the sim
    /// clock.
    pub output: TraceOutput,
    /// Every delivery, sorted `(at, home)` — the served counterpart of
    /// [`coreda_core::run_scale_walled`]'s event log.
    pub log: Vec<WalRecord>,
    /// Wire-level counters across all shards.
    pub wire: WireStats,
    /// Delivery latency in µs (wake pop → `Deliver` frame encoded).
    pub latency_us: Histogram,
    /// Escalation log + fleet analytics when [`ServeOptions::care`] was
    /// set — bit-identical to the batch overlay under the sim clock.
    pub care: Option<CareOutput>,
}

/// How a report's sequence number relates to the connection's advisory
/// watermark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReportClass {
    /// A new report: the watermark may advance.
    Fresh,
    /// Repeats the last accepted sequence number.
    Dup,
    /// Older than one already accepted, or the `u32::MAX` sentinel.
    Stale,
}

/// Classifies a report against the connection's last accepted sequence
/// number. `u32::MAX` is reserved as a sentinel: a client whose counter
/// saturated there can emit it forever, and letting it advance the
/// watermark would make every later (wrapped or recovered) report look
/// stale — so a max-seq report is deterministically counted stale and
/// never moves the watermark, whatever `last_seq` holds.
#[must_use]
pub fn classify_report(last_seq: Option<u32>, seq: u32) -> ReportClass {
    if seq == u32::MAX {
        return ReportClass::Stale;
    }
    match last_seq {
        Some(last) if seq == last => ReportClass::Dup,
        Some(last) if seq < last => ReportClass::Stale,
        _ => ReportClass::Fresh,
    }
}

/// One home's connection state.
struct Conn<C> {
    client: C,
    /// Client→server bytes not yet decoded (whole or partial frames).
    inbound: Vec<u8>,
    /// Server→client bytes queued for the next flush.
    outbox: Vec<u8>,
    /// Highest report instant accepted; advisory flow-control metadata,
    /// never a state source.
    watermark: Option<SimTime>,
    last_seq: Option<u32>,
    disconnected: bool,
}

impl<C: Client> Conn<C> {
    /// Decodes everything decodable in `inbound`, updating counters and
    /// the watermark. A framing error abandons the rest of the buffer.
    fn drain(&mut self, home: u32, stats: &mut WireStats) {
        let mut offset = 0;
        loop {
            match try_decode(&self.inbound[offset..]) {
                Ok(Some((frame, used))) => {
                    offset += used;
                    stats.frames_in += 1;
                    stats.bytes_in += used as u64;
                    match frame {
                        Frame::Report { home: h, at, seq } => {
                            debug_assert_eq!(h, home);
                            stats.reports += 1;
                            match classify_report(self.last_seq, seq) {
                                ReportClass::Dup => stats.dup_frames += 1,
                                ReportClass::Stale => stats.stale_reports += 1,
                                ReportClass::Fresh => {
                                    self.last_seq = Some(seq);
                                    if self.watermark.is_none_or(|w| at > w) {
                                        self.watermark = Some(at);
                                    }
                                }
                            }
                        }
                        Frame::Bye { .. } => {
                            if !self.disconnected {
                                self.disconnected = true;
                                stats.disconnects += 1;
                            }
                        }
                        Frame::Hello { .. } => stats.hellos += 1,
                        // Server-bound streams never carry these; count
                        // and ignore rather than crash the fleet.
                        Frame::Welcome { .. }
                        | Frame::Poll { .. }
                        | Frame::Deliver(_)
                        | Frame::Escalate(_) => {}
                    }
                }
                Ok(None) => {
                    self.inbound.drain(..offset);
                    return;
                }
                Err(_) => {
                    stats.decode_errors += 1;
                    self.inbound.clear();
                    return;
                }
            }
        }
    }

    /// Queues a server→client frame for the next flush.
    fn push(&mut self, frame: &Frame, stats: &mut WireStats) {
        let before = self.outbox.len();
        encode_frame(frame, &mut self.outbox);
        stats.frames_out += 1;
        stats.bytes_out += (self.outbox.len() - before) as u64;
    }

    /// Sends the outbox to the client and collects its response bytes.
    fn flush(&mut self) {
        let outbox = std::mem::take(&mut self.outbox);
        self.client.on_bytes(&outbox, &mut self.inbound);
        self.outbox = outbox;
        self.outbox.clear();
    }
}

/// Serves one shard of the fleet to completion.
fn serve_shard<C, F, K>(
    ctx: &ServeCtx,
    opts: &ServeOptions,
    make_client: &F,
    clock: &K,
    first_home: usize,
    count: usize,
) -> (coreda_core::metro::ServedShard, WireStats, Histogram)
where
    C: Client,
    F: Fn(u32, u64) -> C,
    K: Clock + Clone,
{
    let mut session = ctx.session(first_home, count, opts.record, opts.trace);
    let mut clock = clock.clone();
    let mut stats = WireStats::default();
    let mut latency = Histogram::new(LATENCY_LO_US, LATENCY_HI_US, LATENCY_BINS);
    let horizon_end = SimTime::ZERO + ctx.config().horizon;

    // Handshake every home: an empty flush elicits `Hello`, which must
    // echo the fleet's config digest — a client built against another
    // configuration is turned away before it sees a single wake.
    let mut conns: Vec<Conn<C>> = (0..count)
        .map(|i| {
            // Infallible: `ServeCtx::new` rejected any fleet whose ids
            // overflow u32 before a single session opened.
            let home = u32::try_from(first_home + i).expect("ServeCtx::new validated fleet size");
            let mut conn = Conn {
                client: make_client(home, ctx.digest()),
                inbound: Vec::new(),
                outbox: Vec::new(),
                watermark: None,
                last_seq: None,
                disconnected: false,
            };
            conn.flush();
            let mut probe = Vec::new();
            std::mem::swap(&mut probe, &mut conn.inbound);
            let accepted = match try_decode(&probe) {
                Ok(Some((Frame::Hello { home: h, digest }, used))) => {
                    stats.frames_in += 1;
                    stats.bytes_in += used as u64;
                    stats.hellos += 1;
                    used == probe.len() && h == home && digest == ctx.digest()
                }
                _ => false,
            };
            if accepted {
                stats.welcomes += 1;
                conn.push(&Frame::Welcome { home, at: SimTime::ZERO }, &mut stats);
            } else {
                stats.handshake_rejects += 1;
                conn.disconnected = true;
                conn.push(&Frame::Bye { home, at: SimTime::ZERO }, &mut stats);
                stats.byes_out += 1;
                conn.flush();
                conn.inbound.clear();
            }
            conn
        })
        .collect();

    // Epoch-tiled serving: drain a bounded near-instant window, then
    // walk each due home's wake chain contiguously. Per-connection byte
    // streams are per-home, so the cross-home reorder inside a window
    // never changes what any client sees — the wire outcome is
    // bit-identical to the instant-by-instant sweep (under `Strict`
    // scheduling the window *is* a single instant and this loop
    // degenerates to exactly that sweep).
    let mut due = Vec::new();
    let mut fresh = Vec::new();
    let mut escalations = Vec::new();
    while session.next_epoch(&mut due).is_some() {
        for &home in &due {
            let conn = &mut conns[home as usize - first_home];
            while let Some(now) = session.next_wake(home) {
                clock.wait_until(now);
                let popped = Instant::now();
                if conn.disconnected {
                    session.serve_wake(home, now, true, &mut fresh);
                    stats.skipped_wakes += 1;
                    continue;
                }
                // Offer the wake; the flush also carries any `Welcome`
                // or `Deliver` frames queued since the home's last wake.
                stats.polls += 1;
                conn.push(&Frame::Poll { home, at: now }, &mut stats);
                conn.flush();
                conn.drain(home, &mut stats);
                if conn.disconnected {
                    // The hangup replaced this wake's report: consume
                    // the wake without touching state, freezing only
                    // this home.
                    session.serve_wake(home, now, true, &mut fresh);
                    stats.skipped_wakes += 1;
                    continue;
                }
                if conn.watermark.is_none_or(|w| w < now) {
                    // The report for this wake is missing or behind —
                    // delayed, reordered, or lost in transit. Reports
                    // are advisory, so the wake is served on time
                    // regardless.
                    stats.late_reports += 1;
                }
                session.serve_wake(home, now, false, &mut fresh);
                for rec in fresh.drain(..) {
                    stats.delivers += 1;
                    conn.push(&Frame::Deliver(rec), &mut stats);
                    let us = popped.elapsed().as_secs_f64() * 1e6;
                    latency.record(us);
                }
                // Escalations the wake's records tripped ride the same
                // flush as their prompts, as `Escalate` frames.
                session.drain_care(home, &mut escalations);
                for ev in escalations.drain(..) {
                    stats.escalations += 1;
                    conn.push(&Frame::Escalate(ev), &mut stats);
                }
            }
        }
        fresh.clear();
    }

    // End the care fold at the horizon: caregiver acks/resolves still
    // due are delivered (home order) before the goodbyes go out.
    session.finish_care(&mut escalations);
    for ev in escalations.drain(..) {
        let conn = &mut conns[ev.home as usize - first_home];
        if conn.disconnected {
            continue;
        }
        stats.escalations += 1;
        conn.push(&Frame::Escalate(ev), &mut stats);
    }

    // Close every surviving connection and absorb any frames the
    // transport was still holding (a delayed report arriving with the
    // goodbye is late, not an error).
    for (i, conn) in conns.iter_mut().enumerate() {
        if conn.disconnected {
            continue;
        }
        let home = u32::try_from(first_home + i).expect("ServeCtx::new validated fleet size");
        conn.push(&Frame::Bye { home, at: horizon_end }, &mut stats);
        stats.byes_out += 1;
        conn.flush();
        conn.drain(home, &mut stats);
    }

    (session.finish(), stats, latency)
}

/// Serves the whole fleet: one session per [`ServeCtx::chunks`] shard,
/// spread over `cfg.jobs` workers, every home fronted by a fresh
/// `make_client(home, digest)` connection, wakes paced by `clock`.
///
/// Under [`SimClock`] the outcome's `output` and `log` are bit-identical
/// to the batch [`coreda_core::run_scale`] /
/// [`coreda_core::run_scale_walled`] run of the same configuration —
/// the equivalence `make ci` enforces.
#[must_use]
pub fn serve_fleet<C, F, K>(
    ctx: &ServeCtx,
    opts: &ServeOptions,
    make_client: &F,
    clock: &K,
) -> ServeOutcome
where
    C: Client,
    F: Fn(u32, u64) -> C + Sync,
    K: Clock + Clone + Sync,
{
    let engine = FleetEngine::new(ctx.config().jobs);
    let shards = engine.map(ctx.chunks(), |(first, count)| {
        serve_shard(ctx, opts, make_client, clock, first, count)
    });
    let mut wire = WireStats::default();
    let mut latency_us = Histogram::new(LATENCY_LO_US, LATENCY_HI_US, LATENCY_BINS);
    let mut served = Vec::with_capacity(shards.len());
    for (shard, stats, lat) in shards {
        served.push(shard);
        wire.absorb(&stats);
        latency_us.merge(&lat);
    }
    let (output, log, care) = collect_served(ctx.config(), served);
    ServeOutcome { output, log, wire, latency_us, care }
}

/// Serves `cfg` with faithful [`MoteClient`]s under the sim clock — the
/// deterministic served counterpart of [`coreda_core::run_scale`].
///
/// # Errors
///
/// [`FleetTooLarge`] when the fleet's home ids would overflow the wire
/// protocol's `u32` space — rejected here, at session setup, instead of
/// panicking mid-serve.
pub fn serve_scale(cfg: MetroConfig, opts: &ServeOptions) -> Result<ServeOutcome, FleetTooLarge> {
    let mut ctx = ServeCtx::new(cfg)?;
    if let Some(policy) = &opts.care {
        ctx = ctx.with_care(policy.clone());
    }
    Ok(serve_fleet(&ctx, opts, &MoteClient::new, &SimClock))
}

#[cfg(test)]
mod tests {
    use super::*;
    use coreda_core::metro::{run_scale_care_walled, run_scale_walled};
    use coreda_des::time::SimDuration;

    fn cfg(homes: usize, jobs: usize) -> MetroConfig {
        MetroConfig {
            homes,
            jobs,
            horizon: SimDuration::from_secs(1_800),
            ..MetroConfig::default()
        }
    }

    fn eager_policy() -> CarePolicy {
        CarePolicy {
            prompt_failure_streak: 1,
            missed_adl_streak: 1,
            ack_delay_ms: [20_000, 10_000, 5_000],
            resolve_after_ms: 30_000,
            ..CarePolicy::default()
        }
    }

    #[test]
    fn served_fleet_matches_the_batch_run() {
        let (batch, wal) = run_scale_walled(&cfg(4, 2));
        let outcome = serve_scale(cfg(4, 2), &ServeOptions::default()).expect("fleet fits");
        assert_eq!(outcome.output.report, batch);
        assert_eq!(outcome.log, wal);
        assert_eq!(outcome.wire.delivers, wal.len() as u64);
        assert_eq!(outcome.wire.hellos, 4);
        assert_eq!(outcome.wire.welcomes, 4);
        assert_eq!(outcome.wire.byes_out, 4);
        assert_eq!(outcome.wire.handshake_rejects, 0);
        assert_eq!(outcome.wire.disconnects, 0);
        assert_eq!(outcome.wire.polls, outcome.wire.reports);
        assert_eq!(outcome.wire.late_reports, 0);
        assert_eq!(outcome.latency_us.total(), outcome.wire.delivers);
    }

    #[test]
    fn wire_accounting_is_deterministic() {
        let a = serve_scale(cfg(3, 2), &ServeOptions::default()).expect("fleet fits");
        let b = serve_scale(cfg(3, 2), &ServeOptions::default()).expect("fleet fits");
        assert_eq!(a.wire, b.wire);
    }

    #[test]
    fn served_care_overlay_matches_the_batch_overlay() {
        let config = cfg(4, 2);
        let (batch, wal, care) = run_scale_care_walled(&config, &eager_policy());
        let opts = ServeOptions { care: Some(eager_policy()), ..ServeOptions::default() };
        let outcome = serve_scale(config, &opts).expect("fleet fits");
        // The overlay is observation-only: the simulation itself is
        // untouched, and the care output is bit-identical to batch.
        assert_eq!(outcome.output.report, batch);
        assert_eq!(outcome.log, wal);
        let served_care = outcome.care.expect("care was requested");
        assert_eq!(served_care, care);
        assert!(!served_care.events.is_empty(), "eager policy must trip");
        // Every escalation event went out exactly once as a wire frame.
        assert_eq!(outcome.wire.escalations, served_care.events.len() as u64);
    }

    #[test]
    fn care_free_runs_send_no_escalate_frames() {
        let outcome = serve_scale(cfg(2, 1), &ServeOptions::default()).expect("fleet fits");
        assert_eq!(outcome.wire.escalations, 0);
        assert!(outcome.care.is_none());
    }

    #[test]
    fn oversized_fleets_error_instead_of_panicking_mid_serve() {
        let config = MetroConfig { homes: u32::MAX as usize + 2, ..cfg(2, 1) };
        let err = serve_scale(config, &ServeOptions::default()).expect_err("must reject");
        assert_eq!(err.homes, u32::MAX as usize + 2);
        let msg = err.to_string();
        assert!(msg.contains("u32"), "unexpected message: {msg}");
    }

    #[test]
    fn report_classification_pins_the_seq_extremes() {
        use ReportClass::*;
        assert_eq!(classify_report(None, 0), Fresh);
        assert_eq!(classify_report(Some(4), 5), Fresh);
        assert_eq!(classify_report(Some(5), 5), Dup);
        assert_eq!(classify_report(Some(5), 4), Stale);
        // The saturation sentinel never advances the watermark, from
        // any prior state — including a fresh connection.
        assert_eq!(classify_report(None, u32::MAX), Stale);
        assert_eq!(classify_report(Some(0), u32::MAX), Stale);
        assert_eq!(classify_report(Some(u32::MAX - 1), u32::MAX), Stale);
        // The largest admissible seq is still fresh.
        assert_eq!(classify_report(Some(7), u32::MAX - 1), Fresh);
    }

    #[test]
    fn digest_mismatch_is_turned_away_at_the_door() {
        let ctx = ServeCtx::new(cfg(2, 1)).expect("fleet fits");
        let outcome = serve_fleet(
            &ctx,
            &ServeOptions::default(),
            &|home, digest| MoteClient::new(home, digest ^ 1),
            &SimClock,
        );
        assert_eq!(outcome.wire.handshake_rejects, 2);
        assert_eq!(outcome.wire.welcomes, 0);
        assert_eq!(outcome.wire.polls, 0);
        // Every wake drains as skipped; nothing is ever delivered.
        assert_eq!(outcome.wire.delivers, 0);
        assert!(outcome.log.is_empty());
    }
}
