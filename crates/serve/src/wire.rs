//! The `CRSV` wire codec: compact binary frames between mote clients
//! and the serving front end, CRC-guarded like the checkpoint (`CRCK`),
//! delta (`CRCD`) and write-ahead-log (`CRWL`) codecs.
//!
//! Layout of every frame, big-endian throughout:
//!
//! ```text
//! "CRSV"  version  kind  len  payload[len]  crc16
//!  4 B     1 B     1 B   1 B   len B         2 B
//! ```
//!
//! The CRC covers everything before it (magic through payload). `len`
//! is *redundant* — each kind has exactly one legal payload size — and
//! that redundancy is what makes corruption rejection deterministic
//! rather than probabilistic: flipping any single bit of a frame is
//! caught structurally (bad magic, unsupported version, unknown kind,
//! or a length that disagrees with the kind) or, when the flip leaves
//! the structure intact (payload, CRC, or a kind byte landing on
//! another kind of the *same* payload size), by the CRC-16/CCITT check,
//! which detects all single-bit errors by construction. The proptests
//! in `tests/proptests.rs` flip every bit of every frame kind and
//! assert exactly that.

use coreda_core::escalation::{CareEvent, EVENT_BYTES};
use coreda_core::wal::{WalRecord, RECORD_BYTES};
use coreda_des::time::SimTime;
use coreda_sensornet::packet::crc16;

/// Frame magic, first on the wire.
pub const MAGIC: &[u8; 4] = b"CRSV";
/// Codec version; bump on layout changes.
pub const VERSION: u8 = 1;
/// Bytes before the payload: magic + version + kind + len.
pub const HEADER_BYTES: usize = 7;
/// Bytes after the payload.
pub const CRC_BYTES: usize = 2;
/// The largest legal frame ([`Frame::Deliver`]).
pub const MAX_FRAME_BYTES: usize = HEADER_BYTES + RECORD_BYTES + CRC_BYTES;

/// One protocol message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Frame {
    /// Client → server: session open. The digest must match the
    /// server's [`coreda_core::metro::ServeCtx::digest`] or the client
    /// was built against a different fleet configuration.
    Hello {
        /// Fleet-global home id.
        home: u32,
        /// The client's configuration digest.
        digest: u64,
    },
    /// Server → client: handshake accepted at simulated instant `at`.
    Welcome {
        /// Fleet-global home id.
        home: u32,
        /// Simulated instant of acceptance.
        at: SimTime,
    },
    /// Server → client: the server is about to serve the home's wake at
    /// `at`; any sensor reports up to that instant should be flushed.
    Poll {
        /// Fleet-global home id.
        home: u32,
        /// The wake instant being served.
        at: SimTime,
    },
    /// Client → server: the home's motes have reported everything up to
    /// `at`. `seq` increments per report; the server drops duplicates
    /// idempotently.
    Report {
        /// Fleet-global home id.
        home: u32,
        /// Watermark: sensor data complete up to this instant.
        at: SimTime,
        /// Per-client monotone sequence number.
        seq: u32,
    },
    /// Server → client: a prompt / escalation delivery — one derived
    /// [`WalRecord`], the same 20-byte image the write-ahead log stores.
    Deliver(WalRecord),
    /// Either direction: orderly end of session.
    Bye {
        /// Fleet-global home id.
        home: u32,
        /// Simulated instant of the close.
        at: SimTime,
    },
    /// Server → caregiver channel: one escalation lifecycle event — the
    /// 19-byte [`CareEvent`] image, so escalations ride the served path
    /// exactly as prompts ride [`Frame::Deliver`].
    Escalate(CareEvent),
}

/// Frame-kind discriminants on the wire.
const KIND_HELLO: u8 = 0;
const KIND_WELCOME: u8 = 1;
const KIND_POLL: u8 = 2;
const KIND_REPORT: u8 = 3;
const KIND_DELIVER: u8 = 4;
const KIND_BYE: u8 = 5;
const KIND_ESCALATE: u8 = 6;

impl Frame {
    /// The frame's wire discriminant.
    #[must_use]
    pub fn kind(&self) -> u8 {
        match self {
            Frame::Hello { .. } => KIND_HELLO,
            Frame::Welcome { .. } => KIND_WELCOME,
            Frame::Poll { .. } => KIND_POLL,
            Frame::Report { .. } => KIND_REPORT,
            Frame::Deliver(_) => KIND_DELIVER,
            Frame::Bye { .. } => KIND_BYE,
            Frame::Escalate(_) => KIND_ESCALATE,
        }
    }

    /// The home the frame concerns.
    #[must_use]
    pub fn home(&self) -> u32 {
        match *self {
            Frame::Hello { home, .. }
            | Frame::Welcome { home, .. }
            | Frame::Poll { home, .. }
            | Frame::Report { home, .. }
            | Frame::Bye { home, .. } => home,
            Frame::Deliver(rec) => rec.home,
            Frame::Escalate(ev) => ev.home,
        }
    }
}

/// The single legal payload size for `kind`; `None` for unknown kinds.
fn payload_len(kind: u8) -> Option<usize> {
    match kind {
        KIND_HELLO | KIND_WELCOME | KIND_POLL | KIND_BYE => Some(12),
        KIND_REPORT => Some(16),
        KIND_DELIVER => Some(RECORD_BYTES),
        KIND_ESCALATE => Some(EVENT_BYTES),
        _ => None,
    }
}

/// Why a frame was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// The first four bytes are not [`MAGIC`].
    BadMagic([u8; 4]),
    /// Version byte this codec does not speak.
    UnsupportedVersion(u8),
    /// Kind byte naming no frame.
    UnknownKind(u8),
    /// The length byte disagrees with the kind's fixed payload size.
    BadLength {
        /// The kind whose size was expected.
        kind: u8,
        /// The length byte actually seen.
        len: u8,
    },
    /// CRC over magic..payload does not match the trailer.
    BadCrc {
        /// CRC stored in the frame.
        expected: u16,
        /// CRC recomputed over the received bytes.
        actual: u16,
    },
    /// Fewer bytes than a complete frame (strict decode only).
    Truncated {
        /// Bytes available.
        len: usize,
    },
    /// The payload passed the CRC but decodes to no legal value (an
    /// escalation discriminant byte naming no severity/trigger/stage —
    /// a phantom value must never materialise as an enum).
    BadPayload {
        /// The kind whose payload failed to decode.
        kind: u8,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::BadMagic(m) => write!(f, "bad frame magic {m:02x?}"),
            WireError::UnsupportedVersion(v) => write!(f, "unsupported wire version {v}"),
            WireError::UnknownKind(k) => write!(f, "unknown frame kind {k}"),
            WireError::BadLength { kind, len } => {
                write!(f, "length {len} is illegal for frame kind {kind}")
            }
            WireError::BadCrc { expected, actual } => {
                write!(f, "frame CRC mismatch: stored {expected:#06x}, computed {actual:#06x}")
            }
            WireError::Truncated { len } => write!(f, "truncated frame ({len} bytes)"),
            WireError::BadPayload { kind } => {
                write!(f, "payload of frame kind {kind} decodes to no legal value")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// Encodes one frame, appending to `out`.
pub fn encode_frame(frame: &Frame, out: &mut Vec<u8>) {
    let start = out.len();
    out.extend_from_slice(MAGIC);
    out.push(VERSION);
    out.push(frame.kind());
    let len_at = out.len();
    out.push(0); // patched below
    match *frame {
        Frame::Hello { home, digest } => {
            out.extend_from_slice(&home.to_be_bytes());
            out.extend_from_slice(&digest.to_be_bytes());
        }
        Frame::Welcome { home, at } | Frame::Poll { home, at } | Frame::Bye { home, at } => {
            out.extend_from_slice(&home.to_be_bytes());
            out.extend_from_slice(&at.as_millis().to_be_bytes());
        }
        Frame::Report { home, at, seq } => {
            out.extend_from_slice(&home.to_be_bytes());
            out.extend_from_slice(&at.as_millis().to_be_bytes());
            out.extend_from_slice(&seq.to_be_bytes());
        }
        Frame::Deliver(rec) => out.extend_from_slice(&rec.to_bytes()),
        Frame::Escalate(ev) => out.extend_from_slice(&ev.to_bytes()),
    }
    let payload = out.len() - len_at - 1;
    out[len_at] = u8::try_from(payload).expect("payloads are tiny");
    let crc = crc16(&out[start..]);
    out.extend_from_slice(&crc.to_be_bytes());
}

/// One frame's wire image.
#[must_use]
pub fn frame_bytes(frame: &Frame) -> Vec<u8> {
    let mut out = Vec::with_capacity(MAX_FRAME_BYTES);
    encode_frame(frame, &mut out);
    out
}

/// The total wire size of a frame of `kind`, header and CRC included.
fn frame_len(kind: u8) -> Option<usize> {
    payload_len(kind).map(|p| HEADER_BYTES + p + CRC_BYTES)
}

/// Strict decode: `bytes` must hold exactly one complete frame.
///
/// # Errors
///
/// Every corruption is rejected: wrong magic, unknown version or kind,
/// a length byte disagreeing with the kind, a CRC mismatch, and any
/// strict prefix or extension of a valid frame ([`WireError::Truncated`]
/// / [`WireError::BadLength`] respectively — extra bytes make the
/// length byte and the actual extent disagree).
pub fn decode_frame(bytes: &[u8]) -> Result<Frame, WireError> {
    match try_decode(bytes)? {
        Some((frame, used)) if used == bytes.len() => Ok(frame),
        Some((_, used)) => {
            // Trailing bytes after a complete frame: the strict decoder
            // sees one frame where the sender claims exactly one.
            Err(WireError::BadLength {
                kind: bytes[5],
                len: u8::try_from(bytes.len() - used).unwrap_or(u8::MAX),
            })
        }
        None => Err(WireError::Truncated { len: bytes.len() }),
    }
}

/// Stream decode: examines the front of `bytes` and returns the first
/// frame plus the bytes it consumed, or `Ok(None)` when the buffer
/// holds only an incomplete prefix (read more and retry).
///
/// # Errors
///
/// As [`decode_frame`], except incompleteness is `Ok(None)` — a stream
/// cannot distinguish "torn mid-frame" from "rest still in flight".
pub fn try_decode(bytes: &[u8]) -> Result<Option<(Frame, usize)>, WireError> {
    if bytes.len() < HEADER_BYTES {
        // Garbage at the stream head is detectable without the rest.
        let head = &bytes[..bytes.len().min(4)];
        if !MAGIC.starts_with(head) {
            let mut m = [0u8; 4];
            m[..head.len()].copy_from_slice(head);
            return Err(WireError::BadMagic(m));
        }
        return Ok(None);
    }
    let magic: [u8; 4] = bytes[0..4].try_into().expect("4 bytes");
    if &magic != MAGIC {
        return Err(WireError::BadMagic(magic));
    }
    let version = bytes[4];
    if version != VERSION {
        return Err(WireError::UnsupportedVersion(version));
    }
    let kind = bytes[5];
    let Some(expected_len) = payload_len(kind) else {
        return Err(WireError::UnknownKind(kind));
    };
    let len = bytes[6];
    if usize::from(len) != expected_len {
        return Err(WireError::BadLength { kind, len });
    }
    let total = frame_len(kind).expect("kind validated");
    if bytes.len() < total {
        return Ok(None);
    }
    let body = &bytes[..total - CRC_BYTES];
    let stored = u16::from_be_bytes(bytes[total - CRC_BYTES..total].try_into().expect("2 bytes"));
    let actual = crc16(body);
    if stored != actual {
        return Err(WireError::BadCrc { expected: stored, actual });
    }
    let p = &bytes[HEADER_BYTES..total - CRC_BYTES];
    let be32 = |b: &[u8]| u32::from_be_bytes(b.try_into().expect("4 bytes"));
    let be64 = |b: &[u8]| u64::from_be_bytes(b.try_into().expect("8 bytes"));
    let frame = match kind {
        KIND_HELLO => Frame::Hello { home: be32(&p[0..4]), digest: be64(&p[4..12]) },
        KIND_WELCOME => {
            Frame::Welcome { home: be32(&p[0..4]), at: SimTime::from_millis(be64(&p[4..12])) }
        }
        KIND_POLL => {
            Frame::Poll { home: be32(&p[0..4]), at: SimTime::from_millis(be64(&p[4..12])) }
        }
        KIND_REPORT => Frame::Report {
            home: be32(&p[0..4]),
            at: SimTime::from_millis(be64(&p[4..12])),
            seq: be32(&p[12..16]),
        },
        KIND_DELIVER => {
            Frame::Deliver(WalRecord::from_bytes(p.try_into().expect("RECORD_BYTES payload")))
        }
        KIND_BYE => {
            Frame::Bye { home: be32(&p[0..4]), at: SimTime::from_millis(be64(&p[4..12])) }
        }
        KIND_ESCALATE => Frame::Escalate(
            CareEvent::from_bytes(p.try_into().expect("EVENT_BYTES payload"))
                .ok_or(WireError::BadPayload { kind })?,
        ),
        _ => unreachable!("kind validated against payload_len"),
    };
    Ok(Some((frame, total)))
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn samples() -> Vec<Frame> {
        vec![
            Frame::Hello { home: 7, digest: 0xDEAD_BEEF_CAFE_F00D },
            Frame::Welcome { home: 7, at: SimTime::from_millis(0) },
            Frame::Poll { home: 4_000_000, at: SimTime::from_millis(123_456_789) },
            Frame::Report { home: 0, at: SimTime::from_millis(99_900), seq: u32::MAX },
            Frame::Deliver(WalRecord {
                at: SimTime::from_millis(42_000),
                home: 9,
                act: 1,
                flags: 0b101,
                reminders: 2,
                praises: 1,
                sessions_started: 1,
                sessions_completed: 0,
                sessions_abandoned: 0,
                cross_activity: 0,
            }),
            Frame::Bye { home: 7, at: SimTime::from_millis(600_000) },
            Frame::Escalate(CareEvent {
                at: SimTime::from_millis(300_000),
                home: 9,
                seq: 2,
                kind: coreda_core::escalation::CareEventKind::Raised,
                severity: coreda_core::escalation::Severity::Critical,
                trigger: coreda_core::escalation::CareTrigger::MissedCriticalAdl,
            }),
        ]
    }

    #[test]
    fn frames_round_trip() {
        for frame in samples() {
            let bytes = frame_bytes(&frame);
            assert_eq!(decode_frame(&bytes), Ok(frame), "{frame:?}");
            assert_eq!(try_decode(&bytes), Ok(Some((frame, bytes.len()))));
        }
    }

    #[test]
    fn stream_decode_walks_concatenated_frames() {
        let frames = samples();
        let mut stream = Vec::new();
        for f in &frames {
            encode_frame(f, &mut stream);
        }
        let mut offset = 0;
        let mut seen = Vec::new();
        while let Some((frame, used)) = try_decode(&stream[offset..]).unwrap() {
            seen.push(frame);
            offset += used;
        }
        assert_eq!(seen, frames);
        assert_eq!(offset, stream.len());
    }

    #[test]
    fn incomplete_prefixes_ask_for_more() {
        let bytes = frame_bytes(&samples()[0]);
        for cut in 0..bytes.len() {
            let prefix = &bytes[..cut];
            match try_decode(prefix) {
                Ok(None) => {}
                other => panic!("prefix of {cut} bytes: {other:?}"),
            }
            assert_eq!(decode_frame(prefix), Err(WireError::Truncated { len: cut }));
        }
    }

    #[test]
    fn stream_garbage_is_rejected_immediately() {
        assert!(matches!(try_decode(b"XRSV"), Err(WireError::BadMagic(_))));
        assert!(matches!(try_decode(b"Z"), Err(WireError::BadMagic(_))));
    }

    #[test]
    fn trailing_bytes_fail_strict_decode() {
        let mut bytes = frame_bytes(&samples()[1]);
        bytes.push(0);
        assert!(decode_frame(&bytes).is_err());
    }

    #[test]
    fn every_kind_has_a_distinct_wire_size_or_crc_guard() {
        // Kinds sharing a payload size rely on the CRC to catch a
        // flipped kind byte; this documents which those are.
        let sizes: Vec<Option<usize>> = (0u8..7).map(payload_len).collect();
        assert_eq!(
            sizes,
            vec![Some(12), Some(12), Some(12), Some(16), Some(20), Some(12), Some(19)]
        );
        assert_eq!(payload_len(7), None);
    }

    #[test]
    fn escalate_payload_with_phantom_discriminants_is_rejected() {
        // A discriminant byte the CRC cannot save us from: re-CRC a
        // frame whose severity byte names nothing.
        let Frame::Escalate(ev) = samples()[6] else { panic!("sample 6 is Escalate") };
        let mut bad = ev.to_bytes();
        bad[17] = 9;
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.push(VERSION);
        bytes.push(KIND_ESCALATE);
        bytes.push(u8::try_from(EVENT_BYTES).expect("small"));
        bytes.extend_from_slice(&bad);
        let crc = crc16(&bytes);
        bytes.extend_from_slice(&crc.to_be_bytes());
        assert_eq!(
            decode_frame(&bytes),
            Err(WireError::BadPayload { kind: KIND_ESCALATE }),
        );
    }
}
