//! # coreda-serve — online serving front end for CoReDA
//!
//! Puts a wire on the metro fleet: a compact, CRC-guarded binary
//! protocol for mote reports and prompt deliveries ([`wire`]), a
//! multi-tenant ingestion loop that drives the simulation clock-paced
//! and shard-parallel ([`server`]), byte-level clients and a
//! deterministic transport-fault pipe ([`client`]), and a load-generator
//! mode with throughput/latency reporting ([`loadgen`]).
//!
//! ## The determinism contract
//!
//! The server owns the simulation; clients never advance state. A
//! client's `Report` frames only move an advisory per-connection
//! watermark used for flow-control accounting, so duplicated, delayed,
//! or reordered frames change *counters*, never *outcomes*. The one
//! state-bearing client act is hanging up (`Bye`), which freezes that
//! home — and only that home — from its next wake on.
//!
//! Consequently, under the sim clock ([`coreda_des::SimClock`]) a
//! served fleet is **bit-identical** to the batch
//! [`coreda_core::run_scale`] sweep — grid, telemetry, and event log —
//! at any `jobs` count and either queue engine. Swapping in
//! [`coreda_des::WallClock`] paces the same wakes against real time
//! without touching what they compute.
//!
//! # Examples
//!
//! Serve a small fleet deterministically and check it against batch:
//!
//! ```
//! use coreda_core::metro::MetroConfig;
//! use coreda_core::run_scale;
//! use coreda_des::time::SimDuration;
//! use coreda_serve::{serve_scale, ServeOptions};
//!
//! let cfg = MetroConfig {
//!     homes: 2,
//!     horizon: SimDuration::from_secs(600),
//!     ..MetroConfig::default()
//! };
//! let outcome = serve_scale(cfg.clone(), &ServeOptions::default()).unwrap();
//! assert_eq!(outcome.output.report, run_scale(&cfg));
//! ```
//!
//! ## Caregiver escalations on the wire
//!
//! With [`ServeOptions::care`] set, the caregiver escalation overlay
//! runs inside each session and its lifecycle events ride the served
//! path as `Escalate` frames, flushed alongside the prompts of the wake
//! that tripped them. The escalation log and fleet analytics in
//! [`ServeOutcome::care`] are bit-identical to the batch
//! [`coreda_core::run_scale_care`] overlay under the sim clock.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod client;
pub mod loadgen;
pub mod server;
pub mod wire;

pub use client::{Client, FaultyPipe, MoteClient, PipeFaults};
pub use loadgen::{run_loadgen, LoadgenReport};
pub use server::{
    classify_report, serve_fleet, serve_scale, ReportClass, ServeOptions, ServeOutcome, WireStats,
};
pub use wire::{decode_frame, encode_frame, frame_bytes, try_decode, Frame, WireError};
