//! Client-side half of the wire protocol: the faithful mote client the
//! load generator replays, and the fault pipe the testkit wraps around
//! it to exercise the ingestion path.
//!
//! Clients are byte-level: the server hands them raw server→client
//! bytes and collects raw client→server bytes, so every exchange
//! genuinely round-trips the [`crate::wire`] codec — there is no
//! in-process shortcut that could hide a framing bug.

use crate::wire::{encode_frame, try_decode, Frame};

/// One home's client endpoint, driven by the server's flushes.
pub trait Client {
    /// Feeds server→client bytes (possibly empty, for the handshake
    /// flush) and appends any client→server bytes to `out`. Called once
    /// per server flush; a client holding nothing appends nothing.
    fn on_bytes(&mut self, inbound: &[u8], out: &mut Vec<u8>);
}

/// The faithful protocol client: answers the handshake with `Hello`,
/// every `Poll` with a fresh `Report` watermarked at the poll instant,
/// and counts `Deliver` frames. This is what the load generator replays
/// per home, and the identity inner layer of the testkit's fault pipe.
#[derive(Debug, Clone)]
pub struct MoteClient {
    home: u32,
    digest: u64,
    seq: u32,
    sent_hello: bool,
    welcomed: bool,
    closed: bool,
    delivers: u64,
}

impl MoteClient {
    /// A client for `home`, echoing `digest` in its handshake.
    #[must_use]
    pub fn new(home: u32, digest: u64) -> MoteClient {
        MoteClient {
            home,
            digest,
            seq: 0,
            sent_hello: false,
            welcomed: false,
            closed: false,
            delivers: 0,
        }
    }

    /// Whether the server accepted the handshake.
    #[must_use]
    pub fn welcomed(&self) -> bool {
        self.welcomed
    }

    /// Whether the session closed (`Bye` seen).
    #[must_use]
    pub fn closed(&self) -> bool {
        self.closed
    }

    /// Prompt/escalation deliveries received.
    #[must_use]
    pub fn delivers(&self) -> u64 {
        self.delivers
    }
}

impl Client for MoteClient {
    fn on_bytes(&mut self, inbound: &[u8], out: &mut Vec<u8>) {
        if !self.sent_hello {
            encode_frame(&Frame::Hello { home: self.home, digest: self.digest }, out);
            self.sent_hello = true;
        }
        let mut offset = 0;
        while let Some((frame, used)) =
            try_decode(&inbound[offset..]).expect("server emits well-formed frames")
        {
            offset += used;
            match frame {
                Frame::Welcome { .. } => self.welcomed = true,
                Frame::Poll { at, .. } => {
                    if !self.closed {
                        encode_frame(
                            &Frame::Report { home: self.home, at, seq: self.seq },
                            out,
                        );
                        self.seq = self.seq.wrapping_add(1);
                    }
                }
                Frame::Deliver(_) | Frame::Escalate(_) => self.delivers += 1,
                Frame::Bye { .. } => self.closed = true,
                Frame::Hello { .. } | Frame::Report { .. } => {
                    // Client-bound streams never carry these.
                }
            }
        }
        assert_eq!(offset, inbound.len(), "server flushes whole frames");
    }
}

/// Transport faults a [`FaultyPipe`] injects into the client→server
/// direction, each over `[from_ms, to_ms)` windows of simulated time
/// (matched against the report's own watermark instant). Sensor
/// `Report`s are the only frames faulted — the handshake stays clean so
/// every session opens, which is what lets the oracles state exact
/// expectations.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PipeFaults {
    /// Reports in these windows are sent twice (same sequence number).
    pub dup: Vec<(u64, u64)>,
    /// Reports in these windows swap with the next report: the earlier
    /// one is held and emitted *after* its successor.
    pub reorder: Vec<(u64, u64)>,
    /// Reports in these windows are held one flush and emitted at the
    /// start of the next — they arrive after the wake they were for.
    pub delay: Vec<(u64, u64)>,
    /// The client hangs up at the first report instant `>= this`,
    /// sending `Bye` instead and nothing ever after.
    pub disconnect_at_ms: Option<u64>,
}

impl PipeFaults {
    /// Whether any fault is configured.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.dup.is_empty()
            && self.reorder.is_empty()
            && self.delay.is_empty()
            && self.disconnect_at_ms.is_none()
    }
}

fn in_windows(windows: &[(u64, u64)], at_ms: u64) -> bool {
    windows.iter().any(|&(from, to)| from <= at_ms && at_ms < to)
}

/// Wraps a client and perturbs its outgoing `Report` frames: duplicates,
/// inversions, one-flush delays, and a mid-session hangup. Everything is
/// a pure function of the fault windows and the report instants, so a
/// faulted run is as deterministic as a clean one — which is what lets
/// the served-path oracles demand *exact* batch equality underneath
/// transport faults.
#[derive(Debug, Clone)]
pub struct FaultyPipe<C> {
    inner: C,
    faults: PipeFaults,
    /// Delayed frames, released at the start of the next flush.
    held: Vec<u8>,
    /// A report waiting for its swap partner.
    swap: Option<Vec<u8>>,
    /// Hung up: nothing is ever emitted again.
    done: bool,
    scratch: Vec<u8>,
}

impl<C: Client> FaultyPipe<C> {
    /// Wraps `inner` with `faults`.
    pub fn new(inner: C, faults: PipeFaults) -> FaultyPipe<C> {
        FaultyPipe { inner, faults, held: Vec::new(), swap: None, done: false, scratch: Vec::new() }
    }

    /// The wrapped client.
    #[must_use]
    pub fn inner(&self) -> &C {
        &self.inner
    }
}

impl<C: Client> Client for FaultyPipe<C> {
    fn on_bytes(&mut self, inbound: &[u8], out: &mut Vec<u8>) {
        let mut raw = std::mem::take(&mut self.scratch);
        raw.clear();
        self.inner.on_bytes(inbound, &mut raw);
        if self.done {
            self.scratch = raw;
            return;
        }
        // Delayed frames from the previous flush arrive first — late,
        // but in their original relative order.
        out.append(&mut self.held);
        let mut offset = 0;
        while let Some((frame, used)) =
            try_decode(&raw[offset..]).expect("inner client emits well-formed frames")
        {
            let bytes = &raw[offset..offset + used];
            offset += used;
            let Frame::Report { home, at, .. } = frame else {
                out.extend_from_slice(bytes); // handshake etc. pass clean
                continue;
            };
            let at_ms = at.as_millis();
            if self.faults.disconnect_at_ms.is_some_and(|cut| at_ms >= cut) {
                encode_frame(&Frame::Bye { home, at }, out);
                self.done = true;
                break;
            }
            if in_windows(&self.faults.delay, at_ms) {
                self.held.extend_from_slice(bytes);
            } else if in_windows(&self.faults.reorder, at_ms) {
                match self.swap.take() {
                    None => self.swap = Some(bytes.to_vec()),
                    Some(earlier) => {
                        out.extend_from_slice(bytes);
                        out.extend_from_slice(&earlier);
                    }
                }
            } else {
                out.extend_from_slice(bytes);
                if in_windows(&self.faults.dup, at_ms) {
                    out.extend_from_slice(bytes);
                }
            }
        }
        self.scratch = raw;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::frame_bytes;
    use coreda_des::time::SimTime;

    fn poll(home: u32, at_ms: u64) -> Vec<u8> {
        frame_bytes(&Frame::Poll { home, at: SimTime::from_millis(at_ms) })
    }

    fn decode_all(bytes: &[u8]) -> Vec<Frame> {
        let mut frames = Vec::new();
        let mut offset = 0;
        while let Some((f, used)) = try_decode(&bytes[offset..]).unwrap() {
            frames.push(f);
            offset += used;
        }
        frames
    }

    #[test]
    fn faithful_client_speaks_the_protocol() {
        let mut client = MoteClient::new(3, 99);
        let mut out = Vec::new();
        client.on_bytes(&[], &mut out);
        assert_eq!(decode_all(&out), vec![Frame::Hello { home: 3, digest: 99 }]);
        out.clear();
        client.on_bytes(&frame_bytes(&Frame::Welcome { home: 3, at: SimTime::ZERO }), &mut out);
        assert!(client.welcomed() && out.is_empty());
        client.on_bytes(&poll(3, 500), &mut out);
        client.on_bytes(&poll(3, 600), &mut out);
        assert_eq!(
            decode_all(&out),
            vec![
                Frame::Report { home: 3, at: SimTime::from_millis(500), seq: 0 },
                Frame::Report { home: 3, at: SimTime::from_millis(600), seq: 1 },
            ]
        );
    }

    #[test]
    fn dup_window_doubles_reports() {
        let faults = PipeFaults { dup: vec![(0, 1_000)], ..PipeFaults::default() };
        let mut pipe = FaultyPipe::new(MoteClient::new(1, 0), faults);
        let mut out = Vec::new();
        pipe.on_bytes(&[], &mut out); // hello passes clean
        out.clear();
        pipe.on_bytes(&poll(1, 500), &mut out);
        let frames = decode_all(&out);
        assert_eq!(frames.len(), 2);
        assert_eq!(frames[0], frames[1]);
    }

    #[test]
    fn reorder_window_swaps_adjacent_reports() {
        let faults = PipeFaults { reorder: vec![(0, 10_000)], ..PipeFaults::default() };
        let mut pipe = FaultyPipe::new(MoteClient::new(1, 0), faults);
        let mut out = Vec::new();
        pipe.on_bytes(&[], &mut out);
        out.clear();
        pipe.on_bytes(&poll(1, 100), &mut out);
        assert!(out.is_empty(), "first report is held for its partner");
        pipe.on_bytes(&poll(1, 200), &mut out);
        let ats: Vec<u64> = decode_all(&out)
            .iter()
            .map(|f| match f {
                Frame::Report { at, .. } => at.as_millis(),
                other => panic!("{other:?}"),
            })
            .collect();
        assert_eq!(ats, vec![200, 100], "arrival order inverted");
    }

    #[test]
    fn delay_window_holds_reports_one_flush() {
        let faults = PipeFaults { delay: vec![(0, 150)], ..PipeFaults::default() };
        let mut pipe = FaultyPipe::new(MoteClient::new(1, 0), faults);
        let mut out = Vec::new();
        pipe.on_bytes(&[], &mut out);
        out.clear();
        pipe.on_bytes(&poll(1, 100), &mut out);
        assert!(out.is_empty(), "report held");
        pipe.on_bytes(&poll(1, 200), &mut out);
        let ats: Vec<u64> = decode_all(&out)
            .iter()
            .map(|f| match f {
                Frame::Report { at, .. } => at.as_millis(),
                other => panic!("{other:?}"),
            })
            .collect();
        assert_eq!(ats, vec![100, 200], "held report arrives first, late");
    }

    #[test]
    fn disconnect_replaces_the_report_with_bye() {
        let faults = PipeFaults { disconnect_at_ms: Some(150), ..PipeFaults::default() };
        let mut pipe = FaultyPipe::new(MoteClient::new(1, 0), faults);
        let mut out = Vec::new();
        pipe.on_bytes(&[], &mut out);
        out.clear();
        pipe.on_bytes(&poll(1, 100), &mut out);
        assert_eq!(decode_all(&out).len(), 1, "before the cut reports flow");
        out.clear();
        pipe.on_bytes(&poll(1, 200), &mut out);
        assert_eq!(
            decode_all(&out),
            vec![Frame::Bye { home: 1, at: SimTime::from_millis(200) }]
        );
        out.clear();
        pipe.on_bytes(&poll(1, 300), &mut out);
        assert!(out.is_empty(), "a hung-up client stays silent");
    }
}
