//! Load-generator mode: replay a metro fleet as concurrent wire-level
//! clients against the serving loop and report throughput and delivery
//! latency.
//!
//! The report splits into a deterministic body ([`LoadgenReport::render`]
//! — frame/delivery counts and byte totals, pinned by a golden file) and
//! wall-clock timing ([`LoadgenReport::render_timing`] — elapsed,
//! throughput, latency quantiles) which varies run to run and is kept
//! out of the golden.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use coreda_core::metro::{EngineKind, FleetTooLarge, MetroConfig, ServeCtx};
use coreda_des::stats::Histogram;
use coreda_des::time::SimDuration;
use coreda_des::{SimClock, WallClock};

use crate::client::MoteClient;
use crate::server::{serve_fleet, ServeOptions, ServeOutcome, WireStats};

/// The load generator's result: wire accounting plus timing.
#[derive(Debug)]
pub struct LoadgenReport {
    /// Fleet size.
    pub homes: usize,
    /// Simulated horizon.
    pub horizon: SimDuration,
    /// Queue engine the serve ran on.
    pub engine: EngineKind,
    /// Worker threads.
    pub jobs: usize,
    /// `None` = sim clock (as fast as possible); `Some(s)` = wall clock
    /// at `s`× real time.
    pub speedup: Option<f64>,
    /// Wire-level counters (deterministic under the sim clock).
    pub wire: WireStats,
    /// Delivery latency in µs.
    pub latency_us: Histogram,
    /// Wall-clock time the serve took.
    pub elapsed: Duration,
}

/// Replays `cfg` as a served fleet of faithful [`MoteClient`]s.
/// `speedup: None` paces on the sim clock (deterministic, as fast as
/// possible); `Some(s)` paces on the wall clock at `s`× real time.
///
/// # Errors
///
/// [`FleetTooLarge`] when the fleet's home ids would overflow the wire
/// protocol's `u32` space.
pub fn run_loadgen(
    cfg: MetroConfig,
    speedup: Option<f64>,
) -> Result<LoadgenReport, FleetTooLarge> {
    let homes = cfg.homes;
    let horizon = cfg.horizon;
    let engine = cfg.engine;
    let jobs = cfg.jobs;
    let ctx = ServeCtx::new(cfg)?;
    let opts = ServeOptions::default();
    let start = Instant::now();
    let outcome: ServeOutcome = match speedup {
        None => serve_fleet(&ctx, &opts, &MoteClient::new, &SimClock),
        Some(s) => serve_fleet(&ctx, &opts, &MoteClient::new, &WallClock::with_speedup(s)),
    };
    let elapsed = start.elapsed();
    Ok(LoadgenReport {
        homes,
        horizon,
        engine,
        jobs,
        speedup,
        wire: outcome.wire,
        latency_us: outcome.latency_us,
        elapsed,
    })
}

impl LoadgenReport {
    /// The deterministic report body: every line is a pure function of
    /// the configuration and the frame streams, so the same config
    /// renders identically on every run — the golden-file contract.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        let clock = match self.speedup {
            None => "sim clock".to_string(),
            Some(s) => format!("wall clock x{s}"),
        };
        let w = &self.wire;
        let _ = writeln!(
            out,
            "coreda-serve loadgen: {} homes x {} s ({} engine, {} jobs, {clock})",
            self.homes,
            self.horizon.as_millis() / 1_000,
            self.engine,
            self.jobs,
        );
        let _ = writeln!(
            out,
            "  handshake: {} hellos, {} welcomes, {} rejects",
            w.hellos, w.welcomes, w.handshake_rejects
        );
        let _ = writeln!(
            out,
            "  frames: {} in / {} out ({} B in / {} B out)",
            w.frames_in, w.frames_out, w.bytes_in, w.bytes_out
        );
        let _ = writeln!(
            out,
            "  reports: {} received ({} dup, {} stale, {} late)",
            w.reports, w.dup_frames, w.stale_reports, w.late_reports
        );
        let _ = writeln!(out, "  deliveries: {} prompts/escalations", w.delivers);
        if w.delivers == 0 {
            // Make the empty case explicit: a run with no deliveries
            // says so in the deterministic body instead of silently
            // dropping the latency line from the timing block.
            let _ = writeln!(out, "  delivery latency: (no deliveries)");
        }
        let _ = writeln!(
            out,
            "  closes: {} byes sent, {} client hangups, {} skipped wakes",
            w.byes_out, w.disconnects, w.skipped_wakes
        );
        out
    }

    /// Wall-clock timing: elapsed, throughput, and delivery-latency
    /// quantiles. Never part of the golden — it varies run to run.
    #[must_use]
    pub fn render_timing(&self) -> String {
        let mut out = String::new();
        let secs = self.elapsed.as_secs_f64().max(1e-9);
        let _ = writeln!(
            out,
            "  wall: {:.3} s ({:.0} wakes/s, {:.0} deliveries/s)",
            self.elapsed.as_secs_f64(),
            self.wire.polls as f64 / secs,
            self.wire.delivers as f64 / secs,
        );
        match (
            self.latency_us.quantile(0.50),
            self.latency_us.quantile(0.95),
            self.latency_us.quantile(0.99),
        ) {
            (Some(p50), Some(p95), Some(p99)) => {
                let _ = writeln!(
                    out,
                    "  delivery latency: p50 {p50:.0} us, p95 {p95:.0} us, p99 {p99:.0} us",
                );
            }
            _ => {
                let _ = writeln!(out, "  delivery latency: (no deliveries)");
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> MetroConfig {
        MetroConfig {
            homes: 3,
            jobs: 2,
            horizon: SimDuration::from_secs(1_200),
            ..MetroConfig::default()
        }
    }

    #[test]
    fn render_is_deterministic_across_runs() {
        let a = run_loadgen(cfg(), None).expect("fleet fits");
        let b = run_loadgen(cfg(), None).expect("fleet fits");
        assert_eq!(a.render(), b.render());
    }

    #[test]
    fn timing_lines_stay_out_of_the_deterministic_body() {
        let r = run_loadgen(cfg(), None).expect("fleet fits");
        let body = r.render();
        assert!(!body.contains("wall:"), "timing leaked into the golden body:\n{body}");
        let timing = r.render_timing();
        assert!(timing.contains("wall:"));
        assert!(timing.contains("delivery latency:"));
    }

    #[test]
    fn empty_runs_state_the_missing_latency_explicitly() {
        // A horizon too short for any reminder to fire: zero deliveries.
        let quiet = MetroConfig { horizon: SimDuration::from_secs(1), ..cfg() };
        let r = run_loadgen(quiet, None).expect("fleet fits");
        assert_eq!(r.wire.delivers, 0);
        assert!(
            r.render().contains("delivery latency: (no deliveries)"),
            "body must state the empty case:\n{}",
            r.render()
        );
        assert!(r.render_timing().contains("delivery latency: (no deliveries)"));
    }

    #[test]
    fn oversized_fleets_are_rejected_before_serving() {
        let huge = MetroConfig { homes: u32::MAX as usize + 2, ..cfg() };
        assert!(run_loadgen(huge, None).is_err());
    }
}
