//! Wire-codec robustness: round-trip exactness for arbitrary frames,
//! and the headline rejection guarantee — *every* single-bit flip,
//! every strict prefix, every trailing extension, and every foreign
//! version byte of every frame kind is rejected deterministically.
//!
//! The codec earns this structurally (redundant length byte, fixed
//! per-kind payload sizes) plus CRC-16/CCITT, which detects all
//! single-bit errors by construction; the tests here are what pin that
//! argument to the implementation.

use coreda_core::escalation::{CareEvent, CareEventKind, CareTrigger, Severity};
use coreda_core::wal::WalRecord;
use coreda_des::time::SimTime;
use coreda_serve::{
    classify_report, decode_frame, frame_bytes, try_decode, Frame, ReportClass, WireError,
};
use proptest::prelude::*;

/// `SimTime` carries millis in a `u64`, but frames only ever hold
/// instants inside a run; bound the strategy well away from overflow.
const MAX_MS: u64 = u64::MAX / 2;

fn arb_at() -> impl Strategy<Value = SimTime> {
    (0..MAX_MS).prop_map(SimTime::from_millis)
}

fn arb_frame() -> impl Strategy<Value = Frame> {
    prop_oneof![
        (any::<u32>(), any::<u64>())
            .prop_map(|(home, digest)| Frame::Hello { home, digest }),
        (any::<u32>(), arb_at()).prop_map(|(home, at)| Frame::Welcome { home, at }),
        (any::<u32>(), arb_at()).prop_map(|(home, at)| Frame::Poll { home, at }),
        (any::<u32>(), arb_at(), any::<u32>())
            .prop_map(|(home, at, seq)| Frame::Report { home, at, seq }),
        (arb_at(), any::<u32>(), any::<u64>().prop_map(u64::to_be_bytes)).prop_map(|(at, home, b)| {
            Frame::Deliver(WalRecord {
                at,
                home,
                act: b[0],
                flags: b[1],
                reminders: b[2],
                praises: b[3],
                sessions_started: b[4],
                sessions_completed: b[5],
                sessions_abandoned: b[6],
                cross_activity: b[7],
            })
        }),
        (any::<u32>(), arb_at()).prop_map(|(home, at)| Frame::Bye { home, at }),
        (arb_at(), any::<u32>(), any::<u32>(), 0usize..3, 0usize..3, 0usize..3).prop_map(
            |(at, home, seq, kind, severity, trigger)| {
                Frame::Escalate(CareEvent {
                    at,
                    home,
                    seq,
                    kind: [CareEventKind::Raised, CareEventKind::Acked, CareEventKind::Resolved]
                        [kind],
                    severity: Severity::ALL[severity],
                    trigger: CareTrigger::ALL[trigger],
                })
            },
        ),
    ]
}

proptest! {
    /// decode(encode(f)) == f for arbitrary field values of every kind,
    /// through both the strict and the stream decoder.
    #[test]
    fn frames_round_trip_exactly(frame in arb_frame()) {
        let bytes = frame_bytes(&frame);
        prop_assert_eq!(decode_frame(&bytes), Ok(frame));
        prop_assert_eq!(try_decode(&bytes), Ok(Some((frame, bytes.len()))));
    }

    /// Flipping any single bit anywhere in any frame is rejected — the
    /// bit index is exhaustive per case, the frame arbitrary.
    #[test]
    fn corrupted_frames_are_rejected(frame in arb_frame(), frac in 0.0f64..1.0, bit in 0u32..8) {
        let bytes = frame_bytes(&frame);
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let idx = ((frac * bytes.len() as f64) as usize).min(bytes.len() - 1);
        let mut bad = bytes.clone();
        bad[idx] ^= 1 << bit;
        prop_assert!(
            decode_frame(&bad).is_err(),
            "a flipped bit at frame byte {} slipped through strict decode", idx
        );
        // The stream decoder must reject it too — never hand back a
        // frame, never silently skip the corruption.
        prop_assert!(
            try_decode(&bad).is_err(),
            "a flipped bit at frame byte {} slipped through stream decode", idx
        );
    }

    /// Every strict prefix is `Truncated` for the strict decoder and
    /// "read more" (`Ok(None)`) for the stream decoder.
    #[test]
    fn truncated_frames_are_rejected(frame in arb_frame(), frac in 0.0f64..1.0) {
        let bytes = frame_bytes(&frame);
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let cut = ((frac * bytes.len() as f64) as usize).min(bytes.len() - 1);
        let prefix = &bytes[..cut];
        prop_assert_eq!(decode_frame(prefix), Err(WireError::Truncated { len: cut }));
        prop_assert_eq!(try_decode(prefix), Ok(None));
    }

    /// Trailing garbage after a complete frame fails the strict decoder
    /// (exactly-one-frame contract), while the stream decoder hands back
    /// the clean frame and leaves the tail for the next read.
    #[test]
    fn extended_frames_fail_strict_decode(frame in arb_frame(), tail in 1usize..16) {
        let clean = frame_bytes(&frame);
        let mut bytes = clean.clone();
        bytes.extend(std::iter::repeat_n(0xA5, tail));
        prop_assert!(decode_frame(&bytes).is_err());
        prop_assert_eq!(try_decode(&bytes), Ok(Some((frame, clean.len()))));
    }

    /// Folding any report-sequence stream through the advisory
    /// watermark classification: `u32::MAX` is the saturation sentinel
    /// — always stale, never the watermark — and apart from it the
    /// watermark only ever moves forward, one `Fresh` at a time.
    #[test]
    fn watermark_classification_is_sound_at_the_extremes(
        seqs in proptest::collection::vec(
            prop_oneof![any::<u32>(), Just(u32::MAX), Just(u32::MAX - 1), Just(0u32)],
            1..64,
        ),
    ) {
        let mut last_seq: Option<u32> = None;
        for seq in seqs {
            let before = last_seq;
            match classify_report(last_seq, seq) {
                ReportClass::Fresh => {
                    prop_assert_ne!(seq, u32::MAX, "the sentinel must never be fresh");
                    prop_assert!(before.is_none_or(|last| seq > last));
                    last_seq = Some(seq);
                }
                ReportClass::Dup => {
                    prop_assert_eq!(before, Some(seq));
                }
                ReportClass::Stale => {
                    prop_assert!(seq == u32::MAX || before.is_some_and(|last| seq < last));
                }
            }
            // Dup and Stale never move the watermark.
            if last_seq == before {
                prop_assert!(!matches!(classify_report(before, seq), ReportClass::Fresh));
            }
            prop_assert_ne!(last_seq, Some(u32::MAX), "sentinel leaked into the watermark");
        }
    }

    /// Any version byte this codec does not speak is rejected even with
    /// the CRC re-stamped over the altered header — version skew is a
    /// structural error, not a corruption.
    #[test]
    fn unknown_versions_are_rejected(
        frame in arb_frame(),
        // VERSION is 1; every other byte value is foreign.
        version in prop_oneof![Just(0u8), 2u8..=255],
    ) {
        assert_ne!(version, coreda_serve::wire::VERSION);
        let mut bytes = frame_bytes(&frame);
        bytes[4] = version;
        let body_end = bytes.len() - 2;
        let crc = coreda_sensornet::packet::crc16(&bytes[..body_end]);
        bytes[body_end..].copy_from_slice(&crc.to_be_bytes());
        prop_assert_eq!(decode_frame(&bytes), Err(WireError::UnsupportedVersion(version)));
        prop_assert_eq!(try_decode(&bytes), Err(WireError::UnsupportedVersion(version)));
    }
}

/// The proptest cases sample bit positions; this nails the guarantee
/// shut by walking *every* bit of every kind's canonical frame.
#[test]
fn every_single_bit_flip_of_every_kind_is_rejected() {
    let frames = [
        Frame::Hello { home: 3, digest: 0x0123_4567_89AB_CDEF },
        Frame::Welcome { home: 3, at: SimTime::from_millis(1_000) },
        Frame::Poll { home: 3, at: SimTime::from_millis(2_500) },
        Frame::Report { home: 3, at: SimTime::from_millis(2_500), seq: 7 },
        Frame::Deliver(WalRecord {
            at: SimTime::from_millis(2_500),
            home: 3,
            act: 0,
            flags: 1,
            reminders: 1,
            praises: 0,
            sessions_started: 1,
            sessions_completed: 0,
            sessions_abandoned: 0,
            cross_activity: 0,
        }),
        Frame::Bye { home: 3, at: SimTime::from_millis(9_000) },
        Frame::Escalate(CareEvent {
            at: SimTime::from_millis(2_500),
            home: 3,
            seq: 1,
            kind: CareEventKind::Raised,
            severity: Severity::Critical,
            trigger: CareTrigger::MissedCriticalAdl,
        }),
    ];
    for frame in frames {
        let bytes = frame_bytes(&frame);
        for idx in 0..bytes.len() {
            for bit in 0..8 {
                let mut bad = bytes.clone();
                bad[idx] ^= 1 << bit;
                assert!(
                    decode_frame(&bad).is_err(),
                    "{frame:?}: flipping byte {idx} bit {bit} slipped through"
                );
                assert!(
                    try_decode(&bad).is_err(),
                    "{frame:?}: flipping byte {idx} bit {bit} slipped past the stream decoder"
                );
            }
        }
    }
}
