//! The CC1000 radio link model.
//!
//! Airtime follows the real transceiver's bitrate; losses come from a
//! pluggable [`LossModel`] — Bernoulli for memoryless noise, Gilbert–
//! Elliott for the bursty fading a kitchen full of moving people actually
//! produces.

use coreda_des::rng::SimRng;
use coreda_des::time::SimDuration;
use serde::{Deserialize, Serialize};

use crate::hw::RADIO_BITRATE_BPS;

/// Per-frame loss processes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LossModel {
    /// Every frame is delivered.
    Perfect,
    /// Each frame is independently lost with probability `p`.
    Bernoulli {
        /// Loss probability.
        p: f64,
    },
    /// Two-state Markov (Gilbert–Elliott) burst-loss model.
    GilbertElliott {
        /// P(good → bad) per frame.
        p_good_to_bad: f64,
        /// P(bad → good) per frame.
        p_bad_to_good: f64,
        /// Loss probability while in the good state.
        loss_good: f64,
        /// Loss probability while in the bad state.
        loss_bad: f64,
    },
}

impl LossModel {
    /// Validates the model's probabilities.
    ///
    /// # Panics
    ///
    /// Panics if any probability is outside `[0, 1]`.
    pub fn validate(&self) {
        let check = |name: &str, v: f64| {
            assert!((0.0..=1.0).contains(&v), "{name} must be a probability, got {v}");
        };
        match *self {
            LossModel::Perfect => {}
            LossModel::Bernoulli { p } => check("p", p),
            LossModel::GilbertElliott { p_good_to_bad, p_bad_to_good, loss_good, loss_bad } => {
                check("p_good_to_bad", p_good_to_bad);
                check("p_bad_to_good", p_bad_to_good);
                check("loss_good", loss_good);
                check("loss_bad", loss_bad);
            }
        }
    }
}

/// A point-to-point radio link with airtime and loss.
///
/// # Examples
///
/// ```
/// use coreda_des::rng::SimRng;
/// use coreda_sensornet::radio::{LossModel, RadioLink};
///
/// let mut link = RadioLink::new(LossModel::Perfect);
/// let mut rng = SimRng::seed_from(0);
/// assert!(link.transmit(32, &mut rng));
/// assert!(RadioLink::airtime(32).as_millis() >= 3);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RadioLink {
    loss: LossModel,
    /// Gilbert–Elliott channel state (`true` = bad).
    in_bad_state: bool,
    frames_sent: u64,
    frames_lost: u64,
}

impl RadioLink {
    /// Creates a link with the given loss process.
    ///
    /// # Panics
    ///
    /// Panics if the loss model holds an invalid probability.
    #[must_use]
    pub fn new(loss: LossModel) -> Self {
        loss.validate();
        RadioLink { loss, in_bad_state: false, frames_sent: 0, frames_lost: 0 }
    }

    /// Swaps the loss process in place (fault-window injection). Resets
    /// the Gilbert–Elliott channel to the good state; frame counters are
    /// preserved so observed loss rates span the whole run.
    ///
    /// # Panics
    ///
    /// Panics if the new model holds an invalid probability.
    pub fn set_loss(&mut self, loss: LossModel) {
        loss.validate();
        self.loss = loss;
        self.in_bad_state = false;
    }

    /// Time on air for a frame of `len_bytes` at the CC1000's bitrate,
    /// rounded up to the next millisecond (plus one ms of MAC overhead).
    #[must_use]
    pub fn airtime(len_bytes: usize) -> SimDuration {
        let bits = len_bytes as u64 * 8;
        let micros = bits * 1_000_000 / RADIO_BITRATE_BPS;
        SimDuration::from_millis(micros / 1000 + 1)
    }

    /// Attempts one frame transmission; returns whether it was delivered.
    pub fn transmit(&mut self, _len_bytes: usize, rng: &mut SimRng) -> bool {
        self.frames_sent += 1;
        let lost = match self.loss {
            LossModel::Perfect => false,
            LossModel::Bernoulli { p } => p > 0.0 && rng.chance(p),
            LossModel::GilbertElliott { p_good_to_bad, p_bad_to_good, loss_good, loss_bad } => {
                // Advance the channel state, then sample a loss in it.
                if self.in_bad_state {
                    if p_bad_to_good > 0.0 && rng.chance(p_bad_to_good) {
                        self.in_bad_state = false;
                    }
                } else if p_good_to_bad > 0.0 && rng.chance(p_good_to_bad) {
                    self.in_bad_state = true;
                }
                let p = if self.in_bad_state { loss_bad } else { loss_good };
                p > 0.0 && rng.chance(p)
            }
        };
        if lost {
            self.frames_lost += 1;
        }
        !lost
    }

    /// Frames attempted so far.
    #[must_use]
    pub const fn frames_sent(&self) -> u64 {
        self.frames_sent
    }

    /// Frames lost so far.
    #[must_use]
    pub const fn frames_lost(&self) -> u64 {
        self.frames_lost
    }

    /// Observed loss rate.
    #[must_use]
    pub fn loss_rate(&self) -> f64 {
        if self.frames_sent == 0 {
            0.0
        } else {
            self.frames_lost as f64 / self.frames_sent as f64
        }
    }

    /// Whether the Gilbert–Elliott channel is currently in the bad state
    /// (always `false` for memoryless models). Checkpointing accessor.
    #[must_use]
    pub const fn in_bad_state(&self) -> bool {
        self.in_bad_state
    }

    /// Restores the channel state and frame counters from a checkpoint.
    /// Call this *after* any [`RadioLink::set_loss`], which resets the
    /// channel to the good state.
    pub fn restore_channel(&mut self, in_bad_state: bool, frames_sent: u64, frames_lost: u64) {
        self.in_bad_state = in_bad_state;
        self.frames_sent = frames_sent;
        self.frames_lost = frames_lost;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_link_never_loses() {
        let mut link = RadioLink::new(LossModel::Perfect);
        let mut rng = SimRng::seed_from(1);
        for _ in 0..1000 {
            assert!(link.transmit(32, &mut rng));
        }
        assert_eq!(link.loss_rate(), 0.0);
    }

    #[test]
    fn bernoulli_loss_rate_matches() {
        let mut link = RadioLink::new(LossModel::Bernoulli { p: 0.3 });
        let mut rng = SimRng::seed_from(2);
        for _ in 0..10_000 {
            let _ = link.transmit(32, &mut rng);
        }
        assert!((link.loss_rate() - 0.3).abs() < 0.02, "rate {}", link.loss_rate());
    }

    #[test]
    fn gilbert_elliott_is_bursty() {
        let model = LossModel::GilbertElliott {
            p_good_to_bad: 0.05,
            p_bad_to_good: 0.2,
            loss_good: 0.01,
            loss_bad: 0.8,
        };
        let mut link = RadioLink::new(model);
        let mut rng = SimRng::seed_from(3);
        let outcomes: Vec<bool> = (0..20_000).map(|_| link.transmit(32, &mut rng)).collect();
        // Burstiness: the probability a loss follows a loss should be well
        // above the marginal loss rate.
        let losses = outcomes.iter().filter(|&&ok| !ok).count() as f64;
        let marginal = losses / outcomes.len() as f64;
        let mut loss_after_loss = 0.0;
        let mut loss_pairs = 0.0;
        for w in outcomes.windows(2) {
            if !w[0] {
                loss_pairs += 1.0;
                if !w[1] {
                    loss_after_loss += 1.0;
                }
            }
        }
        let conditional = loss_after_loss / loss_pairs;
        assert!(
            conditional > marginal * 1.5,
            "expected bursty losses: P(loss|loss) = {conditional:.3} vs marginal {marginal:.3}"
        );
    }

    #[test]
    fn airtime_scales_with_length() {
        let short = RadioLink::airtime(8);
        let long = RadioLink::airtime(64);
        assert!(long > short);
        // 64 bytes = 512 bits at 76.8 kbps ≈ 6.7 ms + 1 overhead.
        assert_eq!(long, SimDuration::from_millis(7));
    }

    #[test]
    fn counters_track_activity() {
        let mut link = RadioLink::new(LossModel::Bernoulli { p: 1.0 });
        let mut rng = SimRng::seed_from(4);
        assert!(!link.transmit(10, &mut rng));
        assert_eq!(link.frames_sent(), 1);
        assert_eq!(link.frames_lost(), 1);
    }

    #[test]
    #[should_panic(expected = "must be a probability")]
    fn invalid_probability_rejected() {
        let _ = RadioLink::new(LossModel::Bernoulli { p: 1.5 });
    }
}
