//! # coreda-sensornet — the PAVENET substrate, in software
//!
//! CoReDA's sensing subsystem ran on PAVENET wireless sensor motes
//! attached to household tools. This crate models that hardware layer so
//! the rest of the system exercises the same code paths the prototype did:
//!
//! - [`hw`] — Table 1 hardware constants (CPU, RAM, radio, sensors) and
//!   the paper's 10 Hz / 3-of-10 detection parameters;
//! - [`sensors`] + [`signal`] — sensor readings and a calibrated synthetic
//!   signal generator replacing the physical accelerometers;
//! - [`detect`] — the 3-of-10 threshold vote from §2.1;
//! - [`node`] — the mote itself: sensor, detector, LEDs, EEPROM, sequence
//!   numbers;
//! - [`packet`] — the wire format with CRC-16 framing;
//! - [`radio`] + [`network`] — a CC1000 link model (Bernoulli and
//!   Gilbert–Elliott losses), stop-and-wait ARQ, and base-station
//!   duplicate suppression;
//! - [`led`] — green/red blink patterns for the reminding subsystem.
//!
//! # Examples
//!
//! A tool node detecting use and reporting it over a lossy link:
//!
//! ```
//! use coreda_des::rng::SimRng;
//! use coreda_sensornet::detect::Thresholds;
//! use coreda_sensornet::network::{LinkConfig, StarNetwork};
//! use coreda_sensornet::node::{NodeId, PavenetNode};
//! use coreda_sensornet::radio::LossModel;
//! use coreda_sensornet::signal::SignalModel;
//!
//! let mut node = PavenetNode::new(
//!     NodeId::new(1),
//!     SignalModel::accelerometer(0.03, 0.5, 0.9),
//!     Thresholds::default(),
//! );
//! let mut net = StarNetwork::new(LinkConfig {
//!     loss: LossModel::Bernoulli { p: 0.1 },
//!     ..LinkConfig::default()
//! });
//! net.register(node.uid());
//! let mut rng = SimRng::seed_from(7);
//! let mut delivered = 0;
//! for tick in 0..100u64 {
//!     if let Some(report) = node.sample_tick(true, tick * 100, &mut rng) {
//!         if net.send_uplink(&report, &mut rng).is_delivered() {
//!             delivered += 1;
//!         }
//!     }
//! }
//! assert!(delivered > 0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod detect;
pub mod eeprom;
pub mod energy;
pub mod hw;
pub mod led;
pub mod medium;
pub mod network;
pub mod node;
pub mod packet;
pub mod radio;
pub mod sensors;
pub mod signal;
pub mod trace;

pub use detect::{Detector, Thresholds};
pub use energy::{EnergyMeter, EnergyModel};
pub use led::{BlinkPattern, LedColor};
pub use medium::SharedMedium;
pub use network::{BaseStation, LinkConfig, LinkCounters, SendOutcome, StarNetwork};
pub use node::{NodeId, PavenetNode};
pub use packet::{Packet, PacketError, Payload};
pub use radio::{LossModel, RadioLink};
pub use sensors::{Reading, SensorKind, Vec3};
pub use signal::SignalModel;
pub use trace::{SignalTrace, TraceError};
