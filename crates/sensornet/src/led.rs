//! LED blink patterns.
//!
//! The reminding subsystem drives the LEDs on the tool-attached nodes:
//! "The green LED indicates the tool should be used. The red LED indicates
//! the tool is incorrectly used." Minimal reminders use fewer blinks,
//! specific reminders more (paper §2.3).

use coreda_des::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// The two reminding LED colours.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LedColor {
    /// "Use this tool."
    Green,
    /// "You are using the wrong tool."
    Red,
}

impl std::fmt::Display for LedColor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            LedColor::Green => "green",
            LedColor::Red => "red",
        })
    }
}

/// A blink request: `blinks` on/off cycles of `period_ms` each.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BlinkPattern {
    /// Which LED to blink.
    pub color: LedColor,
    /// Number of on/off cycles.
    pub blinks: u8,
    /// Length of one full on/off cycle in milliseconds.
    pub period_ms: u64,
}

impl BlinkPattern {
    /// Blink count used for *minimal*-level reminders ("less blinks").
    pub const MINIMAL_BLINKS: u8 = 3;
    /// Blink count used for *specific*-level reminders ("more blinks").
    pub const SPECIFIC_BLINKS: u8 = 8;
    /// Default cycle period.
    pub const DEFAULT_PERIOD_MS: u64 = 500;

    /// The minimal-level pattern in `color`.
    #[must_use]
    pub const fn minimal(color: LedColor) -> Self {
        BlinkPattern { color, blinks: Self::MINIMAL_BLINKS, period_ms: Self::DEFAULT_PERIOD_MS }
    }

    /// The specific-level pattern in `color`.
    #[must_use]
    pub const fn specific(color: LedColor) -> Self {
        BlinkPattern { color, blinks: Self::SPECIFIC_BLINKS, period_ms: Self::DEFAULT_PERIOD_MS }
    }

    /// Total time the pattern takes to play.
    #[must_use]
    pub fn duration(&self) -> SimDuration {
        SimDuration::from_millis(u64::from(self.blinks) * self.period_ms)
    }

    /// The on/off toggle schedule starting at `start`: pairs of
    /// `(instant, led_on)`.
    #[must_use]
    pub fn schedule(&self, start: SimTime) -> Vec<(SimTime, bool)> {
        let half = SimDuration::from_millis(self.period_ms / 2);
        let mut out = Vec::with_capacity(usize::from(self.blinks) * 2);
        let mut t = start;
        for _ in 0..self.blinks {
            out.push((t, true));
            out.push((t + half, false));
            t += SimDuration::from_millis(self.period_ms);
        }
        out
    }
}

/// The on/off state of one node's LED bank.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LedBank {
    green: bool,
    red: bool,
}

impl LedBank {
    /// All LEDs off.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets one LED.
    pub fn set(&mut self, color: LedColor, on: bool) {
        match color {
            LedColor::Green => self.green = on,
            LedColor::Red => self.red = on,
        }
    }

    /// Reads one LED.
    #[must_use]
    pub fn is_on(&self, color: LedColor) -> bool {
        match color {
            LedColor::Green => self.green,
            LedColor::Red => self.red,
        }
    }

    /// Turns everything off.
    pub fn clear(&mut self) {
        *self = Self::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_has_fewer_blinks_than_specific() {
        let min = BlinkPattern::minimal(LedColor::Green);
        let spec = BlinkPattern::specific(LedColor::Green);
        assert!(min.blinks < spec.blinks, "paper: minimal gives less blinks");
    }

    #[test]
    fn duration_scales_with_blinks() {
        let p = BlinkPattern { color: LedColor::Red, blinks: 4, period_ms: 500 };
        assert_eq!(p.duration(), SimDuration::from_secs(2));
    }

    #[test]
    fn schedule_alternates_on_off() {
        let p = BlinkPattern { color: LedColor::Green, blinks: 2, period_ms: 1000 };
        let sched = p.schedule(SimTime::from_secs(10));
        assert_eq!(
            sched,
            vec![
                (SimTime::from_millis(10_000), true),
                (SimTime::from_millis(10_500), false),
                (SimTime::from_millis(11_000), true),
                (SimTime::from_millis(11_500), false),
            ]
        );
    }

    #[test]
    fn schedule_is_time_sorted() {
        let p = BlinkPattern::specific(LedColor::Red);
        let sched = p.schedule(SimTime::ZERO);
        for w in sched.windows(2) {
            assert!(w[0].0 <= w[1].0);
        }
        assert_eq!(sched.len(), usize::from(p.blinks) * 2);
    }

    #[test]
    fn led_bank_tracks_state() {
        let mut bank = LedBank::new();
        assert!(!bank.is_on(LedColor::Green));
        bank.set(LedColor::Green, true);
        bank.set(LedColor::Red, true);
        assert!(bank.is_on(LedColor::Green) && bank.is_on(LedColor::Red));
        bank.set(LedColor::Green, false);
        assert!(!bank.is_on(LedColor::Green) && bank.is_on(LedColor::Red));
        bank.clear();
        assert_eq!(bank, LedBank::new());
    }

    #[test]
    fn colors_display() {
        assert_eq!(LedColor::Green.to_string(), "green");
        assert_eq!(LedColor::Red.to_string(), "red");
    }
}
