//! Synthetic sensor-signal generation.
//!
//! The original experiments read real accelerometers and a pressure sensor
//! while a person manipulated household tools. We replace the physics with
//! a stochastic signal model whose knobs map onto what mattered in the
//! paper's Table 3: how *strongly* a manipulation shows up against sensor
//! noise (`snr`), and what fraction of the time a "being used" tool is
//! actually in motion (`duty` — pouring hot water is one brief tip of the
//! pot; brushing teeth is continuous shaking).

use coreda_des::rng::SimRng;
use serde::{Deserialize, Serialize};

use crate::sensors::{Reading, SensorKind, Vec3, AMBIENT_PRESSURE_KPA};

/// Parameters of a tool's signal behaviour.
///
/// # Examples
///
/// ```
/// use coreda_des::rng::SimRng;
/// use coreda_sensornet::sensors::SensorKind;
/// use coreda_sensornet::signal::SignalModel;
///
/// let model = SignalModel::accelerometer(0.05, 0.45, 0.8);
/// let mut rng = SimRng::seed_from(1);
/// let quiet = model.sample(false, &mut rng);
/// let busy = model.sample(true, &mut rng);
/// assert_eq!(quiet.kind(), SensorKind::Accelerometer);
/// # let _ = busy;
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SignalModel {
    kind: SensorKind,
    /// Standard deviation of per-sample noise, in activation units.
    noise_sd: f64,
    /// Mean activation amplitude while the tool is actively manipulated.
    active_amplitude: f64,
    /// Probability that a given 100 ms sample during a "in use" period is
    /// actually energised (the hand is moving the tool right now).
    duty: f64,
}

impl SignalModel {
    /// A generic model.
    ///
    /// # Panics
    ///
    /// Panics if `noise_sd` is negative, `active_amplitude` is negative,
    /// or `duty` is outside `[0, 1]`.
    #[must_use]
    pub fn new(kind: SensorKind, noise_sd: f64, active_amplitude: f64, duty: f64) -> Self {
        assert!(noise_sd >= 0.0, "noise_sd must be non-negative");
        assert!(active_amplitude >= 0.0, "active_amplitude must be non-negative");
        assert!((0.0..=1.0).contains(&duty), "duty must be in [0, 1]");
        SignalModel { kind, noise_sd, active_amplitude, duty }
    }

    /// An accelerometer-equipped tool.
    #[must_use]
    pub fn accelerometer(noise_sd: f64, active_amplitude: f64, duty: f64) -> Self {
        Self::new(SensorKind::Accelerometer, noise_sd, active_amplitude, duty)
    }

    /// A pressure-equipped tool (the electronic pot: activation in kPa).
    #[must_use]
    pub fn pressure(noise_sd: f64, active_amplitude: f64, duty: f64) -> Self {
        Self::new(SensorKind::Pressure, noise_sd, active_amplitude, duty)
    }

    /// The sensor kind this model emulates.
    #[must_use]
    pub const fn kind(&self) -> SensorKind {
        self.kind
    }

    /// The duty cycle (fraction of energised samples while in use).
    #[must_use]
    pub const fn duty(&self) -> f64 {
        self.duty
    }

    /// Draws one 100 ms sample. `active` says whether the tool is being
    /// used during this sample's window.
    pub fn sample(&self, active: bool, rng: &mut SimRng) -> Reading {
        let energised = active && rng.chance(self.duty);
        let amplitude = if energised {
            // Burst amplitudes vary sample to sample; keep them positive.
            (self.active_amplitude + rng.normal(0.0, self.active_amplitude * 0.3)).max(0.0)
        } else {
            0.0
        };
        match self.kind {
            SensorKind::Accelerometer => {
                // Start from gravity, add isotropic noise, then add a burst
                // along a random horizontal-ish direction.
                let noise = Vec3::new(
                    rng.normal(0.0, self.noise_sd),
                    rng.normal(0.0, self.noise_sd),
                    rng.normal(0.0, self.noise_sd),
                );
                let theta = rng.uniform_range(0.0, std::f64::consts::TAU);
                // Idle samples (the vast majority) have a zero-amplitude
                // burst: skip the trig but keep the theta draw so the RNG
                // stream is identical either way. (`0.0 * cos` could yield
                // `-0.0` where this yields `+0.0`; downstream activation
                // squares the components, so the sign of zero is
                // unobservable, and raw readings are never serialised.)
                let burst = if amplitude > 0.0 {
                    Vec3::new(amplitude * theta.cos(), amplitude * theta.sin(), amplitude * 0.5)
                } else {
                    Vec3::new(0.0, 0.0, 0.0)
                };
                Reading::Accel(Vec3::new(
                    noise.x + burst.x,
                    noise.y + burst.y,
                    1.0 + noise.z + burst.z,
                ))
            }
            SensorKind::Pressure => Reading::Pressure(
                AMBIENT_PRESSURE_KPA + amplitude + rng.normal(0.0, self.noise_sd),
            ),
            SensorKind::Brightness => Reading::Brightness(
                crate::sensors::AMBIENT_BRIGHTNESS_LUX
                    + amplitude
                    + rng.normal(0.0, self.noise_sd),
            ),
            SensorKind::Temperature => Reading::Temperature(
                crate::sensors::AMBIENT_TEMPERATURE_C + amplitude + rng.normal(0.0, self.noise_sd),
            ),
            SensorKind::Motion => Reading::Motion(energised),
        }
    }

    /// Draws a full one-second detection window of
    /// [`SAMPLES_PER_WINDOW`](crate::hw::SAMPLES_PER_WINDOW) samples.
    pub fn sample_window(&self, active: bool, rng: &mut SimRng) -> Vec<Reading> {
        (0..crate::hw::SAMPLES_PER_WINDOW).map(|_| self.sample(active, rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> SignalModel {
        SignalModel::accelerometer(0.02, 0.5, 0.9)
    }

    #[test]
    fn quiet_samples_have_low_activation() {
        let m = model();
        let mut rng = SimRng::seed_from(3);
        let mean: f64 =
            (0..1000).map(|_| m.sample(false, &mut rng).activation()).sum::<f64>() / 1000.0;
        assert!(mean < 0.1, "quiescent activation {mean} too high");
    }

    #[test]
    fn active_samples_have_high_activation() {
        let m = model();
        let mut rng = SimRng::seed_from(4);
        let mean: f64 =
            (0..1000).map(|_| m.sample(true, &mut rng).activation()).sum::<f64>() / 1000.0;
        assert!(mean > 0.3, "active activation {mean} too low");
    }

    #[test]
    fn duty_controls_energised_fraction() {
        let lazy = SignalModel::accelerometer(0.0, 1.0, 0.2);
        let mut rng = SimRng::seed_from(5);
        let hot = (0..2000)
            .filter(|_| lazy.sample(true, &mut rng).activation() > 0.5)
            .count();
        assert!((250..550).contains(&hot), "expected ~20% energised, got {hot}/2000");
    }

    #[test]
    fn pressure_model_deviates_from_ambient_when_active() {
        let m = SignalModel::pressure(0.05, 3.0, 1.0);
        let mut rng = SimRng::seed_from(6);
        let r = m.sample(true, &mut rng);
        assert!(r.activation() > 1.0, "activation {}", r.activation());
        assert_eq!(r.kind(), SensorKind::Pressure);
    }

    #[test]
    fn window_has_ten_samples() {
        let m = model();
        let mut rng = SimRng::seed_from(7);
        assert_eq!(m.sample_window(true, &mut rng).len(), 10);
    }

    #[test]
    fn motion_model_is_binary() {
        let m = SignalModel::new(SensorKind::Motion, 0.0, 1.0, 1.0);
        let mut rng = SimRng::seed_from(8);
        assert_eq!(m.sample(true, &mut rng), Reading::Motion(true));
        assert_eq!(m.sample(false, &mut rng), Reading::Motion(false));
    }

    #[test]
    fn determinism_under_seed() {
        let m = model();
        let mut a = SimRng::seed_from(11);
        let mut b = SimRng::seed_from(11);
        for _ in 0..100 {
            assert_eq!(m.sample(true, &mut a), m.sample(true, &mut b));
        }
    }

    #[test]
    #[should_panic(expected = "duty must be in [0, 1]")]
    fn bad_duty_rejected() {
        let _ = SignalModel::accelerometer(0.1, 0.5, 2.0);
    }
}
