//! The shared radio medium: CSMA/CA contention between nodes.
//!
//! [`RadioLink`](crate::radio::RadioLink) models *channel* impairments
//! per node; this module models what links cannot see — several nodes
//! keying up in the same slot. PAVENET's CC1000 MAC does carrier-sense
//! with a random backoff over a small contention window; two nodes that
//! draw the same backoff slot collide and both frames die (to be
//! recovered by the ARQ layer above).

use coreda_des::rng::SimRng;
use serde::{Deserialize, Serialize};

/// A slotted CSMA/CA contention model.
///
/// # Examples
///
/// ```
/// use coreda_des::rng::SimRng;
/// use coreda_sensornet::medium::SharedMedium;
///
/// let medium = SharedMedium::new(8);
/// let mut rng = SimRng::seed_from(1);
/// // A single transmitter never collides.
/// assert_eq!(medium.resolve_slot(1, &mut rng), vec![true]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SharedMedium {
    /// Number of backoff slots in the contention window.
    contention_window: u8,
}

impl SharedMedium {
    /// Creates a medium with the given contention window.
    ///
    /// # Panics
    ///
    /// Panics if `contention_window` is zero.
    #[must_use]
    pub fn new(contention_window: u8) -> Self {
        assert!(contention_window > 0, "contention window must be positive");
        SharedMedium { contention_window }
    }

    /// The contention window size.
    #[must_use]
    pub const fn contention_window(&self) -> u8 {
        self.contention_window
    }

    /// Resolves one slot with `transmitters` simultaneous senders:
    /// each draws a uniform backoff; a sender whose backoff is unique
    /// *and* earliest-or-backed-off-behind-a-visible-winner delivers.
    ///
    /// Concretely (standard slotted CSMA idealisation): senders sharing
    /// their drawn slot with someone else collide; senders alone in their
    /// slot succeed (carrier sense lets later unique slots wait out
    /// earlier transmissions).
    ///
    /// Returns one success flag per transmitter, in order.
    pub fn resolve_slot(&self, transmitters: usize, rng: &mut SimRng) -> Vec<bool> {
        let mut out = Vec::new();
        self.resolve_slot_into(transmitters, rng, &mut out);
        out
    }

    /// [`SharedMedium::resolve_slot`] into a caller-provided buffer —
    /// the allocation-free form for per-tick hot paths. `out` is cleared
    /// first; the RNG draw sequence is identical to `resolve_slot`.
    pub fn resolve_slot_into(&self, transmitters: usize, rng: &mut SimRng, out: &mut Vec<bool>) {
        out.clear();
        if transmitters <= 1 {
            out.resize(transmitters, true);
            return;
        }
        // A home has a handful of instrumented tools, so the draws fit a
        // stack array in practice; spill to the heap only beyond that.
        const INLINE: usize = 32;
        let mut inline = [0usize; INLINE];
        let mut spill;
        let draws: &mut [usize] = if transmitters <= INLINE {
            &mut inline[..transmitters]
        } else {
            spill = vec![0usize; transmitters];
            &mut spill
        };
        for d in draws.iter_mut() {
            *d = rng.uniform_usize(0, usize::from(self.contention_window));
        }
        out.extend(draws.iter().map(|&d| draws.iter().filter(|&&o| o == d).count() == 1));
    }

    /// The analytic per-sender collision probability with `k` contenders.
    #[must_use]
    pub fn collision_probability(&self, k: usize) -> f64 {
        if k <= 1 {
            return 0.0;
        }
        let b = f64::from(self.contention_window);
        1.0 - ((b - 1.0) / b).powi(i32::try_from(k - 1).unwrap_or(i32::MAX))
    }
}

impl Default for SharedMedium {
    /// An 8-slot contention window (CC1000-class MACs are small).
    fn default() -> Self {
        SharedMedium::new(8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lone_sender_always_succeeds() {
        let m = SharedMedium::default();
        let mut rng = SimRng::seed_from(1);
        for _ in 0..100 {
            assert_eq!(m.resolve_slot(1, &mut rng), vec![true]);
        }
        assert_eq!(m.resolve_slot(0, &mut rng), Vec::<bool>::new());
        assert_eq!(m.collision_probability(1), 0.0);
    }

    #[test]
    fn empirical_collision_rate_matches_analytic() {
        let m = SharedMedium::new(8);
        let mut rng = SimRng::seed_from(2);
        for k in [2usize, 4, 8] {
            let trials = 20_000;
            let mut collisions = 0usize;
            for _ in 0..trials {
                collisions += m.resolve_slot(k, &mut rng).iter().filter(|&&ok| !ok).count();
            }
            let empirical = collisions as f64 / (trials * k) as f64;
            let analytic = m.collision_probability(k);
            assert!(
                (empirical - analytic).abs() < 0.01,
                "k={k}: empirical {empirical:.3} vs analytic {analytic:.3}"
            );
        }
    }

    #[test]
    fn more_contenders_collide_more() {
        let m = SharedMedium::new(8);
        let mut last = 0.0;
        for k in 1..10 {
            let p = m.collision_probability(k);
            assert!(p >= last, "collision probability must grow with k");
            last = p;
        }
        assert!(last > 0.5, "nine contenders in eight slots collide a lot");
    }

    #[test]
    fn wider_window_reduces_collisions() {
        let narrow = SharedMedium::new(4);
        let wide = SharedMedium::new(64);
        assert!(wide.collision_probability(4) < narrow.collision_probability(4));
    }

    #[test]
    fn outcomes_are_symmetric_in_expectation() {
        // No transmitter is privileged: success rates across positions
        // should be statistically equal.
        let m = SharedMedium::new(8);
        let mut rng = SimRng::seed_from(3);
        let k = 3;
        let mut wins = vec![0usize; k];
        let trials = 30_000;
        for _ in 0..trials {
            for (i, ok) in m.resolve_slot(k, &mut rng).into_iter().enumerate() {
                if ok {
                    wins[i] += 1;
                }
            }
        }
        let expect = wins.iter().sum::<usize>() as f64 / k as f64;
        for (i, &w) in wins.iter().enumerate() {
            assert!(
                (w as f64 - expect).abs() < expect * 0.05,
                "position {i} won {w} vs mean {expect}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "contention window must be positive")]
    fn zero_window_rejected() {
        let _ = SharedMedium::new(0);
    }

    #[test]
    fn into_variant_matches_allocating_variant() {
        let m = SharedMedium::new(8);
        // Same seed → same draw sequence → same outcomes, buffer reused.
        let mut rng_a = SimRng::seed_from(7);
        let mut rng_b = SimRng::seed_from(7);
        let mut buf = Vec::new();
        for k in [0usize, 1, 2, 5, 33, 40] {
            m.resolve_slot_into(k, &mut rng_a, &mut buf);
            assert_eq!(buf, m.resolve_slot(k, &mut rng_b), "k={k}");
        }
    }
}
