//! Sensor kinds and readings.

use std::fmt;

use serde::{Deserialize, Serialize};

/// The sensors a PAVENET node can carry (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SensorKind {
    /// 3-axis accelerometer (used on tea-box, kettle, tea-cup, toothpaste
    /// tube, brush, cup, towel).
    Accelerometer,
    /// Pressure sensor (used on the electronic pot).
    Pressure,
    /// Ambient brightness.
    Brightness,
    /// Temperature.
    Temperature,
    /// Passive-infrared motion.
    Motion,
}

impl fmt::Display for SensorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            SensorKind::Accelerometer => "3-axis accelerometer",
            SensorKind::Pressure => "pressure",
            SensorKind::Brightness => "brightness",
            SensorKind::Temperature => "temperature",
            SensorKind::Motion => "motion",
        };
        f.write_str(name)
    }
}

/// A 3-axis acceleration vector in units of g.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Vec3 {
    /// X component.
    pub x: f64,
    /// Y component.
    pub y: f64,
    /// Z component.
    pub z: f64,
}

impl Vec3 {
    /// Creates a vector.
    #[must_use]
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Vec3 { x, y, z }
    }

    /// Euclidean norm.
    #[must_use]
    pub fn magnitude(self) -> f64 {
        (self.x * self.x + self.y * self.y + self.z * self.z).sqrt()
    }
}

/// One sensor sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Reading {
    /// Acceleration in g.
    Accel(Vec3),
    /// Pressure in kilopascal.
    Pressure(f64),
    /// Brightness in lux.
    Brightness(f64),
    /// Temperature in °C.
    Temperature(f64),
    /// Motion detected this sample.
    Motion(bool),
}

impl Reading {
    /// The sensor kind that produced this reading.
    #[must_use]
    pub fn kind(&self) -> SensorKind {
        match self {
            Reading::Accel(_) => SensorKind::Accelerometer,
            Reading::Pressure(_) => SensorKind::Pressure,
            Reading::Brightness(_) => SensorKind::Brightness,
            Reading::Temperature(_) => SensorKind::Temperature,
            Reading::Motion(_) => SensorKind::Motion,
        }
    }

    /// The scalar *activation* of the reading: how far it deviates from
    /// the quiescent baseline, in the units the detection threshold is
    /// expressed in.
    ///
    /// - Accelerometer: `| ‖a‖ − 1 g |` (a still tool reads exactly
    ///   gravity).
    /// - Pressure: deviation from ambient (`101.3 kPa`).
    /// - Brightness / temperature: deviation from typical indoor baseline.
    /// - Motion: 1.0 if triggered, else 0.0.
    #[must_use]
    pub fn activation(&self) -> f64 {
        match *self {
            Reading::Accel(v) => (v.magnitude() - 1.0).abs(),
            Reading::Pressure(kpa) => (kpa - AMBIENT_PRESSURE_KPA).abs(),
            Reading::Brightness(lux) => (lux - AMBIENT_BRIGHTNESS_LUX).abs(),
            Reading::Temperature(c) => (c - AMBIENT_TEMPERATURE_C).abs(),
            Reading::Motion(hit) => f64::from(u8::from(hit)),
        }
    }
}

/// Sea-level ambient pressure baseline, kPa.
pub const AMBIENT_PRESSURE_KPA: f64 = 101.3;
/// Typical indoor brightness baseline, lux.
pub const AMBIENT_BRIGHTNESS_LUX: f64 = 300.0;
/// Typical indoor temperature baseline, °C.
pub const AMBIENT_TEMPERATURE_C: f64 = 22.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec3_magnitude() {
        assert_eq!(Vec3::new(3.0, 4.0, 0.0).magnitude(), 5.0);
        assert_eq!(Vec3::default().magnitude(), 0.0);
    }

    #[test]
    fn reading_kind_roundtrip() {
        assert_eq!(Reading::Accel(Vec3::default()).kind(), SensorKind::Accelerometer);
        assert_eq!(Reading::Pressure(100.0).kind(), SensorKind::Pressure);
        assert_eq!(Reading::Motion(true).kind(), SensorKind::Motion);
    }

    #[test]
    fn still_accelerometer_has_zero_activation() {
        let g = Reading::Accel(Vec3::new(0.0, 0.0, 1.0));
        assert!(g.activation() < 1e-12);
    }

    #[test]
    fn shaken_accelerometer_activates() {
        let shaken = Reading::Accel(Vec3::new(0.5, 0.5, 1.2));
        assert!(shaken.activation() > 0.2);
    }

    #[test]
    fn pressure_activation_is_deviation_from_ambient() {
        assert!((Reading::Pressure(103.3).activation() - 2.0).abs() < 1e-12);
        assert_eq!(Reading::Pressure(AMBIENT_PRESSURE_KPA).activation(), 0.0);
    }

    #[test]
    fn motion_activation_is_binary() {
        assert_eq!(Reading::Motion(true).activation(), 1.0);
        assert_eq!(Reading::Motion(false).activation(), 0.0);
    }

    #[test]
    fn display_names() {
        assert_eq!(SensorKind::Accelerometer.to_string(), "3-axis accelerometer");
        assert_eq!(SensorKind::Pressure.to_string(), "pressure");
    }
}
