//! The node's external EEPROM (16 KiB, Table 1).
//!
//! PAVENET nodes buffer configuration (their uid-as-tool-ID binding) and
//! unreported detections here. The model enforces the real part's size.

use std::error::Error;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::hw::EEPROM_BYTES;

/// A bounds-checked byte store the size of the real part.
///
/// The backing heap is allocated on first write: the serving pipeline
/// never writes the EEPROM, so a metro fleet's million nodes share the
/// one static zero page below instead of paying 16 KiB each (the
/// dominant per-home heap cost before this). An untouched device is
/// indistinguishable from a zero-filled one through every method,
/// including equality.
///
/// # Examples
///
/// ```
/// use coreda_sensornet::eeprom::Eeprom;
///
/// let mut rom = Eeprom::new();
/// rom.write(0x10, &[1, 2, 3])?;
/// assert_eq!(rom.read(0x10, 3)?, &[1, 2, 3]);
/// # Ok::<(), coreda_sensornet::eeprom::EepromError>(())
/// ```
#[derive(Debug, Clone, Eq, Serialize, Deserialize)]
pub struct Eeprom {
    /// Either empty (device never written) or exactly [`EEPROM_BYTES`].
    data: Vec<u8>,
}

/// What every unwritten device reads as: one 16 KiB zero block in
/// rodata, shared by the whole fleet.
static ZEROS: [u8; EEPROM_BYTES] = [0; EEPROM_BYTES];

impl Default for Eeprom {
    fn default() -> Self {
        Self::new()
    }
}

/// Logical-content equality: an unwritten device equals a zero-filled
/// one (a deserialised eager-layout blob must match a fresh lazy one).
impl PartialEq for Eeprom {
    fn eq(&self, other: &Self) -> bool {
        self.bytes() == other.bytes()
    }
}

impl Eeprom {
    /// A zero-filled EEPROM of the hardware's capacity.
    #[must_use]
    pub fn new() -> Self {
        Eeprom { data: Vec::new() }
    }

    /// Capacity in bytes.
    #[must_use]
    pub fn capacity(&self) -> usize {
        EEPROM_BYTES
    }

    /// The full logical contents, materialised or not.
    fn bytes(&self) -> &[u8] {
        if self.data.is_empty() {
            &ZEROS
        } else {
            &self.data
        }
    }

    /// Writes `bytes` starting at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`EepromError`] if the write would run past the end.
    pub fn write(&mut self, addr: usize, bytes: &[u8]) -> Result<(), EepromError> {
        let end = addr.checked_add(bytes.len()).ok_or(EepromError {
            addr,
            len: bytes.len(),
            capacity: self.capacity(),
        })?;
        if end > EEPROM_BYTES {
            return Err(EepromError { addr, len: bytes.len(), capacity: self.capacity() });
        }
        if self.data.is_empty() {
            self.data = vec![0; EEPROM_BYTES];
        }
        self.data[addr..end].copy_from_slice(bytes);
        Ok(())
    }

    /// Reads `len` bytes starting at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`EepromError`] if the read would run past the end.
    pub fn read(&self, addr: usize, len: usize) -> Result<&[u8], EepromError> {
        let end = addr
            .checked_add(len)
            .ok_or(EepromError { addr, len, capacity: self.capacity() })?;
        if end > EEPROM_BYTES {
            return Err(EepromError { addr, len, capacity: self.capacity() });
        }
        Ok(&self.bytes()[addr..end])
    }
}

/// An out-of-bounds EEPROM access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EepromError {
    /// Requested start address.
    pub addr: usize,
    /// Requested length.
    pub len: usize,
    /// Device capacity.
    pub capacity: usize,
}

impl fmt::Display for EepromError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "eeprom access [{}, {}) exceeds capacity {}",
            self.addr,
            self.addr + self.len,
            self.capacity
        )
    }
}

impl Error for EepromError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_matches_table1() {
        assert_eq!(Eeprom::new().capacity(), 16 * 1024);
    }

    #[test]
    fn write_read_roundtrip() {
        let mut rom = Eeprom::new();
        rom.write(100, b"coreda").unwrap();
        assert_eq!(rom.read(100, 6).unwrap(), b"coreda");
    }

    #[test]
    fn boundary_write_is_allowed() {
        let mut rom = Eeprom::new();
        let cap = rom.capacity();
        assert!(rom.write(cap - 4, &[9; 4]).is_ok());
        assert_eq!(rom.read(cap - 4, 4).unwrap(), &[9; 4]);
    }

    #[test]
    fn overflow_write_rejected() {
        let mut rom = Eeprom::new();
        let cap = rom.capacity();
        let err = rom.write(cap - 2, &[0; 4]).unwrap_err();
        assert_eq!(err.capacity, cap);
        assert!(err.to_string().contains("exceeds capacity"));
    }

    #[test]
    fn overflow_read_rejected() {
        let rom = Eeprom::new();
        assert!(rom.read(rom.capacity(), 1).is_err());
        assert!(rom.read(usize::MAX, 2).is_err());
    }

    #[test]
    fn fresh_eeprom_is_zeroed() {
        let rom = Eeprom::new();
        assert!(rom.read(0, 64).unwrap().iter().all(|&b| b == 0));
    }

    #[test]
    fn unwritten_equals_explicitly_zero_filled() {
        let lazy = Eeprom::new();
        let mut eager = Eeprom::new();
        eager.write(0, &[0u8; EEPROM_BYTES]).unwrap();
        assert_eq!(lazy, eager, "materialisation must be unobservable");
        assert_eq!(lazy.read(0, EEPROM_BYTES), eager.read(0, EEPROM_BYTES));

        let mut written = Eeprom::new();
        written.write(7, &[1]).unwrap();
        assert_ne!(lazy, written);
    }
}
