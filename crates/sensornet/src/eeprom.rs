//! The node's external EEPROM (16 KiB, Table 1).
//!
//! PAVENET nodes buffer configuration (their uid-as-tool-ID binding) and
//! unreported detections here. The model enforces the real part's size.

use std::error::Error;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::hw::EEPROM_BYTES;

/// A bounds-checked byte store the size of the real part.
///
/// # Examples
///
/// ```
/// use coreda_sensornet::eeprom::Eeprom;
///
/// let mut rom = Eeprom::new();
/// rom.write(0x10, &[1, 2, 3])?;
/// assert_eq!(rom.read(0x10, 3)?, &[1, 2, 3]);
/// # Ok::<(), coreda_sensornet::eeprom::EepromError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Eeprom {
    data: Vec<u8>,
}

impl Default for Eeprom {
    fn default() -> Self {
        Self::new()
    }
}

impl Eeprom {
    /// A zero-filled EEPROM of the hardware's capacity.
    #[must_use]
    pub fn new() -> Self {
        Eeprom { data: vec![0; EEPROM_BYTES] }
    }

    /// Capacity in bytes.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.data.len()
    }

    /// Writes `bytes` starting at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`EepromError`] if the write would run past the end.
    pub fn write(&mut self, addr: usize, bytes: &[u8]) -> Result<(), EepromError> {
        let end = addr.checked_add(bytes.len()).ok_or(EepromError {
            addr,
            len: bytes.len(),
            capacity: self.capacity(),
        })?;
        if end > self.data.len() {
            return Err(EepromError { addr, len: bytes.len(), capacity: self.capacity() });
        }
        self.data[addr..end].copy_from_slice(bytes);
        Ok(())
    }

    /// Reads `len` bytes starting at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`EepromError`] if the read would run past the end.
    pub fn read(&self, addr: usize, len: usize) -> Result<&[u8], EepromError> {
        let end = addr
            .checked_add(len)
            .ok_or(EepromError { addr, len, capacity: self.capacity() })?;
        if end > self.data.len() {
            return Err(EepromError { addr, len, capacity: self.capacity() });
        }
        Ok(&self.data[addr..end])
    }
}

/// An out-of-bounds EEPROM access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EepromError {
    /// Requested start address.
    pub addr: usize,
    /// Requested length.
    pub len: usize,
    /// Device capacity.
    pub capacity: usize,
}

impl fmt::Display for EepromError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "eeprom access [{}, {}) exceeds capacity {}",
            self.addr,
            self.addr + self.len,
            self.capacity
        )
    }
}

impl Error for EepromError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_matches_table1() {
        assert_eq!(Eeprom::new().capacity(), 16 * 1024);
    }

    #[test]
    fn write_read_roundtrip() {
        let mut rom = Eeprom::new();
        rom.write(100, b"coreda").unwrap();
        assert_eq!(rom.read(100, 6).unwrap(), b"coreda");
    }

    #[test]
    fn boundary_write_is_allowed() {
        let mut rom = Eeprom::new();
        let cap = rom.capacity();
        assert!(rom.write(cap - 4, &[9; 4]).is_ok());
        assert_eq!(rom.read(cap - 4, 4).unwrap(), &[9; 4]);
    }

    #[test]
    fn overflow_write_rejected() {
        let mut rom = Eeprom::new();
        let cap = rom.capacity();
        let err = rom.write(cap - 2, &[0; 4]).unwrap_err();
        assert_eq!(err.capacity, cap);
        assert!(err.to_string().contains("exceeds capacity"));
    }

    #[test]
    fn overflow_read_rejected() {
        let rom = Eeprom::new();
        assert!(rom.read(rom.capacity(), 1).is_err());
        assert!(rom.read(usize::MAX, 2).is_err());
    }

    #[test]
    fn fresh_eeprom_is_zeroed() {
        let rom = Eeprom::new();
        assert!(rom.read(0, 64).unwrap().iter().all(|&b| b == 0));
    }
}
