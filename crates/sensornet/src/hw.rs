//! PAVENET hardware constants (paper, Table 1).
//!
//! These mirror the mote the original prototype ran on. They are encoded
//! as constants so the simulation's resource models (EEPROM size, radio
//! bitrate, LED count) stay within what the real hardware could do, and so
//! Table 1 of the paper can be asserted in tests.

/// Microcontroller part number.
pub const CPU: &str = "Microchip PIC18LF4620";

/// On-chip RAM in bytes (4 KB).
pub const RAM_BYTES: usize = 4 * 1024;

/// On-chip program ROM in bytes (64 KB).
pub const ROM_BYTES: usize = 64 * 1024;

/// Radio transceiver part number.
pub const RADIO: &str = "ChipCon CC1000";

/// CC1000 maximum over-the-air bitrate in bits per second (76.8 kBaud).
pub const RADIO_BITRATE_BPS: u64 = 76_800;

/// External EEPROM size in bytes (16 KB).
pub const EEPROM_BYTES: usize = 16 * 1024;

/// Number of on-board LEDs.
pub const LED_COUNT: usize = 4;

/// Sensor sampling rate used by CoReDA's sensing subsystem (paper §2.1:
/// "The sampling rate of each sensor is 10 times in one second").
pub const SAMPLE_RATE_HZ: u64 = 10;

/// Samples per detection window (one second at 10 Hz).
pub const SAMPLES_PER_WINDOW: usize = 10;

/// Samples within a window that must surpass the threshold for the tool to
/// count as "in use" (paper §2.1: "If three of these 10 samples surpass a
/// pre-defined threshold").
pub const DETECTION_VOTES: usize = 3;

/// I/O interfaces listed in Table 1.
pub const IO: &[&str] = &["UART", "GPIO", "I2C"];

/// On-board sensors listed in Table 1.
pub const SENSORS: &[&str] =
    &["3-axis accelerometer", "Pressure", "Brightness", "Temperature", "Motion"];

#[cfg(test)]
mod tests {
    use super::*;

    /// Table 1 of the paper, verbatim.
    #[test]
    fn table1_matches_paper() {
        assert_eq!(CPU, "Microchip PIC18LF4620");
        assert_eq!(RAM_BYTES, 4096);
        assert_eq!(ROM_BYTES, 65_536);
        assert_eq!(RADIO, "ChipCon CC1000");
        assert_eq!(EEPROM_BYTES, 16_384);
        assert_eq!(LED_COUNT, 4);
        assert_eq!(SENSORS.len(), 5);
    }

    /// Section 2.1's sampling and voting rule.
    #[test]
    fn detection_rule_matches_paper() {
        assert_eq!(SAMPLE_RATE_HZ, 10);
        assert_eq!(SAMPLES_PER_WINDOW, 10);
        assert_eq!(DETECTION_VOTES, 3);
    }
}
