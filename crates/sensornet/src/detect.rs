//! The paper's tool-usage detection rule.
//!
//! "The sampling rate of each sensor is 10 times in one second. If three
//! of these 10 samples surpass a pre-defined threshold, the tool will be
//! considered is using. … We use this mechanism to protect detection
//! against accidental operation." (paper §2.1)

use coreda_des::stats::RunningStats;
use serde::{Deserialize, Serialize};

use crate::hw::{DETECTION_VOTES, SAMPLES_PER_WINDOW};
use crate::sensors::{Reading, SensorKind};
use crate::trace::SignalTrace;

/// Per-sensor-kind activation thresholds.
///
/// Units follow [`Reading::activation`]: g-deviation for accelerometers,
/// kPa for pressure, and so on. The defaults were calibrated against
/// [`SignalModel`](crate::signal::SignalModel)'s noise levels so that a
/// still tool essentially never crosses and a firmly manipulated one
/// usually does.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Thresholds {
    /// Accelerometer threshold in g-deviation.
    pub accel: f64,
    /// Pressure threshold in kPa deviation from ambient.
    pub pressure: f64,
    /// Brightness threshold in lux deviation.
    pub brightness: f64,
    /// Temperature threshold in °C deviation.
    pub temperature: f64,
}

impl Default for Thresholds {
    fn default() -> Self {
        Thresholds { accel: 0.15, pressure: 1.0, brightness: 100.0, temperature: 2.0 }
    }
}

impl Thresholds {
    /// Calibrates thresholds from *quiescent* recordings: for each sensor
    /// kind present in `traces`, the threshold becomes
    /// `mean + k·σ` of the observed idle activations (kinds without data
    /// keep the defaults).
    ///
    /// This is how a real deployment sets its "pre-defined threshold":
    /// record each instrumented tool sitting untouched for a minute, then
    /// derive a level that idle noise practically never crosses.
    ///
    /// # Panics
    ///
    /// Panics if `k` is not positive.
    #[must_use]
    pub fn calibrate(traces: &[SignalTrace], k: f64) -> Self {
        assert!(k > 0.0, "sigma multiplier must be positive");
        let mut per_kind: std::collections::HashMap<SensorKind, RunningStats> =
            std::collections::HashMap::new();
        for trace in traces {
            for reading in &trace.readings {
                per_kind.entry(reading.kind()).or_default().push(reading.activation());
            }
        }
        let mut out = Thresholds::default();
        let level = |stats: &RunningStats| stats.mean() + k * stats.std_dev();
        if let Some(s) = per_kind.get(&SensorKind::Accelerometer) {
            out.accel = level(s);
        }
        if let Some(s) = per_kind.get(&SensorKind::Pressure) {
            out.pressure = level(s);
        }
        if let Some(s) = per_kind.get(&SensorKind::Brightness) {
            out.brightness = level(s);
        }
        if let Some(s) = per_kind.get(&SensorKind::Temperature) {
            out.temperature = level(s);
        }
        out
    }

    /// The threshold that applies to `kind` (motion is inherently binary:
    /// any trigger counts).
    #[must_use]
    pub fn for_kind(&self, kind: SensorKind) -> f64 {
        match kind {
            SensorKind::Accelerometer => self.accel,
            SensorKind::Pressure => self.pressure,
            SensorKind::Brightness => self.brightness,
            SensorKind::Temperature => self.temperature,
            SensorKind::Motion => 0.5,
        }
    }
}

/// The 3-of-10 vote detector.
///
/// Samples are pushed one at a time; every full window of ten yields a
/// verdict. The detector also exposes a one-shot [`Detector::judge_window`]
/// for batch evaluation (used by the Table 3 harness).
///
/// # Examples
///
/// ```
/// use coreda_sensornet::detect::{Detector, Thresholds};
/// use coreda_sensornet::sensors::{Reading, Vec3};
///
/// let mut det = Detector::new(Thresholds::default());
/// let still = Reading::Accel(Vec3::new(0.0, 0.0, 1.0));
/// for _ in 0..9 {
///     assert_eq!(det.push(still), None); // no verdict until the window fills
/// }
/// assert_eq!(det.push(still), Some(false)); // ten still samples: not in use
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Detector {
    thresholds: Thresholds,
    window: Vec<bool>,
}

impl Detector {
    /// Creates a detector.
    #[must_use]
    pub fn new(thresholds: Thresholds) -> Self {
        Detector { thresholds, window: Vec::with_capacity(SAMPLES_PER_WINDOW) }
    }

    /// The configured thresholds.
    #[must_use]
    pub const fn thresholds(&self) -> Thresholds {
        self.thresholds
    }

    /// Whether a single reading surpasses its threshold.
    #[must_use]
    pub fn surpasses(&self, reading: &Reading) -> bool {
        reading.activation() > self.thresholds.for_kind(reading.kind())
    }

    /// Pushes one sample. Returns `Some(in_use)` when this sample closes a
    /// ten-sample window, `None` otherwise.
    pub fn push(&mut self, reading: Reading) -> Option<bool> {
        self.push_activation(reading.kind(), reading.activation())
    }

    /// [`Detector::push`] with the activation precomputed by the caller.
    /// The sampling hot path already evaluates `activation()` for the
    /// per-window peak tracker; this entry point lets it vote on the same
    /// value instead of recomputing it (an extra `sqrt` per accel sample).
    pub fn push_activation(&mut self, kind: SensorKind, activation: f64) -> Option<bool> {
        self.window.push(activation > self.thresholds.for_kind(kind));
        if self.window.len() == SAMPLES_PER_WINDOW {
            let votes = self.window.iter().filter(|&&v| v).count();
            self.window.clear();
            Some(votes >= DETECTION_VOTES)
        } else {
            None
        }
    }

    /// Judges a complete window in one call.
    ///
    /// # Panics
    ///
    /// Panics if `window` does not contain exactly
    /// [`SAMPLES_PER_WINDOW`] readings.
    #[must_use]
    pub fn judge_window(&self, window: &[Reading]) -> bool {
        assert_eq!(
            window.len(),
            SAMPLES_PER_WINDOW,
            "a detection window is exactly {SAMPLES_PER_WINDOW} samples"
        );
        window.iter().filter(|r| self.surpasses(r)).count() >= DETECTION_VOTES
    }

    /// Number of samples buffered toward the next verdict.
    #[must_use]
    pub fn buffered(&self) -> usize {
        self.window.len()
    }

    /// Drops any partially filled window.
    pub fn reset(&mut self) {
        self.window.clear();
    }

    /// The buffered per-sample votes of the partially filled window, in
    /// arrival order (checkpointing).
    #[must_use]
    pub fn window_votes(&self) -> &[bool] {
        &self.window
    }

    /// Replaces the partially filled window with `votes` so the next
    /// verdict fires after exactly the same number of further samples as
    /// in the captured detector.
    ///
    /// # Panics
    ///
    /// Panics if `votes` holds a full window or more — those samples
    /// would already have produced a verdict.
    pub fn restore_window(&mut self, votes: &[bool]) {
        assert!(
            votes.len() < SAMPLES_PER_WINDOW,
            "a buffered window holds at most {} samples, got {}",
            SAMPLES_PER_WINDOW - 1,
            votes.len()
        );
        self.window.clear();
        self.window.extend_from_slice(votes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sensors::Vec3;
    use crate::signal::SignalModel;
    use coreda_des::rng::SimRng;

    fn still() -> Reading {
        Reading::Accel(Vec3::new(0.0, 0.0, 1.0))
    }

    fn shaken() -> Reading {
        Reading::Accel(Vec3::new(0.4, 0.0, 1.2))
    }

    #[test]
    fn still_window_not_in_use() {
        let det = Detector::new(Thresholds::default());
        assert!(!det.judge_window(&vec![still(); 10]));
    }

    #[test]
    fn exactly_three_votes_suffice() {
        let det = Detector::new(Thresholds::default());
        let mut w = vec![still(); 10];
        w[0] = shaken();
        w[4] = shaken();
        assert!(!det.judge_window(&w), "two votes must not trigger");
        w[9] = shaken();
        assert!(det.judge_window(&w), "three votes must trigger");
    }

    #[test]
    fn accidental_single_bump_filtered() {
        // The paper's motivation for the 3-of-10 rule: one accidental knock
        // must not register as usage.
        let det = Detector::new(Thresholds::default());
        let mut w = vec![still(); 10];
        w[3] = Reading::Accel(Vec3::new(2.0, 2.0, 2.0));
        assert!(!det.judge_window(&w));
    }

    #[test]
    fn streaming_matches_batch() {
        let mut det = Detector::new(Thresholds::default());
        let m = SignalModel::accelerometer(0.03, 0.5, 0.8);
        let mut rng = SimRng::seed_from(9);
        for _ in 0..50 {
            let w = m.sample_window(true, &mut rng);
            let batch = det.judge_window(&w);
            let mut streamed = None;
            for r in w {
                if let Some(v) = det.push(r) {
                    streamed = Some(v);
                }
            }
            assert_eq!(streamed, Some(batch));
        }
    }

    #[test]
    fn push_emits_every_ten_samples() {
        let mut det = Detector::new(Thresholds::default());
        let mut verdicts = 0;
        for _ in 0..35 {
            if det.push(still()).is_some() {
                verdicts += 1;
            }
        }
        assert_eq!(verdicts, 3);
        assert_eq!(det.buffered(), 5);
        det.reset();
        assert_eq!(det.buffered(), 0);
    }

    #[test]
    fn pressure_detection_uses_pressure_threshold() {
        let det = Detector::new(Thresholds::default());
        let active = Reading::Pressure(crate::sensors::AMBIENT_PRESSURE_KPA + 3.0);
        let idle = Reading::Pressure(crate::sensors::AMBIENT_PRESSURE_KPA + 0.2);
        assert!(det.surpasses(&active));
        assert!(!det.surpasses(&idle));
    }

    #[test]
    fn motion_any_trigger_counts() {
        let det = Detector::new(Thresholds::default());
        assert!(det.surpasses(&Reading::Motion(true)));
        assert!(!det.surpasses(&Reading::Motion(false)));
    }

    #[test]
    #[should_panic(expected = "exactly 10 samples")]
    fn short_window_rejected() {
        let det = Detector::new(Thresholds::default());
        let _ = det.judge_window(&vec![still(); 9]);
    }

    #[test]
    fn calibration_learns_noise_floor() {
        use crate::trace::SignalTrace;
        let noisy_model = SignalModel::accelerometer(0.08, 0.45, 0.8);
        let mut rng = SimRng::seed_from(21);
        // A minute of quiescent recording from the noisier sensor.
        let quiet = SignalTrace::record(1, &noisy_model, 600, |_| false, &mut rng);
        let calibrated = Thresholds::calibrate(&[quiet], 4.0);
        // The learned accel threshold sits above the noise floor but
        // below the manipulation amplitude…
        assert!(
            calibrated.accel > Thresholds::default().accel,
            "noisier sensor needs a higher threshold: {calibrated:?}"
        );
        assert!(calibrated.accel < 0.45);
        // …and with it, idle windows stay silent while active windows
        // still detect.
        let det = Detector::new(calibrated);
        let mut false_alarms = 0;
        let mut hits = 0;
        for _ in 0..200 {
            if det.judge_window(&noisy_model.sample_window(false, &mut rng)) {
                false_alarms += 1;
            }
            if det.judge_window(&noisy_model.sample_window(true, &mut rng)) {
                hits += 1;
            }
        }
        assert!(false_alarms <= 2, "calibrated threshold should silence noise: {false_alarms}");
        assert!(hits >= 190, "and keep detecting use: {hits}/200");
    }

    #[test]
    fn calibration_without_data_keeps_defaults() {
        let calibrated = Thresholds::calibrate(&[], 4.0);
        assert_eq!(calibrated, Thresholds::default());
    }

    #[test]
    fn calibration_covers_pressure_too() {
        use crate::trace::SignalTrace;
        let pot = SignalModel::pressure(0.5, 3.0, 0.8);
        let mut rng = SimRng::seed_from(22);
        let quiet = SignalTrace::record(6, &pot, 600, |_| false, &mut rng);
        let calibrated = Thresholds::calibrate(&[quiet], 4.0);
        assert!(calibrated.pressure > Thresholds::default().pressure);
        // Accelerometer untouched: no accel data in the trace.
        assert_eq!(calibrated.accel, Thresholds::default().accel);
    }

    /// End-to-end sanity: with default thresholds and a healthy signal,
    /// active windows are almost always detected and idle ones almost
    /// never are.
    #[test]
    fn detection_quality_with_default_calibration() {
        let det = Detector::new(Thresholds::default());
        let m = SignalModel::accelerometer(0.03, 0.45, 0.85);
        let mut rng = SimRng::seed_from(10);
        let trials = 500;
        let hits = (0..trials)
            .filter(|_| det.judge_window(&m.sample_window(true, &mut rng)))
            .count();
        let false_alarms = (0..trials)
            .filter(|_| det.judge_window(&m.sample_window(false, &mut rng)))
            .count();
        assert!(hits > trials * 95 / 100, "hit rate too low: {hits}/{trials}");
        assert!(false_alarms < trials / 100, "false alarms: {false_alarms}/{trials}");
    }
}
