//! Node energy accounting.
//!
//! PAVENET motes run on batteries; a reminding system that drains them in
//! a week is not deployable. This model charges every node activity —
//! sampling, radio TX/RX, LED time — against an energy budget using
//! datasheet-scale constants for the PIC18LF4620 + CC1000 combination,
//! and answers "how many days does a tool node last?".

use serde::{Deserialize, Serialize};

/// Energy costs in microjoules, at 3 V supply.
///
/// Derived from typical datasheet figures: CC1000 TX ≈ 26.7 mA, RX ≈
/// 11.8 mA at 3 V; one byte at 76.8 kbps is ~104 µs on air; an ADC
/// sample plus processing on the PIC is on the order of a few µJ; an LED
/// draws ~6 mA while lit.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Energy per sensor sample (acquisition + threshold check).
    pub sample_uj: f64,
    /// Energy per transmitted byte.
    pub tx_byte_uj: f64,
    /// Energy per received byte.
    pub rx_byte_uj: f64,
    /// Energy per millisecond an LED is lit.
    pub led_ms_uj: f64,
    /// Idle (sleep) draw per millisecond.
    pub sleep_ms_uj: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel {
            sample_uj: 3.0,
            tx_byte_uj: 8.3,  // 26.7 mA · 3 V · 104 µs
            rx_byte_uj: 3.7,  // 11.8 mA · 3 V · 104 µs
            led_ms_uj: 18.0,  // 6 mA · 3 V · 1 ms
            sleep_ms_uj: 0.03,
        }
    }
}

/// A per-node energy meter.
///
/// # Examples
///
/// ```
/// use coreda_sensornet::energy::{EnergyMeter, EnergyModel};
///
/// let mut meter = EnergyMeter::new(EnergyModel::default());
/// meter.charge_samples(10);
/// meter.charge_tx(16);
/// assert!(meter.consumed_uj() > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnergyMeter {
    model: EnergyModel,
    consumed_uj: f64,
    samples: u64,
    tx_bytes: u64,
    rx_bytes: u64,
    led_ms: u64,
    sleep_ms: u64,
}

impl EnergyMeter {
    /// Creates a meter with nothing consumed.
    #[must_use]
    pub fn new(model: EnergyModel) -> Self {
        EnergyMeter {
            model,
            consumed_uj: 0.0,
            samples: 0,
            tx_bytes: 0,
            rx_bytes: 0,
            led_ms: 0,
            sleep_ms: 0,
        }
    }

    /// Charges `n` sensor samples.
    pub fn charge_samples(&mut self, n: u64) {
        self.samples += n;
        self.consumed_uj += self.model.sample_uj * n as f64;
    }

    /// Charges a transmission of `bytes`.
    pub fn charge_tx(&mut self, bytes: usize) {
        self.tx_bytes += bytes as u64;
        self.consumed_uj += self.model.tx_byte_uj * bytes as f64;
    }

    /// Charges a reception of `bytes`.
    pub fn charge_rx(&mut self, bytes: usize) {
        self.rx_bytes += bytes as u64;
        self.consumed_uj += self.model.rx_byte_uj * bytes as f64;
    }

    /// Charges `ms` milliseconds of a lit LED.
    pub fn charge_led(&mut self, ms: u64) {
        self.led_ms += ms;
        self.consumed_uj += self.model.led_ms_uj * ms as f64;
    }

    /// Charges `ms` milliseconds of sleep draw.
    pub fn charge_sleep(&mut self, ms: u64) {
        self.sleep_ms += ms;
        self.consumed_uj += self.model.sleep_ms_uj * ms as f64;
    }

    /// Total microjoules consumed.
    #[must_use]
    pub fn consumed_uj(&self) -> f64 {
        self.consumed_uj
    }

    /// Breakdown: (samples, tx bytes, rx bytes, led ms, sleep ms).
    #[must_use]
    pub fn breakdown(&self) -> (u64, u64, u64, u64, u64) {
        (self.samples, self.tx_bytes, self.rx_bytes, self.led_ms, self.sleep_ms)
    }

    /// Days a battery of `capacity_j` joules lasts at the observed mean
    /// power, given the meter covered `elapsed_ms` of simulated time.
    ///
    /// Returns `None` when nothing has been consumed yet.
    #[must_use]
    pub fn battery_days(&self, capacity_j: f64, elapsed_ms: u64) -> Option<f64> {
        if self.consumed_uj <= 0.0 || elapsed_ms == 0 {
            return None;
        }
        let mean_power_w = self.consumed_uj * 1e-6 / (elapsed_ms as f64 / 1000.0);
        let seconds = capacity_j / mean_power_w;
        Some(seconds / 86_400.0)
    }

    /// Resets the meter.
    pub fn reset(&mut self) {
        *self = EnergyMeter::new(self.model);
    }

    /// Restores the meter's accumulated totals from a checkpoint. The
    /// consumed energy is restored as the raw accumulated `f64` (not
    /// recomputed from the counters) so a resumed meter is bit-identical
    /// to the captured one.
    ///
    /// # Panics
    ///
    /// Panics if `consumed_uj` is negative or non-finite.
    #[allow(clippy::similar_names)]
    pub fn restore_totals(
        &mut self,
        consumed_uj: f64,
        samples: u64,
        tx_bytes: u64,
        rx_bytes: u64,
        led_ms: u64,
        sleep_ms: u64,
    ) {
        assert!(
            consumed_uj.is_finite() && consumed_uj >= 0.0,
            "consumed energy must be finite and non-negative, got {consumed_uj}"
        );
        self.consumed_uj = consumed_uj;
        self.samples = samples;
        self.tx_bytes = tx_bytes;
        self.rx_bytes = rx_bytes;
        self.led_ms = led_ms;
        self.sleep_ms = sleep_ms;
    }
}

/// Energy of two AA cells (~2×1.5 V · 2000 mAh ≈ 21.6 kJ usable at 3 V).
pub const TWO_AA_JOULES: f64 = 21_600.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate() {
        let mut m = EnergyMeter::new(EnergyModel::default());
        m.charge_samples(100);
        m.charge_tx(32);
        m.charge_rx(8);
        m.charge_led(500);
        m.charge_sleep(10_000);
        let (s, tx, rx, led, sleep) = m.breakdown();
        assert_eq!((s, tx, rx, led, sleep), (100, 32, 8, 500, 10_000));
        let expected = 100.0 * 3.0 + 32.0 * 8.3 + 8.0 * 3.7 + 500.0 * 18.0 + 10_000.0 * 0.03;
        assert!((m.consumed_uj() - expected).abs() < 1e-9);
    }

    #[test]
    fn tx_costs_more_than_rx_per_byte() {
        let model = EnergyModel::default();
        assert!(model.tx_byte_uj > model.rx_byte_uj);
    }

    #[test]
    fn battery_days_scales_inversely_with_power() {
        let mut light = EnergyMeter::new(EnergyModel::default());
        light.charge_samples(10);
        let mut heavy = EnergyMeter::new(EnergyModel::default());
        heavy.charge_samples(1000);
        let elapsed = 60_000; // one minute
        let d_light = light.battery_days(TWO_AA_JOULES, elapsed).unwrap();
        let d_heavy = heavy.battery_days(TWO_AA_JOULES, elapsed).unwrap();
        assert!((d_light / d_heavy - 100.0).abs() < 1.0);
    }

    #[test]
    fn sampling_only_node_lasts_months() {
        // 10 Hz sampling with no radio: the dominant deployment mode.
        let mut m = EnergyMeter::new(EnergyModel::default());
        let hours = 24;
        let ms = hours * 3600 * 1000;
        m.charge_samples(10 * 3600 * hours);
        m.charge_sleep(ms);
        let days = m.battery_days(TWO_AA_JOULES, ms).unwrap();
        assert!(days > 60.0, "expected months of life, got {days:.1} days");
    }

    #[test]
    fn no_consumption_no_estimate() {
        let m = EnergyMeter::new(EnergyModel::default());
        assert_eq!(m.battery_days(TWO_AA_JOULES, 1000), None);
    }

    #[test]
    fn reset_zeroes() {
        let mut m = EnergyMeter::new(EnergyModel::default());
        m.charge_tx(10);
        m.reset();
        assert_eq!(m.consumed_uj(), 0.0);
    }
}
