//! Raw signal traces: record, serialise and replay sensor streams.
//!
//! The paper's Table 3 was computed from raw accelerometer/pressure
//! recordings. This module gives the synthetic equivalent a durable form:
//! a 10 Hz reading stream can be captured to a line-oriented text file,
//! shared, and replayed through the detection pipeline bit-for-bit —
//! useful for debugging thresholds and for publishing datasets.
//!
//! ```text
//! #coreda-signal v1
//! #tool 6
//! #period_ms 100
//! P 101.31
//! P 104.22
//! A 0.013 -0.021 1.004
//! …
//! ```

use std::error::Error;
use std::fmt;

use coreda_des::rng::SimRng;
use serde::{Deserialize, Serialize};

use crate::sensors::{Reading, Vec3};
use crate::signal::SignalModel;

/// Format header line.
pub const HEADER: &str = "#coreda-signal v1";

/// A recorded reading stream from one tool's sensor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SignalTrace {
    /// The tool/node uid the trace came from.
    pub tool: u16,
    /// Sampling period in milliseconds (100 = the PAVENET 10 Hz).
    pub period_ms: u64,
    /// The readings, oldest first.
    pub readings: Vec<Reading>,
}

impl SignalTrace {
    /// Records `ticks` samples from `model`, with `active` saying whether
    /// the tool is in use at each tick index.
    pub fn record(
        tool: u16,
        model: &SignalModel,
        ticks: usize,
        mut active: impl FnMut(usize) -> bool,
        rng: &mut SimRng,
    ) -> Self {
        let readings = (0..ticks).map(|i| model.sample(active(i), rng)).collect();
        SignalTrace { tool, period_ms: 100, readings }
    }

    /// Duration covered by the trace, in milliseconds.
    #[must_use]
    pub fn duration_ms(&self) -> u64 {
        self.readings.len() as u64 * self.period_ms
    }

    /// Serialises to the text format.
    #[must_use]
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "{HEADER}");
        let _ = writeln!(out, "#tool {}", self.tool);
        let _ = writeln!(out, "#period_ms {}", self.period_ms);
        for r in &self.readings {
            match *r {
                Reading::Accel(v) => {
                    let _ = writeln!(out, "A {} {} {}", v.x, v.y, v.z);
                }
                Reading::Pressure(p) => {
                    let _ = writeln!(out, "P {p}");
                }
                Reading::Brightness(b) => {
                    let _ = writeln!(out, "B {b}");
                }
                Reading::Temperature(t) => {
                    let _ = writeln!(out, "T {t}");
                }
                Reading::Motion(m) => {
                    let _ = writeln!(out, "M {}", u8::from(m));
                }
            }
        }
        out
    }

    /// Parses the text format.
    ///
    /// # Errors
    ///
    /// Returns a [`TraceError`] on a bad header or malformed line.
    pub fn from_text(text: &str) -> Result<Self, TraceError> {
        let mut lines = text.lines().enumerate();
        match lines.next() {
            Some((_, l)) if l.trim() == HEADER => {}
            other => return Err(TraceError::BadHeader(other.map(|(_, l)| l.to_owned()))),
        }
        let tool = match lines.next() {
            Some((_, l)) if l.starts_with("#tool ") => l["#tool ".len()..]
                .trim()
                .parse()
                .map_err(|_| TraceError::BadHeader(Some(l.to_owned())))?,
            other => return Err(TraceError::BadHeader(other.map(|(_, l)| l.to_owned()))),
        };
        let period_ms = match lines.next() {
            Some((_, l)) if l.starts_with("#period_ms ") => l["#period_ms ".len()..]
                .trim()
                .parse()
                .map_err(|_| TraceError::BadHeader(Some(l.to_owned())))?,
            other => return Err(TraceError::BadHeader(other.map(|(_, l)| l.to_owned()))),
        };
        let mut readings = Vec::new();
        for (idx, line) in lines {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            let kind = parts.next().unwrap_or_default();
            let mut num = || -> Result<f64, TraceError> {
                parts
                    .next()
                    .and_then(|p| p.parse().ok())
                    .ok_or(TraceError::BadLine { line: idx + 1 })
            };
            let reading = match kind {
                "A" => Reading::Accel(Vec3::new(num()?, num()?, num()?)),
                "P" => Reading::Pressure(num()?),
                "B" => Reading::Brightness(num()?),
                "T" => Reading::Temperature(num()?),
                "M" => Reading::Motion(num()? != 0.0),
                _ => return Err(TraceError::BadLine { line: idx + 1 }),
            };
            readings.push(reading);
        }
        Ok(SignalTrace { tool, period_ms, readings })
    }
}

/// Trace parsing failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// Header lines missing or malformed.
    BadHeader(Option<String>),
    /// A reading line is malformed.
    BadLine {
        /// 1-based line number.
        line: usize,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::BadHeader(Some(l)) => write!(f, "bad trace header: {l:?}"),
            TraceError::BadHeader(None) => write!(f, "trace is empty"),
            TraceError::BadLine { line } => write!(f, "line {line}: malformed reading"),
        }
    }
}

impl Error for TraceError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detect::{Detector, Thresholds};

    fn sample_trace() -> SignalTrace {
        let model = SignalModel::accelerometer(0.03, 0.45, 0.6);
        let mut rng = SimRng::seed_from(1);
        // Active for the middle third.
        SignalTrace::record(5, &model, 90, |i| (30..60).contains(&i), &mut rng)
    }

    #[test]
    fn roundtrip_is_lossless_enough_to_reproduce_detection() {
        let trace = sample_trace();
        let parsed = SignalTrace::from_text(&trace.to_text()).unwrap();
        assert_eq!(parsed.tool, 5);
        assert_eq!(parsed.period_ms, 100);
        assert_eq!(parsed.readings.len(), trace.readings.len());
        // The replayed trace yields identical detector verdicts.
        let mut det_a = Detector::new(Thresholds::default());
        let mut det_b = Detector::new(Thresholds::default());
        for (a, b) in trace.readings.iter().zip(&parsed.readings) {
            assert_eq!(det_a.push(*a), det_b.push(*b));
        }
    }

    #[test]
    fn all_reading_kinds_roundtrip() {
        let trace = SignalTrace {
            tool: 9,
            period_ms: 100,
            readings: vec![
                Reading::Accel(Vec3::new(0.25, -0.5, 1.0)),
                Reading::Pressure(104.5),
                Reading::Brightness(250.0),
                Reading::Temperature(21.5),
                Reading::Motion(true),
                Reading::Motion(false),
            ],
        };
        let parsed = SignalTrace::from_text(&trace.to_text()).unwrap();
        assert_eq!(parsed, trace);
    }

    #[test]
    fn duration_is_ticks_times_period() {
        assert_eq!(sample_trace().duration_ms(), 9_000);
    }

    #[test]
    fn bad_inputs_rejected() {
        assert!(matches!(SignalTrace::from_text(""), Err(TraceError::BadHeader(None))));
        assert!(SignalTrace::from_text("nope\n").is_err());
        let text = format!("{HEADER}\n#tool 1\n#period_ms 100\nX 1 2 3\n");
        assert_eq!(SignalTrace::from_text(&text), Err(TraceError::BadLine { line: 4 }));
        let text = format!("{HEADER}\n#tool 1\n#period_ms 100\nA 1 2\n");
        assert_eq!(SignalTrace::from_text(&text), Err(TraceError::BadLine { line: 4 }));
    }

    #[test]
    fn comments_and_blanks_tolerated() {
        let text = format!("{HEADER}\n#tool 2\n#period_ms 100\n\n# note\nP 101.3\n");
        let parsed = SignalTrace::from_text(&text).unwrap();
        assert_eq!(parsed.readings.len(), 1);
    }

    #[test]
    fn active_window_shows_in_activations() {
        let trace = sample_trace();
        let quiet: f64 = trace.readings[..30].iter().map(Reading::activation).sum::<f64>() / 30.0;
        let busy: f64 =
            trace.readings[30..60].iter().map(Reading::activation).sum::<f64>() / 30.0;
        assert!(busy > quiet * 3.0, "busy {busy:.3} vs quiet {quiet:.3}");
    }
}
