//! The over-the-air packet format.
//!
//! PAVENET nodes report tool usage to the base station ("When a tool is
//! used, its ID will be sent to the server"), and the reminding subsystem
//! sends LED blink commands the other way. This module defines the wire
//! format: a fixed header (magic, source, sequence number, timestamp,
//! payload tag) followed by a payload and a CRC-16/CCITT trailer.

use std::error::Error;
use std::fmt;

use bytes::{Buf, BufMut, Bytes, BytesMut};
use serde::{Deserialize, Serialize};

use crate::led::{BlinkPattern, LedColor};
use crate::node::NodeId;

/// First byte of every frame.
pub const MAGIC: u8 = 0xCD;

/// Maximum encoded frame length in bytes (fits comfortably in a CC1000
/// frame).
pub const MAX_FRAME_LEN: usize = 64;

/// CRC-16/CCITT-FALSE over `data` (poly 0x1021, init 0xFFFF).
#[must_use]
pub fn crc16(data: &[u8]) -> u16 {
    let mut crc: u16 = 0xFFFF;
    for &byte in data {
        crc ^= u16::from(byte) << 8;
        for _ in 0..8 {
            crc = if crc & 0x8000 != 0 { (crc << 1) ^ 0x1021 } else { crc << 1 };
        }
    }
    crc
}

/// What a frame carries.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Payload {
    /// "This tool is being used" — the sensing report driving CoReDA.
    /// `activation_milli` is the peak activation of the triggering window,
    /// in thousandths of the sensor's activation unit.
    ToolUse {
        /// Peak activation (milli-units) of the window that triggered.
        activation_milli: u16,
    },
    /// Blink an LED (reminding subsystem → node).
    Led {
        /// The blink pattern to run.
        pattern: BlinkPattern,
    },
    /// Link-layer acknowledgement of the frame with the given sequence.
    Ack {
        /// Sequence number being acknowledged.
        acked_seq: u16,
    },
    /// Periodic liveness beacon.
    Heartbeat,
}

impl Payload {
    const TAG_TOOL_USE: u8 = 1;
    const TAG_LED: u8 = 2;
    const TAG_ACK: u8 = 3;
    const TAG_HEARTBEAT: u8 = 4;

    fn tag(&self) -> u8 {
        match self {
            Payload::ToolUse { .. } => Self::TAG_TOOL_USE,
            Payload::Led { .. } => Self::TAG_LED,
            Payload::Ack { .. } => Self::TAG_ACK,
            Payload::Heartbeat => Self::TAG_HEARTBEAT,
        }
    }
}

/// A frame on the wire.
///
/// # Examples
///
/// ```
/// use coreda_sensornet::node::NodeId;
/// use coreda_sensornet::packet::{Packet, Payload};
///
/// let p = Packet::new(NodeId::new(5), 42, 13_000, Payload::ToolUse { activation_milli: 450 });
/// let bytes = p.encode();
/// assert_eq!(Packet::decode(&bytes).unwrap(), p);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Packet {
    /// Sending node.
    pub src: NodeId,
    /// Per-node sequence number (wraps).
    pub seq: u16,
    /// Sender's clock at transmission, milliseconds.
    pub timestamp_ms: u64,
    /// The payload.
    pub payload: Payload,
}

impl Packet {
    /// Creates a packet.
    #[must_use]
    pub fn new(src: NodeId, seq: u16, timestamp_ms: u64, payload: Payload) -> Self {
        Packet { src, seq, timestamp_ms, payload }
    }

    /// Encodes to wire bytes (header + payload + CRC).
    #[must_use]
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(MAX_FRAME_LEN);
        buf.put_u8(MAGIC);
        buf.put_u16(self.src.raw());
        buf.put_u16(self.seq);
        buf.put_u64(self.timestamp_ms);
        buf.put_u8(self.payload.tag());
        match self.payload {
            Payload::ToolUse { activation_milli } => buf.put_u16(activation_milli),
            Payload::Led { pattern } => {
                buf.put_u8(match pattern.color {
                    LedColor::Green => 0,
                    LedColor::Red => 1,
                });
                buf.put_u8(pattern.blinks);
                buf.put_u16(u16::try_from(pattern.period_ms).unwrap_or(u16::MAX));
            }
            Payload::Ack { acked_seq } => buf.put_u16(acked_seq),
            Payload::Heartbeat => {}
        }
        let crc = crc16(&buf);
        buf.put_u16(crc);
        buf.freeze()
    }

    /// Decodes wire bytes.
    ///
    /// # Errors
    ///
    /// Returns a [`PacketError`] when the frame is truncated, has a bad
    /// magic byte, an unknown payload tag, or a CRC mismatch.
    pub fn decode(frame: &[u8]) -> Result<Self, PacketError> {
        const HEADER: usize = 1 + 2 + 2 + 8 + 1;
        if frame.len() < HEADER + 2 {
            return Err(PacketError::Truncated { len: frame.len() });
        }
        let (body, trailer) = frame.split_at(frame.len() - 2);
        let expected = u16::from_be_bytes([trailer[0], trailer[1]]);
        let actual = crc16(body);
        if expected != actual {
            return Err(PacketError::BadCrc { expected, actual });
        }
        let mut buf = body;
        let magic = buf.get_u8();
        if magic != MAGIC {
            return Err(PacketError::BadMagic(magic));
        }
        let src = NodeId::new(buf.get_u16());
        let seq = buf.get_u16();
        let timestamp_ms = buf.get_u64();
        let tag = buf.get_u8();
        let payload = match tag {
            Payload::TAG_TOOL_USE => {
                if buf.remaining() < 2 {
                    return Err(PacketError::Truncated { len: frame.len() });
                }
                Payload::ToolUse { activation_milli: buf.get_u16() }
            }
            Payload::TAG_LED => {
                if buf.remaining() < 4 {
                    return Err(PacketError::Truncated { len: frame.len() });
                }
                let color = match buf.get_u8() {
                    0 => LedColor::Green,
                    1 => LedColor::Red,
                    other => return Err(PacketError::BadField { field: "led color", value: other }),
                };
                let blinks = buf.get_u8();
                let period_ms = u64::from(buf.get_u16());
                Payload::Led { pattern: BlinkPattern { color, blinks, period_ms } }
            }
            Payload::TAG_ACK => {
                if buf.remaining() < 2 {
                    return Err(PacketError::Truncated { len: frame.len() });
                }
                Payload::Ack { acked_seq: buf.get_u16() }
            }
            Payload::TAG_HEARTBEAT => Payload::Heartbeat,
            other => return Err(PacketError::UnknownTag(other)),
        };
        if buf.has_remaining() {
            return Err(PacketError::TrailingBytes { extra: buf.remaining() });
        }
        Ok(Packet { src, seq, timestamp_ms, payload })
    }

    /// The encoded length in bytes.
    #[must_use]
    pub fn encoded_len(&self) -> usize {
        self.encode().len()
    }
}

/// Decoding failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketError {
    /// The frame is shorter than a minimal valid packet (or its payload is
    /// cut short).
    Truncated {
        /// Observed frame length.
        len: usize,
    },
    /// First byte is not [`MAGIC`].
    BadMagic(u8),
    /// CRC mismatch (corruption).
    BadCrc {
        /// CRC carried by the frame.
        expected: u16,
        /// CRC computed over the body.
        actual: u16,
    },
    /// Unknown payload tag.
    UnknownTag(u8),
    /// A payload field holds an invalid value.
    BadField {
        /// Name of the offending field.
        field: &'static str,
        /// The raw value found.
        value: u8,
    },
    /// Extra bytes after a complete payload.
    TrailingBytes {
        /// Number of unread bytes.
        extra: usize,
    },
}

impl fmt::Display for PacketError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PacketError::Truncated { len } => write!(f, "frame truncated at {len} bytes"),
            PacketError::BadMagic(b) => write!(f, "bad magic byte {b:#04x}"),
            PacketError::BadCrc { expected, actual } => {
                write!(f, "crc mismatch: frame says {expected:#06x}, computed {actual:#06x}")
            }
            PacketError::UnknownTag(t) => write!(f, "unknown payload tag {t}"),
            PacketError::BadField { field, value } => {
                write!(f, "invalid value {value} for field {field}")
            }
            PacketError::TrailingBytes { extra } => {
                write!(f, "{extra} unexpected trailing bytes")
            }
        }
    }
}

impl Error for PacketError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_packets() -> Vec<Packet> {
        vec![
            Packet::new(NodeId::new(1), 0, 0, Payload::Heartbeat),
            Packet::new(NodeId::new(2), 7, 13_000, Payload::ToolUse { activation_milli: 450 }),
            Packet::new(NodeId::new(3), u16::MAX, u64::MAX, Payload::Ack { acked_seq: 9 }),
            Packet::new(
                NodeId::new(4),
                100,
                71_000,
                Payload::Led {
                    pattern: BlinkPattern { color: LedColor::Red, blinks: 6, period_ms: 250 },
                },
            ),
        ]
    }

    #[test]
    fn roundtrip_all_payloads() {
        for p in sample_packets() {
            let bytes = p.encode();
            assert_eq!(Packet::decode(&bytes).unwrap(), p, "roundtrip failed for {p:?}");
        }
    }

    #[test]
    fn frames_fit_radio_mtu() {
        for p in sample_packets() {
            assert!(p.encoded_len() <= MAX_FRAME_LEN);
        }
    }

    #[test]
    fn crc16_known_vector() {
        // CRC-16/CCITT-FALSE("123456789") = 0x29B1.
        assert_eq!(crc16(b"123456789"), 0x29B1);
    }

    #[test]
    fn corruption_is_detected() {
        let p = Packet::new(NodeId::new(9), 3, 42, Payload::ToolUse { activation_milli: 10 });
        let mut bytes = p.encode().to_vec();
        for i in 0..bytes.len() {
            let mut corrupted = bytes.clone();
            corrupted[i] ^= 0x40;
            assert!(
                Packet::decode(&corrupted).is_err(),
                "flipping byte {i} went undetected"
            );
        }
        // Untouched frame still decodes (guard against accidental mutation
        // of the original in the loop).
        bytes[0] = MAGIC;
        assert!(Packet::decode(&bytes).is_ok());
    }

    #[test]
    fn truncated_frames_rejected() {
        let p = Packet::new(NodeId::new(9), 3, 42, Payload::Heartbeat);
        let bytes = p.encode();
        for n in 0..bytes.len() {
            assert!(matches!(
                Packet::decode(&bytes[..n]),
                Err(PacketError::Truncated { .. } | PacketError::BadCrc { .. })
            ));
        }
    }

    #[test]
    fn bad_magic_reported() {
        let p = Packet::new(NodeId::new(9), 3, 42, Payload::Heartbeat);
        let mut bytes = p.encode().to_vec();
        bytes[0] = 0x00;
        // Re-stamp the CRC so only the magic is wrong.
        let body_len = bytes.len() - 2;
        let crc = crc16(&bytes[..body_len]);
        bytes[body_len..].copy_from_slice(&crc.to_be_bytes());
        assert_eq!(Packet::decode(&bytes), Err(PacketError::BadMagic(0)));
    }

    #[test]
    fn unknown_tag_reported() {
        let p = Packet::new(NodeId::new(9), 3, 42, Payload::Heartbeat);
        let mut bytes = p.encode().to_vec();
        bytes[13] = 99; // payload tag offset: 1 + 2 + 2 + 8
        let body_len = bytes.len() - 2;
        let crc = crc16(&bytes[..body_len]);
        bytes[body_len..].copy_from_slice(&crc.to_be_bytes());
        assert_eq!(Packet::decode(&bytes), Err(PacketError::UnknownTag(99)));
    }

    #[test]
    fn error_messages_are_informative() {
        assert_eq!(
            PacketError::Truncated { len: 3 }.to_string(),
            "frame truncated at 3 bytes"
        );
        assert!(PacketError::BadMagic(0xAB).to_string().contains("0xab"));
    }
}
