//! The star network: tool nodes → base station.
//!
//! The prototype's topology is a single-hop star — every PAVENET node
//! talks directly to the server's base station. This module adds the
//! link-layer behaviour the paper's server relied on: ARQ retransmission
//! with acknowledgements, and duplicate suppression at the base station
//! (a retransmitted frame whose ack was lost arrives twice).

use std::collections::HashMap;

use coreda_des::rng::SimRng;
use coreda_des::time::SimDuration;
use serde::{Deserialize, Serialize};

use crate::node::NodeId;
use crate::packet::{Packet, Payload};
use crate::radio::{LossModel, RadioLink};

/// Link-layer configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkConfig {
    /// Loss process applied to every frame (data and acks alike).
    pub loss: LossModel,
    /// Retransmissions after the first attempt.
    pub max_retries: u8,
    /// Pause before each retransmission.
    pub retry_backoff: SimDuration,
}

impl Default for LinkConfig {
    fn default() -> Self {
        LinkConfig {
            loss: LossModel::Perfect,
            max_retries: 3,
            retry_backoff: SimDuration::from_millis(20),
        }
    }
}

/// Outcome of an uplink send.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SendOutcome {
    /// The base station received the frame (possibly more than once).
    Delivered {
        /// Time from first transmission to the first successful delivery.
        latency: SimDuration,
        /// Transmissions attempted (1 = no retries needed).
        attempts: u8,
        /// 1-based index of the attempt that first got through.
        first_delivery_attempt: u8,
        /// Extra copies the base station received because acks were lost.
        duplicates: u8,
    },
    /// Every attempt was lost.
    Lost {
        /// Transmissions attempted.
        attempts: u8,
    },
}

impl SendOutcome {
    /// Whether the frame got through at least once.
    #[must_use]
    pub const fn is_delivered(&self) -> bool {
        matches!(self, SendOutcome::Delivered { .. })
    }
}

/// Cumulative link-layer tallies for one traffic direction.
///
/// The network updates these on every send; pull them with
/// [`StarNetwork::take_counters`] to feed a telemetry recorder. Purely
/// observational — reading or resetting them never touches link state
/// or randomness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkCounters {
    /// Logical frames offered to the link.
    pub frames: u64,
    /// Transmission attempts, retries included.
    pub attempts: u64,
    /// Frames that reached the receiver at least once.
    pub delivered: u64,
    /// Frames dropped after exhausting retries.
    pub lost: u64,
    /// Extra deliveries caused by lost acknowledgements.
    pub duplicates: u64,
}

impl LinkCounters {
    fn observe(&mut self, outcome: &SendOutcome) {
        self.frames += 1;
        match *outcome {
            SendOutcome::Delivered { attempts, duplicates, .. } => {
                self.attempts += u64::from(attempts);
                self.delivered += 1;
                self.duplicates += u64::from(duplicates);
            }
            SendOutcome::Lost { attempts } => {
                self.attempts += u64::from(attempts);
                self.lost += 1;
            }
        }
    }
}

/// The single-hop network connecting every tool node to the base station.
///
/// # Examples
///
/// ```
/// use coreda_des::rng::SimRng;
/// use coreda_sensornet::network::{LinkConfig, StarNetwork};
/// use coreda_sensornet::node::NodeId;
/// use coreda_sensornet::packet::{Packet, Payload};
///
/// let mut net = StarNetwork::new(LinkConfig::default());
/// net.register(NodeId::new(1));
/// let p = Packet::new(NodeId::new(1), 0, 0, Payload::Heartbeat);
/// let mut rng = SimRng::seed_from(0);
/// assert!(net.send_uplink(&p, &mut rng).is_delivered());
/// ```
#[derive(Debug, Clone)]
pub struct StarNetwork {
    cfg: LinkConfig,
    links: HashMap<NodeId, RadioLink>,
    uplink: LinkCounters,
    downlink: LinkCounters,
}

impl StarNetwork {
    /// Creates an empty network.
    #[must_use]
    pub fn new(cfg: LinkConfig) -> Self {
        StarNetwork {
            cfg,
            links: HashMap::new(),
            uplink: LinkCounters::default(),
            downlink: LinkCounters::default(),
        }
    }

    /// Registers a node, creating its link. Re-registering resets the link.
    pub fn register(&mut self, node: NodeId) {
        self.links.insert(node, RadioLink::new(self.cfg.loss));
    }

    /// Number of registered nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.links.len()
    }

    /// The link configuration.
    #[must_use]
    pub const fn config(&self) -> LinkConfig {
        self.cfg
    }

    /// Fault injection: swaps the loss process on every link (and on links
    /// registered later). Frame counters are preserved; Gilbert–Elliott
    /// channels restart in the good state.
    ///
    /// # Panics
    ///
    /// Panics if the model holds an invalid probability.
    pub fn set_loss(&mut self, loss: LossModel) {
        loss.validate();
        self.cfg.loss = loss;
        for link in self.links.values_mut() {
            link.set_loss(loss);
        }
    }

    /// Sends `packet` from its source node to the base station with
    /// stop-and-wait ARQ.
    ///
    /// # Panics
    ///
    /// Panics if the packet's source node was never [`register`ed](Self::register).
    pub fn send_uplink(&mut self, packet: &Packet, rng: &mut SimRng) -> SendOutcome {
        let outcome = self.send_via(packet.src, packet, rng);
        self.uplink.observe(&outcome);
        outcome
    }

    /// Sends `packet` from the base station down to `dest` (LED commands
    /// from the reminding subsystem) with the same stop-and-wait ARQ.
    ///
    /// # Panics
    ///
    /// Panics if `dest` was never [`register`ed](Self::register).
    pub fn send_downlink(&mut self, dest: NodeId, packet: &Packet, rng: &mut SimRng) -> SendOutcome {
        let outcome = self.send_via(dest, packet, rng);
        self.downlink.observe(&outcome);
        outcome
    }

    /// Uplink tallies since construction (or the last
    /// [`take_counters`](Self::take_counters)).
    #[must_use]
    pub const fn uplink_counters(&self) -> LinkCounters {
        self.uplink
    }

    /// Downlink tallies since construction (or the last
    /// [`take_counters`](Self::take_counters)).
    #[must_use]
    pub const fn downlink_counters(&self) -> LinkCounters {
        self.downlink
    }

    /// Returns `(uplink, downlink)` tallies and resets both to zero, so
    /// a caller polling once per tick sees per-tick deltas.
    pub fn take_counters(&mut self) -> (LinkCounters, LinkCounters) {
        (std::mem::take(&mut self.uplink), std::mem::take(&mut self.downlink))
    }

    /// Per-node link state `(node, in_bad_state, frames_sent, frames_lost)`
    /// sorted by node id — a deterministic export for checkpointing.
    /// Loss models are not included: every link's model always equals
    /// `config().loss` (registration and [`StarNetwork::set_loss`] both
    /// maintain that invariant), so the snapshot stores it once.
    #[must_use]
    pub fn channel_states(&self) -> Vec<(NodeId, bool, u64, u64)> {
        let mut out: Vec<_> = self
            .links
            .iter()
            .map(|(&id, link)| (id, link.in_bad_state(), link.frames_sent(), link.frames_lost()))
            .collect();
        out.sort_unstable_by_key(|&(id, ..)| id.raw());
        out
    }

    /// Restores per-node link state captured by
    /// [`StarNetwork::channel_states`]. Apply the snapshot's loss model
    /// via [`StarNetwork::set_loss`] *before* calling this — swapping the
    /// model resets Gilbert–Elliott channels.
    ///
    /// # Panics
    ///
    /// Panics if a state refers to an unregistered node.
    pub fn restore_channel_states(&mut self, states: &[(NodeId, bool, u64, u64)]) {
        for &(id, bad, sent, lost) in states {
            let link = self
                .links
                .get_mut(&id)
                .unwrap_or_else(|| panic!("node {id} is not registered"));
            link.restore_channel(bad, sent, lost);
        }
    }

    /// Restores the direction tallies from a checkpoint.
    pub fn restore_counters(&mut self, uplink: LinkCounters, downlink: LinkCounters) {
        self.uplink = uplink;
        self.downlink = downlink;
    }

    fn send_via(&mut self, node: NodeId, packet: &Packet, rng: &mut SimRng) -> SendOutcome {
        let link = self
            .links
            .get_mut(&node)
            .unwrap_or_else(|| panic!("node {node} is not registered"));
        let data_len = packet.encoded_len();
        let ack_len =
            Packet::new(packet.src, 0, 0, Payload::Ack { acked_seq: packet.seq }).encoded_len();
        let per_attempt = RadioLink::airtime(data_len) + RadioLink::airtime(ack_len);

        let mut latency = SimDuration::ZERO;
        let mut delivered_at: Option<(SimDuration, u8)> = None;
        let mut deliveries: u8 = 0;
        let mut attempts: u8 = 0;
        for attempt in 0..=self.cfg.max_retries {
            if attempt > 0 {
                latency += self.cfg.retry_backoff;
            }
            attempts += 1;
            latency += per_attempt;
            let data_ok = link.transmit(data_len, rng);
            if data_ok {
                deliveries += 1;
                if delivered_at.is_none() {
                    delivered_at = Some((latency, attempts));
                }
                let ack_ok = link.transmit(ack_len, rng);
                if ack_ok {
                    break; // sender hears the ack and stops.
                }
                // Ack lost: sender will retry, producing a duplicate.
            }
        }
        match delivered_at {
            Some((first, first_delivery_attempt)) => SendOutcome::Delivered {
                latency: first,
                attempts,
                first_delivery_attempt,
                duplicates: deliveries.saturating_sub(1),
            },
            None => SendOutcome::Lost { attempts },
        }
    }
}

/// The server-side frame sink with duplicate suppression.
#[derive(Debug, Clone, Default)]
pub struct BaseStation {
    last_seq: HashMap<NodeId, u16>,
    accepted: u64,
    duplicates: u64,
}

impl BaseStation {
    /// Creates a base station with no history.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Processes one received frame. Returns the packet if it is new, or
    /// `None` if it repeats the last sequence number seen from its source.
    pub fn receive(&mut self, packet: Packet) -> Option<Packet> {
        match self.last_seq.get(&packet.src) {
            Some(&last) if last == packet.seq => {
                self.duplicates += 1;
                None
            }
            _ => {
                self.last_seq.insert(packet.src, packet.seq);
                self.accepted += 1;
                Some(packet)
            }
        }
    }

    /// Frames accepted as new.
    #[must_use]
    pub const fn accepted(&self) -> u64 {
        self.accepted
    }

    /// Frames suppressed as duplicates.
    #[must_use]
    pub const fn duplicates(&self) -> u64 {
        self.duplicates
    }

    /// Per-node last-seen sequence numbers, sorted by node id
    /// (checkpointing export).
    #[must_use]
    pub fn last_seqs(&self) -> Vec<(NodeId, u16)> {
        let mut out: Vec<_> = self.last_seq.iter().map(|(&id, &seq)| (id, seq)).collect();
        out.sort_unstable_by_key(|&(id, _)| id.raw());
        out
    }

    /// Restores the dedup history and acceptance counters from a
    /// checkpoint.
    pub fn restore_state(&mut self, last_seqs: &[(NodeId, u16)], accepted: u64, duplicates: u64) {
        self.last_seq.clear();
        for &(id, seq) in last_seqs {
            self.last_seq.insert(id, seq);
        }
        self.accepted = accepted;
        self.duplicates = duplicates;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tool_use(src: u16, seq: u16) -> Packet {
        Packet::new(NodeId::new(src), seq, 0, Payload::ToolUse { activation_milli: 100 })
    }

    #[test]
    fn perfect_link_delivers_first_try() {
        let mut net = StarNetwork::new(LinkConfig::default());
        net.register(NodeId::new(1));
        let mut rng = SimRng::seed_from(1);
        match net.send_uplink(&tool_use(1, 0), &mut rng) {
            SendOutcome::Delivered { attempts, duplicates, latency, first_delivery_attempt } => {
                assert_eq!(attempts, 1);
                assert_eq!(first_delivery_attempt, 1);
                assert_eq!(duplicates, 0);
                assert!(!latency.is_zero());
            }
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn lossy_link_retries_and_mostly_succeeds() {
        let cfg = LinkConfig {
            loss: LossModel::Bernoulli { p: 0.3 },
            max_retries: 5,
            ..LinkConfig::default()
        };
        let mut net = StarNetwork::new(cfg);
        net.register(NodeId::new(1));
        let mut rng = SimRng::seed_from(2);
        let trials = 2_000;
        let delivered = (0..trials)
            .filter(|&i| net.send_uplink(&tool_use(1, i as u16), &mut rng).is_delivered())
            .count();
        // P(all 6 attempts lose the data frame) = 0.3^6 ≈ 0.07 %.
        assert!(delivered as f64 / trials as f64 > 0.99, "delivered {delivered}/{trials}");
    }

    #[test]
    fn total_loss_reports_lost() {
        let cfg = LinkConfig {
            loss: LossModel::Bernoulli { p: 1.0 },
            max_retries: 2,
            ..LinkConfig::default()
        };
        let mut net = StarNetwork::new(cfg);
        net.register(NodeId::new(1));
        let mut rng = SimRng::seed_from(3);
        assert_eq!(
            net.send_uplink(&tool_use(1, 0), &mut rng),
            SendOutcome::Lost { attempts: 3 }
        );
    }

    #[test]
    fn lost_acks_cause_duplicates_sometimes() {
        let cfg = LinkConfig {
            loss: LossModel::Bernoulli { p: 0.4 },
            max_retries: 4,
            ..LinkConfig::default()
        };
        let mut net = StarNetwork::new(cfg);
        net.register(NodeId::new(1));
        let mut rng = SimRng::seed_from(4);
        let mut dup_total = 0u32;
        for i in 0..2_000 {
            if let SendOutcome::Delivered { duplicates, .. } =
                net.send_uplink(&tool_use(1, i as u16), &mut rng)
            {
                dup_total += u32::from(duplicates);
            }
        }
        assert!(dup_total > 0, "a 40% lossy link should produce some duplicates");
    }

    #[test]
    fn retry_latency_grows() {
        let cfg = LinkConfig {
            loss: LossModel::Bernoulli { p: 0.9 },
            max_retries: 8,
            retry_backoff: SimDuration::from_millis(50),
        };
        let mut net = StarNetwork::new(cfg);
        net.register(NodeId::new(1));
        let mut rng = SimRng::seed_from(5);
        // Latency to first delivery must include the backoff of every
        // failed attempt before it.
        for i in 0..400 {
            if let SendOutcome::Delivered { latency, first_delivery_attempt, .. } =
                net.send_uplink(&tool_use(1, i), &mut rng)
            {
                if first_delivery_attempt > 1 {
                    let floor = 50 * u64::from(first_delivery_attempt - 1);
                    assert!(latency >= SimDuration::from_millis(floor));
                    return;
                }
            }
        }
        panic!("expected at least one multi-attempt delivery");
    }

    #[test]
    fn link_counters_tally_both_directions() {
        let cfg = LinkConfig {
            loss: LossModel::Bernoulli { p: 1.0 },
            max_retries: 1,
            ..LinkConfig::default()
        };
        let mut net = StarNetwork::new(cfg);
        net.register(NodeId::new(1));
        let mut rng = SimRng::seed_from(7);
        let _ = net.send_uplink(&tool_use(1, 0), &mut rng);
        net.set_loss(LossModel::Perfect);
        let _ = net.send_uplink(&tool_use(1, 1), &mut rng);
        let _ = net.send_downlink(NodeId::new(1), &tool_use(1, 2), &mut rng);
        let up = net.uplink_counters();
        assert_eq!((up.frames, up.delivered, up.lost), (2, 1, 1));
        assert_eq!(up.attempts, 3, "2 attempts lost frame + 1 perfect");
        let down = net.downlink_counters();
        assert_eq!((down.frames, down.delivered, down.lost), (1, 1, 0));
        let (up2, down2) = net.take_counters();
        assert_eq!((up2, down2), (up, down));
        assert_eq!(net.uplink_counters(), LinkCounters::default(), "take resets");
    }

    #[test]
    fn base_station_dedups_repeated_seq() {
        let mut bs = BaseStation::new();
        assert!(bs.receive(tool_use(1, 0)).is_some());
        assert!(bs.receive(tool_use(1, 0)).is_none());
        assert!(bs.receive(tool_use(1, 1)).is_some());
        // Same seq from a *different* node is not a duplicate.
        assert!(bs.receive(tool_use(2, 1)).is_some());
        assert_eq!(bs.accepted(), 3);
        assert_eq!(bs.duplicates(), 1);
    }

    #[test]
    fn base_station_handles_seq_wrap() {
        let mut bs = BaseStation::new();
        assert!(bs.receive(tool_use(1, u16::MAX)).is_some());
        assert!(bs.receive(tool_use(1, 0)).is_some(), "wrapped seq is a new frame");
    }

    #[test]
    #[should_panic(expected = "not registered")]
    fn unknown_node_panics() {
        let mut net = StarNetwork::new(LinkConfig::default());
        let mut rng = SimRng::seed_from(6);
        let _ = net.send_uplink(&tool_use(9, 0), &mut rng);
    }
}
