//! The PAVENET sensor node model.
//!
//! One node is strapped to each tool ("What we need do is only attach one
//! PAVENET to a tool, and configure its uid as the tool ID"). The node
//! samples its sensor at 10 Hz, runs the 3-of-10 detector, and emits a
//! `ToolUse` packet whenever a window closes with a positive verdict.

use coreda_des::rng::SimRng;
use serde::{Deserialize, Serialize};

use crate::detect::{Detector, Thresholds};
use crate::eeprom::Eeprom;
use crate::energy::{EnergyMeter, EnergyModel};
use crate::led::{LedBank, LedColor};
use crate::packet::{Packet, Payload};
use crate::signal::SignalModel;

/// A PAVENET unique ID. CoReDA uses it directly as the tool ID.
///
/// # Examples
///
/// ```
/// use coreda_sensornet::node::NodeId;
///
/// let id = NodeId::new(3);
/// assert_eq!(id.raw(), 3);
/// assert_eq!(format!("{id}"), "node-3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(u16);

impl NodeId {
    /// Wraps a raw uid.
    #[must_use]
    pub const fn new(raw: u16) -> Self {
        NodeId(raw)
    }

    /// The raw uid.
    #[must_use]
    pub const fn raw(self) -> u16 {
        self.0
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "node-{}", self.0)
    }
}

/// The resumable mutable state of one [`PavenetNode`], as captured by
/// [`PavenetNode::export_state`]. The signal model, thresholds and EEPROM
/// are not included: they are construction-time configuration (the live
/// pipeline never writes the EEPROM), so a restored node only needs to be
/// built from the same spec.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeState {
    /// Buffered detector votes of the partially filled window.
    pub detector_window: Vec<bool>,
    /// Green LED state.
    pub led_green: bool,
    /// Red LED state.
    pub led_red: bool,
    /// Accumulated energy in microjoules (raw accumulator).
    pub energy_uj: f64,
    /// Energy breakdown: (samples, tx bytes, rx bytes, led ms, sleep ms).
    pub energy_breakdown: (u64, u64, u64, u64, u64),
    /// Next radio sequence number.
    pub next_seq: u16,
    /// Peak activation seen in the current detection window.
    pub window_peak_activation: f64,
    /// Detection windows completed.
    pub windows_closed: u64,
    /// `ToolUse` reports emitted.
    pub reports_sent: u64,
    /// Whether the mote is crashed.
    pub failed: bool,
    /// False-positive flip probability.
    pub flip_false_positive: f64,
    /// False-negative flip probability.
    pub flip_false_negative: f64,
    /// Report-timestamp skew in milliseconds.
    pub clock_skew_ms: i64,
}

/// A simulated PAVENET mote: sensor + detector + LEDs + EEPROM + radio
/// sequence counter.
///
/// # Examples
///
/// ```
/// use coreda_des::rng::SimRng;
/// use coreda_sensornet::detect::Thresholds;
/// use coreda_sensornet::node::{NodeId, PavenetNode};
/// use coreda_sensornet::signal::SignalModel;
///
/// let mut node = PavenetNode::new(
///     NodeId::new(1),
///     SignalModel::accelerometer(0.03, 0.5, 0.9),
///     Thresholds::default(),
/// );
/// let mut rng = SimRng::seed_from(0);
/// // Ten ticks of vigorous use close one detection window.
/// let mut report = None;
/// for _ in 0..10 {
///     if let Some(p) = node.sample_tick(true, 0, &mut rng) {
///         report = Some(p);
///     }
/// }
/// assert!(report.is_some(), "an active window should report tool use");
/// ```
#[derive(Debug, Clone)]
pub struct PavenetNode {
    uid: NodeId,
    signal: SignalModel,
    detector: Detector,
    leds: LedBank,
    eeprom: Eeprom,
    energy: EnergyMeter,
    next_seq: u16,
    window_peak_activation: f64,
    windows_closed: u64,
    reports_sent: u64,
    /// Fault injection: a crashed node neither samples nor reports.
    failed: bool,
    /// Fault injection: P(sample reads "in use" while the tool is idle).
    flip_false_positive: f64,
    /// Fault injection: P(sample reads "idle" while the tool is in use).
    flip_false_negative: f64,
    /// Fault injection: offset added to the node's report timestamps.
    clock_skew_ms: i64,
}

impl PavenetNode {
    /// Creates a node attached to a tool with the given signal behaviour.
    #[must_use]
    pub fn new(uid: NodeId, signal: SignalModel, thresholds: Thresholds) -> Self {
        PavenetNode {
            uid,
            signal,
            detector: Detector::new(thresholds),
            leds: LedBank::new(),
            eeprom: Eeprom::new(),
            energy: EnergyMeter::new(EnergyModel::default()),
            next_seq: 0,
            window_peak_activation: 0.0,
            windows_closed: 0,
            reports_sent: 0,
            failed: false,
            flip_false_positive: 0.0,
            flip_false_negative: 0.0,
            clock_skew_ms: 0,
        }
    }

    /// The node's uid (and therefore the tool ID it reports).
    #[must_use]
    pub const fn uid(&self) -> NodeId {
        self.uid
    }

    /// The node's signal model.
    #[must_use]
    pub const fn signal(&self) -> SignalModel {
        self.signal
    }

    /// Read access to the LED bank (tests and the scenario renderer).
    #[must_use]
    pub const fn leds(&self) -> &LedBank {
        &self.leds
    }

    /// Sets an LED (applied by the network layer when an LED command
    /// arrives).
    pub fn set_led(&mut self, color: LedColor, on: bool) {
        self.leds.set(color, on);
    }

    /// Mutable access to the EEPROM.
    pub fn eeprom_mut(&mut self) -> &mut Eeprom {
        &mut self.eeprom
    }

    /// The node's energy meter.
    #[must_use]
    pub const fn energy(&self) -> &EnergyMeter {
        &self.energy
    }

    /// Mutable access to the energy meter (the network layer charges
    /// radio activity here; LEDs are charged when commands are applied).
    pub fn energy_mut(&mut self) -> &mut EnergyMeter {
        &mut self.energy
    }

    /// Turns all LEDs off (end of a reminder).
    pub fn clear_leds(&mut self) {
        self.leds.clear();
    }

    /// Number of detection windows completed.
    #[must_use]
    pub const fn windows_closed(&self) -> u64 {
        self.windows_closed
    }

    /// Number of `ToolUse` reports emitted.
    #[must_use]
    pub const fn reports_sent(&self) -> u64 {
        self.reports_sent
    }

    /// One 100 ms sampling tick. `in_use` is ground truth from the
    /// behaviour simulation: is the person manipulating this tool right
    /// now? Returns a `ToolUse` packet when a detection window closes with
    /// a positive verdict.
    pub fn sample_tick(&mut self, in_use: bool, now_ms: u64, rng: &mut SimRng) -> Option<Packet> {
        if self.failed {
            // A crashed mote draws no power and produces nothing; its RNG
            // stream is left untouched so a reboot resumes deterministically.
            return None;
        }
        self.energy.charge_samples(1);
        let flip_p = if in_use { self.flip_false_negative } else { self.flip_false_positive };
        let in_use = if flip_p > 0.0 && rng.chance(flip_p) { !in_use } else { in_use };
        let reading = self.signal.sample(in_use, rng);
        let activation = reading.activation();
        self.window_peak_activation = self.window_peak_activation.max(activation);
        let verdict = self.detector.push_activation(reading.kind(), activation)?;
        self.windows_closed += 1;
        let peak = self.window_peak_activation;
        self.window_peak_activation = 0.0;
        if !verdict {
            return None;
        }
        let seq = self.next_seq;
        self.next_seq = self.next_seq.wrapping_add(1);
        self.reports_sent += 1;
        let activation_milli = (peak * 1000.0).clamp(0.0, f64::from(u16::MAX)) as u16;
        let stamped_ms = now_ms.saturating_add_signed(self.clock_skew_ms);
        Some(Packet::new(self.uid, seq, stamped_ms, Payload::ToolUse { activation_milli }))
    }

    /// Fault injection: crashes (`true`) or reboots (`false`) the mote. A
    /// crashed node stops sampling, reporting, and applying LED commands.
    pub fn set_failed(&mut self, failed: bool) {
        if !self.failed && failed {
            // Power loss wipes the detector's in-flight window.
            self.reset_detector();
        }
        self.failed = failed;
    }

    /// Whether the mote is currently crashed.
    #[must_use]
    pub const fn is_failed(&self) -> bool {
        self.failed
    }

    /// Fault injection: per-sample sensing flip probabilities.
    ///
    /// # Panics
    ///
    /// Panics if either rate is outside `[0, 1]`.
    pub fn set_sensor_flip(&mut self, false_positive: f64, false_negative: f64) {
        assert!((0.0..=1.0).contains(&false_positive), "false_positive must be a probability");
        assert!((0.0..=1.0).contains(&false_negative), "false_negative must be a probability");
        self.flip_false_positive = false_positive;
        self.flip_false_negative = false_negative;
    }

    /// Fault injection: skews the clock the mote stamps its reports with.
    pub fn set_clock_skew_ms(&mut self, skew_ms: i64) {
        self.clock_skew_ms = skew_ms;
    }

    /// Resets detector state (e.g. between experiment trials).
    pub fn reset_detector(&mut self) {
        self.detector.reset();
        self.window_peak_activation = 0.0;
    }

    /// Captures the node's resumable mutable state (checkpointing).
    #[must_use]
    pub fn export_state(&self) -> NodeState {
        NodeState {
            detector_window: self.detector.window_votes().to_vec(),
            led_green: self.leds.is_on(LedColor::Green),
            led_red: self.leds.is_on(LedColor::Red),
            energy_uj: self.energy.consumed_uj(),
            energy_breakdown: self.energy.breakdown(),
            next_seq: self.next_seq,
            window_peak_activation: self.window_peak_activation,
            windows_closed: self.windows_closed,
            reports_sent: self.reports_sent,
            failed: self.failed,
            flip_false_positive: self.flip_false_positive,
            flip_false_negative: self.flip_false_negative,
            clock_skew_ms: self.clock_skew_ms,
        }
    }

    /// Restores state captured by [`PavenetNode::export_state`] onto a
    /// freshly built node with the same signal model and thresholds.
    ///
    /// The `failed` flag is written directly (not via
    /// [`PavenetNode::set_failed`]) so the captured in-flight detector
    /// window survives the restore.
    ///
    /// # Panics
    ///
    /// Propagates the panics of the underlying restore methods on
    /// malformed input (oversized window, non-finite energy, flip rates
    /// outside `[0, 1]`).
    pub fn restore_state(&mut self, state: &NodeState) {
        self.detector.restore_window(&state.detector_window);
        self.leds.set(LedColor::Green, state.led_green);
        self.leds.set(LedColor::Red, state.led_red);
        let (samples, tx, rx, led, sleep) = state.energy_breakdown;
        self.energy.restore_totals(state.energy_uj, samples, tx, rx, led, sleep);
        self.next_seq = state.next_seq;
        self.window_peak_activation = state.window_peak_activation;
        self.windows_closed = state.windows_closed;
        self.reports_sent = state.reports_sent;
        self.failed = state.failed;
        self.set_sensor_flip(state.flip_false_positive, state.flip_false_negative);
        self.clock_skew_ms = state.clock_skew_ms;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node() -> PavenetNode {
        PavenetNode::new(
            NodeId::new(7),
            SignalModel::accelerometer(0.03, 0.5, 0.9),
            Thresholds::default(),
        )
    }

    #[test]
    fn idle_tool_stays_silent() {
        let mut n = node();
        let mut rng = SimRng::seed_from(1);
        let mut reports = 0;
        for t in 0..300 {
            if n.sample_tick(false, t * 100, &mut rng).is_some() {
                reports += 1;
            }
        }
        assert_eq!(reports, 0, "a still tool should never report use");
        assert_eq!(n.windows_closed(), 30);
    }

    #[test]
    fn used_tool_reports_most_windows() {
        let mut n = node();
        let mut rng = SimRng::seed_from(2);
        let mut reports = 0;
        for t in 0..300 {
            if n.sample_tick(true, t * 100, &mut rng).is_some() {
                reports += 1;
            }
        }
        assert!(reports >= 28, "expected nearly every active window to report, got {reports}/30");
        assert_eq!(n.reports_sent(), reports);
    }

    #[test]
    fn report_carries_uid_and_increasing_seq() {
        let mut n = node();
        let mut rng = SimRng::seed_from(3);
        let mut seqs = Vec::new();
        for t in 0..200 {
            if let Some(p) = n.sample_tick(true, t * 100, &mut rng) {
                assert_eq!(p.src, NodeId::new(7));
                assert!(matches!(p.payload, Payload::ToolUse { .. }));
                seqs.push(p.seq);
            }
        }
        for w in seqs.windows(2) {
            assert_eq!(w[1], w[0] + 1, "sequence numbers must increment");
        }
    }

    #[test]
    fn activation_milli_reflects_signal_strength() {
        let mut n = node();
        let mut rng = SimRng::seed_from(4);
        let mut activations = Vec::new();
        for t in 0..200 {
            if let Some(Packet { payload: Payload::ToolUse { activation_milli }, .. }) =
                n.sample_tick(true, t * 100, &mut rng)
            {
                activations.push(activation_milli);
            }
        }
        let mean: f64 =
            activations.iter().map(|&a| f64::from(a)).sum::<f64>() / activations.len() as f64;
        assert!(mean > 150.0, "peak activations should exceed threshold scale, mean {mean}");
    }

    #[test]
    fn leds_respond_to_commands() {
        let mut n = node();
        n.set_led(LedColor::Green, true);
        assert!(n.leds().is_on(LedColor::Green));
        assert!(!n.leds().is_on(LedColor::Red));
    }

    #[test]
    fn eeprom_is_usable() {
        let mut n = node();
        n.eeprom_mut().write(0, &[7, 0]).unwrap();
        assert_eq!(n.eeprom_mut().read(0, 2).unwrap(), &[7, 0]);
    }

    #[test]
    fn export_restore_resumes_identically() {
        let mut live = node();
        let mut ghost = node();
        let mut live_rng = SimRng::seed_from(6);
        let mut ghost_rng = SimRng::seed_from(6);
        // Advance both mid-window (37 ticks leaves 7 samples buffered).
        for t in 0..37 {
            let _ = live.sample_tick(true, t * 100, &mut live_rng);
            let _ = ghost.sample_tick(true, t * 100, &mut ghost_rng);
        }
        live.set_clock_skew_ms(250);
        ghost.set_clock_skew_ms(250);
        let state = live.export_state();
        let mut resumed = node();
        resumed.restore_state(&state);
        let (rng_state, rng_base) = live_rng.state_parts();
        let mut resumed_rng = SimRng::from_state_parts(rng_state, rng_base);
        for t in 37..80 {
            let a = resumed.sample_tick(true, t * 100, &mut resumed_rng);
            let b = ghost.sample_tick(true, t * 100, &mut ghost_rng);
            assert_eq!(a, b, "resumed node diverged at tick {t}");
        }
        assert_eq!(resumed.windows_closed(), ghost.windows_closed());
        assert_eq!(resumed.reports_sent(), ghost.reports_sent());
        assert_eq!(resumed.energy().consumed_uj(), ghost.energy().consumed_uj());
    }

    #[test]
    fn reset_detector_drops_partial_window() {
        let mut n = node();
        let mut rng = SimRng::seed_from(5);
        for t in 0..5 {
            let _ = n.sample_tick(true, t * 100, &mut rng);
        }
        n.reset_detector();
        // The next 9 ticks must not close a window (it restarts at 0).
        let mut verdicts = 0;
        for t in 0..9 {
            if n.sample_tick(true, t * 100, &mut rng).is_some() {
                verdicts += 1;
            }
        }
        assert_eq!(verdicts, 0);
    }
}
