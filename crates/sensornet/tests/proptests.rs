//! Property-based tests for the sensor-network substrate.

use coreda_sensornet::detect::{Detector, Thresholds};
use coreda_sensornet::led::{BlinkPattern, LedColor};
use coreda_sensornet::node::NodeId;
use coreda_sensornet::packet::{crc16, Packet, Payload};
use coreda_sensornet::sensors::{Reading, Vec3};
use coreda_sensornet::trace::SignalTrace;
use proptest::prelude::*;

fn arb_reading() -> impl Strategy<Value = Reading> {
    prop_oneof![
        (-4.0f64..4.0, -4.0f64..4.0, -4.0f64..4.0)
            .prop_map(|(x, y, z)| Reading::Accel(Vec3::new(x, y, z))),
        (50.0f64..150.0).prop_map(Reading::Pressure),
        (0.0f64..2000.0).prop_map(Reading::Brightness),
        (-20.0f64..60.0).prop_map(Reading::Temperature),
        any::<bool>().prop_map(Reading::Motion),
    ]
}

fn arb_payload() -> impl Strategy<Value = Payload> {
    prop_oneof![
        any::<u16>().prop_map(|a| Payload::ToolUse { activation_milli: a }),
        any::<u16>().prop_map(|s| Payload::Ack { acked_seq: s }),
        Just(Payload::Heartbeat),
        (any::<bool>(), any::<u8>(), 0u64..u64::from(u16::MAX)).prop_map(|(red, blinks, period)| {
            Payload::Led {
                pattern: BlinkPattern {
                    color: if red { LedColor::Red } else { LedColor::Green },
                    blinks,
                    period_ms: period,
                },
            }
        }),
    ]
}

fn arb_packet() -> impl Strategy<Value = Packet> {
    (any::<u16>(), any::<u16>(), any::<u64>(), arb_payload())
        .prop_map(|(src, seq, ts, payload)| Packet::new(NodeId::new(src), seq, ts, payload))
}

proptest! {
    /// Every packet round-trips through the wire format.
    #[test]
    fn packet_roundtrip(p in arb_packet()) {
        let bytes = p.encode();
        prop_assert!(bytes.len() <= coreda_sensornet::packet::MAX_FRAME_LEN);
        prop_assert_eq!(Packet::decode(&bytes).unwrap(), p);
    }

    /// Any single-bit flip anywhere in a frame is rejected.
    #[test]
    fn single_bit_corruption_rejected(p in arb_packet(), byte in 0usize..32, bit in 0u8..8) {
        let mut bytes = p.encode().to_vec();
        let idx = byte % bytes.len();
        bytes[idx] ^= 1 << bit;
        prop_assert!(Packet::decode(&bytes).is_err());
    }

    /// Decoding never panics on arbitrary garbage.
    #[test]
    fn decode_is_total(garbage in proptest::collection::vec(any::<u8>(), 0..80)) {
        let _ = Packet::decode(&garbage);
    }

    /// CRC16 changes under any single-byte change (for short inputs).
    #[test]
    fn crc_detects_single_byte_change(
        data in proptest::collection::vec(any::<u8>(), 1..40),
        idx in 0usize..40,
        delta in 1u8..=255,
    ) {
        let idx = idx % data.len();
        let mut mutated = data.clone();
        mutated[idx] = mutated[idx].wrapping_add(delta);
        prop_assert_ne!(crc16(&data), crc16(&mutated));
    }

    /// The detector verdict equals "at least 3 of 10 above threshold", for
    /// any pattern of sample activations.
    #[test]
    fn detector_matches_specification(activations in proptest::collection::vec(0.0f64..1.0, 10)) {
        let det = Detector::new(Thresholds::default());
        let window: Vec<Reading> = activations
            .iter()
            // Put all deviation on x so activation ≈ |sqrt(x²+1) − 1|… use
            // a direct construction instead: z = 1 + a gives activation a.
            .map(|&a| Reading::Accel(Vec3::new(0.0, 0.0, 1.0 + a)))
            .collect();
        let expected = activations
            .iter()
            .filter(|&&a| a > det.thresholds().accel)
            .count()
            >= 3;
        prop_assert_eq!(det.judge_window(&window), expected);
    }

    /// Signal traces round-trip losslessly through the text format.
    #[test]
    fn trace_roundtrip(
        tool in any::<u16>(),
        readings in proptest::collection::vec(arb_reading(), 0..50),
    ) {
        let trace = SignalTrace { tool, period_ms: 100, readings };
        let parsed = SignalTrace::from_text(&trace.to_text()).unwrap();
        prop_assert_eq!(parsed, trace);
    }

    /// Trace parsing never panics on arbitrary text.
    #[test]
    fn trace_parse_is_total(garbage in "\\PC{0,200}") {
        let _ = SignalTrace::from_text(&garbage);
    }

    /// Blink schedules are sorted, alternate on/off, and span the pattern
    /// duration.
    #[test]
    fn blink_schedule_well_formed(blinks in 1u8..20, period in 2u64..5_000) {
        use coreda_des::time::SimTime;
        let p = BlinkPattern { color: LedColor::Green, blinks, period_ms: period };
        let sched = p.schedule(SimTime::from_secs(1));
        prop_assert_eq!(sched.len(), usize::from(blinks) * 2);
        for (i, &(t, on)) in sched.iter().enumerate() {
            prop_assert_eq!(on, i % 2 == 0, "entries must alternate on/off");
            prop_assert!(t >= SimTime::from_secs(1));
        }
        for w in sched.windows(2) {
            prop_assert!(w[0].0 <= w[1].0);
        }
    }
}
