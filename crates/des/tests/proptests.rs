//! Property-based tests for the simulation kernel invariants.

use coreda_des::event::HeapEventQueue;
use coreda_des::prelude::*;
use proptest::prelude::*;

/// One step of a queue workload: schedule an event at an absolute due, or
/// pop the current minimum.
#[derive(Debug, Clone)]
enum Op {
    Schedule(u64),
    Pop,
}

/// Dues spanning every wheel regime: same-tick ties and near dues
/// (level 0), mid-range dues that cascade down from higher levels, and
/// far-future dues beyond the 2^32 ms wheel horizon (overflow heap).
fn due_strategy() -> impl Strategy<Value = u64> {
    prop_oneof![
        0u64..2_000,
        0u64..(1 << 20),
        0u64..(1 << 36),
    ]
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        due_strategy().prop_map(Op::Schedule),
        due_strategy().prop_map(Op::Schedule),
        due_strategy().prop_map(Op::Schedule),
        Just(Op::Pop),
    ]
}

proptest! {
    /// Events always pop in non-decreasing time order, whatever the
    /// insertion order.
    #[test]
    fn queue_pops_sorted(times in proptest::collection::vec(0u64..1_000_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule_at(SimTime::from_millis(t), i);
        }
        let mut last = SimTime::ZERO;
        while let Some((t, _)) = q.pop() {
            prop_assert!(t >= last);
            last = t;
        }
    }

    /// Equal-time events preserve insertion (FIFO) order.
    #[test]
    fn queue_fifo_on_ties(groups in proptest::collection::vec((0u64..100, 1usize..5), 1..50)) {
        let mut q = EventQueue::new();
        let mut idx = 0usize;
        for &(t, n) in &groups {
            for _ in 0..n {
                q.schedule_at(SimTime::from_millis(t), idx);
                idx += 1;
            }
        }
        // Within one timestamp, payload indices must be increasing.
        let mut by_time: Vec<(SimTime, usize)> = Vec::new();
        while let Some(e) = q.pop() {
            by_time.push(e);
        }
        for w in by_time.windows(2) {
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1);
            }
        }
    }

    /// The simulator clock is monotone over any schedule.
    #[test]
    fn simulator_clock_monotone(delays in proptest::collection::vec(0u64..10_000, 1..100)) {
        let mut sim = Simulator::new();
        for &d in &delays {
            sim.schedule_after(SimDuration::from_millis(d), d);
        }
        let mut last = SimTime::ZERO;
        while sim.step().is_some() {
            prop_assert!(sim.now() >= last);
            last = sim.now();
        }
        prop_assert_eq!(sim.processed(), delays.len() as u64);
    }

    /// Identically seeded RNGs produce identical streams; substreams are
    /// reproducible.
    #[test]
    fn rng_determinism(seed in any::<u64>(), domain_idx in 0u64..32) {
        let mut a = SimRng::seed_from(seed);
        let mut b = SimRng::seed_from(seed);
        for _ in 0..8 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
        let root = SimRng::seed_from(seed);
        let mut s1 = root.substream("d", domain_idx);
        let mut s2 = root.substream("d", domain_idx);
        prop_assert_eq!(s1.next_u64(), s2.next_u64());
    }

    /// The timing-wheel queue dispatches in byte-identical order to the
    /// reference binary heap under arbitrary interleaved schedules and
    /// pops, including same-tick FIFO ties and far-future events that
    /// cascade between wheel levels or overflow the wheel horizon.
    #[test]
    fn wheel_matches_heap_dispatch_order(ops in proptest::collection::vec(op_strategy(), 1..300)) {
        let mut wheel = EventQueue::new();
        let mut heap = HeapEventQueue::new();
        for (i, op) in ops.iter().enumerate() {
            match *op {
                Op::Schedule(due) => {
                    let t = SimTime::from_millis(due);
                    wheel.schedule_at(t, i);
                    heap.schedule_at(t, i);
                }
                Op::Pop => {
                    prop_assert_eq!(wheel.peek_time(), heap.peek_time());
                    prop_assert_eq!(wheel.pop(), heap.pop());
                }
            }
            prop_assert_eq!(wheel.len(), heap.len());
        }
        // Drain both; every remaining event must match exactly.
        loop {
            prop_assert_eq!(wheel.peek_time(), heap.peek_time());
            let (w, h) = (wheel.pop(), heap.pop());
            prop_assert_eq!(w, h);
            if w.is_none() {
                break;
            }
        }
    }

    /// Same-tick bursts pop FIFO from the wheel even when the burst was
    /// scheduled across a cascade boundary.
    #[test]
    fn wheel_fifo_survives_cascades(tie_due in (1u64 << 16)..(1 << 24), n in 2usize..20) {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(tie_due);
        // Half the burst before a near event forces a cascade, half after.
        for i in 0..n / 2 {
            q.schedule_at(t, i);
        }
        q.schedule_at(SimTime::from_millis(1), usize::MAX);
        prop_assert_eq!(q.pop().map(|(_, e)| e), Some(usize::MAX));
        for i in n / 2..n {
            q.schedule_at(t, i);
        }
        for want in 0..n {
            prop_assert_eq!(q.pop(), Some((t, want)));
        }
        prop_assert!(q.is_empty());
    }

    /// Time arithmetic: (t + d) - t == d for in-range values.
    #[test]
    fn time_add_sub_roundtrip(t in 0u64..u64::MAX / 4, d in 0u64..u64::MAX / 4) {
        let t = SimTime::from_millis(t);
        let d = SimDuration::from_millis(d);
        prop_assert_eq!((t + d) - t, d);
        prop_assert_eq!((t + d) - d, t);
    }
}
