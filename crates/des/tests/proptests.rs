//! Property-based tests for the simulation kernel invariants.

use coreda_des::event::HeapEventQueue;
use coreda_des::prelude::*;
use proptest::prelude::*;

/// One step of a queue workload: schedule an event at an absolute due, or
/// pop the current minimum.
#[derive(Debug, Clone)]
enum Op {
    Schedule(u64),
    Pop,
}

/// Dues spanning every wheel regime: same-tick ties and near dues
/// (level 0), mid-range dues that cascade down from higher levels, and
/// far-future dues beyond the 2^32 ms wheel horizon (overflow heap).
fn due_strategy() -> impl Strategy<Value = u64> {
    prop_oneof![
        0u64..2_000,
        0u64..(1 << 20),
        0u64..(1 << 36),
    ]
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        due_strategy().prop_map(Op::Schedule),
        due_strategy().prop_map(Op::Schedule),
        due_strategy().prop_map(Op::Schedule),
        Just(Op::Pop),
    ]
}

proptest! {
    /// Events always pop in non-decreasing time order, whatever the
    /// insertion order.
    #[test]
    fn queue_pops_sorted(times in proptest::collection::vec(0u64..1_000_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule_at(SimTime::from_millis(t), i);
        }
        let mut last = SimTime::ZERO;
        while let Some((t, _)) = q.pop() {
            prop_assert!(t >= last);
            last = t;
        }
    }

    /// Equal-time events preserve insertion (FIFO) order.
    #[test]
    fn queue_fifo_on_ties(groups in proptest::collection::vec((0u64..100, 1usize..5), 1..50)) {
        let mut q = EventQueue::new();
        let mut idx = 0usize;
        for &(t, n) in &groups {
            for _ in 0..n {
                q.schedule_at(SimTime::from_millis(t), idx);
                idx += 1;
            }
        }
        // Within one timestamp, payload indices must be increasing.
        let mut by_time: Vec<(SimTime, usize)> = Vec::new();
        while let Some(e) = q.pop() {
            by_time.push(e);
        }
        for w in by_time.windows(2) {
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1);
            }
        }
    }

    /// The simulator clock is monotone over any schedule.
    #[test]
    fn simulator_clock_monotone(delays in proptest::collection::vec(0u64..10_000, 1..100)) {
        let mut sim = Simulator::new();
        for &d in &delays {
            sim.schedule_after(SimDuration::from_millis(d), d);
        }
        let mut last = SimTime::ZERO;
        while sim.step().is_some() {
            prop_assert!(sim.now() >= last);
            last = sim.now();
        }
        prop_assert_eq!(sim.processed(), delays.len() as u64);
    }

    /// Identically seeded RNGs produce identical streams; substreams are
    /// reproducible.
    #[test]
    fn rng_determinism(seed in any::<u64>(), domain_idx in 0u64..32) {
        let mut a = SimRng::seed_from(seed);
        let mut b = SimRng::seed_from(seed);
        for _ in 0..8 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
        let root = SimRng::seed_from(seed);
        let mut s1 = root.substream("d", domain_idx);
        let mut s2 = root.substream("d", domain_idx);
        prop_assert_eq!(s1.next_u64(), s2.next_u64());
    }

    /// The timing-wheel queue dispatches in byte-identical order to the
    /// reference binary heap under arbitrary interleaved schedules and
    /// pops, including same-tick FIFO ties and far-future events that
    /// cascade between wheel levels or overflow the wheel horizon.
    #[test]
    fn wheel_matches_heap_dispatch_order(ops in proptest::collection::vec(op_strategy(), 1..300)) {
        let mut wheel = EventQueue::new();
        let mut heap = HeapEventQueue::new();
        for (i, op) in ops.iter().enumerate() {
            match *op {
                Op::Schedule(due) => {
                    let t = SimTime::from_millis(due);
                    wheel.schedule_at(t, i);
                    heap.schedule_at(t, i);
                }
                Op::Pop => {
                    prop_assert_eq!(wheel.peek_time(), heap.peek_time());
                    prop_assert_eq!(wheel.pop(), heap.pop());
                }
            }
            prop_assert_eq!(wheel.len(), heap.len());
        }
        // Drain both; every remaining event must match exactly.
        loop {
            prop_assert_eq!(wheel.peek_time(), heap.peek_time());
            let (w, h) = (wheel.pop(), heap.pop());
            prop_assert_eq!(w, h);
            if w.is_none() {
                break;
            }
        }
    }

    /// Same-tick bursts pop FIFO from the wheel even when the burst was
    /// scheduled across a cascade boundary.
    #[test]
    fn wheel_fifo_survives_cascades(tie_due in (1u64 << 16)..(1 << 24), n in 2usize..20) {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(tie_due);
        // Half the burst before a near event forces a cascade, half after.
        for i in 0..n / 2 {
            q.schedule_at(t, i);
        }
        q.schedule_at(SimTime::from_millis(1), usize::MAX);
        prop_assert_eq!(q.pop().map(|(_, e)| e), Some(usize::MAX));
        for i in n / 2..n {
            q.schedule_at(t, i);
        }
        for want in 0..n {
            prop_assert_eq!(q.pop(), Some((t, want)));
        }
        prop_assert!(q.is_empty());
    }

    /// Time arithmetic: (t + d) - t == d for in-range values.
    #[test]
    fn time_add_sub_roundtrip(t in 0u64..u64::MAX / 4, d in 0u64..u64::MAX / 4) {
        let t = SimTime::from_millis(t);
        let d = SimDuration::from_millis(d);
        prop_assert_eq!((t + d) - t, d);
        prop_assert_eq!((t + d) - d, t);
    }

    /// Epoch draining is exactly a pop loop: for any schedule spanning
    /// every wheel regime (level-0 ties, cascades, past-2^32 overflow)
    /// and any drain boundary, `drain_until` yields precisely the
    /// events a peek/pop loop bounded by the same instant yields, in
    /// the same `(due, seq)` order — so an epoch can never cross (or
    /// reorder against) an event due after its window. The remainders
    /// must then dispatch identically too.
    #[test]
    fn drain_until_is_exactly_a_bounded_pop_loop(
        dues in proptest::collection::vec(due_strategy(), 1..200),
        until in due_strategy(),
    ) {
        let mut drained_q = EventQueue::new();
        let mut popped_q = EventQueue::new();
        for (i, &due) in dues.iter().enumerate() {
            drained_q.schedule_at(SimTime::from_millis(due), i);
            popped_q.schedule_at(SimTime::from_millis(due), i);
        }
        let until = SimTime::from_millis(until);
        let mut drained = Vec::new();
        let n = drained_q.drain_until(until, &mut drained);
        prop_assert_eq!(n, drained.len());
        let mut popped = Vec::new();
        while popped_q.peek_time().is_some_and(|due| due <= until) {
            popped.push(popped_q.pop().expect("peeked event exists"));
        }
        prop_assert_eq!(&drained, &popped);
        prop_assert!(drained.iter().all(|&(due, _)| due <= until), "an epoch crossed its window");
        // Later-due events are untouched and still dispatch identically.
        prop_assert_eq!(drained_q.len(), popped_q.len());
        loop {
            let (d, p) = (drained_q.pop(), popped_q.pop());
            prop_assert_eq!(d, p);
            if d.is_none() {
                break;
            }
        }
    }

    /// Both backends agree on every drained window, including windows
    /// that interleave with fresh scheduling (an epoch's follow-up
    /// wakes landing past the window) and windows cut exactly at the
    /// 2^32 ms wheel horizon where the overflow heap refills the wheel.
    #[test]
    fn wheel_and_heap_drain_identical_windows(
        rounds in proptest::collection::vec(
            (proptest::collection::vec(due_strategy(), 0..40), due_strategy()),
            1..8,
        ),
    ) {
        let mut wheel = EventQueue::new();
        let mut heap = HeapEventQueue::new();
        let mut cursor = 0u64; // schedules must stay >= the drain high-water
        let mut seq = 0usize;
        for (dues, until) in rounds {
            for due in dues {
                let due = SimTime::from_millis(cursor.saturating_add(due));
                wheel.schedule_at(due, seq);
                heap.schedule_at(due, seq);
                seq += 1;
            }
            let until = SimTime::from_millis(cursor.saturating_add(until));
            let mut from_wheel = Vec::new();
            let mut from_heap = Vec::new();
            wheel.drain_until(until, &mut from_wheel);
            heap.drain_until(until, &mut from_heap);
            prop_assert_eq!(&from_wheel, &from_heap);
            prop_assert_eq!(wheel.len(), heap.len());
            cursor = until.as_millis();
        }
    }

    /// Duplicate same-instant entries (the wake-dedup workload) all
    /// drain, FIFO within the tie — the consumer's dedup then collapses
    /// them exactly as the strict sweep's batch dedup does.
    #[test]
    fn duplicate_instants_drain_complete_and_fifo(
        due in due_strategy(),
        dupes in 2usize..12,
    ) {
        let t = SimTime::from_millis(due);
        let mut q = EventQueue::new();
        for i in 0..dupes {
            q.schedule_at(t, i);
        }
        let mut out = Vec::new();
        q.drain_until(t, &mut out);
        prop_assert_eq!(out.len(), dupes, "a duplicate wake was lost");
        for (i, &(at, e)) in out.iter().enumerate() {
            prop_assert_eq!(at, t);
            prop_assert_eq!(e, i, "ties must stay FIFO");
        }
        prop_assert!(q.is_empty());
    }
}
