//! Simulation-time primitives.
//!
//! All CoReDA components run on a shared virtual clock with millisecond
//! resolution. [`SimTime`] is an absolute instant since the start of the
//! simulation; [`SimDuration`] is a span between two instants. Both are
//! thin newtypes over `u64` milliseconds, so arithmetic is exact and the
//! simulation is fully deterministic.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// An absolute instant on the simulation clock, in milliseconds since start.
///
/// # Examples
///
/// ```
/// use coreda_des::time::{SimDuration, SimTime};
///
/// let t = SimTime::ZERO + SimDuration::from_secs(13);
/// assert_eq!(t.as_millis(), 13_000);
/// assert_eq!(format!("{t}"), "13.000s");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimTime(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from milliseconds since simulation start.
    #[must_use]
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms)
    }

    /// Creates an instant from whole seconds since simulation start.
    #[must_use]
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1000)
    }

    /// Milliseconds since simulation start.
    #[must_use]
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start, as a float (for reporting).
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1000.0
    }

    /// The span from `earlier` to `self`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`.
    #[must_use]
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(earlier.0)
                .expect("`earlier` must not be later than `self`"),
        )
    }

    /// The span from `earlier` to `self`, or [`SimDuration::ZERO`] if
    /// `earlier` is later than `self`.
    #[must_use]
    pub fn saturating_duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Adds `d`, saturating at [`SimTime::MAX`].
    #[must_use]
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{:03}s", self.0 / 1000, self.0 % 1000)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;

    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;

    fn sub(self, rhs: SimTime) -> SimDuration {
        self.duration_since(rhs)
    }
}

/// A span of simulation time, in milliseconds.
///
/// # Examples
///
/// ```
/// use coreda_des::time::SimDuration;
///
/// let d = SimDuration::from_secs(30);
/// assert_eq!(d * 2, SimDuration::from_secs(60));
/// assert_eq!(d.as_secs_f64(), 30.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimDuration(u64);

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a span from milliseconds.
    #[must_use]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms)
    }

    /// Creates a span from whole seconds.
    #[must_use]
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1000)
    }

    /// Creates a span from fractional seconds, rounding to the nearest
    /// millisecond.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    #[must_use]
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "duration seconds must be finite and non-negative, got {secs}"
        );
        SimDuration((secs * 1000.0).round() as u64)
    }

    /// Milliseconds in the span.
    #[must_use]
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Seconds in the span, as a float (for reporting).
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1000.0
    }

    /// Whether the span is empty.
    #[must_use]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{:03}s", self.0 / 1000, self.0 % 1000)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;

    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;

    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;

    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;

    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_roundtrips() {
        let t = SimTime::from_secs(71);
        let d = SimDuration::from_millis(500);
        assert_eq!((t + d) - d, t);
        assert_eq!((t + d) - t, d);
    }

    #[test]
    fn display_formats_seconds_and_millis() {
        assert_eq!(SimTime::from_millis(13_042).to_string(), "13.042s");
        assert_eq!(SimDuration::from_millis(7).to_string(), "0.007s");
    }

    #[test]
    fn duration_since_is_exact() {
        let a = SimTime::from_secs(23);
        let b = SimTime::from_secs(13);
        assert_eq!(a.duration_since(b), SimDuration::from_secs(10));
    }

    #[test]
    #[should_panic(expected = "`earlier` must not be later")]
    fn duration_since_panics_when_reversed() {
        let _ = SimTime::from_secs(1).duration_since(SimTime::from_secs(2));
    }

    #[test]
    fn saturating_duration_since_clamps_to_zero() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert_eq!(a.saturating_duration_since(b), SimDuration::ZERO);
    }

    #[test]
    fn from_secs_f64_rounds_to_millis() {
        assert_eq!(SimDuration::from_secs_f64(1.2345), SimDuration::from_millis(1235));
        assert_eq!(SimDuration::from_secs_f64(0.0), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn from_secs_f64_rejects_negative() {
        let _ = SimDuration::from_secs_f64(-0.5);
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_millis(100);
        assert_eq!(d * 10, SimDuration::from_secs(1));
        assert_eq!(SimDuration::from_secs(1) / 4, SimDuration::from_millis(250));
    }

    #[test]
    fn saturating_add_caps_at_max() {
        assert_eq!(SimTime::MAX.saturating_add(SimDuration::from_secs(1)), SimTime::MAX);
    }

    #[test]
    fn ordering_matches_timeline() {
        assert!(SimTime::from_secs(13) < SimTime::from_secs(23));
        assert!(SimDuration::from_millis(1) > SimDuration::ZERO);
    }
}
