//! # coreda-des — deterministic discrete-event simulation kernel
//!
//! The substrate every other CoReDA crate runs on. The original CoReDA
//! prototype ran in real time on physical PAVENET sensor motes; this
//! reproduction replaces wall-clock time with a virtual clock so that every
//! experiment — the Figure 1 scenario replay, the Table 3/4 precision
//! studies, the Figure 4 learning curves — is a deterministic function of
//! its configuration and seed.
//!
//! Three pieces:
//!
//! - [`time`]: [`SimTime`]/[`SimDuration`] millisecond-resolution newtypes.
//! - [`event`] and [`sim`]: a min-priority [`EventQueue`] with FIFO
//!   tie-breaking — a hierarchical timing wheel, with the original
//!   binary heap kept as [`HeapEventQueue`] for baselining — wrapped by
//!   the poll-based [`Simulator`] driver.
//! - [`rng`]: [`SimRng`], a seedable random source with stable independent
//!   sub-streams per component.
//!
//! [`clock`] adds the online-serving bridge: a [`Clock`] pacing trait
//! with a deterministic [`SimClock`] (never waits) and a [`WallClock`]
//! (sleeps until each instant's wall-clock image), so the same serving
//! loop runs both deterministic tests and real traffic.
//!
//! # Examples
//!
//! ```
//! use coreda_des::prelude::*;
//!
//! #[derive(Debug)]
//! enum Ev { SensorSample(u8) }
//!
//! let mut sim = Simulator::new();
//! let mut rng = SimRng::seed_from(2007);
//! // Sample a sensor at 10 Hz for one second, like a PAVENET node.
//! for i in 0..10 {
//!     sim.schedule_at(SimTime::from_millis(i * 100), Ev::SensorSample(0));
//! }
//! let mut samples = 0;
//! while let Some(Ev::SensorSample(_)) = sim.step() {
//!     if rng.chance(0.5) { samples += 1; }
//! }
//! assert!(samples <= 10);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod clock;
pub mod event;
pub mod rng;
pub mod sim;
pub mod stats;
pub mod time;

pub use clock::{Clock, SimClock, WallClock};
pub use event::{EventQueue, EventQueueBackend, HeapEventQueue};
pub use rng::SimRng;
pub use sim::Simulator;
pub use stats::{Histogram, RunningStats};
pub use time::{SimDuration, SimTime};

/// Convenient glob import for simulation code.
pub mod prelude {
    pub use crate::clock::{Clock, SimClock, WallClock};
    pub use crate::event::EventQueue;
    pub use crate::rng::SimRng;
    pub use crate::sim::Simulator;
    pub use crate::time::{SimDuration, SimTime};
}
