//! Pacing clocks: how fast simulated instants are allowed to arrive.
//!
//! The batch engine jumps straight from one due instant to the next —
//! virtual time costs nothing. An online server cannot: real traffic
//! arrives on the wall clock. [`Clock`] abstracts over the difference so
//! the *same* serving loop runs in both worlds:
//!
//! - [`SimClock`] never waits. Under it a served fleet is a pure
//!   function of its configuration and seed — bit-identical to the
//!   batch path — which is what deterministic tests and fuzzing run on.
//! - [`WallClock`] sleeps until each simulated instant's wall-clock
//!   image (`origin + due / speedup`). Simulation state is untouched by
//!   the choice: the clock only decides *when* a wake is served, never
//!   *what* it does.
//!
//! The determinism contract follows directly: everything derived from
//! simulation state (grids, telemetry, delivered records) is identical
//! under either clock; only wall-clock measurements (latency
//! histograms, throughput) differ.

use std::time::{Duration, Instant};

use crate::time::SimTime;

/// Maps simulated due instants onto real time.
pub trait Clock {
    /// Blocks until the simulated instant `due` may be served. Serving
    /// loops call this with instants that are non-decreasing up to one
    /// epoch window of reordering (per-home chains inside a window
    /// replay from the window start), so an instant may arrive after
    /// its wall image has passed; implementations must not sleep for
    /// past instants.
    fn wait_until(&mut self, due: SimTime);
}

/// The deterministic clock: never waits, virtual time jumps instantly.
#[derive(Debug, Clone, Copy, Default)]
pub struct SimClock;

impl Clock for SimClock {
    fn wait_until(&mut self, _due: SimTime) {}
}

/// Real-time pacing: simulated instant `t` is served no earlier than
/// `origin + t / speedup` on the wall clock. Clones share the origin,
/// so every shard of a fleet paces against the same epoch.
#[derive(Debug, Clone, Copy)]
pub struct WallClock {
    origin: Instant,
    speedup: f64,
}

impl WallClock {
    /// A real-time clock (1 simulated ms per wall ms) starting now.
    #[must_use]
    pub fn new() -> WallClock {
        WallClock::with_speedup(1.0)
    }

    /// A clock running `speedup` times faster than real time.
    ///
    /// # Panics
    ///
    /// Panics unless `speedup` is finite and positive — a zero or
    /// negative rate would map every instant to the end of time.
    #[must_use]
    pub fn with_speedup(speedup: f64) -> WallClock {
        assert!(
            speedup.is_finite() && speedup > 0.0,
            "speedup must be finite and positive, got {speedup}"
        );
        WallClock { origin: Instant::now(), speedup }
    }

    /// Wall-clock duration since this clock's origin.
    #[must_use]
    pub fn elapsed(&self) -> Duration {
        self.origin.elapsed()
    }

    /// The wall-clock offset at which `due` becomes servable.
    fn target(&self, due: SimTime) -> Duration {
        #[allow(clippy::cast_precision_loss)]
        Duration::from_secs_f64(due.as_millis() as f64 / 1000.0 / self.speedup)
    }
}

impl Default for WallClock {
    fn default() -> Self {
        WallClock::new()
    }
}

impl Clock for WallClock {
    fn wait_until(&mut self, due: SimTime) {
        let target = self.target(due);
        let elapsed = self.origin.elapsed();
        if let Some(remaining) = target.checked_sub(elapsed) {
            if !remaining.is_zero() {
                std::thread::sleep(remaining);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_clock_never_waits() {
        let start = Instant::now();
        let mut clock = SimClock;
        clock.wait_until(SimTime::from_millis(u64::MAX / 2));
        assert!(start.elapsed() < Duration::from_millis(50));
    }

    #[test]
    fn wall_clock_paces_to_the_scaled_instant() {
        let mut clock = WallClock::with_speedup(1000.0);
        // 2 simulated seconds at 1000x = 2 wall ms.
        clock.wait_until(SimTime::from_millis(2_000));
        assert!(clock.elapsed() >= Duration::from_millis(2));
    }

    #[test]
    fn wall_clock_does_not_sleep_for_past_instants() {
        let mut clock = WallClock::with_speedup(1_000_000.0);
        clock.wait_until(SimTime::from_millis(1));
        let before = clock.elapsed();
        clock.wait_until(SimTime::from_millis(1));
        assert!(clock.elapsed() - before < Duration::from_millis(50));
    }

    #[test]
    fn clones_share_the_origin() {
        let clock = WallClock::with_speedup(50.0);
        let copy = clock;
        assert_eq!(clock.origin, copy.origin);
    }

    #[test]
    #[should_panic(expected = "speedup must be finite and positive")]
    fn zero_speedup_is_rejected() {
        let _ = WallClock::with_speedup(0.0);
    }
}
