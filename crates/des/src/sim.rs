//! The simulation driver: a clock plus an event queue.
//!
//! [`Simulator`] is intentionally *poll based*: the owner schedules typed
//! events and repeatedly calls [`Simulator::step`], handling each event and
//! scheduling follow-ups. This avoids callback-style borrow tangles and
//! keeps the control flow of an experiment readable top to bottom.

use crate::event::{EventQueue, HeapEventQueue};
use crate::time::{SimDuration, SimTime};

/// The queue implementation behind a [`Simulator`]. Both dispatch in the
/// same order; the wheel is the default, the heap is kept selectable for
/// baseline benchmarking and cross-checks.
#[derive(Debug)]
enum Queue<E> {
    Wheel(EventQueue<E>),
    Heap(HeapEventQueue<E>),
}

impl<E> Queue<E> {
    fn schedule_at(&mut self, due: SimTime, event: E) {
        match self {
            Queue::Wheel(q) => q.schedule_at(due, event),
            Queue::Heap(q) => q.schedule_at(due, event),
        }
    }

    fn schedule_after(&mut self, now: SimTime, delay: SimDuration, event: E) {
        match self {
            Queue::Wheel(q) => q.schedule_after(now, delay, event),
            Queue::Heap(q) => q.schedule_after(now, delay, event),
        }
    }

    fn pop(&mut self) -> Option<(SimTime, E)> {
        match self {
            Queue::Wheel(q) => q.pop(),
            Queue::Heap(q) => q.pop(),
        }
    }

    fn peek_time(&self) -> Option<SimTime> {
        match self {
            Queue::Wheel(q) => q.peek_time(),
            Queue::Heap(q) => q.peek_time(),
        }
    }

    fn len(&self) -> usize {
        match self {
            Queue::Wheel(q) => q.len(),
            Queue::Heap(q) => q.len(),
        }
    }

    fn clear(&mut self) {
        match self {
            Queue::Wheel(q) => q.clear(),
            Queue::Heap(q) => q.clear(),
        }
    }

    fn pending_in_order(&self) -> Vec<(SimTime, u64, &E)> {
        match self {
            Queue::Wheel(q) => q.pending_in_order(),
            Queue::Heap(q) => q.pending_in_order(),
        }
    }

    fn drain_until(&mut self, until: SimTime, out: &mut Vec<(SimTime, E)>) -> usize {
        match self {
            Queue::Wheel(q) => q.drain_until(until, out),
            Queue::Heap(q) => q.drain_until(until, out),
        }
    }
}

/// A discrete-event simulator over a user-chosen event type `E`.
///
/// The clock only moves when an event is popped, and never moves backwards.
///
/// # Examples
///
/// ```
/// use coreda_des::sim::Simulator;
/// use coreda_des::time::{SimDuration, SimTime};
///
/// #[derive(Debug, PartialEq)]
/// enum Ev { Ping, Pong }
///
/// let mut sim = Simulator::new();
/// sim.schedule_after(SimDuration::from_secs(1), Ev::Ping);
/// while let Some(ev) = sim.step() {
///     if ev == Ev::Ping && sim.now() < SimTime::from_secs(3) {
///         sim.schedule_after(SimDuration::from_secs(1), Ev::Pong);
///     }
/// }
/// assert_eq!(sim.now(), SimTime::from_secs(2));
/// ```
#[derive(Debug)]
pub struct Simulator<E> {
    queue: Queue<E>,
    now: SimTime,
    processed: u64,
    scheduled: u64,
    max_pending: usize,
}

impl<E> Simulator<E> {
    /// Creates a simulator with the clock at [`SimTime::ZERO`], backed by
    /// the timing-wheel [`EventQueue`].
    #[must_use]
    pub fn new() -> Self {
        Simulator {
            queue: Queue::Wheel(EventQueue::new()),
            now: SimTime::ZERO,
            processed: 0,
            scheduled: 0,
            max_pending: 0,
        }
    }

    /// Creates a simulator backed by the reference [`HeapEventQueue`].
    ///
    /// Dispatch order is identical to [`Simulator::new`]; this exists so
    /// benchmarks can measure the seed `BinaryHeap` baseline and tests can
    /// cross-check the two queue implementations.
    #[must_use]
    pub fn with_heap_queue() -> Self {
        Simulator {
            queue: Queue::Heap(HeapEventQueue::new()),
            now: SimTime::ZERO,
            processed: 0,
            scheduled: 0,
            max_pending: 0,
        }
    }

    /// The current simulation instant.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total number of events processed so far.
    #[must_use]
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Number of events still pending.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Total number of events ever scheduled.
    #[must_use]
    pub fn scheduled(&self) -> u64 {
        self.scheduled
    }

    /// High-water mark of the pending-event count: the deepest the
    /// queue has ever been. A dispatch-span gauge for telemetry — note
    /// it depends on how homes are sharded onto simulators, so it is
    /// *not* a jobs-invariant quantity.
    #[must_use]
    pub fn max_pending(&self) -> usize {
        self.max_pending
    }

    /// Schedules `event` at the absolute instant `due`.
    ///
    /// # Panics
    ///
    /// Panics if `due` is in the past (before [`Simulator::now`]); scheduling
    /// into the past would make the clock non-monotonic.
    pub fn schedule_at(&mut self, due: SimTime, event: E) {
        assert!(
            due >= self.now,
            "cannot schedule into the past: due {due} < now {now}",
            now = self.now
        );
        self.queue.schedule_at(due, event);
        self.note_scheduled();
    }

    /// Schedules `event` to fire `delay` after the current instant.
    pub fn schedule_after(&mut self, delay: SimDuration, event: E) {
        self.queue.schedule_after(self.now, delay, event);
        self.note_scheduled();
    }

    fn note_scheduled(&mut self) {
        self.scheduled += 1;
        self.max_pending = self.max_pending.max(self.queue.len());
    }

    /// The due instant of the next pending event, without popping it.
    /// Callers that process many independent actors on one queue use this
    /// to collect every event sharing an instant into one batch and sweep
    /// the actors in memory order instead of queue order.
    #[must_use]
    pub fn next_due(&self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// Advances the clock to the next event and returns it, or `None` when
    /// the queue is empty (the clock then stays where it is).
    pub fn step(&mut self) -> Option<E> {
        let (due, event) = self.queue.pop()?;
        debug_assert!(due >= self.now);
        self.now = due;
        self.processed += 1;
        Some(event)
    }

    /// Like [`Simulator::step`], but refuses to move the clock past
    /// `deadline`: an event due after it is left in the queue and the clock
    /// is advanced exactly to `deadline`.
    pub fn step_until(&mut self, deadline: SimTime) -> Option<E> {
        match self.queue.peek_time() {
            Some(due) if due <= deadline => self.step(),
            _ => {
                if deadline > self.now {
                    self.now = deadline;
                }
                None
            }
        }
    }

    /// Removes every event due at or before `until`, appending them to
    /// `out` in dispatch order (`(due, seq)` FIFO), advances the clock to
    /// `until`, and counts each drained event as processed. Returns the
    /// number drained.
    ///
    /// This is the epoch-tiled serve path: the caller re-groups the
    /// drained events by actor and replays each actor's chain in due
    /// order, which is equivalent to popping one event at a time as long
    /// as distinct actors never interact within the window.
    ///
    /// # Panics
    ///
    /// Panics if `until` is before [`Simulator::now`].
    pub fn drain_until(&mut self, until: SimTime, out: &mut Vec<(SimTime, E)>) -> usize {
        assert!(
            until >= self.now,
            "cannot drain into the past: until {until} < now {now}",
            now = self.now
        );
        let n = self.queue.drain_until(until, out);
        self.now = until;
        self.processed += n as u64;
        n
    }

    /// Counts `n` extra events as processed (and scheduled). The epoch
    /// serve path consumes some follow-up events inline, without routing
    /// them through the queue; this keeps [`Simulator::processed`] and
    /// [`Simulator::scheduled`] equal to what a strict-order sweep, which
    /// schedules and pops every one of those events, would report.
    pub fn note_processed(&mut self, n: u64) {
        self.scheduled += n;
        self.processed += n;
    }

    /// Advances the clock to `instant` without processing events.
    ///
    /// # Panics
    ///
    /// Panics if an event is due before `instant` (it would be skipped), or
    /// if `instant` is in the past.
    pub fn advance_to(&mut self, instant: SimTime) {
        assert!(instant >= self.now, "cannot rewind the clock");
        if let Some(due) = self.queue.peek_time() {
            assert!(due >= instant, "advancing past a pending event due at {due}");
        }
        self.now = instant;
    }

    /// Drops every pending event.
    pub fn clear_pending(&mut self) {
        self.queue.clear();
    }

    /// Removes and returns every pending event in dispatch order
    /// (`(time, seq)` FIFO), without advancing the clock or counting the
    /// events as processed. This is the checkpoint path: the drained list
    /// can be re-scheduled onto this or a fresh simulator (in the returned
    /// order) to reproduce the exact dispatch sequence.
    pub fn drain_pending(&mut self) -> Vec<(SimTime, E)> {
        let mut out = Vec::with_capacity(self.queue.len());
        while let Some(entry) = self.queue.pop() {
            out.push(entry);
        }
        out
    }

    /// Borrows every pending event in dispatch order (`(time, seq)`
    /// FIFO) without removing anything: the queue, clock and counters
    /// are untouched. This is [`Simulator::drain_pending`] for readers —
    /// frequent checkpoint captures walk the pending set through this
    /// instead of draining and re-inserting the whole queue.
    pub fn iter_pending(&self) -> impl Iterator<Item = (SimTime, &E)> {
        self.queue.pending_in_order().into_iter().map(|(due, _, event)| (due, event))
    }
}

impl<E> Default for Simulator<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_follows_events() {
        let mut sim = Simulator::new();
        sim.schedule_at(SimTime::from_secs(2), "b");
        sim.schedule_at(SimTime::from_secs(1), "a");
        assert_eq!(sim.step(), Some("a"));
        assert_eq!(sim.now(), SimTime::from_secs(1));
        assert_eq!(sim.step(), Some("b"));
        assert_eq!(sim.now(), SimTime::from_secs(2));
        assert_eq!(sim.step(), None);
        assert_eq!(sim.now(), SimTime::from_secs(2));
    }

    #[test]
    fn schedule_after_is_relative_to_now() {
        let mut sim = Simulator::new();
        sim.schedule_after(SimDuration::from_secs(5), 1);
        sim.step();
        sim.schedule_after(SimDuration::from_secs(5), 2);
        sim.step();
        assert_eq!(sim.now(), SimTime::from_secs(10));
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_past_panics() {
        let mut sim = Simulator::new();
        sim.schedule_at(SimTime::from_secs(1), ());
        sim.step();
        sim.schedule_at(SimTime::ZERO, ());
    }

    #[test]
    fn step_until_respects_deadline() {
        let mut sim = Simulator::new();
        sim.schedule_at(SimTime::from_secs(10), "late");
        assert_eq!(sim.step_until(SimTime::from_secs(5)), None);
        assert_eq!(sim.now(), SimTime::from_secs(5));
        assert_eq!(sim.pending(), 1);
        assert_eq!(sim.step_until(SimTime::from_secs(10)), Some("late"));
    }

    #[test]
    fn advance_to_moves_clock_when_idle() {
        let mut sim: Simulator<()> = Simulator::new();
        sim.advance_to(SimTime::from_secs(30));
        assert_eq!(sim.now(), SimTime::from_secs(30));
    }

    #[test]
    #[should_panic(expected = "advancing past a pending event")]
    fn advance_to_cannot_skip_events() {
        let mut sim = Simulator::new();
        sim.schedule_at(SimTime::from_secs(1), ());
        sim.advance_to(SimTime::from_secs(2));
    }

    #[test]
    fn processed_counts_events() {
        let mut sim = Simulator::new();
        for i in 0..5 {
            sim.schedule_at(SimTime::from_secs(i), i);
        }
        while sim.step().is_some() {}
        assert_eq!(sim.processed(), 5);
    }

    #[test]
    fn heap_backed_simulator_matches_wheel() {
        let mut wheel = Simulator::new();
        let mut heap = Simulator::with_heap_queue();
        for sim in [&mut wheel, &mut heap] {
            sim.schedule_at(SimTime::from_secs(2), "b");
            sim.schedule_at(SimTime::from_secs(1), "a");
            sim.schedule_at(SimTime::from_secs(1), "a2");
        }
        loop {
            let (w, h) = (wheel.step(), heap.step());
            assert_eq!(w, h);
            assert_eq!(wheel.now(), heap.now());
            if w.is_none() {
                break;
            }
        }
    }

    #[test]
    fn next_due_peeks_without_popping() {
        for mut sim in [Simulator::new(), Simulator::with_heap_queue()] {
            assert_eq!(sim.next_due(), None);
            sim.schedule_at(SimTime::from_secs(2), "b");
            sim.schedule_at(SimTime::from_secs(1), "a");
            assert_eq!(sim.next_due(), Some(SimTime::from_secs(1)));
            assert_eq!(sim.pending(), 2, "peeking must not pop");
            assert_eq!(sim.step(), Some("a"));
            assert_eq!(sim.next_due(), Some(SimTime::from_secs(2)));
        }
    }

    #[test]
    fn clear_pending_empties_queue() {
        let mut sim = Simulator::new();
        sim.schedule_at(SimTime::from_secs(1), ());
        sim.clear_pending();
        assert_eq!(sim.step(), None);
    }

    #[test]
    fn drain_pending_preserves_dispatch_order_and_clock() {
        for mut sim in [Simulator::new(), Simulator::with_heap_queue()] {
            sim.schedule_at(SimTime::from_secs(1), "first");
            sim.schedule_at(SimTime::from_secs(3), "late");
            sim.schedule_at(SimTime::from_secs(1), "second");
            assert_eq!(sim.step(), Some("first"));
            let drained = sim.drain_pending();
            assert_eq!(
                drained,
                vec![
                    (SimTime::from_secs(1), "second"),
                    (SimTime::from_secs(3), "late"),
                ]
            );
            assert_eq!(sim.now(), SimTime::from_secs(1), "drain must not move the clock");
            assert_eq!(sim.processed(), 1, "drained events are not processed");
            assert_eq!(sim.pending(), 0);
            // Rehydrating in drained order reproduces the dispatch sequence.
            for (due, ev) in drained {
                sim.schedule_at(due, ev);
            }
            assert_eq!(sim.step(), Some("second"));
            assert_eq!(sim.step(), Some("late"));
        }
    }

    #[test]
    fn iter_pending_matches_drain_without_disturbing_the_queue() {
        for make in [Simulator::new as fn() -> Simulator<u64>, Simulator::with_heap_queue] {
            let mut sim = make();
            // Dues spread across wheel levels, the overflow heap, and
            // ties at one instant (seq order must survive the borrow).
            let dues = [5u64, 5, 0, 300, 70_000, 20_000_000, (1 << 33) + 5, 5];
            for (i, &d) in dues.iter().enumerate() {
                sim.schedule_at(SimTime::from_millis(d), i as u64);
            }
            assert_eq!(sim.step(), Some(2)); // clock at 0
            sim.schedule_at(SimTime::from_millis(1), 99);
            let peeked: Vec<(SimTime, u64)> =
                sim.iter_pending().map(|(t, &e)| (t, e)).collect();
            assert_eq!(sim.pending(), peeked.len(), "iteration must not pop");
            assert_eq!(sim.processed(), 1);
            let drained = sim.drain_pending();
            assert_eq!(peeked, drained, "borrowed order must equal dispatch order");
        }
    }

    #[test]
    fn drain_until_advances_clock_and_counts_processed() {
        for mut sim in [Simulator::new(), Simulator::with_heap_queue()] {
            sim.schedule_at(SimTime::from_millis(10), "a");
            sim.schedule_at(SimTime::from_millis(10), "b");
            sim.schedule_at(SimTime::from_millis(20), "c");
            sim.schedule_at(SimTime::from_millis(500), "late");
            let mut out = Vec::new();
            assert_eq!(sim.drain_until(SimTime::from_millis(255), &mut out), 3);
            assert_eq!(
                out,
                vec![
                    (SimTime::from_millis(10), "a"),
                    (SimTime::from_millis(10), "b"),
                    (SimTime::from_millis(20), "c"),
                ]
            );
            assert_eq!(sim.now(), SimTime::from_millis(255), "clock lands on the window end");
            assert_eq!(sim.processed(), 3);
            assert_eq!(sim.pending(), 1);
            // Inline-consumed chain events keep the strict-order counters.
            sim.note_processed(2);
            assert_eq!(sim.processed(), 5);
            assert_eq!(sim.scheduled(), 6);
            // The clock is at the window end, so scheduling follow-ups
            // inside the next window is legal.
            sim.schedule_at(SimTime::from_millis(300), "follow");
            assert_eq!(sim.step(), Some("follow"));
            assert_eq!(sim.step(), Some("late"));
        }
    }

    #[test]
    fn max_pending_tracks_the_high_water_mark() {
        let mut sim = Simulator::new();
        assert_eq!(sim.max_pending(), 0);
        for i in 1..=4 {
            sim.schedule_at(SimTime::from_secs(i), i);
        }
        assert_eq!(sim.scheduled(), 4);
        assert_eq!(sim.max_pending(), 4);
        while sim.step().is_some() {}
        assert_eq!(sim.pending(), 0);
        sim.schedule_after(SimDuration::from_secs(1), 9);
        assert_eq!(sim.max_pending(), 4, "high-water mark survives the drain");
        assert_eq!(sim.scheduled(), 5);
    }
}
