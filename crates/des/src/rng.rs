//! Deterministic randomness for simulations.
//!
//! Every stochastic component in CoReDA draws from a [`SimRng`] seeded from
//! the experiment configuration, so a run is a pure function of its seed.
//! Independent sub-streams (one per sensor node, per patient, …) are derived
//! with [`SimRng::substream`] so adding a component never perturbs the draws
//! of another.
//!
//! The generator is a self-contained xoshiro256++ with splitmix64 seed
//! expansion — no external crates, identical output on every platform, and
//! cheap enough to fork one stream per fleet job. Stream derivation is
//! counter-based (a hash of `(domain, index)` XORed into the base seed), so
//! a sub-stream's draws depend only on its label, never on how many other
//! streams were derived before it — the property the parallel fleet engine
//! relies on for worker-count-invariant results.

/// A seedable deterministic random source.
///
/// # Examples
///
/// ```
/// use coreda_des::rng::SimRng;
///
/// let mut a = SimRng::seed_from(42);
/// let mut b = SimRng::seed_from(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    state: [u64; 4],
    base_seed: u64,
}

/// splitmix64 step — used only to expand a 64-bit seed into xoshiro state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    #[must_use]
    pub fn seed_from(seed: u64) -> Self {
        let mut s = seed;
        SimRng {
            state: [
                splitmix64(&mut s),
                splitmix64(&mut s),
                splitmix64(&mut s),
                splitmix64(&mut s),
            ],
            base_seed: seed,
        }
    }

    /// Derives an independent sub-stream for the component labelled
    /// `(domain, index)`.
    ///
    /// Two distinct labels produce streams that do not collide, and the
    /// derivation does not consume randomness from `self`.
    #[must_use]
    pub fn substream(&self, domain: &str, index: u64) -> SimRng {
        // FNV-1a over (domain, index); cheap, stable across runs and platforms.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in domain.bytes().chain(index.to_le_bytes()) {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        SimRng::seed_from(h ^ self.base_seed)
    }

    /// Exposes the generator's full state `(xoshiro words, base seed)` for
    /// checkpointing. Restoring via [`SimRng::from_state_parts`] resumes
    /// the stream at exactly this position, and substream derivation (which
    /// depends only on `base_seed`) is preserved.
    #[must_use]
    pub fn state_parts(&self) -> ([u64; 4], u64) {
        (self.state, self.base_seed)
    }

    /// Rebuilds a generator from [`SimRng::state_parts`].
    #[must_use]
    pub fn from_state_parts(state: [u64; 4], base_seed: u64) -> Self {
        SimRng { state, base_seed }
    }

    /// The next uniformly distributed `u64` (xoshiro256++ step).
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.state;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s = [s0, s1, s2, s3];
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        self.state = s;
        result
    }

    /// A uniform draw from `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        // Top 53 bits → the full dyadic grid representable in an f64.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform draw from `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        lo + self.uniform() * (hi - lo)
    }

    /// A uniform integer draw from `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn uniform_usize(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        let span = (hi - lo) as u64;
        // Widening multiply maps the u64 draw onto [0, span) without the
        // modulo's low-bit bias.
        let scaled = ((u128::from(self.next_u64()) * u128::from(span)) >> 64) as u64;
        lo + scaled as usize
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn chance(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        self.uniform() < p
    }

    /// A standard-normal draw via Box–Muller.
    pub fn gaussian(&mut self) -> f64 {
        loop {
            let u1 = self.uniform();
            if u1 > f64::EPSILON {
                let u2 = self.uniform();
                return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
            }
        }
    }

    /// A normal draw with the given `mean` and standard deviation `sd`.
    ///
    /// # Panics
    ///
    /// Panics if `sd` is negative.
    pub fn normal(&mut self, mean: f64, sd: f64) -> f64 {
        assert!(sd >= 0.0, "standard deviation must be non-negative");
        mean + sd * self.gaussian()
    }

    /// An exponential draw with the given `mean`.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not positive.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0, "mean must be positive");
        let u = f64::EPSILON + self.uniform() * (1.0 - f64::EPSILON);
        -mean * u.ln()
    }

    /// A uniformly random element of `items`.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "cannot choose from an empty slice");
        &items[self.uniform_usize(0, items.len())]
    }

    /// Shuffles `items` in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.uniform_usize(0, i + 1);
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from(7);
        let mut b = SimRng::seed_from(7);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::seed_from(1);
        let mut b = SimRng::seed_from(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2, "streams with different seeds should diverge");
    }

    #[test]
    fn substreams_are_stable_and_distinct() {
        let root = SimRng::seed_from(99);
        let mut s1 = root.substream("node", 1);
        let mut s1_again = root.substream("node", 1);
        let mut s2 = root.substream("node", 2);
        assert_eq!(s1.next_u64(), s1_again.next_u64());
        let mut s1b = root.substream("node", 1);
        assert_ne!(s1b.next_u64(), s2.next_u64());
    }

    #[test]
    fn substream_derivation_does_not_consume() {
        let mut root = SimRng::seed_from(5);
        let _ = root.substream("x", 0);
        let mut fresh = SimRng::seed_from(5);
        assert_eq!(root.next_u64(), fresh.next_u64());
    }

    #[test]
    fn gaussian_moments_are_plausible() {
        let mut rng = SimRng::seed_from(123);
        let n = 20_000;
        let draws: Vec<f64> = (0..n).map(|_| rng.gaussian()).collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        let var = draws.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean} too far from 0");
        assert!((var - 1.0).abs() < 0.05, "variance {var} too far from 1");
    }

    #[test]
    fn exponential_mean_is_plausible() {
        let mut rng = SimRng::seed_from(321);
        let n = 20_000;
        let mean = (0..n).map(|_| rng.exponential(3.0)).sum::<f64>() / f64::from(n);
        assert!((mean - 3.0).abs() < 0.15, "mean {mean} too far from 3");
    }

    #[test]
    fn chance_respects_probability() {
        let mut rng = SimRng::seed_from(55);
        let hits = (0..10_000).filter(|_| rng.chance(0.25)).count();
        assert!((2200..2800).contains(&hits), "got {hits} hits for p=0.25");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SimRng::seed_from(8);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn uniform_usize_covers_range() {
        let mut rng = SimRng::seed_from(77);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.uniform_usize(0, 10)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets should be hit: {seen:?}");
    }

    #[test]
    fn state_parts_round_trip_resumes_stream() {
        let mut rng = SimRng::seed_from(4242);
        for _ in 0..17 {
            rng.next_u64();
        }
        let (state, base) = rng.state_parts();
        let mut resumed = SimRng::from_state_parts(state, base);
        for _ in 0..32 {
            assert_eq!(rng.next_u64(), resumed.next_u64());
        }
        // Substream derivation depends only on base_seed and must survive too.
        let mut a = rng.substream("node", 3);
        let mut b = resumed.substream("node", 3);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    #[should_panic(expected = "empty slice")]
    fn choose_empty_panics() {
        let mut rng = SimRng::seed_from(1);
        let empty: [u8; 0] = [];
        let _ = rng.choose(&empty);
    }

    #[test]
    #[should_panic(expected = "probability must be in [0, 1]")]
    fn chance_rejects_out_of_range() {
        let mut rng = SimRng::seed_from(1);
        let _ = rng.chance(1.5);
    }
}
