//! Online statistics for simulation measurements.
//!
//! Experiments accumulate thousands of latency/precision/energy samples;
//! these helpers summarise them in O(1) memory (Welford's algorithm for
//! moments, a fixed-bin histogram for distributions).

use serde::{Deserialize, Serialize};

/// Streaming mean/variance/min/max (Welford).
///
/// # Examples
///
/// ```
/// use coreda_des::stats::RunningStats;
///
/// let mut s = RunningStats::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.push(x);
/// }
/// assert_eq!(s.count(), 8);
/// assert!((s.mean() - 5.0).abs() < 1e-12);
/// assert!((s.std_dev() - 2.0).abs() < 1e-12); // population σ
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct RunningStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// An empty accumulator.
    ///
    /// The empty state holds `min = max = 0.0` (not ±∞) so that a
    /// serialized accumulator — this type derives `Serialize` and ends
    /// up inside `BENCH_*.json` reports — never contains a non-finite
    /// number, which plain JSON cannot represent. Use [`min`](Self::min)
    /// / [`max`](Self::max) for emptiness-aware access.
    #[must_use]
    pub fn new() -> Self {
        RunningStats { count: 0, mean: 0.0, m2: 0.0, min: 0.0, max: 0.0 }
    }

    /// Adds one observation.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not finite.
    pub fn push(&mut self, x: f64) {
        assert!(x.is_finite(), "observations must be finite, got {x}");
        self.count += 1;
        if self.count == 1 {
            self.min = x;
            self.max = x;
        } else {
            self.min = self.min.min(x);
            self.max = self.max.max(x);
        }
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations.
    #[must_use]
    pub const fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0.0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0.0 with fewer than two observations).
    #[must_use]
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`None` when empty).
    #[must_use]
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation (`None` when empty).
    #[must_use]
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Merges another accumulator (parallel Welford / Chan et al.).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count = self.count.saturating_add(other.count);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A fixed-range, fixed-bin histogram with saturating overflow bins.
///
/// # Examples
///
/// ```
/// use coreda_des::stats::Histogram;
///
/// let mut h = Histogram::new(0.0, 10.0, 5);
/// h.record(1.0);
/// h.record(9.5);
/// h.record(-3.0); // underflow
/// assert_eq!(h.total(), 3);
/// assert_eq!(h.underflow(), 1);
/// assert_eq!(h.bin_count(0), 1);
/// assert_eq!(h.bin_count(4), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram over `[lo, hi)` with `bins` equal bins.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or `bins == 0`.
    #[must_use]
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(lo < hi, "empty histogram range [{lo}, {hi})");
        assert!(bins > 0, "need at least one bin");
        Histogram { lo, hi, bins: vec![0; bins], underflow: 0, overflow: 0 }
    }

    /// Records one observation.
    pub fn record(&mut self, x: f64) {
        if x < self.lo {
            self.underflow = self.underflow.saturating_add(1);
        } else if x >= self.hi {
            self.overflow = self.overflow.saturating_add(1);
        } else {
            let w = (self.hi - self.lo) / self.bins.len() as f64;
            let idx = ((x - self.lo) / w) as usize;
            let idx = idx.min(self.bins.len() - 1);
            self.bins[idx] = self.bins[idx].saturating_add(1);
        }
    }

    /// Rebuilds a histogram from the parts exposed by [`Histogram::lo`],
    /// [`Histogram::hi`], the per-bin counts and the under/overflow
    /// counters — the checkpoint restore path.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Histogram::new`].
    #[must_use]
    pub fn from_parts(lo: f64, hi: f64, bins: Vec<u64>, underflow: u64, overflow: u64) -> Self {
        assert!(lo < hi, "empty histogram range [{lo}, {hi})");
        assert!(!bins.is_empty(), "need at least one bin");
        Histogram { lo, hi, bins, underflow, overflow }
    }

    /// Lower bound of the histogram range (inclusive).
    #[must_use]
    pub const fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper bound of the histogram range (exclusive).
    #[must_use]
    pub const fn hi(&self) -> f64 {
        self.hi
    }

    /// Count in bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn bin_count(&self, i: usize) -> u64 {
        self.bins[i]
    }

    /// Number of bins.
    #[must_use]
    pub fn bins(&self) -> usize {
        self.bins.len()
    }

    /// Observations below the range.
    #[must_use]
    pub const fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above the range's end.
    #[must_use]
    pub const fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total observations including under/overflow. Saturates at
    /// `u64::MAX` like [`Histogram::merge`].
    #[must_use]
    pub fn total(&self) -> u64 {
        self.bins
            .iter()
            .fold(0u64, |t, &b| t.saturating_add(b))
            .saturating_add(self.underflow)
            .saturating_add(self.overflow)
    }

    /// Merges another histogram's counts into this one.
    ///
    /// # Panics
    ///
    /// Panics if the ranges or bin counts differ — merging histograms
    /// over different ranges would silently misbin.
    pub fn merge(&mut self, other: &Histogram) {
        assert!(
            self.lo == other.lo && self.hi == other.hi && self.bins.len() == other.bins.len(),
            "histogram shapes differ: [{}, {})x{} vs [{}, {})x{}",
            self.lo,
            self.hi,
            self.bins.len(),
            other.lo,
            other.hi,
            other.bins.len(),
        );
        // Saturating: a fleet-wide merge multiplies bin counts by the
        // number of homes, and a wrapped count would silently misreport.
        for (a, b) in self.bins.iter_mut().zip(&other.bins) {
            *a = a.saturating_add(*b);
        }
        self.underflow = self.underflow.saturating_add(other.underflow);
        self.overflow = self.overflow.saturating_add(other.overflow);
    }

    /// Approximate quantile `q ∈ [0, 1]` from bin midpoints (in-range
    /// observations only). `None` if nothing is in range.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        let in_range: u64 = self.bins.iter().sum();
        if in_range == 0 {
            return None;
        }
        let target = (q * in_range as f64).ceil().max(1.0) as u64;
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        let mut acc = 0;
        for (i, &c) in self.bins.iter().enumerate() {
            acc += c;
            if acc >= target {
                return Some(self.lo + (i as f64 + 0.5) * w);
            }
        }
        Some(self.hi - w / 2.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_naive() {
        let xs = [1.5, -2.0, 3.25, 0.0, 10.0, -7.5];
        let mut s = RunningStats::new();
        for &x in &xs {
            s.push(x);
        }
        let mean: f64 = xs.iter().sum::<f64>() / xs.len() as f64;
        let var: f64 = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        assert!((s.mean() - mean).abs() < 1e-12);
        assert!((s.variance() - var).abs() < 1e-12);
        assert_eq!(s.min(), Some(-7.5));
        assert_eq!(s.max(), Some(10.0));
    }

    #[test]
    fn empty_stats_are_safe() {
        let s = RunningStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn empty_stats_serialize_without_non_finite_values() {
        // Regression: the empty state used to hold min = +∞ / max = −∞,
        // which leaked into every serialized report that included an
        // idle accumulator (JSON cannot represent infinities).
        let s = RunningStats::new();
        let debug = format!("{s:?}");
        assert!(!debug.contains("inf"), "empty stats leak non-finite values: {debug}");
        assert_eq!(s, RunningStats::default(), "Default and new() must agree");
    }

    #[test]
    fn first_push_sets_min_and_max() {
        let mut s = RunningStats::new();
        s.push(-3.5);
        assert_eq!(s.min(), Some(-3.5));
        assert_eq!(s.max(), Some(-3.5));
        s.push(2.0);
        assert_eq!(s.min(), Some(-3.5));
        assert_eq!(s.max(), Some(2.0));
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut all = RunningStats::new();
        for &x in &xs {
            all.push(x);
        }
        let mut left = RunningStats::new();
        let mut right = RunningStats::new();
        for &x in &xs[..37] {
            left.push(x);
        }
        for &x in &xs[37..] {
            right.push(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), all.count());
        assert!((left.mean() - all.mean()).abs() < 1e-9);
        assert!((left.variance() - all.variance()).abs() < 1e-9);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = RunningStats::new();
        a.push(5.0);
        let before = a;
        a.merge(&RunningStats::new());
        assert_eq!(a, before);
        let mut empty = RunningStats::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn histogram_bins_correctly() {
        let mut h = Histogram::new(0.0, 100.0, 10);
        for x in [5.0, 15.0, 15.5, 99.9] {
            h.record(x);
        }
        assert_eq!(h.bin_count(0), 1);
        assert_eq!(h.bin_count(1), 2);
        assert_eq!(h.bin_count(9), 1);
        assert_eq!(h.total(), 4);
    }

    #[test]
    fn histogram_overflow_and_underflow() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.record(-0.1);
        h.record(1.0); // hi is exclusive
        h.record(2.0);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.total(), 3);
    }

    #[test]
    fn quantiles_are_monotone_and_bounded() {
        let mut h = Histogram::new(0.0, 100.0, 20);
        for i in 0..1000 {
            h.record(f64::from(i % 100));
        }
        let q10 = h.quantile(0.1).unwrap();
        let q50 = h.quantile(0.5).unwrap();
        let q90 = h.quantile(0.9).unwrap();
        assert!(q10 <= q50 && q50 <= q90);
        assert!((q50 - 50.0).abs() < 5.0, "median ≈ 50, got {q50}");
        assert!(h.quantile(0.0).is_some());
        assert!(h.quantile(1.0).is_some());
    }

    #[test]
    fn histogram_merge_is_element_wise() {
        let mut a = Histogram::new(0.0, 10.0, 5);
        let mut b = Histogram::new(0.0, 10.0, 5);
        a.record(1.0);
        b.record(1.0);
        b.record(9.0);
        b.record(-1.0);
        b.record(11.0);
        a.merge(&b);
        assert_eq!(a.bin_count(0), 2);
        assert_eq!(a.bin_count(4), 1);
        assert_eq!(a.underflow(), 1);
        assert_eq!(a.overflow(), 1);
        assert_eq!(a.total(), 5);
    }

    #[test]
    fn histogram_from_parts_round_trips() {
        let mut h = Histogram::new(0.0, 50.0, 5);
        for x in [-1.0, 3.0, 3.5, 49.0, 99.0] {
            h.record(x);
        }
        let bins: Vec<u64> = (0..h.bins()).map(|i| h.bin_count(i)).collect();
        let rebuilt = Histogram::from_parts(h.lo(), h.hi(), bins, h.underflow(), h.overflow());
        assert_eq!(rebuilt, h);
    }

    #[test]
    #[should_panic(expected = "histogram shapes differ")]
    fn histogram_merge_rejects_mismatched_shapes() {
        let mut a = Histogram::new(0.0, 10.0, 5);
        a.merge(&Histogram::new(0.0, 10.0, 4));
    }

    #[test]
    fn quantile_of_empty_is_none() {
        let h = Histogram::new(0.0, 1.0, 2);
        assert_eq!(h.quantile(0.5), None);
    }

    #[test]
    #[should_panic(expected = "must be finite")]
    fn non_finite_rejected() {
        RunningStats::new().push(f64::NAN);
    }
}
