//! Deterministic time-ordered event queues.
//!
//! Events scheduled for the same instant are delivered in the order they
//! were scheduled (FIFO), which keeps simulations reproducible regardless
//! of queue internals.
//!
//! Two implementations share the [`EventQueueBackend`] contract:
//!
//! - [`EventQueue`] — a hierarchical timing wheel (bucketed calendar
//!   queue). Four levels of 256 slots cover dues up to 2³² ms ahead of
//!   the queue's cursor at 1 ms / 256 ms / ~65 s / ~4.7 h granularity;
//!   anything farther sits in an overflow heap until the cursor reaches
//!   its 2³²-ms block. Push and pop are O(1) on the dense schedules a
//!   metro-scale serving run produces (thousands of homes ticking every
//!   100 ms), where a binary heap pays O(log n) cache-missing compares
//!   per operation.
//! - [`HeapEventQueue`] — the original `BinaryHeap` implementation, kept
//!   as the reference for order-equivalence tests and as the baseline
//!   the `scale_micro` bench measures the wheel against.
//!
//! Both order events by `(due, seq)` where `seq` is a global insertion
//! counter, so their dispatch orders are byte-identical (a property
//! test in `tests/proptests.rs` holds the wheel to that).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::{SimDuration, SimTime};

/// An entry in a queue: the payload plus its due time and a sequence
/// number used to break ties deterministically.
#[derive(Debug)]
struct Scheduled<E> {
    due: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.seq == other.seq
    }
}

impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse so the earliest (due, seq) pops first.
        (other.due, other.seq).cmp(&(self.due, self.seq))
    }
}

/// The contract both queue implementations satisfy: a min-priority queue
/// of events keyed by [`SimTime`] with FIFO tie-breaking at equal dues.
pub trait EventQueueBackend<E> {
    /// Schedules `event` to fire at the absolute instant `due`.
    fn schedule_at(&mut self, due: SimTime, event: E);

    /// Schedules `event` to fire `delay` after `now`.
    fn schedule_after(&mut self, now: SimTime, delay: SimDuration, event: E) {
        self.schedule_at(now + delay, event);
    }

    /// Removes and returns the earliest event, with its due time.
    fn pop(&mut self) -> Option<(SimTime, E)>;

    /// The due time of the earliest event, if any.
    fn peek_time(&self) -> Option<SimTime>;

    /// Number of pending events.
    fn len(&self) -> usize;

    /// Whether no events are pending.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Removes all pending events.
    fn clear(&mut self);

    /// Removes every event with `due <= until`, appending them to `out`
    /// in dispatch order (`(due, seq)` FIFO), and returns how many were
    /// drained. Behaviourally identical to popping while
    /// `peek_time() <= until`; backends may override it to move whole
    /// buckets at once instead of extracting events one by one.
    fn drain_until(&mut self, until: SimTime, out: &mut Vec<(SimTime, E)>) -> usize {
        let start = out.len();
        while self.peek_time().is_some_and(|due| due <= until) {
            out.push(self.pop().expect("peeked event exists"));
        }
        out.len() - start
    }
}

// ---------------------------------------------------------------------------
// Timing wheel
// ---------------------------------------------------------------------------

/// Bits per wheel level: 256 slots each.
const SLOT_BITS: u32 = 8;
/// Slots per level.
const SLOTS: usize = 1 << SLOT_BITS;
/// Wheel levels. Level `l` spans dues sharing the cursor's bits above
/// `8·(l+1)`; beyond level 3 (2³² ms ≈ 49.7 days) events overflow to a heap.
const LEVELS: usize = 4;
/// `u64` words in one level's occupancy bitmap.
const OCC_WORDS: usize = SLOTS / 64;

/// A min-priority queue of events keyed by [`SimTime`], with FIFO
/// tie-breaking among events due at the same instant — implemented as a
/// hierarchical timing wheel.
///
/// The wheel keeps a monotone *cursor* (the due of the last event popped
/// from its slots). An event lands at the lowest level whose granularity
/// still separates it from the cursor: level `l` holds dues whose bits
/// above `8·(l+1)` equal the cursor's, indexed by due bits
/// `[8·l, 8·(l+1))`. When level 0 runs dry the first occupied slot of the
/// lowest non-empty level is *cascaded* — its events are redistributed to
/// finer levels — after the cursor teleports to that slot's base, so
/// quiet stretches cost a 4×4-word bitmap scan instead of slot-by-slot
/// stepping. Events scheduled before the cursor (the old heap allowed
/// that) go to a small "overdue" heap that always pops first, preserving
/// the global `(due, seq)` order of [`HeapEventQueue`] exactly.
///
/// # Examples
///
/// ```
/// use coreda_des::event::EventQueue;
/// use coreda_des::time::SimTime;
///
/// let mut q = EventQueue::new();
/// q.schedule_at(SimTime::from_secs(2), "later");
/// q.schedule_at(SimTime::from_secs(1), "sooner");
/// assert_eq!(q.pop(), Some((SimTime::from_secs(1), "sooner")));
/// assert_eq!(q.pop(), Some((SimTime::from_secs(2), "later")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    /// `slots[l][s]` holds level `l`'s bucket `s`. Level-0 buckets hold a
    /// single exact due; higher buckets mix dues within their span.
    slots: Vec<Vec<Vec<Scheduled<E>>>>,
    /// One bit per slot, per level: non-empty buckets.
    occupancy: [[u64; OCC_WORDS]; LEVELS],
    /// Due of the last event popped from the wheel; every wheel/overflow
    /// entry is at or after it, every overdue entry strictly before.
    cursor: u64,
    /// Events scheduled with `due < cursor` (pops first, min (due, seq)).
    overdue: BinaryHeap<Scheduled<E>>,
    /// Events more than 2³² ms past the cursor's block.
    overflow: BinaryHeap<Scheduled<E>>,
    len: usize,
    next_seq: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        EventQueue {
            slots: (0..LEVELS).map(|_| (0..SLOTS).map(|_| Vec::new()).collect()).collect(),
            occupancy: [[0; OCC_WORDS]; LEVELS],
            cursor: 0,
            overdue: BinaryHeap::new(),
            overflow: BinaryHeap::new(),
            len: 0,
            next_seq: 0,
        }
    }

    /// Schedules `event` to fire at the absolute instant `due`.
    pub fn schedule_at(&mut self, due: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.len += 1;
        self.insert(Scheduled { due, seq, event });
    }

    /// Schedules `event` to fire `delay` after `now`.
    pub fn schedule_after(&mut self, now: SimTime, delay: SimDuration, event: E) {
        self.schedule_at(now + delay, event);
    }

    /// The lowest level whose window around the cursor contains `due`,
    /// or `None` when `due` is beyond the wheel's 2³²-ms horizon.
    fn level_for(&self, due: u64) -> Option<usize> {
        (0..LEVELS).find(|&l| {
            let shift = SLOT_BITS * (l as u32 + 1);
            due >> shift == self.cursor >> shift
        })
    }

    fn insert(&mut self, s: Scheduled<E>) {
        let due = s.due.as_millis();
        if due < self.cursor {
            self.overdue.push(s);
            return;
        }
        match self.level_for(due) {
            Some(level) => {
                let slot = ((due >> (SLOT_BITS * level as u32)) & (SLOTS as u64 - 1)) as usize;
                self.slots[level][slot].push(s);
                self.occupancy[level][slot >> 6] |= 1u64 << (slot & 63);
            }
            None => self.overflow.push(s),
        }
    }

    /// The lowest non-empty level and its first occupied slot. Lower
    /// levels always hold earlier dues than higher ones, and within a
    /// level the slot order is the due order, so this is the bucket that
    /// contains the wheel's minimum.
    fn first_occupied(&self) -> Option<(usize, usize)> {
        for (level, words) in self.occupancy.iter().enumerate() {
            for (w, &bits) in words.iter().enumerate() {
                if bits != 0 {
                    return Some((level, (w << 6) | bits.trailing_zeros() as usize));
                }
            }
        }
        None
    }

    fn clear_bit(&mut self, level: usize, slot: usize) {
        self.occupancy[level][slot >> 6] &= !(1u64 << (slot & 63));
    }

    /// Jumps the cursor to the overflow's first 2³²-ms block and pulls
    /// every overflow entry of that block into the wheel. Called only
    /// when the wheel itself is empty, so the jump skips nothing.
    fn refill_from_overflow(&mut self) {
        let block = self.overflow.peek().expect("refill with empty overflow").due.as_millis()
            >> (SLOT_BITS * LEVELS as u32);
        self.cursor = block << (SLOT_BITS * LEVELS as u32);
        while let Some(top) = self.overflow.peek() {
            if top.due.as_millis() >> (SLOT_BITS * LEVELS as u32) != block {
                break;
            }
            let s = self.overflow.pop().expect("peeked entry exists");
            self.insert(s);
        }
    }

    /// Removes and returns the earliest event, with its due time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        if self.len == 0 {
            return None;
        }
        // Overdue entries are strictly before the cursor, and the wheel
        // and overflow hold nothing before it — so they are the global
        // minimum, in (due, seq) heap order.
        if let Some(s) = self.overdue.pop() {
            self.len -= 1;
            return Some((s.due, s.event));
        }
        loop {
            let Some((level, slot)) = self.first_occupied() else {
                // The wheel is drained; teleport to the overflow's block.
                self.refill_from_overflow();
                continue;
            };
            if level == 0 {
                // A level-0 bucket is one exact millisecond; the minimum
                // (due, seq) entry is simply the minimum seq. Selecting by
                // scan (rather than keeping the bucket sorted) stays
                // correct however cascades and live inserts interleave.
                let bucket = &mut self.slots[0][slot];
                let best = bucket
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, s)| s.seq)
                    .map(|(i, _)| i)
                    .expect("occupied slot is non-empty");
                let s = bucket.swap_remove(best);
                if self.slots[0][slot].is_empty() {
                    self.clear_bit(0, slot);
                }
                self.cursor = s.due.as_millis();
                self.len -= 1;
                return Some((s.due, s.event));
            }
            // Cascade: advance the cursor to the slot's base and
            // redistribute its events to finer levels.
            let bucket = std::mem::take(&mut self.slots[level][slot]);
            self.clear_bit(level, slot);
            let upper_shift = SLOT_BITS * (level as u32 + 1);
            self.cursor = (self.cursor >> upper_shift << upper_shift)
                | ((slot as u64) << (SLOT_BITS * level as u32));
            for s in bucket {
                self.insert(s);
            }
        }
    }

    /// Removes every event with `due <= until` in one pass, appending
    /// them to `out` in dispatch order (`(due, seq)` FIFO), and returns
    /// how many were drained. Unlike the pop-loop equivalent this moves
    /// whole level-0 buckets (a bucket holds one exact millisecond) with
    /// a single seq sort each, so draining a dense epoch costs
    /// O(drained) bucket work instead of a min-seq scan per event.
    pub fn drain_until(&mut self, until: SimTime, out: &mut Vec<(SimTime, E)>) -> usize {
        let start = out.len();
        // Overdue entries are strictly before the cursor and therefore
        // before anything in the wheel or overflow: drain them first, in
        // (due, seq) heap order.
        while self.overdue.peek().is_some_and(|s| s.due <= until) {
            let s = self.overdue.pop().expect("peeked entry exists");
            self.len -= 1;
            out.push((s.due, s.event));
        }
        let until_ms = until.as_millis();
        while self.len > 0 {
            let Some((level, slot)) = self.first_occupied() else {
                // The wheel is empty; only overflow remains. Teleport into
                // its first block only if that block still starts at or
                // before `until`.
                if self.overflow.peek().is_some_and(|s| s.due <= until) {
                    self.refill_from_overflow();
                    continue;
                }
                break;
            };
            if level == 0 {
                // Level-0 buckets hold one exact due, so the whole bucket
                // drains together once sorted by seq.
                let due_ms = (self.cursor >> SLOT_BITS << SLOT_BITS) | slot as u64;
                if due_ms > until_ms {
                    break;
                }
                let bucket = &mut self.slots[0][slot];
                bucket.sort_unstable_by_key(|s| s.seq);
                self.len -= bucket.len();
                out.extend(bucket.drain(..).map(|s| (s.due, s.event)));
                self.clear_bit(0, slot);
                self.cursor = due_ms;
            } else {
                // The earliest due this slot can hold is its base; if even
                // that is past `until` the wheel holds nothing drainable
                // (lower levels are empty and later slots are later dues).
                let upper_shift = SLOT_BITS * (level as u32 + 1);
                let slot_base = (self.cursor >> upper_shift << upper_shift)
                    | ((slot as u64) << (SLOT_BITS * level as u32));
                if slot_base > until_ms {
                    break;
                }
                // Cascade exactly as `pop` would, then re-examine.
                let bucket = std::mem::take(&mut self.slots[level][slot]);
                self.clear_bit(level, slot);
                self.cursor = slot_base;
                for s in bucket {
                    self.insert(s);
                }
            }
        }
        out.len() - start
    }

    /// The due time of the earliest event, if any.
    #[must_use]
    pub fn peek_time(&self) -> Option<SimTime> {
        if let Some(s) = self.overdue.peek() {
            return Some(s.due);
        }
        if let Some((level, slot)) = self.first_occupied() {
            if level == 0 {
                // Level-0 slots hold one exact due.
                let base = self.cursor >> SLOT_BITS << SLOT_BITS;
                return Some(SimTime::from_millis(base | slot as u64));
            }
            return self.slots[level][slot].iter().map(|s| s.due).min();
        }
        self.overflow.peek().map(|s| s.due)
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Every pending event as `(due, seq, &event)`, sorted into dispatch
    /// order, without disturbing the wheel. Walks the occupancy bitmaps
    /// plus the overdue/overflow heaps, so the cost is O(pending) — the
    /// checkpoint capture path uses this instead of draining and
    /// re-inserting the whole queue.
    pub(crate) fn pending_in_order(&self) -> Vec<(SimTime, u64, &E)> {
        let mut out: Vec<(SimTime, u64, &E)> = Vec::with_capacity(self.len);
        out.extend(self.overdue.iter().map(|s| (s.due, s.seq, &s.event)));
        for (level, words) in self.occupancy.iter().enumerate() {
            for (w, &bits) in words.iter().enumerate() {
                let mut b = bits;
                while b != 0 {
                    let slot = (w << 6) | b.trailing_zeros() as usize;
                    out.extend(
                        self.slots[level][slot].iter().map(|s| (s.due, s.seq, &s.event)),
                    );
                    b &= b - 1;
                }
            }
        }
        out.extend(self.overflow.iter().map(|s| (s.due, s.seq, &s.event)));
        out.sort_unstable_by_key(|&(due, seq, _)| (due, seq));
        out
    }

    /// Removes all pending events. The cursor (and with it the monotone
    /// ordering guarantee relative to already-popped events) is kept.
    pub fn clear(&mut self) {
        for (level, words) in self.occupancy.iter_mut().enumerate() {
            for (w, bits) in words.iter_mut().enumerate() {
                let mut b = *bits;
                while b != 0 {
                    let slot = (w << 6) | b.trailing_zeros() as usize;
                    self.slots[level][slot].clear();
                    b &= b - 1;
                }
                *bits = 0;
            }
        }
        self.overdue.clear();
        self.overflow.clear();
        self.len = 0;
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueueBackend<E> for EventQueue<E> {
    fn schedule_at(&mut self, due: SimTime, event: E) {
        EventQueue::schedule_at(self, due, event);
    }
    fn pop(&mut self) -> Option<(SimTime, E)> {
        EventQueue::pop(self)
    }
    fn peek_time(&self) -> Option<SimTime> {
        EventQueue::peek_time(self)
    }
    fn len(&self) -> usize {
        EventQueue::len(self)
    }
    fn clear(&mut self) {
        EventQueue::clear(self);
    }
    fn drain_until(&mut self, until: SimTime, out: &mut Vec<(SimTime, E)>) -> usize {
        EventQueue::drain_until(self, until, out)
    }
}

// ---------------------------------------------------------------------------
// Binary-heap reference implementation
// ---------------------------------------------------------------------------

/// The original `BinaryHeap`-backed queue: same API and same dispatch
/// order as [`EventQueue`], retained as the order-equivalence reference
/// and as the seed baseline in the scale benchmarks.
#[derive(Debug)]
pub struct HeapEventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
}

impl<E> HeapEventQueue<E> {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        HeapEventQueue { heap: BinaryHeap::new(), next_seq: 0 }
    }

    /// Schedules `event` to fire at the absolute instant `due`.
    pub fn schedule_at(&mut self, due: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { due, seq, event });
    }

    /// Schedules `event` to fire `delay` after `now`.
    pub fn schedule_after(&mut self, now: SimTime, delay: SimDuration, event: E) {
        self.schedule_at(now + delay, event);
    }

    /// Removes and returns the earliest event, with its due time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|s| (s.due, s.event))
    }

    /// The due time of the earliest event, if any.
    #[must_use]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.due)
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Removes all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }

    /// Removes every event with `due <= until`, appending them to `out`
    /// in dispatch order (`(due, seq)` FIFO), and returns how many were
    /// drained.
    pub fn drain_until(&mut self, until: SimTime, out: &mut Vec<(SimTime, E)>) -> usize {
        let start = out.len();
        while self.heap.peek().is_some_and(|s| s.due <= until) {
            let s = self.heap.pop().expect("peeked entry exists");
            out.push((s.due, s.event));
        }
        out.len() - start
    }

    /// Every pending event as `(due, seq, &event)`, sorted into dispatch
    /// order, without disturbing the heap.
    pub(crate) fn pending_in_order(&self) -> Vec<(SimTime, u64, &E)> {
        let mut out: Vec<(SimTime, u64, &E)> =
            self.heap.iter().map(|s| (s.due, s.seq, &s.event)).collect();
        out.sort_unstable_by_key(|&(due, seq, _)| (due, seq));
        out
    }
}

impl<E> Default for HeapEventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueueBackend<E> for HeapEventQueue<E> {
    fn schedule_at(&mut self, due: SimTime, event: E) {
        HeapEventQueue::schedule_at(self, due, event);
    }
    fn pop(&mut self) -> Option<(SimTime, E)> {
        HeapEventQueue::pop(self)
    }
    fn peek_time(&self) -> Option<SimTime> {
        HeapEventQueue::peek_time(self)
    }
    fn len(&self) -> usize {
        HeapEventQueue::len(self)
    }
    fn clear(&mut self) {
        HeapEventQueue::clear(self);
    }
    fn drain_until(&mut self, until: SimTime, out: &mut Vec<(SimTime, E)>) -> usize {
        HeapEventQueue::drain_until(self, until, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_millis(30), 3);
        q.schedule_at(SimTime::from_millis(10), 1);
        q.schedule_at(SimTime::from_millis(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn same_instant_is_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(5);
        for i in 0..100 {
            q.schedule_at(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn schedule_after_offsets_from_now() {
        let mut q = EventQueue::new();
        q.schedule_after(SimTime::from_secs(10), SimDuration::from_secs(3), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(13)));
    }

    #[test]
    fn len_and_clear() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule_at(SimTime::ZERO, 'a');
        q.schedule_at(SimTime::ZERO, 'b');
        assert_eq!(q.len(), 2);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn interleaved_schedule_and_pop_keeps_order() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_millis(5), "a");
        q.schedule_at(SimTime::from_millis(1), "b");
        assert_eq!(q.pop().unwrap().1, "b");
        q.schedule_at(SimTime::from_millis(2), "c");
        assert_eq!(q.pop().unwrap().1, "c");
        assert_eq!(q.pop().unwrap().1, "a");
    }

    #[test]
    fn far_future_events_cascade_between_levels() {
        let mut q = EventQueue::new();
        // One due per wheel level plus one beyond the 2^32 ms horizon.
        let dues = [
            7u64,                  // level 0
            300,                   // level 1
            70_000,                // level 2
            20_000_000,            // level 3
            (1u64 << 33) + 5,      // overflow
        ];
        for (i, &d) in dues.iter().enumerate().rev() {
            q.schedule_at(SimTime::from_millis(d), i);
        }
        let order: Vec<(u64, usize)> =
            std::iter::from_fn(|| q.pop().map(|(t, e)| (t.as_millis(), e))).collect();
        assert_eq!(
            order,
            dues.iter().copied().enumerate().map(|(i, d)| (d, i)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn cascaded_ties_keep_fifo() {
        // Two events at the same far-future instant plus a nearer one:
        // the far pair must survive its cascade in insertion order.
        let mut q = EventQueue::new();
        let far = SimTime::from_millis(1 << 20);
        q.schedule_at(far, "first");
        q.schedule_at(SimTime::from_millis(3), "near");
        q.schedule_at(far, "second");
        assert_eq!(q.pop().unwrap().1, "near");
        assert_eq!(q.pop().unwrap().1, "first");
        assert_eq!(q.pop().unwrap().1, "second");
    }

    #[test]
    fn scheduling_before_the_cursor_still_pops_in_global_order() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_millis(1_000), "late");
        q.schedule_at(SimTime::from_millis(500), "mid");
        assert_eq!(q.pop().unwrap().1, "mid"); // cursor now at 500
        q.schedule_at(SimTime::from_millis(100), "overdue-b");
        q.schedule_at(SimTime::from_millis(50), "overdue-a");
        assert_eq!(q.pop().unwrap().1, "overdue-a");
        assert_eq!(q.pop().unwrap().1, "overdue-b");
        assert_eq!(q.pop().unwrap().1, "late");
        assert!(q.is_empty());
    }

    #[test]
    fn overflow_entries_migrate_when_their_block_arrives() {
        let mut q = EventQueue::new();
        let block = 1u64 << 32;
        q.schedule_at(SimTime::from_millis(block + 10), "b");
        q.schedule_at(SimTime::from_millis(block + 5), "a");
        q.schedule_at(SimTime::from_millis(block + 10), "c"); // tie with "b"
        // After the jump into the overflow block, later inserts near the
        // cursor must not overtake still-pending same-block entries.
        assert_eq!(q.pop().unwrap().1, "a");
        q.schedule_at(SimTime::from_millis(block + 20), "d");
        assert_eq!(q.pop().unwrap().1, "b");
        assert_eq!(q.pop().unwrap().1, "c");
        assert_eq!(q.pop().unwrap().1, "d");
    }

    #[test]
    fn peek_time_matches_pop_across_levels() {
        let mut q = EventQueue::new();
        for d in [9_999_999u64, 123, 70_000, (1 << 33) + 1, 0] {
            q.schedule_at(SimTime::from_millis(d), d);
        }
        while let Some(peeked) = q.peek_time() {
            let (due, _) = q.pop().unwrap();
            assert_eq!(peeked, due);
        }
    }

    #[test]
    fn pending_in_order_sees_overdue_entries_first() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_millis(1_000), "late");
        q.schedule_at(SimTime::from_millis(500), "mid");
        assert_eq!(q.pop().unwrap().1, "mid"); // cursor now at 500
        q.schedule_at(SimTime::from_millis(100), "overdue");
        let order: Vec<&str> = q.pending_in_order().into_iter().map(|(_, _, &e)| e).collect();
        assert_eq!(order, vec!["overdue", "late"]);
        assert_eq!(q.len(), 2, "the borrow must not pop");
    }

    #[test]
    fn drain_until_matches_a_pop_loop_across_levels() {
        // Dues spanning every wheel level, same-instant ties, an overdue
        // entry, and the 2^32 ms overflow boundary.
        let dues = [
            5u64,
            5,
            0,
            300,
            300,
            65_536,
            1 << 24,
            (1 << 32) - 1,
            (1 << 32) + 3,
            (1 << 33) + 7,
            100,
            5,
        ];
        for until in [0u64, 4, 5, 299, 300, 1 << 24, (1 << 32) - 1, (1 << 32) + 3, 1 << 34] {
            let mut drained_q = EventQueue::new();
            let mut popped_q = EventQueue::new();
            for (i, &d) in dues.iter().enumerate() {
                drained_q.schedule_at(SimTime::from_millis(d), i);
                popped_q.schedule_at(SimTime::from_millis(d), i);
            }
            // Make one entry overdue in both queues: pop past 100, then
            // schedule at 50.
            while popped_q.peek_time().unwrap() < SimTime::from_millis(300) {
                let (t, e) = popped_q.pop().unwrap();
                assert_eq!(drained_q.pop().unwrap(), (t, e));
            }
            drained_q.schedule_at(SimTime::from_millis(50), 99);
            popped_q.schedule_at(SimTime::from_millis(50), 99);

            let mut drained = Vec::new();
            let n = drained_q.drain_until(SimTime::from_millis(until), &mut drained);
            assert_eq!(n, drained.len());
            let mut by_pop = Vec::new();
            while popped_q.peek_time().is_some_and(|t| t <= SimTime::from_millis(until)) {
                by_pop.push(popped_q.pop().unwrap());
            }
            assert_eq!(drained, by_pop, "until={until}");
            assert_eq!(drained_q.len(), popped_q.len(), "until={until}");
            // Whatever remains pops identically.
            loop {
                let (a, b) = (drained_q.pop(), popped_q.pop());
                assert_eq!(a, b, "until={until}");
                if a.is_none() {
                    break;
                }
            }
        }
    }

    #[test]
    fn drain_until_leaves_later_events_untouched() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_millis(10), "in");
        q.schedule_at(SimTime::from_millis(11), "out");
        let mut out = Vec::new();
        assert_eq!(q.drain_until(SimTime::from_millis(10), &mut out), 1);
        assert_eq!(out, vec![(SimTime::from_millis(10), "in")]);
        assert_eq!(q.len(), 1);
        // A drain before the earliest event takes nothing.
        assert_eq!(q.drain_until(SimTime::from_millis(5), &mut out), 0);
        assert_eq!(q.pop(), Some((SimTime::from_millis(11), "out")));
        // Draining an empty queue is a no-op.
        assert_eq!(q.drain_until(SimTime::from_millis(1 << 40), &mut out), 0);
    }

    #[test]
    fn drain_until_interleaves_with_scheduling() {
        let mut wheel = EventQueue::new();
        let mut heap = HeapEventQueue::new();
        wheel.schedule_at(SimTime::from_millis(3), 0);
        heap.schedule_at(SimTime::from_millis(3), 0);
        wheel.schedule_at(SimTime::from_millis(700), 1);
        heap.schedule_at(SimTime::from_millis(700), 1);
        let (mut a, mut b) = (Vec::new(), Vec::new());
        wheel.drain_until(SimTime::from_millis(400), &mut a);
        heap.drain_until(SimTime::from_millis(400), &mut b);
        assert_eq!(a, b);
        assert_eq!(a, vec![(SimTime::from_millis(3), 0)]);
        // Schedule into the drained window (overdue path) and beyond.
        wheel.schedule_at(SimTime::from_millis(350), 2);
        heap.schedule_at(SimTime::from_millis(350), 2);
        wheel.schedule_at(SimTime::from_millis(800), 3);
        heap.schedule_at(SimTime::from_millis(800), 3);
        a.clear();
        b.clear();
        wheel.drain_until(SimTime::from_millis(900), &mut a);
        heap.drain_until(SimTime::from_millis(900), &mut b);
        assert_eq!(a, b);
        assert_eq!(
            a,
            vec![
                (SimTime::from_millis(350), 2),
                (SimTime::from_millis(700), 1),
                (SimTime::from_millis(800), 3),
            ]
        );
        assert!(wheel.is_empty() && heap.is_empty());
    }

    #[test]
    fn wheel_and_heap_agree_on_a_mixed_schedule() {
        let mut wheel = EventQueue::new();
        let mut heap = HeapEventQueue::new();
        let dues = [5u64, 5, 0, 300, 300, 65_536, 1 << 24, (1 << 32) + 3, 100, 5];
        for (i, &d) in dues.iter().enumerate() {
            wheel.schedule_at(SimTime::from_millis(d), i);
            heap.schedule_at(SimTime::from_millis(d), i);
        }
        loop {
            let (a, b) = (wheel.pop(), heap.pop());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }
}
