//! A deterministic time-ordered event queue.
//!
//! Events scheduled for the same instant are delivered in the order they
//! were scheduled (FIFO), which keeps simulations reproducible regardless
//! of heap internals.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::{SimDuration, SimTime};

/// An entry in the queue: the payload plus its due time and a sequence
/// number used to break ties deterministically.
#[derive(Debug)]
struct Scheduled<E> {
    due: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.seq == other.seq
    }
}

impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse so the earliest (due, seq) pops first.
        (other.due, other.seq).cmp(&(self.due, self.seq))
    }
}

/// A min-priority queue of events keyed by [`SimTime`], with FIFO
/// tie-breaking among events due at the same instant.
///
/// # Examples
///
/// ```
/// use coreda_des::event::EventQueue;
/// use coreda_des::time::SimTime;
///
/// let mut q = EventQueue::new();
/// q.schedule_at(SimTime::from_secs(2), "later");
/// q.schedule_at(SimTime::from_secs(1), "sooner");
/// assert_eq!(q.pop(), Some((SimTime::from_secs(1), "sooner")));
/// assert_eq!(q.pop(), Some((SimTime::from_secs(2), "later")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        EventQueue { heap: BinaryHeap::new(), next_seq: 0 }
    }

    /// Schedules `event` to fire at the absolute instant `due`.
    pub fn schedule_at(&mut self, due: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { due, seq, event });
    }

    /// Schedules `event` to fire `delay` after `now`.
    pub fn schedule_after(&mut self, now: SimTime, delay: SimDuration, event: E) {
        self.schedule_at(now + delay, event);
    }

    /// Removes and returns the earliest event, with its due time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|s| (s.due, s.event))
    }

    /// The due time of the earliest event, if any.
    #[must_use]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.due)
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Removes all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_millis(30), 3);
        q.schedule_at(SimTime::from_millis(10), 1);
        q.schedule_at(SimTime::from_millis(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn same_instant_is_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(5);
        for i in 0..100 {
            q.schedule_at(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn schedule_after_offsets_from_now() {
        let mut q = EventQueue::new();
        q.schedule_after(SimTime::from_secs(10), SimDuration::from_secs(3), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(13)));
    }

    #[test]
    fn len_and_clear() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule_at(SimTime::ZERO, 'a');
        q.schedule_at(SimTime::ZERO, 'b');
        assert_eq!(q.len(), 2);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn interleaved_schedule_and_pop_keeps_order() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_millis(5), "a");
        q.schedule_at(SimTime::from_millis(1), "b");
        assert_eq!(q.pop().unwrap().1, "b");
        q.schedule_at(SimTime::from_millis(2), "c");
        assert_eq!(q.pop().unwrap().1, "c");
        assert_eq!(q.pop().unwrap().1, "a");
    }
}
