//! Property-based tests for CoReDA's core invariants.

use coreda_adl::activity::{catalog, AdlSpec};
use coreda_adl::routine::Routine;
use coreda_adl::step::{Step, StepId};
use coreda_adl::tool::{Tool, ToolId};
use coreda_core::persistence;
use coreda_core::planning::{PlanningConfig, PlanningSubsystem, RewardConfig, StateEncoder};
use coreda_core::reminding::{Prompt, ReminderLevel};
use coreda_core::sensing::SensingSubsystem;
use coreda_des::rng::SimRng;
use coreda_des::time::SimTime;
use coreda_sensornet::node::NodeId;
use coreda_sensornet::signal::SignalModel;
use proptest::prelude::*;

fn arb_spec() -> impl Strategy<Value = AdlSpec> {
    (2usize..=7).prop_map(|n| {
        let tools: Vec<Tool> = (0..n)
            .map(|i| {
                Tool::new(
                    ToolId::new(50 + i as u16),
                    format!("tool-{i}"),
                    SignalModel::accelerometer(0.03, 0.45, 0.5),
                )
            })
            .collect();
        let steps: Vec<Step> = (0..n)
            .map(|i| Step::new(format!("step {i}"), ToolId::new(50 + i as u16), 4.0, 0.5))
            .collect();
        AdlSpec::new("Generated", tools, steps)
    })
}

proptest! {
    /// State and action encodings are bijections for any generated ADL.
    #[test]
    fn encoder_bijection(spec in arb_spec()) {
        let enc = StateEncoder::new(&spec);
        let shape = enc.shape();
        let n = spec.steps().len() + 1;
        prop_assert_eq!(shape.states(), n * n);
        prop_assert_eq!(shape.actions(), spec.tools().len() * 2);
        for s in shape.state_ids() {
            let (prev, cur) = enc.decode_state(s);
            prop_assert_eq!(enc.state_of(prev, cur), Some(s));
        }
        for a in shape.action_ids() {
            let prompt = enc.decode_action(a);
            prop_assert_eq!(enc.action_of(prompt), Some(a));
        }
    }

    /// The reward function only ever returns one of the four configured
    /// values, and matching beats mismatching at every level.
    #[test]
    fn reward_is_closed_and_ordered(
        terminal in 100.0f64..10_000.0,
        minimal in 10.0f64..100.0,
        specific in 1.0f64..10.0,
    ) {
        let r = RewardConfig { terminal, minimal, specific, mismatch: 0.0 };
        let pot = ToolId::new(catalog::POT);
        let kettle = ToolId::new(catalog::KETTLE);
        for level in ReminderLevel::ALL {
            for is_terminal in [false, true] {
                let matched = r.reward(
                    Prompt { tool: pot, level },
                    StepId::from_tool(pot),
                    is_terminal,
                );
                let mismatched = r.reward(
                    Prompt { tool: kettle, level },
                    StepId::from_tool(pot),
                    is_terminal,
                );
                prop_assert!([terminal, minimal, specific, 0.0].contains(&matched));
                prop_assert_eq!(mismatched, 0.0);
                prop_assert!(matched > mismatched);
            }
        }
    }

    /// After arbitrary-length training on a random permutation routine,
    /// every Q-value stays within the reward-derived bound
    /// `(terminal + minimal) / (1 − γ)`.
    #[test]
    fn q_values_bounded(spec in arb_spec(), seed in any::<u64>(), episodes in 1usize..120) {
        let mut ids = spec.step_ids();
        let mut rng = SimRng::seed_from(seed);
        rng.shuffle(&mut ids);
        let routine = Routine::new(&spec, ids);
        let cfg = PlanningConfig::default();
        let mut planner = PlanningSubsystem::new(&spec, cfg);
        for _ in 0..episodes {
            planner.train_episode(routine.steps(), &mut rng);
        }
        let bound = (cfg.reward.terminal + cfg.reward.minimal) / (1.0 - cfg.gamma) + 1e-6;
        prop_assert!(
            planner.q_table().max_abs_value() <= bound,
            "max |Q| = {} exceeds bound {}",
            planner.q_table().max_abs_value(),
            bound
        );
    }

    /// A trained planner's prediction is always one of the ADL's own
    /// tools, at one of the two levels.
    #[test]
    fn predictions_stay_in_domain(spec in arb_spec(), seed in any::<u64>()) {
        let routine = Routine::canonical(&spec);
        let mut planner = PlanningSubsystem::new(&spec, PlanningConfig::default());
        let mut rng = SimRng::seed_from(seed);
        for _ in 0..30 {
            planner.train_episode(routine.steps(), &mut rng);
        }
        let tool_ids: Vec<ToolId> =
            spec.tools().iter().map(coreda_adl::tool::Tool::id).collect();
        for &(prev, cur, _) in &routine.transitions() {
            let prompt = planner.predict(prev, cur).expect("in-domain state");
            prop_assert!(tool_ids.contains(&prompt.tool));
        }
    }

    /// Sensing never emits two consecutive identical steps, whatever the
    /// report stream.
    #[test]
    fn sensing_sequence_is_deduplicated(
        reports in proptest::collection::vec((5u16..9, 0u64..200), 1..80),
    ) {
        let tea = catalog::tea_making();
        let mut sensing = SensingSubsystem::new(&tea);
        let mut sorted = reports;
        sorted.sort_by_key(|&(_, t)| t);
        for (tool, t) in sorted {
            let _ = sensing.on_report(NodeId::new(tool), SimTime::from_secs(t));
        }
        let seq = sensing.step_sequence();
        for w in seq.windows(2) {
            prop_assert_ne!(w[0], w[1], "consecutive duplicates in {:?}", seq);
        }
    }

    /// Persistence round-trips for any generated ADL after any amount of
    /// training, and restoring into a *different* generated ADL fails.
    #[test]
    fn persistence_roundtrip_any_adl(seed in any::<u64>(), episodes in 0usize..60) {
        let spec = {
            // Two fixed distinct generated specs (sizes 3 and 4).
            let mk = |n: usize, base: u16| {
                let tools: Vec<Tool> = (0..n)
                    .map(|i| Tool::new(
                        ToolId::new(base + i as u16),
                        format!("t{i}"),
                        SignalModel::accelerometer(0.03, 0.45, 0.5),
                    ))
                    .collect();
                let steps: Vec<Step> = (0..n)
                    .map(|i| Step::new(format!("s{i}"), ToolId::new(base + i as u16), 4.0, 0.5))
                    .collect();
                AdlSpec::new("G", tools, steps)
            };
            (mk(3, 60), mk(4, 70))
        };
        let routine = Routine::canonical(&spec.0);
        let mut planner = PlanningSubsystem::new(&spec.0, PlanningConfig::default());
        let mut rng = SimRng::seed_from(seed);
        for _ in 0..episodes {
            planner.train_episode(routine.steps(), &mut rng);
        }
        let blob = persistence::save_policy(&planner);
        let mut same = PlanningSubsystem::new(&spec.0, PlanningConfig::default());
        prop_assert!(persistence::restore_policy(&mut same, &blob).is_ok());
        prop_assert_eq!(same.episodes_trained(), planner.episodes_trained());
        let mut other = PlanningSubsystem::new(&spec.1, PlanningConfig::default());
        prop_assert!(persistence::restore_policy(&mut other, &blob).is_err());
    }
}
