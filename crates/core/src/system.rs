//! The CoReDA system: sensing + planning + reminding wired together.
//!
//! [`Coreda`] owns one PAVENET node per tool, the star network to the
//! base station, and the three subsystems of Figure 2. It supports the
//! paper's two usages:
//!
//! - **offline training** on recorded episodes
//!   ([`Coreda::train_offline`]), as in the 120-sample experiments; and
//! - **live operation** ([`Coreda::run_live`]): a patient behaviour model
//!   performs the ADL in simulated real time while sensor sampling,
//!   radio transmission, step extraction, prediction, reminding, praise
//!   and (optionally) online learning all run against the virtual clock.

use std::sync::Arc;

use coreda_adl::activity::AdlSpec;
use coreda_adl::episode::Episode;
use coreda_adl::patient::PatientAction;
use coreda_adl::routine::Routine;
use coreda_adl::step::StepId;
use coreda_adl::tool::ToolId;
use coreda_des::rng::SimRng;
use coreda_des::time::{SimDuration, SimTime};
use coreda_sensornet::detect::Thresholds;
use coreda_sensornet::medium::SharedMedium;
use coreda_sensornet::network::{BaseStation, LinkConfig, LinkCounters, StarNetwork};
use coreda_sensornet::node::{NodeId, NodeState, PavenetNode};

use crate::live::{EpisodeLog, LogKind, PatientBehavior};
use crate::planning::{LearnedState, PlanningConfig, PlanningSubsystem};
use crate::reminding::{Prompt, ReminderLevel, RemindingSubsystem, Trigger};
use crate::sensing::{SensingSubsystem, StepEvent};
use crate::telemetry::{Ctr, HomeRecorder, MaybeRec, Stage, TraceKind};

/// System-level configuration.
#[derive(Debug, Clone, Copy)]
pub struct CoredaConfig {
    /// Planner hyper-parameters.
    pub planning: PlanningConfig,
    /// Radio link behaviour.
    pub link: LinkConfig,
    /// Detection thresholds.
    pub thresholds: Thresholds,
    /// CSMA/CA contention model for simultaneous transmissions.
    pub medium: SharedMedium,
    /// Minimum planner confidence required before a reminder is issued
    /// (0.0 = always remind; see
    /// [`PlanningSubsystem::prediction_confidence`]). Gating prevents an
    /// unconverged planner from nagging the user with guesses.
    pub min_prompt_confidence: f64,
    /// Whether live transitions also update the planner.
    pub online_learning: bool,
    /// How long the patient takes to react to a prompt.
    pub response_delay: SimDuration,
    /// How long the system waits before repeating an unanswered reminder
    /// (escalated to the specific level).
    pub reprompt_interval: SimDuration,
    /// After this long frozen, the patient recovers by themselves.
    pub freeze_recovery: SimDuration,
    /// After this long misusing a tool, the patient self-corrects.
    pub misuse_recovery: SimDuration,
    /// Hard cap on a live episode.
    pub max_episode: SimDuration,
}

impl Default for CoredaConfig {
    fn default() -> Self {
        CoredaConfig {
            planning: PlanningConfig::default(),
            link: LinkConfig::default(),
            thresholds: Thresholds::default(),
            medium: SharedMedium::default(),
            min_prompt_confidence: 0.0,
            online_learning: false,
            response_delay: SimDuration::from_secs(2),
            reprompt_interval: SimDuration::from_secs(15),
            freeze_recovery: SimDuration::from_secs(120),
            misuse_recovery: SimDuration::from_secs(25),
            max_episode: SimDuration::from_secs(15 * 60),
        }
    }
}

/// What the patient is doing right now (live-episode state machine).
#[derive(Debug, Clone, Copy, PartialEq)]
enum Phase {
    /// Performing routine step `idx` until the given instant.
    Performing { idx: usize, until: SimTime },
    /// Using the wrong tool since `since`; would resume at `resume_idx`.
    Misusing { tool: ToolId, since: SimTime, resume_idx: usize },
    /// Doing nothing since `since`; would resume at `resume_idx`.
    Frozen { since: SimTime, resume_idx: usize },
    /// Finished every step.
    Done,
}

/// The public, codec-friendly mirror of the private live-episode phase
/// (checkpointing). Conversions are lossless in both directions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PhaseState {
    /// Performing routine step `idx` until the given instant.
    Performing {
        /// Routine step index.
        idx: usize,
        /// When the step completes.
        until: SimTime,
    },
    /// Using the wrong tool since `since`; would resume at `resume_idx`.
    Misusing {
        /// The wrongly used tool.
        tool: ToolId,
        /// When the misuse began.
        since: SimTime,
        /// Routine index to resume at.
        resume_idx: usize,
    },
    /// Doing nothing since `since`; would resume at `resume_idx`.
    Frozen {
        /// When the freeze began.
        since: SimTime,
        /// Routine index to resume at.
        resume_idx: usize,
    },
    /// Finished every step.
    Done,
}

impl Phase {
    fn export(self) -> PhaseState {
        match self {
            Phase::Performing { idx, until } => PhaseState::Performing { idx, until },
            Phase::Misusing { tool, since, resume_idx } => {
                PhaseState::Misusing { tool, since, resume_idx }
            }
            Phase::Frozen { since, resume_idx } => PhaseState::Frozen { since, resume_idx },
            Phase::Done => PhaseState::Done,
        }
    }

    fn restore(state: PhaseState) -> Phase {
        match state {
            PhaseState::Performing { idx, until } => Phase::Performing { idx, until },
            PhaseState::Misusing { tool, since, resume_idx } => {
                Phase::Misusing { tool, since, resume_idx }
            }
            PhaseState::Frozen { since, resume_idx } => Phase::Frozen { since, resume_idx },
            PhaseState::Done => Phase::Done,
        }
    }
}

/// The assembled CoReDA system for one ADL and one user.
///
/// # Examples
///
/// ```
/// use coreda_adl::activity::catalog;
/// use coreda_adl::routine::Routine;
/// use coreda_core::system::{Coreda, CoredaConfig};
/// use coreda_des::rng::SimRng;
///
/// let tea = catalog::tea_making();
/// let mut system = Coreda::new(tea.clone(), "Mr. Tanaka", CoredaConfig::default(), 2007);
/// let routine = Routine::canonical(&tea);
/// let mut rng = SimRng::seed_from(1);
/// for _ in 0..150 {
///     system.planner_mut().train_episode(routine.steps(), &mut rng);
/// }
/// assert_eq!(system.planner().accuracy_vs_routine(&routine), 1.0);
/// ```
#[derive(Debug)]
pub struct Coreda {
    /// Immutable after construction; metro fleets share one copy across
    /// every home serving the same activity instead of cloning it.
    spec: Arc<AdlSpec>,
    config: CoredaConfig,
    nodes: Vec<(PavenetNode, SimRng)>,
    network: StarNetwork,
    base: BaseStation,
    sensing: SensingSubsystem,
    /// Clone-on-write: read-only serving (the metro default,
    /// `online_learning: false`) shares one trained planner — Q-table,
    /// eligibility traces and all — across every home; the first mutable
    /// access ([`Coreda::planner_mut`]) splits off a private copy.
    planner: Arc<PlanningSubsystem>,
    /// Clone-on-write like `planner`: mutated only by
    /// [`Coreda::describe_tool`] at setup time.
    reminding: Arc<RemindingSubsystem>,
    net_rng: SimRng,
    downlink_seq: u16,
    /// Reused per-tick buffers so live ticks allocate nothing in steady
    /// state (taken with `mem::take` for the duration of a tick).
    scratch_outbox: Vec<(usize, coreda_sensornet::packet::Packet)>,
    scratch_slots: Vec<bool>,
    scratch_events: Vec<crate::sensing::StepEvent>,
}

/// An episode log that may be absent: metro-scale serving runs thousands
/// of episodes and only wants counters, not timelines.
struct MaybeLog<'a>(Option<&'a mut EpisodeLog>);

impl MaybeLog<'_> {
    fn push(&mut self, at: SimTime, kind: LogKind) {
        if let Some(log) = self.0.as_deref_mut() {
            log.push(at, kind);
        }
    }
}

/// Resumable state of one live episode, advanced one 100 ms tick at a
/// time by [`Coreda::live_tick`]. [`Coreda::run_live`] drives it over a
/// dense tick loop; the metro engine drives many of them event-driven,
/// interleaved across homes.
#[derive(Debug, Clone)]
pub struct LiveEpisode {
    phase: Phase,
    /// Prediction state: the last two *accepted* steps.
    tracked: Option<(StepId, StepId)>,
    /// Outstanding prompt awaiting the patient's reaction.
    pending: Option<(SimTime, Prompt)>,
    last_reminder: Option<SimTime>,
    reminders_since_advance: u32,
    completed: bool,
    ticks_done: u64,
    max_ticks: u64,
    start: SimTime,
    finished: bool,
}

impl LiveEpisode {
    /// When the episode started.
    #[must_use]
    pub fn start(&self) -> SimTime {
        self.start
    }

    /// The instant the next tick should run at.
    #[must_use]
    pub fn next_tick_at(&self) -> SimTime {
        self.start + Coreda::TICK * self.ticks_done
    }

    /// Whether the patient finished the ADL.
    #[must_use]
    pub fn completed(&self) -> bool {
        self.completed
    }

    /// Whether the episode is over (completed, or out of ticks).
    #[must_use]
    pub fn finished(&self) -> bool {
        self.finished
    }

    /// Captures the episode's complete state (checkpointing).
    #[must_use]
    pub fn export_state(&self) -> EpisodeState {
        EpisodeState {
            phase: self.phase.export(),
            tracked: self.tracked,
            pending: self.pending,
            last_reminder: self.last_reminder,
            reminders_since_advance: self.reminders_since_advance,
            completed: self.completed,
            ticks_done: self.ticks_done,
            max_ticks: self.max_ticks,
            start: self.start,
            finished: self.finished,
        }
    }

    /// Rebuilds an episode from state captured by
    /// [`LiveEpisode::export_state`]. Driving the rebuilt episode from
    /// [`LiveEpisode::next_tick_at`] continues the interrupted one
    /// exactly (given the owning [`Coreda`] was restored too).
    #[must_use]
    pub fn from_state(state: &EpisodeState) -> Self {
        LiveEpisode {
            phase: Phase::restore(state.phase),
            tracked: state.tracked,
            pending: state.pending,
            last_reminder: state.last_reminder,
            reminders_since_advance: state.reminders_since_advance,
            completed: state.completed,
            ticks_done: state.ticks_done,
            max_ticks: state.max_ticks,
            start: state.start,
            finished: state.finished,
        }
    }
}

/// A [`LiveEpisode`]'s captured state — every field of the live-episode
/// state machine, public so the checkpoint codec can serialise it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpisodeState {
    /// Patient state-machine phase.
    pub phase: PhaseState,
    /// The last two accepted steps, if prediction has started.
    pub tracked: Option<(StepId, StepId)>,
    /// Outstanding prompt and its reaction instant.
    pub pending: Option<(SimTime, Prompt)>,
    /// When the last reminder was issued.
    pub last_reminder: Option<SimTime>,
    /// Reminders issued since the patient last advanced.
    pub reminders_since_advance: u32,
    /// Whether the ADL completed.
    pub completed: bool,
    /// Ticks run so far.
    pub ticks_done: u64,
    /// Hard tick cap.
    pub max_ticks: u64,
    /// Episode start instant.
    pub start: SimTime,
    /// Whether the episode is over.
    pub finished: bool,
}

/// What one live tick produced — the counters a serving engine keeps
/// when it isn't recording a full [`EpisodeLog`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TickOutcome {
    /// Reminders issued this tick.
    pub reminders: u32,
    /// Praises issued this tick.
    pub praises: u32,
    /// Whether the ADL completed this tick.
    pub completed_now: bool,
    /// Whether the episode is now finished.
    pub finished: bool,
}

impl Coreda {
    /// Sensor sampling period (10 Hz, Table 1 / §2.1).
    pub const TICK: SimDuration = SimDuration::from_millis(100);

    /// Builds the system: one PAVENET node per tool, a star network, and
    /// the three subsystems. `seed` drives every internal random stream.
    /// The spec may come in owned or already shared (`Arc<AdlSpec>`) —
    /// fleet builders pass the same `Arc` to every home.
    #[must_use]
    pub fn new(
        spec: impl Into<Arc<AdlSpec>>,
        user_name: &str,
        config: CoredaConfig,
        seed: u64,
    ) -> Self {
        let spec = spec.into();
        let planner = Arc::new(PlanningSubsystem::new(&spec, config.planning));
        let reminding = Arc::new(RemindingSubsystem::new(user_name));
        Self::with_shared(spec, planner, reminding, config, seed)
    }

    /// Builds a system wired to an already-shared planner and reminding
    /// renderer — the fleet path. Building N homes this way costs N `Arc`
    /// bumps instead of N planner constructions (Q-table, traces,
    /// encoder) plus N renderer allocations that would be overwritten
    /// right after.
    #[must_use]
    pub fn with_shared(
        spec: Arc<AdlSpec>,
        planner: Arc<PlanningSubsystem>,
        reminding: Arc<RemindingSubsystem>,
        config: CoredaConfig,
        seed: u64,
    ) -> Self {
        let root = SimRng::seed_from(seed);
        let mut network = StarNetwork::new(config.link);
        let mut nodes = Vec::with_capacity(spec.tools().len());
        for tool in spec.tools() {
            let node = PavenetNode::new(tool.id().into(), tool.signal(), config.thresholds);
            network.register(node.uid());
            let stream = root.substream("node", u64::from(tool.id().raw()));
            nodes.push((node, stream));
        }
        let sensing = SensingSubsystem::new(&spec);
        Coreda {
            spec,
            config,
            nodes,
            network,
            base: BaseStation::new(),
            sensing,
            planner,
            reminding,
            net_rng: root.substream("network", 0),
            downlink_seq: 0,
            scratch_outbox: Vec::new(),
            scratch_slots: Vec::new(),
            scratch_events: Vec::new(),
        }
    }

    /// The ADL this system guides.
    #[must_use]
    pub fn spec(&self) -> &AdlSpec {
        &self.spec
    }

    /// The planning subsystem.
    #[must_use]
    pub fn planner(&self) -> &PlanningSubsystem {
        &self.planner
    }

    /// Mutable access to the planner (offline training, warm starts).
    /// When the planner is shared across a fleet this splits off a
    /// private copy first (clone-on-write), so training one home never
    /// leaks into its neighbours.
    pub fn planner_mut(&mut self) -> &mut PlanningSubsystem {
        Arc::make_mut(&mut self.planner)
    }

    /// Replaces the planner with a shared, already-trained one. Every
    /// home serving the same activity points at the same allocation: no
    /// per-home Q-table, trace or encoder copies. Read-only serving
    /// never splits the share; see [`Coreda::planner_mut`].
    pub fn share_planner(&mut self, planner: &Arc<PlanningSubsystem>) {
        self.planner = Arc::clone(planner);
    }

    /// Replaces the reminding renderer with a shared one (fleet builds:
    /// one renderer for every home rather than a per-home name string and
    /// description map).
    pub fn share_reminding(&mut self, reminding: &Arc<RemindingSubsystem>) {
        self.reminding = Arc::clone(reminding);
    }

    /// The sensing subsystem.
    #[must_use]
    pub const fn sensing(&self) -> &SensingSubsystem {
        &self.sensing
    }

    /// The reminding subsystem.
    #[must_use]
    pub fn reminding(&self) -> &RemindingSubsystem {
        &self.reminding
    }

    /// The node attached to `tool`, if any.
    #[must_use]
    pub fn node(&self, tool: ToolId) -> Option<&PavenetNode> {
        let uid: coreda_sensornet::node::NodeId = tool.into();
        self.nodes.iter().map(|(n, _)| n).find(|n| n.uid() == uid)
    }

    /// Iterates over every tool node.
    pub fn nodes(&self) -> impl Iterator<Item = &PavenetNode> {
        self.nodes.iter().map(|(n, _)| n)
    }

    /// Total energy consumed across all nodes, in microjoules.
    #[must_use]
    pub fn total_energy_uj(&self) -> f64 {
        self.nodes.iter().map(|(n, _)| n.energy().consumed_uj()).sum()
    }

    /// Fault injection: swaps the loss process on every radio link.
    ///
    /// # Panics
    ///
    /// Panics if the model holds an invalid probability.
    pub fn set_link_loss(&mut self, loss: coreda_sensornet::radio::LossModel) {
        self.network.set_loss(loss);
    }

    /// Fault injection: crashes or reboots the node attached to `tool`.
    /// Returns whether such a node exists.
    pub fn set_node_failed(&mut self, tool: ToolId, failed: bool) -> bool {
        let uid: coreda_sensornet::node::NodeId = tool.into();
        match self.nodes.iter_mut().find(|(n, _)| n.uid() == uid) {
            Some((node, _)) => {
                node.set_failed(failed);
                true
            }
            None => false,
        }
    }

    /// Fault injection: sets sensing flip rates on the node attached to
    /// `tool`. Returns whether such a node exists.
    ///
    /// # Panics
    ///
    /// Panics if either rate is outside `[0, 1]`.
    pub fn set_sensor_flip(&mut self, tool: ToolId, false_positive: f64, false_negative: f64) -> bool {
        let uid: coreda_sensornet::node::NodeId = tool.into();
        match self.nodes.iter_mut().find(|(n, _)| n.uid() == uid) {
            Some((node, _)) => {
                node.set_sensor_flip(false_positive, false_negative);
                true
            }
            None => false,
        }
    }

    /// Fault injection: skews the report clock of the node attached to
    /// `tool`. Returns whether such a node exists.
    pub fn set_clock_skew(&mut self, tool: ToolId, skew_ms: i64) -> bool {
        let uid: coreda_sensornet::node::NodeId = tool.into();
        match self.nodes.iter_mut().find(|(n, _)| n.uid() == uid) {
            Some((node, _)) => {
                node.set_clock_skew_ms(skew_ms);
                true
            }
            None => false,
        }
    }

    /// Adds a caregiver-supplied rich description for `tool`, used in
    /// specific-level reminder texts ("the black tea-box").
    pub fn describe_tool(&mut self, tool: ToolId, description: impl Into<String>) {
        // Clone-on-write if shared, then swap through a temporary because
        // the builder method consumes self.
        let reminding = Arc::make_mut(&mut self.reminding);
        let taken = std::mem::replace(reminding, RemindingSubsystem::new(""));
        *reminding = taken.with_description(tool, description);
    }

    /// Trains the planner on recorded episodes (the paper's offline
    /// protocol).
    pub fn train_offline(&mut self, episodes: &[Episode], rng: &mut SimRng) {
        let planner = Arc::make_mut(&mut self.planner);
        for ep in episodes {
            planner.train_episode(&ep.step_ids(), rng);
        }
    }

    /// Runs one live episode: `behavior` performs `routine` while the
    /// full pipeline senses, predicts and reminds. Returns the timeline.
    pub fn run_live(
        &mut self,
        routine: &Routine,
        behavior: &mut dyn PatientBehavior,
        rng: &mut SimRng,
    ) -> EpisodeLog {
        let mut log = EpisodeLog::new();
        let mut ep = self.begin_live(routine, behavior, SimTime::ZERO, rng, Some(&mut log));
        while !ep.finished {
            let now = ep.next_tick_at();
            self.live_tick(
                &mut ep,
                routine,
                behavior,
                now,
                rng,
                Some(&mut log),
                None,
                &mut |_, _| {},
            );
        }
        log
    }

    /// Starts a live episode at `start` without running any ticks: the
    /// sensing pipeline is reset, the first step's duration drawn, and
    /// the patient logged as starting. Drive it with [`Coreda::live_tick`]
    /// at [`LiveEpisode::next_tick_at`] instants.
    pub fn begin_live(
        &mut self,
        routine: &Routine,
        behavior: &mut dyn PatientBehavior,
        start: SimTime,
        rng: &mut SimRng,
        log: Option<&mut EpisodeLog>,
    ) -> LiveEpisode {
        let mut log = MaybeLog(log);
        self.sensing.reset();
        for (node, _) in &mut self.nodes {
            node.reset_detector();
        }
        let first_step = self.spec.step(routine.first()).expect("routine step in spec");
        let first_duration = behavior.step_duration(first_step, rng);
        log.push(start, LogKind::PatientStarted(routine.first()));
        let max_ticks = self.config.max_episode.as_millis() / Self::TICK.as_millis();
        LiveEpisode {
            phase: Phase::Performing { idx: 0, until: start + first_duration },
            tracked: None,
            pending: None,
            last_reminder: None,
            reminders_since_advance: 0,
            completed: false,
            ticks_done: 0,
            max_ticks,
            start,
            finished: max_ticks == 0,
        }
    }

    /// Runs one 100 ms pipeline tick of `ep` at `now`: patient state
    /// machine, sensor sampling, CSMA/CA medium contention, uplink,
    /// sensing, prediction, reminding. Every report the base station
    /// accepts is also handed to `report_sink` (home-wide session
    /// tracking). Operation and RNG-draw order are exactly those of the
    /// dense [`Coreda::run_live`] loop — the behavioural test suite holds
    /// the two paths to identical timelines.
    ///
    /// `rec`, when present, captures flight-recorder telemetry
    /// (counters, stage latencies, trace events). Recording reads state
    /// but never mutates it and draws no randomness, so a recorded tick
    /// is bit-identical to an unrecorded one.
    #[allow(clippy::too_many_lines, clippy::too_many_arguments)]
    pub fn live_tick(
        &mut self,
        ep: &mut LiveEpisode,
        routine: &Routine,
        behavior: &mut dyn PatientBehavior,
        now: SimTime,
        rng: &mut SimRng,
        log: Option<&mut EpisodeLog>,
        rec: Option<&mut HomeRecorder>,
        report_sink: &mut dyn FnMut(coreda_sensornet::node::NodeId, SimTime),
    ) -> TickOutcome {
        let mut log = MaybeLog(log);
        let mut rec = MaybeRec(rec);
        let mut out = TickOutcome::default();

        // 1. Patient state-machine transitions. Completion is logged
        //    from ground truth — the patient actually finishing — so
        //    the log stays meaningful even when the planner is wrong.
        ep.phase = self.advance_patient(ep.phase, routine, behavior, now, &mut log, rng);
        if matches!(ep.phase, Phase::Done) && !ep.completed {
            ep.completed = true;
            out.completed_now = true;
            log.push(now, LogKind::AdlCompleted);
        }

        // 2. Outstanding prompt reaction.
        if let Some((due, prompt)) = ep.pending {
            if now >= due {
                ep.pending = None;
                ep.phase =
                    self.react_to_prompt(ep.phase, prompt, routine, behavior, now, &mut log, rng);
            }
        }

        // 3. Sensor sampling and uplink.
        let active_tool = match ep.phase {
            Phase::Performing { idx, .. } => routine.steps()[idx].tool(),
            Phase::Misusing { tool, .. } => Some(tool),
            Phase::Frozen { .. } | Phase::Done => None,
        };
        let mut events = std::mem::take(&mut self.scratch_events);
        // Sample every node first: transmissions raised in the same
        // 100 ms tick contend for the shared medium (CSMA/CA).
        let mut outbox = std::mem::take(&mut self.scratch_outbox);
        for (idx, (node, node_rng)) in self.nodes.iter_mut().enumerate() {
            let in_use = active_tool == Some(ToolId::new(node.uid().raw()));
            if let Some(packet) = node.sample_tick(in_use, now.as_millis(), node_rng) {
                outbox.push((idx, packet));
            }
        }
        rec.add(Ctr::SampleWindows, self.nodes.len() as u64);
        rec.add(Ctr::ToolInUseWindows, outbox.len() as u64);
        let mut slots = std::mem::take(&mut self.scratch_slots);
        self.config.medium.resolve_slot_into(outbox.len(), &mut self.net_rng, &mut slots);
        for ((idx, packet), won_medium) in outbox.drain(..).zip(slots.iter().copied()) {
            let node = &mut self.nodes[idx].0;
            rec.inc(Ctr::RadioFramesTx);
            if !won_medium {
                // Collision: the frame is lost before the link layer;
                // the energy was still spent.
                node.energy_mut().charge_tx(packet.encoded_len());
                rec.inc(Ctr::RadioLost);
                rec.event(now, TraceKind::RadioLost { node: packet.src.raw(), attempts: 0 });
                continue;
            }
            let outcome = self.network.send_uplink(&packet, &mut self.net_rng);
            let (attempts, delivered) = match outcome {
                coreda_sensornet::network::SendOutcome::Delivered {
                    attempts, duplicates, ..
                } => {
                    rec.inc(Ctr::RadioDelivered);
                    rec.add(Ctr::RadioDuplicates, u64::from(duplicates));
                    (attempts, true)
                }
                coreda_sensornet::network::SendOutcome::Lost { attempts } => {
                    rec.inc(Ctr::RadioLost);
                    rec.event(now, TraceKind::RadioLost { node: packet.src.raw(), attempts });
                    (attempts, false)
                }
            };
            rec.add(Ctr::RadioAttempts, u64::from(attempts));
            // Radio energy: every attempt transmits the frame;
            // a delivery also receives one acknowledgement.
            node.energy_mut().charge_tx(packet.encoded_len() * usize::from(attempts));
            if delivered {
                node.energy_mut().charge_rx(8);
                if let Some(p) = self.base.receive(packet) {
                    rec.inc(Ctr::ReportsAccepted);
                    report_sink(p.src, now);
                    if let Some(ev) = self.sensing.on_report(p.src, now) {
                        events.push(ev);
                    }
                }
            }
        }
        self.scratch_outbox = outbox;
        self.scratch_slots = slots;

        // 4. Idle detection (situation 1).
        if !ep.completed {
            if let Some(ev) = self.sensing.check_idle(now) {
                events.push(ev);
            }
        }

        // 5. Interpret step events.
        for ev in events.drain(..) {
            if ep.completed {
                break;
            }
            log.push(ev.at, LogKind::StepSensed(ev.step));
            if ev.step.is_idle() {
                rec.inc(Ctr::IdleEvents);
                // Idle-detection delay: how long after the patient
                // actually froze did sensing notice. Only measurable
                // when the freeze instant is known.
                let idle_ms = match ep.phase {
                    Phase::Frozen { since, .. } => {
                        let ms = now.saturating_duration_since(since).as_millis();
                        rec.latency_ms(Stage::IdleDetect, ms as f64);
                        ms.min(u64::from(u32::MAX)) as u32
                    }
                    _ => 0,
                };
                rec.event(ev.at, TraceKind::IdleDetected { idle_ms });
            } else {
                rec.inc(Ctr::StepsExtracted);
                rec.event(ev.at, TraceKind::StepExtracted { step: ev.step });
            }
            match ep.tracked {
                None => {
                    if !ev.step.is_idle() {
                        // First step triggers the start of prediction
                        // (Table 4's note).
                        ep.tracked = Some((StepId::IDLE, ev.step));
                        ep.reminders_since_advance = 0;
                    }
                }
                Some((prev, cur)) => {
                    let predicted = self.planner.predict_tool(prev, cur);
                    rec.inc(Ctr::PlannerDecisions);
                    if ev.step.is_idle() {
                        // Situation 1: idle past the timeout.
                        if let Some((reminder_prompt, reminder)) = self.issue_reminder(
                            prev,
                            cur,
                            Trigger::IdleTimeout,
                            ep.reminders_since_advance,
                        ) {
                            self.record_reminder(&mut rec, now, &reminder_prompt, false);
                            self.deliver_led_commands(&reminder, now, &mut rec);
                            log.push(now, LogKind::ReminderIssued(reminder));
                            out.reminders += 1;
                            ep.pending = Some((now + self.config.response_delay, reminder_prompt));
                            ep.last_reminder = Some(now);
                            ep.reminders_since_advance += 1;
                        }
                    } else if ev.step.tool() == predicted {
                        // The expected step: advance, praise if we had
                        // been prompting, learn online.
                        if ep.reminders_since_advance > 0 {
                            log.push(now, LogKind::Praised);
                            out.praises += 1;
                            rec.inc(Ctr::Praises);
                            let latency_ms = ep
                                .last_reminder
                                .map(|at| now.saturating_duration_since(at).as_millis())
                                .unwrap_or(0);
                            rec.latency_ms(Stage::PromptToCompliance, latency_ms as f64);
                            rec.event(
                                now,
                                TraceKind::Praised {
                                    latency_ms: latency_ms.min(u64::from(u32::MAX)) as u32,
                                },
                            );
                        }
                        let is_last = ev.step == routine.last();
                        if self.config.online_learning {
                            if let Some(tool) = predicted {
                                let prompt = Prompt { tool, level: ReminderLevel::Minimal };
                                Arc::make_mut(&mut self.planner)
                                    .observe_transition(prev, cur, ev.step, prompt, is_last);
                            }
                        }
                        ep.tracked = Some((cur, ev.step));
                        ep.reminders_since_advance = 0;
                        ep.pending = None;
                        self.clear_all_leds();
                    } else if ev.step == cur {
                        // Sensing re-opened the current step; ignore.
                    } else if self.resync_lookahead(prev, cur, ev.step) {
                        // A missed detection: the sensed step is the one
                        // *after* the expected one. Jump forward.
                        let expected = predicted.map(StepId::from_tool).unwrap_or(StepId::IDLE);
                        ep.tracked = Some((expected, ev.step));
                        ep.reminders_since_advance = 0;
                        ep.pending = None;
                    } else {
                        // Situation 2: the wrong tool is in use.
                        if let Some((reminder_prompt, reminder)) = self.issue_reminder(
                            prev,
                            cur,
                            Trigger::WrongTool {
                                used: ev.step.tool().expect("non-idle step has a tool"),
                            },
                            ep.reminders_since_advance,
                        ) {
                            // Wrong-tool reaction time: misuse began →
                            // red blink goes out.
                            if let Phase::Misusing { since, .. } = ep.phase {
                                let ms = now.saturating_duration_since(since).as_millis();
                                rec.latency_ms(Stage::WrongToolRedBlink, ms as f64);
                            }
                            self.record_reminder(&mut rec, now, &reminder_prompt, true);
                            self.deliver_led_commands(&reminder, now, &mut rec);
                            log.push(now, LogKind::ReminderIssued(reminder));
                            out.reminders += 1;
                            ep.pending = Some((now + self.config.response_delay, reminder_prompt));
                            ep.last_reminder = Some(now);
                            ep.reminders_since_advance += 1;
                        }
                    }
                }
            }
        }
        self.scratch_events = events;

        // 6. Re-prompt an unanswered reminder, escalated.
        if !ep.completed
            && ep.pending.is_none()
            && matches!(ep.phase, Phase::Frozen { .. } | Phase::Misusing { .. })
        {
            if let (Some((prev, cur)), Some(last)) = (ep.tracked, ep.last_reminder) {
                if now.saturating_duration_since(last) >= self.config.reprompt_interval {
                    let trigger = match ep.phase {
                        Phase::Misusing { tool, .. } => Trigger::WrongTool { used: tool },
                        _ => Trigger::IdleTimeout,
                    };
                    if let Some((reminder_prompt, reminder)) =
                        self.issue_reminder(prev, cur, trigger, ep.reminders_since_advance)
                    {
                        let wrong_tool = matches!(trigger, Trigger::WrongTool { .. });
                        self.record_reminder(&mut rec, now, &reminder_prompt, wrong_tool);
                        rec.inc(Ctr::RepromptEscalations);
                        rec.event(
                            now,
                            TraceKind::Reprompt {
                                escalations: ep.reminders_since_advance.min(255) as u8,
                            },
                        );
                        self.deliver_led_commands(&reminder, now, &mut rec);
                        log.push(now, LogKind::ReminderIssued(reminder));
                        out.reminders += 1;
                        ep.pending = Some((now + self.config.response_delay, reminder_prompt));
                        ep.last_reminder = Some(now);
                        ep.reminders_since_advance += 1;
                    }
                }
            }
        }

        ep.ticks_done += 1;
        if (ep.completed && matches!(ep.phase, Phase::Done)) || ep.ticks_done >= ep.max_ticks {
            ep.finished = true;
        }
        out.finished = ep.finished;
        out
    }

    /// Whether `sensed` matches the prediction *two* steps ahead of the
    /// tracked state — the signature of one missed detection.
    fn resync_lookahead(&self, prev: StepId, cur: StepId, sensed: StepId) -> bool {
        let _ = prev;
        let Some(expected_tool) = self.planner.predict_tool(prev, cur) else {
            return false;
        };
        let expected = StepId::from_tool(expected_tool);
        self.planner.predict_tool(cur, expected).map(StepId::from_tool) == Some(sensed)
    }

    /// Records the counters and trace event common to every reminder
    /// issue site (first prompt, wrong tool, re-prompt).
    fn record_reminder(
        &self,
        rec: &mut MaybeRec<'_>,
        now: SimTime,
        prompt: &Prompt,
        wrong_tool: bool,
    ) {
        rec.inc(Ctr::PromptsRendered);
        rec.inc(Ctr::RemindersIssued);
        rec.event(
            now,
            TraceKind::ReminderIssued {
                tool: prompt.tool,
                specific: matches!(prompt.level, ReminderLevel::Specific),
                wrong_tool,
            },
        );
    }

    /// Radios the reminder's LED blink commands down to the tool nodes.
    /// Lost frames simply leave that LED dark — the display methods (text
    /// and picture) are wired and always shown.
    fn deliver_led_commands(
        &mut self,
        reminder: &crate::reminding::Reminder,
        now: SimTime,
        rec: &mut MaybeRec<'_>,
    ) {
        use crate::reminding::ReminderMethod;
        use coreda_sensornet::led::LedColor;
        use coreda_sensornet::packet::{Packet, Payload};
        for method in &reminder.methods {
            let (tool, pattern, color) = match method {
                ReminderMethod::GreenLed { tool, pattern } => (*tool, *pattern, LedColor::Green),
                ReminderMethod::RedLed { tool, pattern } => (*tool, *pattern, LedColor::Red),
                ReminderMethod::TextMessage(_) | ReminderMethod::ToolPicture(_) => continue,
            };
            let dest: coreda_sensornet::node::NodeId = tool.into();
            let seq = self.downlink_seq;
            self.downlink_seq = self.downlink_seq.wrapping_add(1);
            let packet = Packet::new(dest, seq, 0, Payload::Led { pattern });
            let delivered =
                self.network.send_downlink(dest, &packet, &mut self.net_rng).is_delivered();
            rec.inc(Ctr::LedFramesTx);
            rec.inc(if delivered { Ctr::LedDelivered } else { Ctr::LedLost });
            rec.event(
                now,
                TraceKind::LedCommand { tool, red: color == LedColor::Red, delivered },
            );
            if delivered {
                if let Some((node, _)) = self.nodes.iter_mut().find(|(n, _)| n.uid() == dest) {
                    // A crashed mote leaves the frame on the air unheard.
                    if node.is_failed() {
                        continue;
                    }
                    node.energy_mut().charge_rx(packet.encoded_len());
                    node.energy_mut().charge_led(pattern.duration().as_millis());
                    node.set_led(color, true);
                }
            }
        }
    }

    /// Turns every node's LEDs off (the user advanced; the reminder is
    /// over).
    fn clear_all_leds(&mut self) {
        for (node, _) in &mut self.nodes {
            node.clear_leds();
        }
    }

    fn issue_reminder(
        &self,
        prev: StepId,
        cur: StepId,
        trigger: Trigger,
        escalations: u32,
    ) -> Option<(Prompt, crate::reminding::Reminder)> {
        if self.config.min_prompt_confidence > 0.0 {
            let confidence = self.planner.prediction_confidence(prev, cur)?;
            if confidence < self.config.min_prompt_confidence {
                return None;
            }
        }
        let mut prompt = self.planner.predict(prev, cur)?;
        if escalations > 0 {
            // Unanswered reminders escalate to the specific level.
            prompt.level = ReminderLevel::Specific;
        }
        // A prompt for a tool outside the ADL cannot be rendered.
        self.spec.tool(prompt.tool)?;
        let reminder = self.reminding.compose(prompt, trigger, &self.spec);
        Some((prompt, reminder))
    }

    #[allow(clippy::too_many_arguments)]
    fn advance_patient(
        &mut self,
        phase: Phase,
        routine: &Routine,
        behavior: &mut dyn PatientBehavior,
        now: SimTime,
        log: &mut MaybeLog<'_>,
        rng: &mut SimRng,
    ) -> Phase {
        match phase {
            Phase::Performing { idx, until } if now >= until => {
                let next_idx = idx + 1;
                if next_idx >= routine.len() {
                    return Phase::Done;
                }
                match behavior.at_boundary(next_idx, routine, &self.spec, rng) {
                    PatientAction::Proceed => {
                        self.start_step(next_idx, routine, behavior, now, log, rng)
                    }
                    PatientAction::WrongTool(tool) => {
                        log.push(now, LogKind::PatientMisused(tool));
                        Phase::Misusing { tool, since: now, resume_idx: next_idx }
                    }
                    PatientAction::Freeze => {
                        log.push(now, LogKind::PatientFroze);
                        Phase::Frozen { since: now, resume_idx: next_idx }
                    }
                }
            }
            Phase::Misusing { since, resume_idx, .. }
                if now.saturating_duration_since(since) >= self.config.misuse_recovery =>
            {
                self.start_step(resume_idx, routine, behavior, now, log, rng)
            }
            Phase::Frozen { since, resume_idx }
                if now.saturating_duration_since(since) >= self.config.freeze_recovery =>
            {
                self.start_step(resume_idx, routine, behavior, now, log, rng)
            }
            other => other,
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn react_to_prompt(
        &mut self,
        phase: Phase,
        prompt: Prompt,
        routine: &Routine,
        behavior: &mut dyn PatientBehavior,
        now: SimTime,
        log: &mut MaybeLog<'_>,
        rng: &mut SimRng,
    ) -> Phase {
        let resume_idx = match phase {
            Phase::Misusing { resume_idx, .. } | Phase::Frozen { resume_idx, .. } => resume_idx,
            // Performing / Done patients ignore prompts.
            other => return other,
        };
        let correct = routine.steps()[resume_idx];
        // A prompt only helps if it points at the user's actual next step
        // and the user complies with it.
        if correct.tool() == Some(prompt.tool) && behavior.complies(&prompt, rng) {
            self.start_step(resume_idx, routine, behavior, now, log, rng)
        } else {
            phase
        }
    }

    fn start_step(
        &mut self,
        idx: usize,
        routine: &Routine,
        behavior: &mut dyn PatientBehavior,
        now: SimTime,
        log: &mut MaybeLog<'_>,
        rng: &mut SimRng,
    ) -> Phase {
        let step_id = routine.steps()[idx];
        let step = self.spec.step(step_id).expect("routine step in spec");
        let duration = behavior.step_duration(step, rng);
        log.push(now, LogKind::PatientStarted(step_id));
        Phase::Performing { idx, until: now + duration }
    }

    /// Captures the system's complete mutable state (checkpointing):
    /// the learned planner state, the sensing pipeline, every node with
    /// its RNG stream, the radio channels and counters, the base
    /// station's dedup table, and the network RNG / downlink sequence.
    ///
    /// Everything else — the spec, config, subsystem wiring, scratch
    /// buffers — is construction-time and rebuilt from the same inputs.
    #[must_use]
    pub fn export_state(&self) -> SystemState {
        let (sensing_current, sensing_last_report, sensing_history) = self.sensing.export_state();
        SystemState {
            learned: self.planner.capture_learned(),
            sensing_current,
            sensing_last_report,
            sensing_history,
            nodes: self
                .nodes
                .iter()
                .map(|(n, rng)| {
                    let (state, base) = rng.state_parts();
                    (n.export_state(), state, base)
                })
                .collect(),
            net_rng: self.net_rng.state_parts(),
            downlink_seq: self.downlink_seq,
            channels: self.network.channel_states(),
            uplink: self.network.uplink_counters(),
            downlink: self.network.downlink_counters(),
            base_last_seqs: self.base.last_seqs(),
            base_accepted: self.base.accepted(),
            base_duplicates: self.base.duplicates(),
        }
    }

    /// Restores state captured by [`Coreda::export_state`] onto a system
    /// freshly built from the *same* spec, config and seed. Apply any
    /// fault-injected link-loss model (via [`Coreda::set_link_loss`])
    /// *before* calling — restoring channel states must come after the
    /// loss model is in place, because swapping the loss model resets
    /// per-link channel state.
    ///
    /// # Errors
    ///
    /// Returns an error if the captured planner state cannot be applied
    /// to this system's learner kind.
    ///
    /// # Panics
    ///
    /// Panics if the node set differs from the capture (a checkpoint
    /// from a different ADL spec).
    pub fn restore_state(&mut self, state: &SystemState) -> Result<(), &'static str> {
        if let Some(learned) = &state.learned {
            // A fleet restore would otherwise split every home off the
            // shared trained planner: when the captured state is exactly
            // what this planner already holds (read-only serving never
            // moves it), keep the share and skip the copy.
            if !self.planner.learned_matches(learned) {
                Arc::make_mut(&mut self.planner).apply_learned(learned)?;
            }
        }
        self.sensing.restore_state(
            state.sensing_current,
            state.sensing_last_report,
            state.sensing_history.clone(),
        );
        assert_eq!(self.nodes.len(), state.nodes.len(), "checkpoint node count mismatch");
        for ((node, rng), (node_state, rng_state, rng_base)) in
            self.nodes.iter_mut().zip(&state.nodes)
        {
            node.restore_state(node_state);
            *rng = SimRng::from_state_parts(*rng_state, *rng_base);
        }
        let (net_state, net_base) = state.net_rng;
        self.net_rng = SimRng::from_state_parts(net_state, net_base);
        self.downlink_seq = state.downlink_seq;
        self.network.restore_channel_states(&state.channels);
        self.network.restore_counters(state.uplink, state.downlink);
        self.base.restore_state(
            &state.base_last_seqs,
            state.base_accepted,
            state.base_duplicates,
        );
        Ok(())
    }
}

/// A [`Coreda`] system's captured state — the checkpoint-codec view of
/// one assembled reminding pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemState {
    /// Learned planner state, when the learner supports capture.
    pub learned: Option<LearnedState>,
    /// Sensing: the believed current step.
    pub sensing_current: Option<StepId>,
    /// Sensing: when the last report arrived.
    pub sensing_last_report: Option<SimTime>,
    /// Sensing: the recognised step history.
    pub sensing_history: Vec<StepEvent>,
    /// Per-node `(state, rng state, rng base seed)` in spec tool order.
    pub nodes: Vec<(NodeState, [u64; 4], u64)>,
    /// Network RNG `(state, base seed)`.
    pub net_rng: ([u64; 4], u64),
    /// Next downlink sequence number.
    pub downlink_seq: u16,
    /// Per-link channel states, sorted by node id.
    pub channels: Vec<(NodeId, bool, u64, u64)>,
    /// Uplink aggregate counters.
    pub uplink: LinkCounters,
    /// Downlink aggregate counters.
    pub downlink: LinkCounters,
    /// Base-station dedup table, sorted by node id.
    pub base_last_seqs: Vec<(NodeId, u16)>,
    /// Reports the base station accepted.
    pub base_accepted: u64,
    /// Duplicate frames the base station suppressed.
    pub base_duplicates: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::live::{ScriptedBehavior, StochasticBehavior};
    use coreda_adl::activity::catalog;
    use coreda_adl::patient::PatientProfile;

    fn trained_system(seed: u64) -> (Coreda, Routine) {
        let tea = catalog::tea_making();
        let routine = Routine::canonical(&tea);
        let mut system = Coreda::new(tea, "Mr. Tanaka", CoredaConfig::default(), seed);
        let mut rng = SimRng::seed_from(seed ^ 0xABCD);
        for _ in 0..250 {
            system.planner_mut().train_episode(routine.steps(), &mut rng);
        }
        (system, routine)
    }

    #[test]
    fn clean_live_episode_completes_without_reminders() {
        let (mut system, routine) = trained_system(1);
        let mut behavior = StochasticBehavior::new(PatientProfile::unimpaired("x"));
        let mut rng = SimRng::seed_from(2);
        let log = system.run_live(&routine, &mut behavior, &mut rng);
        assert!(log.completed_at().is_some(), "episode should complete:\n{}", log.render());
        assert_eq!(log.reminders().len(), 0, "no errors → no reminders:\n{}", log.render());
        assert_eq!(log.praise_count(), 0);
    }

    #[test]
    fn frozen_patient_gets_idle_reminder_and_completes() {
        let (mut system, routine) = trained_system(3);
        let mut behavior = ScriptedBehavior::new().with_error(2, PatientAction::Freeze);
        let mut rng = SimRng::seed_from(4);
        let log = system.run_live(&routine, &mut behavior, &mut rng);
        let reminders = log.reminders();
        assert!(!reminders.is_empty(), "freeze should trigger a reminder:\n{}", log.render());
        assert!(
            matches!(reminders[0].1.trigger, Trigger::IdleTimeout),
            "trigger should be the idle timeout"
        );
        assert!(log.completed_at().is_some(), "prompt should unblock:\n{}", log.render());
        assert!(log.praise_count() >= 1, "correct resumption is praised");
    }

    #[test]
    fn wrong_tool_gets_red_led_reminder() {
        let (mut system, routine) = trained_system(5);
        let wrong = ToolId::new(catalog::TEA_CUP);
        let mut behavior =
            ScriptedBehavior::new().with_error(1, PatientAction::WrongTool(wrong));
        let mut rng = SimRng::seed_from(6);
        let log = system.run_live(&routine, &mut behavior, &mut rng);
        let reminders = log.reminders();
        assert!(!reminders.is_empty(), "wrong tool should trigger:\n{}", log.render());
        let (_, first) = reminders[0];
        assert_eq!(first.trigger, Trigger::WrongTool { used: wrong });
        assert_eq!(first.method_count(), 4, "wrong-tool reminders carry 4 methods");
        assert!(log.completed_at().is_some(), "episode should recover:\n{}", log.render());
    }

    #[test]
    fn untrained_planner_fails_to_help() {
        // With a fresh (untrained) planner, the prompt after a freeze is
        // wrong, so the patient stays frozen until self-recovery — the
        // episode takes much longer.
        let tea = catalog::tea_making();
        let routine = Routine::canonical(&tea);
        let mut fresh = Coreda::new(tea, "x", CoredaConfig::default(), 7);
        let mut behavior = ScriptedBehavior::new().with_error(2, PatientAction::Freeze);
        let mut rng = SimRng::seed_from(8);
        let log_fresh = fresh.run_live(&routine, &mut behavior, &mut rng);

        let (mut trained, _) = trained_system(7);
        let mut behavior2 = ScriptedBehavior::new().with_error(2, PatientAction::Freeze);
        let mut rng2 = SimRng::seed_from(8);
        let log_trained = trained.run_live(&routine, &mut behavior2, &mut rng2);

        let t_fresh = log_fresh.completed_at().expect("self-recovery still completes");
        let t_trained = log_trained.completed_at().expect("prompt completes");
        assert!(
            t_fresh > t_trained,
            "trained system should finish sooner: fresh {t_fresh} vs trained {t_trained}"
        );
    }

    #[test]
    fn live_runs_are_deterministic_under_seed() {
        let run = || {
            let (mut system, routine) = trained_system(11);
            let mut behavior = StochasticBehavior::new(PatientProfile::moderate("x"));
            let mut rng = SimRng::seed_from(12);
            system.run_live(&routine, &mut behavior, &mut rng)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn online_learning_updates_planner_during_live_run() {
        let tea = catalog::tea_making();
        let routine = Routine::canonical(&tea);
        let config = CoredaConfig { online_learning: true, ..CoredaConfig::default() };
        let mut system = Coreda::new(tea, "x", config, 13);
        // Warm-start so predictions are right and transitions are accepted.
        let mut rng = SimRng::seed_from(14);
        for _ in 0..250 {
            system.planner_mut().train_episode(routine.steps(), &mut rng);
        }
        let before = system.planner().q_table().clone();
        let mut behavior = StochasticBehavior::new(PatientProfile::unimpaired("x"));
        let log = system.run_live(&routine, &mut behavior, &mut rng);
        assert!(log.completed_at().is_some());
        assert_ne!(&before, system.planner().q_table(), "online learning should move Q");
    }

    #[test]
    fn reminder_lights_the_target_led_and_advance_clears_it() {
        let (mut system, routine) = trained_system(17);
        let mut behavior = ScriptedBehavior::new().with_error(2, PatientAction::Freeze);
        let mut rng = SimRng::seed_from(18);
        let log = system.run_live(&routine, &mut behavior, &mut rng);
        assert!(!log.reminders().is_empty(), "{}", log.render());
        // After the episode ends the user had advanced, so every LED is
        // dark again.
        use coreda_sensornet::led::LedColor;
        for node in system.nodes() {
            assert!(!node.leds().is_on(LedColor::Green));
            assert!(!node.leds().is_on(LedColor::Red));
        }
    }

    #[test]
    fn live_episode_consumes_node_energy() {
        let (mut system, routine) = trained_system(19);
        assert_eq!(system.total_energy_uj(), 0.0);
        let mut behavior = StochasticBehavior::new(PatientProfile::unimpaired("x"));
        let mut rng = SimRng::seed_from(20);
        let log = system.run_live(&routine, &mut behavior, &mut rng);
        assert!(log.completed_at().is_some());
        let total = system.total_energy_uj();
        assert!(total > 0.0, "sampling and radio must cost energy");
        // The active tools (which transmitted) consumed more than a tool
        // that was never used would from sampling alone — compare the
        // tea-box (used) against the sampling-only floor.
        let teabox = system
            .node(ToolId::new(coreda_adl::activity::catalog::TEA_BOX))
            .unwrap()
            .energy();
        let (samples, tx, _, _, _) = teabox.breakdown();
        assert!(samples > 0);
        assert!(tx > 0, "the used tool should have transmitted reports");
    }

    #[test]
    fn tool_descriptions_reach_live_reminders() {
        let (mut system, routine) = trained_system(27);
        system.describe_tool(
            ToolId::new(catalog::TEA_CUP),
            "blue tea-cup on the left shelf",
        );
        // Force an escalated (specific) reminder by having the patient
        // ignore the first prompt: freeze with low compliance.
        let profile = coreda_adl::patient::PatientProfile::builder("Mr. Tanaka")
            .forget_prob(0.0)
            .compliance(0.0)
            .build();
        let _ = profile; // scripted behavior drives the freeze below
        #[derive(Debug)]
        struct IgnoresOnce {
            ignored: bool,
            inner: ScriptedBehavior,
        }
        impl crate::live::PatientBehavior for IgnoresOnce {
            fn at_boundary(
                &mut self,
                idx: usize,
                routine: &Routine,
                spec: &coreda_adl::activity::AdlSpec,
                rng: &mut SimRng,
            ) -> PatientAction {
                self.inner.at_boundary(idx, routine, spec, rng)
            }
            fn step_duration(
                &mut self,
                step: &coreda_adl::step::Step,
                rng: &mut SimRng,
            ) -> coreda_des::time::SimDuration {
                self.inner.step_duration(step, rng)
            }
            fn complies(&mut self, _p: &crate::reminding::Prompt, _rng: &mut SimRng) -> bool {
                if self.ignored {
                    true
                } else {
                    self.ignored = true;
                    false
                }
            }
        }
        let mut behavior = IgnoresOnce {
            ignored: false,
            inner: ScriptedBehavior::new().with_error(3, PatientAction::Freeze),
        };
        let mut rng = SimRng::seed_from(28);
        let log = system.run_live(&routine, &mut behavior, &mut rng);
        let texts: Vec<String> = log
            .reminders()
            .iter()
            .flat_map(|(_, r)| r.methods.iter())
            .filter_map(|m| match m {
                crate::reminding::ReminderMethod::TextMessage(t) => Some(t.clone()),
                _ => None,
            })
            .collect();
        assert!(
            texts.iter().any(|t| t.contains("blue tea-cup on the left shelf")),
            "the escalated reminder should use the description: {texts:?}\n{}",
            log.render()
        );
    }

    #[test]
    fn confidence_gating_silences_an_untrained_planner() {
        let tea = catalog::tea_making();
        let routine = Routine::canonical(&tea);
        let gated = CoredaConfig { min_prompt_confidence: 0.5, ..CoredaConfig::default() };

        // Untrained + gated: the system holds its tongue.
        let mut fresh = Coreda::new(tea.clone(), "x", gated, 23);
        let mut behavior = ScriptedBehavior::new().with_error(2, PatientAction::Freeze);
        let mut rng = SimRng::seed_from(24);
        let log = fresh.run_live(&routine, &mut behavior, &mut rng);
        assert_eq!(log.reminders().len(), 0, "no confident prediction → no reminder:\n{}", log.render());

        // Untrained + ungated: it guesses (and is usually wrong).
        let mut noisy = Coreda::new(tea.clone(), "x", CoredaConfig::default(), 23);
        let mut behavior = ScriptedBehavior::new().with_error(2, PatientAction::Freeze);
        let mut rng = SimRng::seed_from(24);
        let log = noisy.run_live(&routine, &mut behavior, &mut rng);
        assert!(!log.reminders().is_empty(), "ungated untrained planner guesses:\n{}", log.render());

        // Trained + gated: confidence is high, reminders flow again.
        let mut trained = Coreda::new(tea, "x", gated, 37);
        let mut train_rng = SimRng::seed_from(25);
        for _ in 0..250 {
            trained.planner_mut().train_episode(routine.steps(), &mut train_rng);
        }
        let mut behavior = ScriptedBehavior::new().with_error(2, PatientAction::Freeze);
        let mut rng = SimRng::seed_from(24);
        let log = trained.run_live(&routine, &mut behavior, &mut rng);
        assert!(!log.reminders().is_empty(), "trained planner is confident:\n{}", log.render());
        assert!(log.praise_count() >= 1);
    }

    #[test]
    fn confidence_rises_with_training() {
        let tea = catalog::tea_making();
        let routine = Routine::canonical(&tea);
        let mut planner = crate::planning::PlanningSubsystem::new(&tea, crate::planning::PlanningConfig::default());
        let (prev, cur, _) = routine.transitions()[1];
        let before = planner.prediction_confidence(prev, cur).unwrap();
        let mut rng = SimRng::seed_from(26);
        for _ in 0..250 {
            planner.train_episode(routine.steps(), &mut rng);
        }
        let after = planner.prediction_confidence(prev, cur).unwrap();
        assert_eq!(before, 0.0, "untrained states have zero confidence");
        assert!(after > 0.5, "trained states are confident, got {after}");
    }

    #[test]
    fn export_restore_resumes_live_episode_identically() {
        // Ghost: an uninterrupted live episode.
        let (mut ghost, routine) = trained_system(31);
        let mut gb = StochasticBehavior::new(PatientProfile::moderate("x"));
        let mut grng = SimRng::seed_from(32);
        let glog = ghost.run_live(&routine, &mut gb, &mut grng);

        // Interrupted: same construction, killed after 40 ticks.
        let (mut sys, routine) = trained_system(31);
        let mut b = StochasticBehavior::new(PatientProfile::moderate("x"));
        let mut rng = SimRng::seed_from(32);
        let mut log = EpisodeLog::new();
        let mut ep = sys.begin_live(&routine, &mut b, SimTime::ZERO, &mut rng, Some(&mut log));
        for _ in 0..40 {
            assert!(!ep.finished, "episode should outlive the kill point");
            let now = ep.next_tick_at();
            sys.live_tick(&mut ep, &routine, &mut b, now, &mut rng, Some(&mut log), None, &mut |_, _| {});
        }
        let sys_state = sys.export_state();
        let ep_state = ep.export_state();
        let (rng_state, rng_base) = rng.state_parts();
        drop(sys);

        // Resume onto a freshly built twin.
        let (mut resumed, routine) = trained_system(31);
        resumed.restore_state(&sys_state).expect("watkins restore");
        let mut ep = LiveEpisode::from_state(&ep_state);
        let mut rng = SimRng::from_state_parts(rng_state, rng_base);
        let mut b = StochasticBehavior::new(PatientProfile::moderate("x"));
        while !ep.finished() {
            let now = ep.next_tick_at();
            resumed.live_tick(&mut ep, &routine, &mut b, now, &mut rng, Some(&mut log), None, &mut |_, _| {});
        }
        assert_eq!(log, glog, "resumed timeline must match the uninterrupted one");
        assert_eq!(
            resumed.total_energy_uj(),
            ghost.total_energy_uj(),
            "energy accumulators must carry across the snapshot bit-exactly"
        );
        assert_eq!(resumed.export_state(), ghost.export_state());
    }

    #[test]
    fn offline_training_via_episodes() {
        use coreda_adl::episode::EpisodeGenerator;
        use coreda_adl::routine::RoutineSet;
        let tea = catalog::tea_making();
        let routine = Routine::canonical(&tea);
        let gen = EpisodeGenerator::new(
            tea.clone(),
            RoutineSet::single(routine.clone()),
            PatientProfile::unimpaired("x"),
        );
        let mut rng = SimRng::seed_from(15);
        let episodes = gen.generate_batch(200, &mut rng);
        let mut system = Coreda::new(tea, "x", CoredaConfig::default(), 16);
        system.train_offline(&episodes, &mut rng);
        assert_eq!(system.planner().accuracy_vs_routine(&routine), 1.0);
    }
}
