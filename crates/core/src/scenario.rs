//! The paper's Figure 1 scenario, replayed end to end.
//!
//! Mr. Tanaka makes tea in four steps. His dementia worsens: after
//! putting tea-leaf into the kettle he wrongly takes the tea-cup, and
//! CoReDA prompts him toward the electronic pot with all four methods
//! (text, red LED on the cup, green LED on the pot, picture). When he
//! uses the pot he is praised. After pouring tea he freezes; once the
//! idle timeout elapses CoReDA prompts him to drink with three methods,
//! and praises him when he does.

use coreda_adl::activity::catalog;
use coreda_adl::patient::PatientAction;
use coreda_adl::routine::Routine;
use coreda_adl::step::StepId;
use coreda_adl::tool::ToolId;
use coreda_des::rng::SimRng;
use coreda_des::time::SimDuration;

use crate::live::{EpisodeLog, ScriptedBehavior};
use crate::system::{Coreda, CoredaConfig};

/// Trains a CoReDA instance on Mr. Tanaka's tea-making routine and
/// replays the Figure 1 scenario. Returns the timeline log.
///
/// The scripted errors mirror the figure: a wrong tea-cup grab before
/// step 2, and a freeze before step 4.
///
/// # Examples
///
/// ```
/// let log = coreda_core::scenario::figure1(2007);
/// assert!(log.completed_at().is_some());
/// assert_eq!(log.reminders().len(), 2);
/// ```
#[must_use]
pub fn figure1(seed: u64) -> EpisodeLog {
    let tea = catalog::tea_making();
    let routine = Routine::canonical(&tea);
    let mut system = Coreda::new(tea, "Mr. Tanaka", CoredaConfig::default(), seed);

    // Learn Tanaka's routine from recorded episodes first.
    let mut rng = SimRng::seed_from(seed.wrapping_add(1));
    for _ in 0..250 {
        system.planner_mut().train_episode(routine.steps(), &mut rng);
    }

    // Script the figure's two lapses.
    let mut behavior = ScriptedBehavior::new()
        .with_duration(StepId::from_raw(catalog::TEA_BOX), SimDuration::from_secs(12))
        .with_duration(StepId::from_raw(catalog::POT), SimDuration::from_secs(5))
        .with_duration(StepId::from_raw(catalog::KETTLE), SimDuration::from_secs(6))
        .with_duration(StepId::from_raw(catalog::TEA_CUP), SimDuration::from_secs(5))
        .with_error(1, PatientAction::WrongTool(ToolId::new(catalog::TEA_CUP)))
        .with_error(3, PatientAction::Freeze);

    let mut live_rng = SimRng::seed_from(seed.wrapping_add(2));
    system.run_live(&routine, &mut behavior, &mut live_rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::live::LogKind;
    use crate::reminding::Trigger;

    #[test]
    fn figure1_timeline_matches_the_paper() {
        let log = figure1(2007);
        let reminders = log.reminders();
        assert_eq!(reminders.len(), 2, "two lapses → two reminders:\n{}", log.render());

        // First lapse: wrong tool → 4 delivery methods, red LED included.
        let (t_wrong, wrong) = reminders[0];
        assert!(matches!(wrong.trigger, Trigger::WrongTool { .. }));
        assert_eq!(wrong.method_count(), 4);
        assert_eq!(Some(wrong.prompt.tool), StepId::from_raw(catalog::POT).tool());

        // Second lapse: idle timeout → 3 methods.
        let (t_idle, idle) = reminders[1];
        assert_eq!(idle.trigger, Trigger::IdleTimeout);
        assert_eq!(idle.method_count(), 3);
        assert_eq!(Some(idle.prompt.tool), StepId::from_raw(catalog::TEA_CUP).tool());
        assert!(t_idle > t_wrong);

        // Both corrections are praised, and the ADL completes.
        assert_eq!(log.praise_count(), 2, "{}", log.render());
        assert!(log.completed_at().is_some());

        // Ordering: wrong-tool reminder → praise → idle reminder → praise
        // → completed.
        let mut kinds = log.entries().iter().map(|(_, k)| k);
        assert!(kinds.any(|k| matches!(k, LogKind::ReminderIssued(r)
            if matches!(r.trigger, Trigger::WrongTool { .. }))));
        assert!(kinds.any(|k| matches!(k, LogKind::Praised)));
        assert!(kinds.any(|k| matches!(k, LogKind::ReminderIssued(r)
            if r.trigger == Trigger::IdleTimeout)));
        assert!(kinds.any(|k| matches!(k, LogKind::Praised)));
        assert!(kinds.any(|k| matches!(k, LogKind::AdlCompleted)));
    }

    #[test]
    fn figure1_is_deterministic() {
        assert_eq!(figure1(42), figure1(42));
    }

    #[test]
    fn different_seeds_may_differ_but_still_complete() {
        for seed in [1, 2, 3, 4, 5] {
            let log = figure1(seed);
            assert!(
                log.completed_at().is_some(),
                "seed {seed} failed to complete:\n{}",
                log.render()
            );
        }
    }
}
