//! Caregiver reports.
//!
//! The point of CoReDA is to reduce caregiver burden — which means the
//! caregiver needs to *see* what the system did and how the patient is
//! doing. [`DailyReport`] condenses a day's episode logs into the numbers
//! a care team reviews: completion rate and times, how much prompting was
//! needed (and how insistent it had to be), and how often the patient
//! managed unassisted.


use serde::{Deserialize, Serialize};

use crate::live::EpisodeLog;
use crate::reminding::{ReminderLevel, Trigger};

/// A day's summary across one user's episodes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DailyReport {
    /// Who the report is about.
    pub user: String,
    /// Free-form period label ("2026-07-05", "day 12", …).
    pub period: String,
    /// Episodes attempted.
    pub episodes: usize,
    /// Episodes that completed.
    pub completed: usize,
    /// Mean completion time over completed episodes, seconds.
    pub mean_completion_s: f64,
    /// Episodes needing no reminder at all.
    pub unassisted: usize,
    /// Minimal-level reminders delivered.
    pub minimal_reminders: usize,
    /// Specific-level reminders delivered.
    pub specific_reminders: usize,
    /// Reminders triggered by idling.
    pub idle_triggers: usize,
    /// Reminders triggered by wrong-tool use.
    pub wrong_tool_triggers: usize,
    /// Praise events.
    pub praises: usize,
}

impl DailyReport {
    /// Builds a report from a day's logs.
    #[must_use]
    pub fn from_logs(user: impl Into<String>, period: impl Into<String>, logs: &[EpisodeLog]) -> Self {
        let mut completed = 0;
        let mut completion_times = Vec::new();
        let mut unassisted = 0;
        let mut minimal = 0;
        let mut specific = 0;
        let mut idle = 0;
        let mut wrong = 0;
        let mut praises = 0;
        for log in logs {
            if let Some(t) = log.completed_at() {
                completed += 1;
                completion_times.push(t);
            }
            let reminders = log.reminders();
            if reminders.is_empty() {
                unassisted += 1;
            }
            for (_, r) in reminders {
                match r.prompt.level {
                    ReminderLevel::Minimal => minimal += 1,
                    ReminderLevel::Specific => specific += 1,
                }
                match r.trigger {
                    Trigger::IdleTimeout => idle += 1,
                    Trigger::WrongTool { .. } => wrong += 1,
                }
            }
            praises += log.praise_count();
        }
        let mean_completion_s = if completion_times.is_empty() {
            0.0
        } else {
            completion_times.iter().map(|t| t.as_secs_f64()).sum::<f64>()
                / completion_times.len() as f64
        };
        DailyReport {
            user: user.into(),
            period: period.into(),
            episodes: logs.len(),
            completed,
            mean_completion_s,
            unassisted,
            minimal_reminders: minimal,
            specific_reminders: specific,
            idle_triggers: idle,
            wrong_tool_triggers: wrong,
            praises,
        }
    }

    /// Total reminders delivered.
    #[must_use]
    pub fn total_reminders(&self) -> usize {
        self.minimal_reminders + self.specific_reminders
    }

    /// Share of reminders kept at the minimal level (1.0 when none were
    /// needed — the best possible day).
    #[must_use]
    pub fn minimal_fraction(&self) -> f64 {
        let total = self.total_reminders();
        if total == 0 {
            1.0
        } else {
            self.minimal_reminders as f64 / total as f64
        }
    }

    /// Renders a caregiver-facing text summary.
    #[must_use]
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "Care report — {user}, {period}", user = self.user, period = self.period);
        let _ = writeln!(
            out,
            "  activities: {done}/{all} completed, avg {secs:.0}s; {solo} unassisted",
            done = self.completed,
            all = self.episodes,
            secs = self.mean_completion_s,
            solo = self.unassisted,
        );
        let _ = writeln!(
            out,
            "  reminders: {total} ({min} minimal / {spec} specific; {idle} idle / {wrong} wrong-tool)",
            total = self.total_reminders(),
            min = self.minimal_reminders,
            spec = self.specific_reminders,
            idle = self.idle_triggers,
            wrong = self.wrong_tool_triggers,
        );
        let _ = writeln!(out, "  praises given: {}", self.praises);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::live::{ScriptedBehavior, StochasticBehavior};
    use crate::system::{Coreda, CoredaConfig};
    use coreda_adl::activity::catalog;
    use coreda_adl::patient::{PatientAction, PatientProfile};
    use coreda_adl::routine::Routine;
    use coreda_des::rng::SimRng;

    fn logs_for_day() -> Vec<EpisodeLog> {
        let tea = catalog::tea_making();
        let routine = Routine::canonical(&tea);
        let mut system = Coreda::new(tea, "Mr. Tanaka", CoredaConfig::default(), 1);
        let mut rng = SimRng::seed_from(2);
        for _ in 0..200 {
            system.planner_mut().train_episode(routine.steps(), &mut rng);
        }
        let mut logs = Vec::new();
        // One clean episode, one with a freeze.
        let mut clean = StochasticBehavior::new(PatientProfile::unimpaired("x"));
        logs.push(system.run_live(&routine, &mut clean, &mut rng));
        let mut frozen = ScriptedBehavior::new().with_error(2, PatientAction::Freeze);
        logs.push(system.run_live(&routine, &mut frozen, &mut rng));
        logs
    }

    #[test]
    fn report_counts_are_consistent() {
        let logs = logs_for_day();
        let report = DailyReport::from_logs("Mr. Tanaka", "day 1", &logs);
        assert_eq!(report.episodes, 2);
        assert_eq!(report.completed, 2);
        assert_eq!(report.unassisted, 1, "the clean episode needed no help");
        assert!(report.total_reminders() >= 1);
        assert_eq!(
            report.total_reminders(),
            report.idle_triggers + report.wrong_tool_triggers,
            "every reminder has exactly one trigger"
        );
        assert!(report.mean_completion_s > 0.0);
        assert!(report.praises >= 1);
    }

    #[test]
    fn empty_day_is_well_defined() {
        let report = DailyReport::from_logs("x", "quiet day", &[]);
        assert_eq!(report.episodes, 0);
        assert_eq!(report.mean_completion_s, 0.0);
        assert_eq!(report.minimal_fraction(), 1.0);
    }

    #[test]
    fn render_mentions_the_essentials() {
        let logs = logs_for_day();
        let report = DailyReport::from_logs("Mr. Tanaka", "day 1", &logs);
        let text = report.render();
        assert!(text.contains("Mr. Tanaka"));
        assert!(text.contains("completed"));
        assert!(text.contains("reminders"));
        assert!(text.contains("praises"));
    }

    #[test]
    fn minimal_fraction_reflects_levels() {
        let mut report = DailyReport::from_logs("x", "d", &[]);
        report.minimal_reminders = 3;
        report.specific_reminders = 1;
        assert!((report.minimal_fraction() - 0.75).abs() < 1e-12);
    }
}
