//! # coreda-core — CoReDA, the Context-aware Reminding system for Daily Activities
//!
//! A reproduction of the system from *"A Context-aware Reminding System
//! for Daily Activities of Dementia Patients"* (ICDCS 2007 workshops).
//! CoReDA watches which household tools a person uses through wireless
//! sensor nodes, learns their personal routine for each activity of daily
//! living with TD(λ) Q-learning, and reminds them — minimally — what to do
//! next when they stall or grab the wrong tool.
//!
//! The three subsystems of the paper's Figure 2:
//!
//! - [`sensing`] — tool-use reports → StepID sequences, with idle
//!   detection derived from per-step duration statistics;
//! - [`planning`] — the MDP over `<StepID_{i-1}, StepID_i>` pairs with
//!   prompt actions `<ToolID, Level>` and the 1000/100/50 reward function,
//!   learned with Watkins Q(λ);
//! - [`reminding`] — prompts rendered as text, tool pictures and green/red
//!   LED blinks at two insistence levels.
//!
//! Plus what a deployable system needs around them: the [`system`]
//! orchestrator running the full sensor → radio → prediction → reminder
//! loop on a virtual clock, [`baseline`] planners for comparison,
//! [`live`] patient behaviours, the [`scenario`] replay of Figure 1, and
//! [`metrics`] helpers behind the paper's tables.
//!
//! # Examples
//!
//! Learn a personal routine and predict the next step:
//!
//! ```
//! use coreda_adl::activity::catalog;
//! use coreda_adl::routine::Routine;
//! use coreda_adl::step::StepId;
//! use coreda_core::planning::{PlanningConfig, PlanningSubsystem};
//! use coreda_des::rng::SimRng;
//!
//! let tea = catalog::tea_making();
//! let routine = Routine::canonical(&tea);
//! let mut planner = PlanningSubsystem::new(&tea, PlanningConfig::default());
//! let mut rng = SimRng::seed_from(7);
//! for _ in 0..200 {
//!     planner.train_episode(routine.steps(), &mut rng);
//! }
//! // After step 1 (tea-box), CoReDA knows the pot comes next.
//! let prompt = planner
//!     .predict(StepId::IDLE, StepId::from_raw(catalog::TEA_BOX))
//!     .unwrap();
//! assert_eq!(prompt.tool.raw(), catalog::POT);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod baseline;
pub mod checkpoint;
pub mod escalation;
pub mod fleet;
pub mod home;
pub mod live;
pub mod metrics;
pub mod metro;
pub mod persistence;
pub mod planning;
pub mod reminding;
pub mod report;
pub mod scenario;
pub mod sensing;
pub mod sessions;
pub mod system;
pub mod telemetry;
pub mod wal;

pub use baseline::{CanonicalReminder, MdpPlanner, NextStepPredictor};
pub use checkpoint::{
    apply_delta, checkpoint_fingerprint, compact, config_digest, delta_checkpoint, load_checkpoint,
    load_delta, save_checkpoint, save_delta, CheckpointError, DeltaCheckpoint, HistoryDelta,
    HomeCheckpoint, HomeDelta, LearnedDelta, MetroCheckpoint, NodeDelta, RestDelta, SlotsDelta,
    SystemDelta,
};
pub use escalation::{
    CareEvent, CareEventKind, CareMonitor, CareOutput, CarePolicy, CareTrigger, FleetAnalytics,
    Severity,
};
pub use home::{CoredaHome, HomeError};
pub use live::{EpisodeLog, LogKind, PatientBehavior, ScriptedBehavior, StochasticBehavior};
pub use planning::{LearnerKind, PlanningConfig, PlanningSubsystem, RewardConfig, StateEncoder};
pub use reminding::{Prompt, Reminder, ReminderLevel, ReminderMethod, RemindingSubsystem, Trigger};
pub use metro::{
    collect_served, resume_scale, resume_scale_checkpointed, resume_scale_durable,
    resume_scale_traced, run_scale, run_scale_care, run_scale_care_traced, run_scale_care_walled,
    run_scale_checkpointed, run_scale_checkpointed_traced, run_scale_durable, run_scale_walled,
    DurableRun, EngineKind, FleetTooLarge, HomeStats, MetroConfig, ScaleReport, SchedMode,
    ServeCtx, ServeSession, ServedShard,
};
pub use report::DailyReport;
pub use sensing::{SensingSubsystem, StepEvent};
pub use sessions::{SessionEvent, SessionEvents, SessionTracker};
pub use system::{Coreda, CoredaConfig, LiveEpisode, TickOutcome};
pub use telemetry::{Ctr, HomeRecorder, MaybeRec, Stage, Telemetry, TraceKind, TraceRecord};
pub use wal::{decode_wal, decode_wal_tolerant, encode_wal, render_home_timeline, WalRecord, WalTail};
