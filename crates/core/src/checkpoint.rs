//! Durable snapshots of a metro-scale serve.
//!
//! A metro run serving thousands of homes for simulated days is exactly
//! the kind of job that dies to a reboot at hour 19. This module
//! serialises the *complete resumable state* of every home — learned
//! Q-tables with eligibility traces, live-episode state machines,
//! counter-based RNG stream positions, sensornet node/link/base-station
//! state, session tracking, pending DES wakes, and flight-recorder
//! telemetry — into a versioned, CRC-protected binary manifest, and
//! restores it such that *run-to-T, snapshot, resume-to-2T* is
//! bit-identical to an uninterrupted run to 2T, for any checkpoint tick,
//! any worker count, and either queue engine.
//!
//! The format follows [`crate::persistence`]'s house style — magic +
//! version + big-endian body + CRC-16 trailer, hand-rolled on [`bytes`]
//! — scaled up with one structural addition: each home's snapshot is a
//! self-contained length-prefixed blob inside the manifest, so the
//! [`FleetEngine`] can encode and decode homes in parallel.
//!
//! What is *not* serialised is anything rebuilt deterministically from
//! the [`MetroConfig`]: ADL specs, planner templates, routine tables,
//! subsystem wiring, scratch buffers. A [`config_digest`] stored in the
//! manifest rejects resumes against a different configuration — but
//! deliberately excludes `jobs`, `horizon` and `engine`, which a resume
//! is free to change (`jobs` by the determinism guarantee, `horizon`
//! because the resume's horizon *is* the new target, `engine` because
//! both engines produce identical per-home results).

use std::error::Error;
use std::fmt;

use bytes::{Buf, BufMut, Bytes, BytesMut};
use coreda_adl::intern::NameId;
use coreda_adl::step::StepId;
use coreda_adl::tool::ToolId;
use coreda_des::time::SimTime;
use coreda_rl::space::{ActionId, StateId};
use coreda_sensornet::network::LinkCounters;
use coreda_sensornet::node::{NodeId, NodeState};
use coreda_sensornet::packet::crc16;

use crate::fleet::FleetEngine;
use crate::metro::{HomeStats, MetroConfig};
use crate::planning::LearnedState;
use crate::reminding::{Prompt, ReminderLevel};
use crate::sensing::StepEvent;
use crate::sessions::ActiveSessionState;
use crate::system::{EpisodeState, PhaseState, SystemState};
use crate::telemetry::{RecorderState, TraceKind, TraceRecord};

/// Magic prefix of a checkpoint manifest.
pub const MAGIC: &[u8; 4] = b"CRCK";
/// Current format version.
pub const VERSION: u8 = 1;

/// One home's complete resumable state at a checkpoint instant.
#[derive(Debug, Clone, PartialEq)]
pub struct HomeCheckpoint {
    /// Per-activity system states, in spec order.
    pub systems: Vec<SystemState>,
    /// Session-tracker live session, if one is open.
    pub tracker: Option<ActiveSessionState>,
    /// Home root RNG `(state, base seed)`.
    pub root: ([u64; 4], u64),
    /// Scheduling RNG `(state, base seed)`.
    pub sched: ([u64; 4], u64),
    /// In-flight episode: `(activity index, episode state, episode RNG)`.
    pub episode: Option<(usize, EpisodeState, ([u64; 4], u64))>,
    /// Episodes begun so far (also the next episode-substream index).
    pub ep_index: u64,
    /// When the next episode starts.
    pub next_start: SimTime,
    /// Last instant the home's wake handler served (wheel-engine dedup).
    pub last_handled: Option<SimTime>,
    /// Statistics so far. `energy_uj` is always zero here: energy lives
    /// in the node meters (inside [`HomeCheckpoint::systems`]) and is
    /// recomputed from them when the resumed run finishes.
    pub stats: HomeStats,
    /// The home's pending DES wakes at the snapshot, in dispatch order.
    /// A wheel-engine home can hold more than one (an episode-start wake
    /// plus a session idle-close wake).
    pub pending: Vec<SimTime>,
    /// Flight-recorder state, when the run was traced.
    pub rec: Option<RecorderState>,
}

/// A whole fleet's snapshot: the manifest [`save_checkpoint`] encodes.
#[derive(Debug, Clone, PartialEq)]
pub struct MetroCheckpoint {
    /// The checkpoint instant (every pending wake is strictly later).
    pub at: SimTime,
    /// [`config_digest`] of the run's configuration.
    pub digest: u64,
    /// Raw DES events processed up to the snapshot (engine-dependent,
    /// like [`crate::metro::ScaleReport::des_events`]).
    pub des_events: u64,
    /// Per-home snapshots, in home-id order.
    pub homes: Vec<HomeCheckpoint>,
}

/// Checkpoint codec failures.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CheckpointError {
    /// The manifest is shorter than its declared contents.
    Truncated {
        /// Bytes remaining when the shortage was noticed.
        len: usize,
    },
    /// The first four bytes are not [`MAGIC`].
    BadMagic([u8; 4]),
    /// The manifest is from an unknown format version.
    UnsupportedVersion(u8),
    /// CRC mismatch (torn or corrupted write).
    BadCrc {
        /// CRC stored in the manifest.
        expected: u16,
        /// CRC computed over the body.
        actual: u16,
    },
    /// The manifest belongs to a different run configuration.
    ConfigMismatch {
        /// Digest stored in the manifest.
        expected: u64,
        /// Digest of the configuration offered for resume.
        actual: u64,
    },
    /// A stored float is not finite.
    CorruptValue(f64),
    /// An enum tag has no meaning in this version.
    CorruptTag(u8),
    /// Extra bytes after the declared contents.
    TrailingBytes {
        /// Number of unread bytes.
        extra: usize,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Truncated { len } => {
                write!(f, "checkpoint truncated with {len} bytes remaining")
            }
            CheckpointError::BadMagic(m) => write!(f, "bad magic {m:?}"),
            CheckpointError::UnsupportedVersion(v) => {
                write!(f, "unsupported checkpoint version {v}")
            }
            CheckpointError::BadCrc { expected, actual } => {
                write!(f, "crc mismatch: stored {expected:#06x}, computed {actual:#06x}")
            }
            CheckpointError::ConfigMismatch { expected, actual } => write!(
                f,
                "checkpoint belongs to a different run configuration \
                 (stored digest {expected:#018x}, offered {actual:#018x})"
            ),
            CheckpointError::CorruptValue(v) => write!(f, "non-finite stored value {v}"),
            CheckpointError::CorruptTag(t) => write!(f, "unknown tag {t}"),
            CheckpointError::TrailingBytes { extra } => write!(f, "{extra} trailing bytes"),
        }
    }
}

impl Error for CheckpointError {}

/// Digest of everything in a [`MetroConfig`] that shapes the simulated
/// trajectory: homes, seed, gaps, training, idle-close, and the whole
/// per-system configuration. Excludes `jobs`, `horizon` and `engine` —
/// the three knobs a resume may legitimately change (see the module
/// docs).
#[must_use]
pub fn config_digest(cfg: &MetroConfig) -> u64 {
    // CoredaConfig is a plain tree of numbers/enums; its Debug rendering
    // is a deterministic, std-only serialisation of every field.
    let key = format!(
        "homes={} seed={} gap_min={} gap_max={} train={} idle_close={} system={:?}",
        cfg.homes,
        cfg.seed,
        cfg.gap_min.as_millis(),
        cfg.gap_max.as_millis(),
        cfg.train_episodes,
        cfg.idle_close.as_millis(),
        cfg.system,
    );
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in key.bytes() {
        h ^= u64::from(byte);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Serialises a fleet snapshot. Per-home blobs are encoded in parallel
/// across `jobs` workers; the output is identical at any worker count.
#[must_use]
pub fn save_checkpoint(ckpt: &MetroCheckpoint, jobs: usize) -> Bytes {
    let mut buf = BytesMut::new();
    buf.put_slice(MAGIC);
    buf.put_u8(VERSION);
    buf.put_u64(ckpt.digest);
    buf.put_u64(ckpt.at.as_millis());
    buf.put_u64(ckpt.des_events);
    buf.put_u32(u32::try_from(ckpt.homes.len()).expect("fleets fit in u32"));
    let engine = FleetEngine::new(jobs);
    let blobs = engine.map(ckpt.homes.iter().collect(), encode_home);
    for blob in blobs {
        buf.put_u32(u32::try_from(blob.len()).expect("home blobs fit in u32"));
        buf.put_slice(&blob);
    }
    let crc = crc16(&buf);
    buf.put_u16(crc);
    buf.freeze()
}

/// Restores a fleet snapshot from a manifest produced by
/// [`save_checkpoint`]. Per-home blobs are decoded in parallel across
/// `jobs` workers.
///
/// # Errors
///
/// Returns a [`CheckpointError`] if the manifest is malformed,
/// CRC-damaged, or from a different format version. Configuration
/// compatibility is *not* checked here — compare
/// [`MetroCheckpoint::digest`] against [`config_digest`] (the metro
/// resume APIs do) before resuming.
pub fn load_checkpoint(blob: &[u8], jobs: usize) -> Result<MetroCheckpoint, CheckpointError> {
    const HEADER: usize = 4 + 1;
    if blob.len() < HEADER + 2 {
        return Err(CheckpointError::Truncated { len: blob.len() });
    }
    let (body, trailer) = blob.split_at(blob.len() - 2);
    let expected = u16::from_be_bytes([trailer[0], trailer[1]]);
    let actual = crc16(body);
    if expected != actual {
        return Err(CheckpointError::BadCrc { expected, actual });
    }
    let mut r = Reader { buf: body };
    let mut magic = [0u8; 4];
    r.need(4)?;
    r.buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(CheckpointError::BadMagic(magic));
    }
    let version = r.u8()?;
    if version != VERSION {
        return Err(CheckpointError::UnsupportedVersion(version));
    }
    let digest = r.u64()?;
    let at = r.time()?;
    let des_events = r.u64()?;
    let n_homes = r.len()?;
    let mut slices = Vec::with_capacity(n_homes);
    for _ in 0..n_homes {
        let len = r.len()?;
        r.need(len)?;
        let (head, rest) = r.buf.split_at(len);
        slices.push(head);
        r.buf = rest;
    }
    if r.buf.has_remaining() {
        return Err(CheckpointError::TrailingBytes { extra: r.buf.remaining() });
    }
    let engine = FleetEngine::new(jobs);
    let homes = engine
        .map(slices, decode_home)
        .into_iter()
        .collect::<Result<Vec<HomeCheckpoint>, CheckpointError>>()?;
    Ok(MetroCheckpoint { at, digest, des_events, homes })
}

// ---------------------------------------------------------------------
// Writer side
// ---------------------------------------------------------------------

fn put_len(buf: &mut Vec<u8>, len: usize) {
    buf.put_u32(u32::try_from(len).expect("collection fits in u32"));
}

fn put_bool(buf: &mut Vec<u8>, v: bool) {
    buf.put_u8(u8::from(v));
}

fn put_time(buf: &mut Vec<u8>, t: SimTime) {
    buf.put_u64(t.as_millis());
}

fn put_opt_time(buf: &mut Vec<u8>, t: Option<SimTime>) {
    match t {
        None => buf.put_u8(0),
        Some(t) => {
            buf.put_u8(1);
            put_time(buf, t);
        }
    }
}

fn put_rng(buf: &mut Vec<u8>, (state, base): ([u64; 4], u64)) {
    for w in state {
        buf.put_u64(w);
    }
    buf.put_u64(base);
}

fn encode_home(h: &HomeCheckpoint) -> Vec<u8> {
    let mut buf = Vec::new();
    put_len(&mut buf, h.systems.len());
    for sys in &h.systems {
        encode_system(&mut buf, sys);
    }
    match &h.tracker {
        None => buf.put_u8(0),
        Some(a) => {
            buf.put_u8(1);
            put_len(&mut buf, a.activity_idx);
            put_time(&mut buf, a.last_report);
            put_bool(&mut buf, a.saw_terminal);
            match a.foreign_run {
                None => buf.put_u8(0),
                Some((idx, run)) => {
                    buf.put_u8(1);
                    put_len(&mut buf, idx);
                    buf.put_u32(run);
                }
            }
        }
    }
    put_rng(&mut buf, h.root);
    put_rng(&mut buf, h.sched);
    match &h.episode {
        None => buf.put_u8(0),
        Some((act, ep, rng)) => {
            buf.put_u8(1);
            put_len(&mut buf, *act);
            encode_episode(&mut buf, ep);
            put_rng(&mut buf, *rng);
        }
    }
    buf.put_u64(h.ep_index);
    put_time(&mut buf, h.next_start);
    put_opt_time(&mut buf, h.last_handled);
    for v in [
        h.stats.episodes_started,
        h.stats.episodes_completed,
        h.stats.reminders,
        h.stats.praises,
        h.stats.sessions_started,
        h.stats.sessions_completed,
        h.stats.sessions_abandoned,
        h.stats.cross_activity_flags,
        h.stats.pipeline_ticks,
    ] {
        buf.put_u64(v);
    }
    put_len(&mut buf, h.pending.len());
    for &due in &h.pending {
        put_time(&mut buf, due);
    }
    match &h.rec {
        None => buf.put_u8(0),
        Some(rec) => {
            buf.put_u8(1);
            encode_recorder(&mut buf, rec);
        }
    }
    buf
}

fn encode_system(buf: &mut Vec<u8>, s: &SystemState) {
    match &s.learned {
        None => buf.put_u8(0),
        Some(l) => {
            buf.put_u8(1);
            put_len(buf, l.values.len());
            for &v in &l.values {
                buf.put_f64(v);
            }
            put_len(buf, l.visits.len());
            for &v in &l.visits {
                buf.put_u64(v);
            }
            put_len(buf, l.traces.len());
            for &(st, a, e) in &l.traces {
                put_len(buf, st.index());
                put_len(buf, a.index());
                buf.put_f64(e);
            }
            buf.put_u64(l.updates);
            buf.put_u64(l.episodes_trained);
        }
    }
    match s.sensing_current {
        None => buf.put_u8(0),
        Some(step) => {
            buf.put_u8(1);
            buf.put_u16(step.raw());
        }
    }
    put_opt_time(buf, s.sensing_last_report);
    put_len(buf, s.sensing_history.len());
    for ev in &s.sensing_history {
        put_time(buf, ev.at);
        buf.put_u16(ev.step.raw());
    }
    put_len(buf, s.nodes.len());
    for (node, state, base) in &s.nodes {
        encode_node(buf, node);
        put_rng(buf, (*state, *base));
    }
    put_rng(buf, s.net_rng);
    buf.put_u16(s.downlink_seq);
    put_len(buf, s.channels.len());
    for &(id, bad, sent, lost) in &s.channels {
        buf.put_u16(id.raw());
        put_bool(buf, bad);
        buf.put_u64(sent);
        buf.put_u64(lost);
    }
    for c in [&s.uplink, &s.downlink] {
        buf.put_u64(c.frames);
        buf.put_u64(c.attempts);
        buf.put_u64(c.delivered);
        buf.put_u64(c.lost);
        buf.put_u64(c.duplicates);
    }
    put_len(buf, s.base_last_seqs.len());
    for &(id, seq) in &s.base_last_seqs {
        buf.put_u16(id.raw());
        buf.put_u16(seq);
    }
    buf.put_u64(s.base_accepted);
    buf.put_u64(s.base_duplicates);
}

fn encode_node(buf: &mut Vec<u8>, n: &NodeState) {
    put_len(buf, n.detector_window.len());
    for &vote in &n.detector_window {
        put_bool(buf, vote);
    }
    put_bool(buf, n.led_green);
    put_bool(buf, n.led_red);
    buf.put_f64(n.energy_uj);
    let (samples, tx, rx, led, sleep) = n.energy_breakdown;
    for v in [samples, tx, rx, led, sleep] {
        buf.put_u64(v);
    }
    buf.put_u16(n.next_seq);
    buf.put_f64(n.window_peak_activation);
    buf.put_u64(n.windows_closed);
    buf.put_u64(n.reports_sent);
    put_bool(buf, n.failed);
    buf.put_f64(n.flip_false_positive);
    buf.put_f64(n.flip_false_negative);
    #[allow(clippy::cast_sign_loss)]
    buf.put_u64(n.clock_skew_ms as u64);
}

fn encode_episode(buf: &mut Vec<u8>, ep: &EpisodeState) {
    match ep.phase {
        PhaseState::Performing { idx, until } => {
            buf.put_u8(0);
            put_len(buf, idx);
            put_time(buf, until);
        }
        PhaseState::Misusing { tool, since, resume_idx } => {
            buf.put_u8(1);
            buf.put_u16(tool.raw());
            put_time(buf, since);
            put_len(buf, resume_idx);
        }
        PhaseState::Frozen { since, resume_idx } => {
            buf.put_u8(2);
            put_time(buf, since);
            put_len(buf, resume_idx);
        }
        PhaseState::Done => buf.put_u8(3),
    }
    match ep.tracked {
        None => buf.put_u8(0),
        Some((prev, cur)) => {
            buf.put_u8(1);
            buf.put_u16(prev.raw());
            buf.put_u16(cur.raw());
        }
    }
    match ep.pending {
        None => buf.put_u8(0),
        Some((due, prompt)) => {
            buf.put_u8(1);
            put_time(buf, due);
            buf.put_u16(prompt.tool.raw());
            buf.put_u8(match prompt.level {
                ReminderLevel::Minimal => 0,
                ReminderLevel::Specific => 1,
            });
        }
    }
    put_opt_time(buf, ep.last_reminder);
    buf.put_u32(ep.reminders_since_advance);
    put_bool(buf, ep.completed);
    buf.put_u64(ep.ticks_done);
    buf.put_u64(ep.max_ticks);
    put_time(buf, ep.start);
    put_bool(buf, ep.finished);
}

fn encode_recorder(buf: &mut Vec<u8>, rec: &RecorderState) {
    put_len(buf, rec.counters.len());
    for &c in &rec.counters {
        buf.put_u64(c);
    }
    put_len(buf, rec.stages.len());
    for (bins, under, over) in &rec.stages {
        put_len(buf, bins.len());
        for &b in bins {
            buf.put_u64(b);
        }
        buf.put_u64(*under);
        buf.put_u64(*over);
    }
    put_len(buf, rec.ring_cap);
    put_len(buf, rec.ring.len());
    for r in &rec.ring {
        encode_trace(buf, r);
    }
    buf.put_u64(rec.ring_dropped);
}

fn encode_trace(buf: &mut Vec<u8>, r: &TraceRecord) {
    put_time(buf, r.at);
    match r.kind {
        TraceKind::EpisodeStarted { episode } => {
            buf.put_u8(0);
            buf.put_u32(episode);
        }
        TraceKind::EpisodeEnded { completed } => {
            buf.put_u8(1);
            put_bool(buf, completed);
        }
        TraceKind::ToolInUse { node } => {
            buf.put_u8(2);
            buf.put_u16(node);
        }
        TraceKind::RadioDelivered { node, attempts } => {
            buf.put_u8(3);
            buf.put_u16(node);
            buf.put_u8(attempts);
        }
        TraceKind::RadioLost { node, attempts } => {
            buf.put_u8(4);
            buf.put_u16(node);
            buf.put_u8(attempts);
        }
        TraceKind::StepExtracted { step } => {
            buf.put_u8(5);
            buf.put_u16(step.raw());
        }
        TraceKind::IdleDetected { idle_ms } => {
            buf.put_u8(6);
            buf.put_u32(idle_ms);
        }
        TraceKind::ReminderIssued { tool, specific, wrong_tool } => {
            buf.put_u8(7);
            buf.put_u16(tool.raw());
            put_bool(buf, specific);
            put_bool(buf, wrong_tool);
        }
        TraceKind::LedCommand { tool, red, delivered } => {
            buf.put_u8(8);
            buf.put_u16(tool.raw());
            put_bool(buf, red);
            put_bool(buf, delivered);
        }
        TraceKind::Praised { latency_ms } => {
            buf.put_u8(9);
            buf.put_u32(latency_ms);
        }
        TraceKind::Reprompt { escalations } => {
            buf.put_u8(10);
            buf.put_u8(escalations);
        }
        TraceKind::SessionStarted { name } => {
            buf.put_u8(11);
            buf.put_u32(u32::try_from(name.index()).expect("name ids are u32"));
        }
        TraceKind::SessionEnded { name, completed } => {
            buf.put_u8(12);
            buf.put_u32(u32::try_from(name.index()).expect("name ids are u32"));
            put_bool(buf, completed);
        }
        TraceKind::CrossActivity { name } => {
            buf.put_u8(13);
            buf.put_u32(u32::try_from(name.index()).expect("name ids are u32"));
        }
    }
}

// ---------------------------------------------------------------------
// Reader side
// ---------------------------------------------------------------------

struct Reader<'a> {
    buf: &'a [u8],
}

impl Reader<'_> {
    fn need(&self, n: usize) -> Result<(), CheckpointError> {
        if self.buf.remaining() < n {
            Err(CheckpointError::Truncated { len: self.buf.remaining() })
        } else {
            Ok(())
        }
    }

    fn u8(&mut self) -> Result<u8, CheckpointError> {
        self.need(1)?;
        Ok(self.buf.get_u8())
    }

    fn u16(&mut self) -> Result<u16, CheckpointError> {
        self.need(2)?;
        Ok(self.buf.get_u16())
    }

    fn u32(&mut self) -> Result<u32, CheckpointError> {
        self.need(4)?;
        Ok(self.buf.get_u32())
    }

    fn u64(&mut self) -> Result<u64, CheckpointError> {
        self.need(8)?;
        Ok(self.buf.get_u64())
    }

    fn i64(&mut self) -> Result<i64, CheckpointError> {
        #[allow(clippy::cast_possible_wrap)]
        Ok(self.u64()? as i64)
    }

    fn f64(&mut self) -> Result<f64, CheckpointError> {
        let v = f64::from_bits(self.u64()?);
        if v.is_finite() {
            Ok(v)
        } else {
            Err(CheckpointError::CorruptValue(v))
        }
    }

    fn bool(&mut self) -> Result<bool, CheckpointError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            t => Err(CheckpointError::CorruptTag(t)),
        }
    }

    fn opt(&mut self) -> Result<bool, CheckpointError> {
        self.bool()
    }

    fn len(&mut self) -> Result<usize, CheckpointError> {
        Ok(self.u32()? as usize)
    }

    fn time(&mut self) -> Result<SimTime, CheckpointError> {
        Ok(SimTime::from_millis(self.u64()?))
    }

    fn opt_time(&mut self) -> Result<Option<SimTime>, CheckpointError> {
        if self.opt()? {
            Ok(Some(self.time()?))
        } else {
            Ok(None)
        }
    }

    fn rng(&mut self) -> Result<([u64; 4], u64), CheckpointError> {
        let state = [self.u64()?, self.u64()?, self.u64()?, self.u64()?];
        let base = self.u64()?;
        Ok((state, base))
    }
}

#[allow(clippy::too_many_lines)]
fn decode_home(blob: &[u8]) -> Result<HomeCheckpoint, CheckpointError> {
    let mut r = Reader { buf: blob };
    let n_systems = r.len()?;
    let mut systems = Vec::with_capacity(n_systems.min(64));
    for _ in 0..n_systems {
        systems.push(decode_system(&mut r)?);
    }
    let tracker = if r.opt()? {
        let activity_idx = r.len()?;
        let last_report = r.time()?;
        let saw_terminal = r.bool()?;
        let foreign_run = if r.opt()? { Some((r.len()?, r.u32()?)) } else { None };
        Some(ActiveSessionState { activity_idx, last_report, saw_terminal, foreign_run })
    } else {
        None
    };
    let root = r.rng()?;
    let sched = r.rng()?;
    let episode = if r.opt()? {
        let act = r.len()?;
        let ep = decode_episode(&mut r)?;
        let rng = r.rng()?;
        Some((act, ep, rng))
    } else {
        None
    };
    let ep_index = r.u64()?;
    let next_start = r.time()?;
    let last_handled = r.opt_time()?;
    let stats = HomeStats {
        episodes_started: r.u64()?,
        episodes_completed: r.u64()?,
        reminders: r.u64()?,
        praises: r.u64()?,
        sessions_started: r.u64()?,
        sessions_completed: r.u64()?,
        sessions_abandoned: r.u64()?,
        cross_activity_flags: r.u64()?,
        pipeline_ticks: r.u64()?,
        energy_uj: 0.0,
    };
    let n_pending = r.len()?;
    let mut pending = Vec::with_capacity(n_pending.min(1024));
    for _ in 0..n_pending {
        pending.push(r.time()?);
    }
    let rec = if r.opt()? { Some(decode_recorder(&mut r)?) } else { None };
    if r.buf.has_remaining() {
        return Err(CheckpointError::TrailingBytes { extra: r.buf.remaining() });
    }
    Ok(HomeCheckpoint {
        systems,
        tracker,
        root,
        sched,
        episode,
        ep_index,
        next_start,
        last_handled,
        stats,
        pending,
        rec,
    })
}

#[allow(clippy::too_many_lines)]
fn decode_system(r: &mut Reader<'_>) -> Result<SystemState, CheckpointError> {
    let learned = if r.opt()? {
        let n = r.len()?;
        let mut values = Vec::with_capacity(n.min(65_536));
        for _ in 0..n {
            values.push(r.f64()?);
        }
        let n = r.len()?;
        let mut visits = Vec::with_capacity(n.min(65_536));
        for _ in 0..n {
            visits.push(r.u64()?);
        }
        let n = r.len()?;
        let mut traces = Vec::with_capacity(n.min(65_536));
        for _ in 0..n {
            let s = StateId::new(r.len()?);
            let a = ActionId::new(r.len()?);
            let e = r.f64()?;
            traces.push((s, a, e));
        }
        let updates = r.u64()?;
        let episodes_trained = r.u64()?;
        Some(LearnedState { values, visits, traces, updates, episodes_trained })
    } else {
        None
    };
    let sensing_current = if r.opt()? { Some(StepId::from_raw(r.u16()?)) } else { None };
    let sensing_last_report = r.opt_time()?;
    let n = r.len()?;
    let mut sensing_history = Vec::with_capacity(n.min(65_536));
    for _ in 0..n {
        let at = r.time()?;
        let step = StepId::from_raw(r.u16()?);
        sensing_history.push(StepEvent { at, step });
    }
    let n = r.len()?;
    let mut nodes = Vec::with_capacity(n.min(256));
    for _ in 0..n {
        let node = decode_node(r)?;
        let (state, base) = r.rng()?;
        nodes.push((node, state, base));
    }
    let net_rng = r.rng()?;
    let downlink_seq = r.u16()?;
    let n = r.len()?;
    let mut channels = Vec::with_capacity(n.min(256));
    for _ in 0..n {
        let id = NodeId::new(r.u16()?);
        let bad = r.bool()?;
        let sent = r.u64()?;
        let lost = r.u64()?;
        channels.push((id, bad, sent, lost));
    }
    let mut counters = [LinkCounters::default(); 2];
    for c in &mut counters {
        c.frames = r.u64()?;
        c.attempts = r.u64()?;
        c.delivered = r.u64()?;
        c.lost = r.u64()?;
        c.duplicates = r.u64()?;
    }
    let n = r.len()?;
    let mut base_last_seqs = Vec::with_capacity(n.min(256));
    for _ in 0..n {
        let id = NodeId::new(r.u16()?);
        let seq = r.u16()?;
        base_last_seqs.push((id, seq));
    }
    let base_accepted = r.u64()?;
    let base_duplicates = r.u64()?;
    Ok(SystemState {
        learned,
        sensing_current,
        sensing_last_report,
        sensing_history,
        nodes,
        net_rng,
        downlink_seq,
        channels,
        uplink: counters[0],
        downlink: counters[1],
        base_last_seqs,
        base_accepted,
        base_duplicates,
    })
}

fn decode_node(r: &mut Reader<'_>) -> Result<NodeState, CheckpointError> {
    let n = r.len()?;
    let mut detector_window = Vec::with_capacity(n.min(64));
    for _ in 0..n {
        detector_window.push(r.bool()?);
    }
    let led_green = r.bool()?;
    let led_red = r.bool()?;
    let energy_uj = r.f64()?;
    let energy_breakdown = (r.u64()?, r.u64()?, r.u64()?, r.u64()?, r.u64()?);
    let next_seq = r.u16()?;
    let window_peak_activation = r.f64()?;
    let windows_closed = r.u64()?;
    let reports_sent = r.u64()?;
    let failed = r.bool()?;
    let flip_false_positive = r.f64()?;
    let flip_false_negative = r.f64()?;
    let clock_skew_ms = r.i64()?;
    Ok(NodeState {
        detector_window,
        led_green,
        led_red,
        energy_uj,
        energy_breakdown,
        next_seq,
        window_peak_activation,
        windows_closed,
        reports_sent,
        failed,
        flip_false_positive,
        flip_false_negative,
        clock_skew_ms,
    })
}

fn decode_episode(r: &mut Reader<'_>) -> Result<EpisodeState, CheckpointError> {
    let phase = match r.u8()? {
        0 => {
            let idx = r.len()?;
            let until = r.time()?;
            PhaseState::Performing { idx, until }
        }
        1 => {
            let tool = ToolId::new(r.u16()?);
            let since = r.time()?;
            let resume_idx = r.len()?;
            PhaseState::Misusing { tool, since, resume_idx }
        }
        2 => {
            let since = r.time()?;
            let resume_idx = r.len()?;
            PhaseState::Frozen { since, resume_idx }
        }
        3 => PhaseState::Done,
        t => return Err(CheckpointError::CorruptTag(t)),
    };
    let tracked = if r.opt()? {
        let prev = StepId::from_raw(r.u16()?);
        let cur = StepId::from_raw(r.u16()?);
        Some((prev, cur))
    } else {
        None
    };
    let pending = if r.opt()? {
        let due = r.time()?;
        let tool = ToolId::new(r.u16()?);
        let level = match r.u8()? {
            0 => ReminderLevel::Minimal,
            1 => ReminderLevel::Specific,
            t => return Err(CheckpointError::CorruptTag(t)),
        };
        Some((due, Prompt { tool, level }))
    } else {
        None
    };
    let last_reminder = r.opt_time()?;
    let reminders_since_advance = r.u32()?;
    let completed = r.bool()?;
    let ticks_done = r.u64()?;
    let max_ticks = r.u64()?;
    let start = r.time()?;
    let finished = r.bool()?;
    Ok(EpisodeState {
        phase,
        tracked,
        pending,
        last_reminder,
        reminders_since_advance,
        completed,
        ticks_done,
        max_ticks,
        start,
        finished,
    })
}

fn decode_recorder(r: &mut Reader<'_>) -> Result<RecorderState, CheckpointError> {
    let n = r.len()?;
    let mut counters = Vec::with_capacity(n.min(256));
    for _ in 0..n {
        counters.push(r.u64()?);
    }
    let n = r.len()?;
    let mut stages = Vec::with_capacity(n.min(64));
    for _ in 0..n {
        let n_bins = r.len()?;
        let mut bins = Vec::with_capacity(n_bins.min(65_536));
        for _ in 0..n_bins {
            bins.push(r.u64()?);
        }
        let under = r.u64()?;
        let over = r.u64()?;
        stages.push((bins, under, over));
    }
    let ring_cap = r.len()?;
    let n = r.len()?;
    let mut ring = Vec::with_capacity(n.min(65_536));
    for _ in 0..n {
        ring.push(decode_trace(r)?);
    }
    let ring_dropped = r.u64()?;
    Ok(RecorderState { counters, stages, ring_cap, ring, ring_dropped })
}

fn decode_trace(r: &mut Reader<'_>) -> Result<TraceRecord, CheckpointError> {
    let at = r.time()?;
    let kind = match r.u8()? {
        0 => TraceKind::EpisodeStarted { episode: r.u32()? },
        1 => TraceKind::EpisodeEnded { completed: r.bool()? },
        2 => TraceKind::ToolInUse { node: r.u16()? },
        3 => TraceKind::RadioDelivered { node: r.u16()?, attempts: r.u8()? },
        4 => TraceKind::RadioLost { node: r.u16()?, attempts: r.u8()? },
        5 => TraceKind::StepExtracted { step: StepId::from_raw(r.u16()?) },
        6 => TraceKind::IdleDetected { idle_ms: r.u32()? },
        7 => TraceKind::ReminderIssued {
            tool: ToolId::new(r.u16()?),
            specific: r.bool()?,
            wrong_tool: r.bool()?,
        },
        8 => TraceKind::LedCommand {
            tool: ToolId::new(r.u16()?),
            red: r.bool()?,
            delivered: r.bool()?,
        },
        9 => TraceKind::Praised { latency_ms: r.u32()? },
        10 => TraceKind::Reprompt { escalations: r.u8()? },
        11 => TraceKind::SessionStarted { name: NameId::from_index(r.u32()? as usize) },
        12 => TraceKind::SessionEnded {
            name: NameId::from_index(r.u32()? as usize),
            completed: r.bool()?,
        },
        13 => TraceKind::CrossActivity { name: NameId::from_index(r.u32()? as usize) },
        t => return Err(CheckpointError::CorruptTag(t)),
    };
    Ok(TraceRecord { at, kind })
}

#[cfg(test)]
mod tests {
    use super::*;
    use coreda_sensornet::network::LinkCounters;

    /// A synthetic checkpoint exercising every optional branch and enum
    /// variant the codec knows: live episode in each phase, open session
    /// with a foreign run, traced recorder with a wrapped ring.
    fn sample() -> MetroCheckpoint {
        let node = NodeState {
            detector_window: vec![true, false, true],
            led_green: true,
            led_red: false,
            energy_uj: 1234.5,
            energy_breakdown: (10, 20, 30, 40, 50),
            next_seq: 7,
            window_peak_activation: 0.75,
            windows_closed: 11,
            reports_sent: 3,
            failed: false,
            flip_false_positive: 0.01,
            flip_false_negative: 0.02,
            clock_skew_ms: -250,
        };
        let system = SystemState {
            learned: Some(LearnedState {
                values: vec![0.5, -1.25, 3.0],
                visits: vec![1, 0, 9],
                traces: vec![(StateId::new(2), ActionId::new(1), 0.125)],
                updates: 42,
                episodes_trained: 150,
            }),
            sensing_current: Some(StepId::from_raw(3)),
            sensing_last_report: Some(SimTime::from_secs(12)),
            sensing_history: vec![StepEvent { at: SimTime::from_secs(1), step: StepId::IDLE }],
            nodes: vec![(node, [1, 2, 3, 4], 99)],
            net_rng: ([5, 6, 7, 8], 100),
            downlink_seq: 513,
            channels: vec![(NodeId::new(1), true, 12, 2)],
            uplink: LinkCounters { frames: 1, attempts: 2, delivered: 3, lost: 4, duplicates: 5 },
            downlink: LinkCounters::default(),
            base_last_seqs: vec![(NodeId::new(1), 6)],
            base_accepted: 12,
            base_duplicates: 1,
        };
        let episode = EpisodeState {
            phase: PhaseState::Misusing {
                tool: ToolId::new(4),
                since: SimTime::from_secs(30),
                resume_idx: 2,
            },
            tracked: Some((StepId::IDLE, StepId::from_raw(1))),
            pending: Some((
                SimTime::from_secs(31),
                Prompt { tool: ToolId::new(2), level: ReminderLevel::Specific },
            )),
            last_reminder: Some(SimTime::from_secs(29)),
            reminders_since_advance: 2,
            completed: false,
            ticks_done: 310,
            max_ticks: 9000,
            start: SimTime::ZERO,
            finished: false,
        };
        let rec = RecorderState {
            counters: vec![7; crate::telemetry::Ctr::COUNT],
            stages: vec![
                (vec![0; 300], 0, 1),
                (vec![2; 300], 0, 0),
                (vec![0; 300], 3, 0),
            ],
            ring_cap: 4,
            ring: vec![
                TraceRecord {
                    at: SimTime::from_secs(1),
                    kind: TraceKind::ReminderIssued {
                        tool: ToolId::new(2),
                        specific: true,
                        wrong_tool: false,
                    },
                },
                TraceRecord {
                    at: SimTime::from_secs(2),
                    kind: TraceKind::SessionEnded {
                        name: NameId::from_index(1),
                        completed: true,
                    },
                },
            ],
            ring_dropped: 6,
        };
        let busy = HomeCheckpoint {
            systems: vec![system],
            tracker: Some(ActiveSessionState {
                activity_idx: 1,
                last_report: SimTime::from_secs(40),
                saw_terminal: false,
                foreign_run: Some((0, 2)),
            }),
            root: ([11, 12, 13, 14], 200),
            sched: ([15, 16, 17, 18], 201),
            episode: Some((0, episode, ([19, 20, 21, 22], 202))),
            ep_index: 5,
            next_start: SimTime::from_secs(100),
            last_handled: Some(SimTime::from_secs(45)),
            stats: HomeStats { episodes_started: 5, reminders: 3, ..HomeStats::default() },
            pending: vec![SimTime::from_secs(46), SimTime::from_secs(50)],
            rec: Some(rec),
        };
        let idle = HomeCheckpoint {
            systems: vec![SystemState {
                learned: None,
                sensing_current: None,
                sensing_last_report: None,
                sensing_history: Vec::new(),
                nodes: Vec::new(),
                net_rng: ([1, 1, 1, 1], 0),
                downlink_seq: 0,
                channels: Vec::new(),
                uplink: LinkCounters::default(),
                downlink: LinkCounters::default(),
                base_last_seqs: Vec::new(),
                base_accepted: 0,
                base_duplicates: 0,
            }],
            tracker: None,
            root: ([0, 0, 0, 1], 1),
            sched: ([0, 0, 0, 2], 1),
            episode: None,
            ep_index: 0,
            next_start: SimTime::from_secs(999),
            last_handled: None,
            stats: HomeStats::default(),
            pending: Vec::new(),
            rec: None,
        };
        MetroCheckpoint {
            at: SimTime::from_secs(45),
            digest: 0xDEAD_BEEF_F00D_CAFE,
            des_events: 123_456,
            homes: vec![busy, idle],
        }
    }

    #[test]
    fn round_trip_is_exact() {
        let ckpt = sample();
        let blob = save_checkpoint(&ckpt, 1);
        let back = load_checkpoint(&blob, 1).unwrap();
        assert_eq!(back, ckpt);
    }

    #[test]
    fn encoding_is_jobs_invariant() {
        let ckpt = sample();
        let serial = save_checkpoint(&ckpt, 1);
        for jobs in [2, 4, 8] {
            assert_eq!(save_checkpoint(&ckpt, jobs), serial, "jobs={jobs}");
            assert_eq!(load_checkpoint(&serial, jobs).unwrap(), ckpt, "jobs={jobs}");
        }
    }

    #[test]
    fn corruption_is_detected() {
        let blob = save_checkpoint(&sample(), 1).to_vec();
        for i in (0..blob.len()).step_by(97) {
            let mut bad = blob.clone();
            bad[i] ^= 0x08;
            assert!(load_checkpoint(&bad, 1).is_err(), "flipping byte {i} went undetected");
        }
    }

    #[test]
    fn truncation_is_detected() {
        let blob = save_checkpoint(&sample(), 1);
        for n in [0, 4, 10, blob.len() / 2, blob.len() - 1] {
            assert!(load_checkpoint(&blob[..n], 1).is_err(), "truncated at {n}");
        }
    }

    #[test]
    fn wrong_version_is_rejected() {
        let mut blob = save_checkpoint(&sample(), 1).to_vec();
        blob[4] = 99;
        // Re-stamp the CRC so only the version differs.
        let body = blob.len() - 2;
        let crc = crc16(&blob[..body]);
        blob[body..].copy_from_slice(&crc.to_be_bytes());
        assert_eq!(
            load_checkpoint(&blob, 1),
            Err(CheckpointError::UnsupportedVersion(99))
        );
    }

    #[test]
    fn digest_ignores_resume_knobs_but_pins_the_run() {
        let base = MetroConfig::default();
        let d = config_digest(&base);
        // Knobs a resume may change leave the digest alone...
        assert_eq!(d, config_digest(&MetroConfig { jobs: 99, ..base.clone() }));
        assert_eq!(
            d,
            config_digest(&MetroConfig {
                horizon: coreda_des::time::SimDuration::from_secs(1),
                ..base.clone()
            })
        );
        assert_eq!(
            d,
            config_digest(&MetroConfig { engine: crate::metro::EngineKind::Heap, ..base.clone() })
        );
        // ...while anything trajectory-shaping changes it.
        assert_ne!(d, config_digest(&MetroConfig { homes: 17, ..base.clone() }));
        assert_ne!(d, config_digest(&MetroConfig { seed: 3, ..base.clone() }));
        assert_ne!(d, config_digest(&MetroConfig { train_episodes: 1, ..base }));
    }

    #[test]
    fn error_messages_read_well() {
        assert!(CheckpointError::ConfigMismatch { expected: 1, actual: 2 }
            .to_string()
            .contains("different run configuration"));
        assert!(CheckpointError::Truncated { len: 3 }.to_string().contains("3 bytes"));
        assert!(CheckpointError::CorruptTag(9).to_string().contains("tag 9"));
    }
}
