//! Durable snapshots of a metro-scale serve.
//!
//! A metro run serving thousands of homes for simulated days is exactly
//! the kind of job that dies to a reboot at hour 19. This module
//! serialises the *complete resumable state* of every home — learned
//! Q-tables with eligibility traces, live-episode state machines,
//! counter-based RNG stream positions, sensornet node/link/base-station
//! state, session tracking, pending DES wakes, and flight-recorder
//! telemetry — into a versioned, CRC-protected binary manifest, and
//! restores it such that *run-to-T, snapshot, resume-to-2T* is
//! bit-identical to an uninterrupted run to 2T, for any checkpoint tick,
//! any worker count, and either queue engine.
//!
//! The format follows [`crate::persistence`]'s house style — magic +
//! version + big-endian body + CRC-16 trailer, hand-rolled on [`bytes`]
//! — scaled up with one structural addition: each home's snapshot is a
//! self-contained length-prefixed blob inside the manifest, so the
//! [`FleetEngine`] can encode and decode homes in parallel.
//!
//! What is *not* serialised is anything rebuilt deterministically from
//! the [`MetroConfig`]: ADL specs, planner templates, routine tables,
//! subsystem wiring, scratch buffers. A [`config_digest`] stored in the
//! manifest rejects resumes against a different configuration — but
//! deliberately excludes `jobs`, `horizon` and `engine`, which a resume
//! is free to change (`jobs` by the determinism guarantee, `horizon`
//! because the resume's horizon *is* the new target, `engine` because
//! both engines produce identical per-home results).

use std::error::Error;
use std::fmt;

use bytes::{Buf, BufMut, Bytes, BytesMut};
use coreda_adl::intern::NameId;
use coreda_adl::step::StepId;
use coreda_adl::tool::ToolId;
use coreda_des::time::SimTime;
use coreda_rl::space::{ActionId, StateId};
use coreda_sensornet::network::LinkCounters;
use coreda_sensornet::node::{NodeId, NodeState};
use coreda_sensornet::packet::crc16;

use crate::fleet::FleetEngine;
use crate::metro::{HomeStats, MetroConfig};
use crate::planning::LearnedState;
use crate::reminding::{Prompt, ReminderLevel};
use crate::sensing::StepEvent;
use crate::sessions::ActiveSessionState;
use crate::system::{EpisodeState, PhaseState, SystemState};
use crate::telemetry::{RecorderState, TraceKind, TraceRecord};

/// Magic prefix of a checkpoint manifest.
pub const MAGIC: &[u8; 4] = b"CRCK";
/// Current format version.
pub const VERSION: u8 = 1;

/// One home's complete resumable state at a checkpoint instant.
#[derive(Debug, Clone, PartialEq)]
pub struct HomeCheckpoint {
    /// Per-activity system states, in spec order.
    pub systems: Vec<SystemState>,
    /// Session-tracker live session, if one is open.
    pub tracker: Option<ActiveSessionState>,
    /// Home root RNG `(state, base seed)`.
    pub root: ([u64; 4], u64),
    /// Scheduling RNG `(state, base seed)`.
    pub sched: ([u64; 4], u64),
    /// In-flight episode: `(activity index, episode state, episode RNG)`.
    pub episode: Option<(usize, EpisodeState, ([u64; 4], u64))>,
    /// Episodes begun so far (also the next episode-substream index).
    pub ep_index: u64,
    /// When the next episode starts.
    pub next_start: SimTime,
    /// Last instant the home's wake handler served (wheel-engine dedup).
    pub last_handled: Option<SimTime>,
    /// Statistics so far. `energy_uj` is always zero here: energy lives
    /// in the node meters (inside [`HomeCheckpoint::systems`]) and is
    /// recomputed from them when the resumed run finishes.
    pub stats: HomeStats,
    /// The home's pending DES wakes at the snapshot, in dispatch order.
    /// A wheel-engine home can hold more than one (an episode-start wake
    /// plus a session idle-close wake).
    pub pending: Vec<SimTime>,
    /// Flight-recorder state, when the run was traced.
    pub rec: Option<RecorderState>,
}

/// A whole fleet's snapshot: the manifest [`save_checkpoint`] encodes.
#[derive(Debug, Clone, PartialEq)]
pub struct MetroCheckpoint {
    /// The checkpoint instant (every pending wake is strictly later).
    pub at: SimTime,
    /// [`config_digest`] of the run's configuration.
    pub digest: u64,
    /// Raw DES events processed up to the snapshot (engine-dependent,
    /// like [`crate::metro::ScaleReport::des_events`]).
    pub des_events: u64,
    /// Per-home snapshots, in home-id order.
    pub homes: Vec<HomeCheckpoint>,
}

/// Checkpoint codec failures.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CheckpointError {
    /// The manifest is shorter than its declared contents.
    Truncated {
        /// Bytes remaining when the shortage was noticed.
        len: usize,
    },
    /// The first four bytes are not [`MAGIC`].
    BadMagic([u8; 4]),
    /// The manifest is from an unknown format version.
    UnsupportedVersion(u8),
    /// CRC mismatch (torn or corrupted write).
    BadCrc {
        /// CRC stored in the manifest.
        expected: u16,
        /// CRC computed over the body.
        actual: u16,
    },
    /// The manifest belongs to a different run configuration.
    ConfigMismatch {
        /// Digest stored in the manifest.
        expected: u64,
        /// Digest of the configuration offered for resume.
        actual: u64,
    },
    /// A stored float is not finite.
    CorruptValue(f64),
    /// An enum tag has no meaning in this version.
    CorruptTag(u8),
    /// Extra bytes after the declared contents.
    TrailingBytes {
        /// Number of unread bytes.
        extra: usize,
    },
    /// A delta refers to a base snapshot other than the one offered.
    BaseMismatch {
        /// [`checkpoint_fingerprint`] the delta was diffed against.
        expected: u64,
        /// Fingerprint of the base offered for application.
        actual: u64,
    },
    /// A delta's sparse update does not fit the base it was applied to
    /// (a Q-cell index past the table, or a per-system delta list whose
    /// length disagrees with the base's system count).
    ShapeMismatch {
        /// Index or length stored in the delta.
        index: u32,
        /// The corresponding bound in the base snapshot.
        bound: u32,
    },
    /// The event log regenerated during resume replay disagrees with the
    /// stored write-ahead log: the run that wrote the log cannot be the
    /// run being resumed.
    WalDivergence {
        /// Instant of the first diverging record.
        at: SimTime,
        /// Home the diverging record belongs to.
        home: u32,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Truncated { len } => {
                write!(f, "checkpoint truncated with {len} bytes remaining")
            }
            CheckpointError::BadMagic(m) => write!(f, "bad magic {m:?}"),
            CheckpointError::UnsupportedVersion(v) => {
                write!(f, "unsupported checkpoint version {v}")
            }
            CheckpointError::BadCrc { expected, actual } => {
                write!(f, "crc mismatch: stored {expected:#06x}, computed {actual:#06x}")
            }
            CheckpointError::ConfigMismatch { expected, actual } => write!(
                f,
                "checkpoint belongs to a different run configuration \
                 (stored digest {expected:#018x}, offered {actual:#018x})"
            ),
            CheckpointError::CorruptValue(v) => write!(f, "non-finite stored value {v}"),
            CheckpointError::CorruptTag(t) => write!(f, "unknown tag {t}"),
            CheckpointError::TrailingBytes { extra } => write!(f, "{extra} trailing bytes"),
            CheckpointError::BaseMismatch { expected, actual } => write!(
                f,
                "delta was diffed against a different base snapshot \
                 (stored fingerprint {expected:#018x}, offered {actual:#018x})"
            ),
            CheckpointError::ShapeMismatch { index, bound } => {
                write!(f, "delta index {index} does not fit base bound {bound}")
            }
            CheckpointError::WalDivergence { at, home } => write!(
                f,
                "write-ahead log diverges from the resumed run at {}ms (home {home})",
                at.as_millis()
            ),
        }
    }
}

impl Error for CheckpointError {}

/// Digest of everything in a [`MetroConfig`] that shapes the simulated
/// trajectory: homes, seed, gaps, training, idle-close, and the whole
/// per-system configuration. Excludes `jobs`, `horizon` and `engine` —
/// the three knobs a resume may legitimately change (see the module
/// docs).
#[must_use]
pub fn config_digest(cfg: &MetroConfig) -> u64 {
    // CoredaConfig is a plain tree of numbers/enums; its Debug rendering
    // is a deterministic, std-only serialisation of every field.
    let key = format!(
        "homes={} seed={} gap_min={} gap_max={} train={} idle_close={} system={:?}",
        cfg.homes,
        cfg.seed,
        cfg.gap_min.as_millis(),
        cfg.gap_max.as_millis(),
        cfg.train_episodes,
        cfg.idle_close.as_millis(),
        cfg.system,
    );
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in key.bytes() {
        h ^= u64::from(byte);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Serialises a fleet snapshot. Per-home blobs are encoded in parallel
/// across `jobs` workers; the output is identical at any worker count.
#[must_use]
pub fn save_checkpoint(ckpt: &MetroCheckpoint, jobs: usize) -> Bytes {
    let mut buf = BytesMut::new();
    buf.put_slice(MAGIC);
    buf.put_u8(VERSION);
    buf.put_u64(ckpt.digest);
    buf.put_u64(ckpt.at.as_millis());
    buf.put_u64(ckpt.des_events);
    buf.put_u32(u32::try_from(ckpt.homes.len()).expect("fleets fit in u32"));
    let engine = FleetEngine::new(jobs);
    let blobs = engine.map(ckpt.homes.iter().collect(), encode_home);
    for blob in blobs {
        buf.put_u32(u32::try_from(blob.len()).expect("home blobs fit in u32"));
        buf.put_slice(&blob);
    }
    let crc = crc16(&buf);
    buf.put_u16(crc);
    buf.freeze()
}

/// Restores a fleet snapshot from a manifest produced by
/// [`save_checkpoint`]. Per-home blobs are decoded in parallel across
/// `jobs` workers.
///
/// # Errors
///
/// Returns a [`CheckpointError`] if the manifest is malformed,
/// CRC-damaged, or from a different format version. Configuration
/// compatibility is *not* checked here — compare
/// [`MetroCheckpoint::digest`] against [`config_digest`] (the metro
/// resume APIs do) before resuming.
pub fn load_checkpoint(blob: &[u8], jobs: usize) -> Result<MetroCheckpoint, CheckpointError> {
    const HEADER: usize = 4 + 1;
    if blob.len() < HEADER + 2 {
        return Err(CheckpointError::Truncated { len: blob.len() });
    }
    let (body, trailer) = blob.split_at(blob.len() - 2);
    let expected = u16::from_be_bytes([trailer[0], trailer[1]]);
    let actual = crc16(body);
    if expected != actual {
        return Err(CheckpointError::BadCrc { expected, actual });
    }
    let mut r = Reader { buf: body };
    let mut magic = [0u8; 4];
    r.need(4)?;
    r.buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(CheckpointError::BadMagic(magic));
    }
    let version = r.u8()?;
    if version != VERSION {
        return Err(CheckpointError::UnsupportedVersion(version));
    }
    let digest = r.u64()?;
    let at = r.time()?;
    let des_events = r.u64()?;
    let n_homes = r.len()?;
    let mut slices = Vec::with_capacity(n_homes);
    for _ in 0..n_homes {
        let len = r.len()?;
        r.need(len)?;
        let (head, rest) = r.buf.split_at(len);
        slices.push(head);
        r.buf = rest;
    }
    if r.buf.has_remaining() {
        return Err(CheckpointError::TrailingBytes { extra: r.buf.remaining() });
    }
    let engine = FleetEngine::new(jobs);
    let homes = engine
        .map(slices, decode_home)
        .into_iter()
        .collect::<Result<Vec<HomeCheckpoint>, CheckpointError>>()?;
    Ok(MetroCheckpoint { at, digest, des_events, homes })
}

// ---------------------------------------------------------------------
// Writer side
// ---------------------------------------------------------------------

fn put_len(buf: &mut Vec<u8>, len: usize) {
    buf.put_u32(u32::try_from(len).expect("collection fits in u32"));
}

fn put_bool(buf: &mut Vec<u8>, v: bool) {
    buf.put_u8(u8::from(v));
}

fn put_time(buf: &mut Vec<u8>, t: SimTime) {
    buf.put_u64(t.as_millis());
}

fn put_opt_time(buf: &mut Vec<u8>, t: Option<SimTime>) {
    match t {
        None => buf.put_u8(0),
        Some(t) => {
            buf.put_u8(1);
            put_time(buf, t);
        }
    }
}

fn put_rng(buf: &mut Vec<u8>, (state, base): ([u64; 4], u64)) {
    for w in state {
        buf.put_u64(w);
    }
    buf.put_u64(base);
}

/// LEB128-encodes `v`. Delta-manifest paths only: the full-snapshot
/// codec stays fixed-width so its format (and the committed checkpoint
/// bench numbers) are untouched, while deltas — which live or die by
/// their byte count — spend one byte on a small counter instead of
/// eight.
fn put_var(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        #[allow(clippy::cast_possible_truncation)]
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

fn put_var_len(buf: &mut Vec<u8>, len: usize) {
    put_var(buf, u64::try_from(len).expect("collection fits in u64"));
}

fn put_var_time(buf: &mut Vec<u8>, t: SimTime) {
    put_var(buf, t.as_millis());
}

/// Zigzag-encodes a signed value so small magnitudes of either sign
/// stay short.
fn put_var_i64(buf: &mut Vec<u8>, v: i64) {
    #[allow(clippy::cast_sign_loss)]
    put_var(buf, (v.wrapping_shl(1) ^ (v >> 63)) as u64);
}

fn encode_home(h: &HomeCheckpoint) -> Vec<u8> {
    let mut buf = Vec::new();
    put_len(&mut buf, h.systems.len());
    for sys in &h.systems {
        encode_system(&mut buf, sys);
    }
    encode_tracker_slot(&mut buf, h.tracker.as_ref());
    put_rng(&mut buf, h.root);
    put_rng(&mut buf, h.sched);
    encode_episode_slot(&mut buf, h.episode.as_ref());
    buf.put_u64(h.ep_index);
    put_time(&mut buf, h.next_start);
    put_opt_time(&mut buf, h.last_handled);
    encode_stats(&mut buf, &h.stats);
    encode_pending(&mut buf, &h.pending);
    encode_rec_slot(&mut buf, h.rec.as_ref());
    buf
}

fn encode_tracker_slot(buf: &mut Vec<u8>, tracker: Option<&ActiveSessionState>) {
    match tracker {
        None => buf.put_u8(0),
        Some(a) => {
            buf.put_u8(1);
            put_len(buf, a.activity_idx);
            put_time(buf, a.last_report);
            put_bool(buf, a.saw_terminal);
            match a.foreign_run {
                None => buf.put_u8(0),
                Some((idx, run)) => {
                    buf.put_u8(1);
                    put_len(buf, idx);
                    buf.put_u32(run);
                }
            }
        }
    }
}

/// An in-flight episode: activity index, episode state, episode RNG.
type EpisodeSlot = (usize, EpisodeState, ([u64; 4], u64));

fn encode_episode_slot(buf: &mut Vec<u8>, episode: Option<&EpisodeSlot>) {
    match episode {
        None => buf.put_u8(0),
        Some((act, ep, rng)) => {
            buf.put_u8(1);
            put_len(buf, *act);
            encode_episode(buf, ep);
            put_rng(buf, *rng);
        }
    }
}

fn encode_stats(buf: &mut Vec<u8>, stats: &HomeStats) {
    for v in [
        stats.episodes_started,
        stats.episodes_completed,
        stats.reminders,
        stats.praises,
        stats.sessions_started,
        stats.sessions_completed,
        stats.sessions_abandoned,
        stats.cross_activity_flags,
        stats.pipeline_ticks,
    ] {
        buf.put_u64(v);
    }
}

/// Varint mirror of [`encode_stats`], used only on the delta path so the
/// full-snapshot format stays fixed-width and stable.
fn encode_stats_var(buf: &mut Vec<u8>, stats: &HomeStats) {
    for v in [
        stats.episodes_started,
        stats.episodes_completed,
        stats.reminders,
        stats.praises,
        stats.sessions_started,
        stats.sessions_completed,
        stats.sessions_abandoned,
        stats.cross_activity_flags,
        stats.pipeline_ticks,
    ] {
        put_var(buf, v);
    }
}

fn encode_pending(buf: &mut Vec<u8>, pending: &[SimTime]) {
    put_len(buf, pending.len());
    for &due in pending {
        put_time(buf, due);
    }
}

fn encode_rec_slot(buf: &mut Vec<u8>, rec: Option<&RecorderState>) {
    match rec {
        None => buf.put_u8(0),
        Some(rec) => {
            buf.put_u8(1);
            encode_recorder(buf, rec);
        }
    }
}

fn encode_system(buf: &mut Vec<u8>, s: &SystemState) {
    encode_learned(buf, s.learned.as_ref());
    encode_system_rest(buf, s);
}

fn encode_learned(buf: &mut Vec<u8>, learned: Option<&LearnedState>) {
    match learned {
        None => buf.put_u8(0),
        Some(l) => {
            buf.put_u8(1);
            put_len(buf, l.values.len());
            for &v in &l.values {
                buf.put_f64(v);
            }
            put_len(buf, l.visits.len());
            for &v in &l.visits {
                buf.put_u64(v);
            }
            put_len(buf, l.traces.len());
            for &(st, a, e) in &l.traces {
                put_len(buf, st.index());
                put_len(buf, a.index());
                buf.put_f64(e);
            }
            buf.put_u64(l.updates);
            buf.put_u64(l.episodes_trained);
        }
    }
}

/// Everything in a [`SystemState`] except `learned`, in the same order
/// [`encode_system`] writes it.
fn encode_system_rest(buf: &mut Vec<u8>, s: &SystemState) {
    match s.sensing_current {
        None => buf.put_u8(0),
        Some(step) => {
            buf.put_u8(1);
            buf.put_u16(step.raw());
        }
    }
    put_opt_time(buf, s.sensing_last_report);
    put_len(buf, s.sensing_history.len());
    for ev in &s.sensing_history {
        put_time(buf, ev.at);
        buf.put_u16(ev.step.raw());
    }
    put_len(buf, s.nodes.len());
    for (node, state, base) in &s.nodes {
        encode_node(buf, node);
        put_rng(buf, (*state, *base));
    }
    put_rng(buf, s.net_rng);
    buf.put_u16(s.downlink_seq);
    put_len(buf, s.channels.len());
    for &(id, bad, sent, lost) in &s.channels {
        buf.put_u16(id.raw());
        put_bool(buf, bad);
        buf.put_u64(sent);
        buf.put_u64(lost);
    }
    for c in [&s.uplink, &s.downlink] {
        buf.put_u64(c.frames);
        buf.put_u64(c.attempts);
        buf.put_u64(c.delivered);
        buf.put_u64(c.lost);
        buf.put_u64(c.duplicates);
    }
    put_len(buf, s.base_last_seqs.len());
    for &(id, seq) in &s.base_last_seqs {
        buf.put_u16(id.raw());
        buf.put_u16(seq);
    }
    buf.put_u64(s.base_accepted);
    buf.put_u64(s.base_duplicates);
}

fn encode_node(buf: &mut Vec<u8>, n: &NodeState) {
    put_len(buf, n.detector_window.len());
    for &vote in &n.detector_window {
        put_bool(buf, vote);
    }
    put_bool(buf, n.led_green);
    put_bool(buf, n.led_red);
    buf.put_f64(n.energy_uj);
    let (samples, tx, rx, led, sleep) = n.energy_breakdown;
    for v in [samples, tx, rx, led, sleep] {
        buf.put_u64(v);
    }
    buf.put_u16(n.next_seq);
    buf.put_f64(n.window_peak_activation);
    buf.put_u64(n.windows_closed);
    buf.put_u64(n.reports_sent);
    put_bool(buf, n.failed);
    buf.put_f64(n.flip_false_positive);
    buf.put_f64(n.flip_false_negative);
    #[allow(clippy::cast_sign_loss)]
    buf.put_u64(n.clock_skew_ms as u64);
}

fn encode_episode(buf: &mut Vec<u8>, ep: &EpisodeState) {
    match ep.phase {
        PhaseState::Performing { idx, until } => {
            buf.put_u8(0);
            put_len(buf, idx);
            put_time(buf, until);
        }
        PhaseState::Misusing { tool, since, resume_idx } => {
            buf.put_u8(1);
            buf.put_u16(tool.raw());
            put_time(buf, since);
            put_len(buf, resume_idx);
        }
        PhaseState::Frozen { since, resume_idx } => {
            buf.put_u8(2);
            put_time(buf, since);
            put_len(buf, resume_idx);
        }
        PhaseState::Done => buf.put_u8(3),
    }
    match ep.tracked {
        None => buf.put_u8(0),
        Some((prev, cur)) => {
            buf.put_u8(1);
            buf.put_u16(prev.raw());
            buf.put_u16(cur.raw());
        }
    }
    match ep.pending {
        None => buf.put_u8(0),
        Some((due, prompt)) => {
            buf.put_u8(1);
            put_time(buf, due);
            buf.put_u16(prompt.tool.raw());
            buf.put_u8(match prompt.level {
                ReminderLevel::Minimal => 0,
                ReminderLevel::Specific => 1,
            });
        }
    }
    put_opt_time(buf, ep.last_reminder);
    buf.put_u32(ep.reminders_since_advance);
    put_bool(buf, ep.completed);
    buf.put_u64(ep.ticks_done);
    buf.put_u64(ep.max_ticks);
    put_time(buf, ep.start);
    put_bool(buf, ep.finished);
}

fn encode_recorder(buf: &mut Vec<u8>, rec: &RecorderState) {
    put_len(buf, rec.counters.len());
    for &c in &rec.counters {
        buf.put_u64(c);
    }
    put_len(buf, rec.stages.len());
    for (bins, under, over) in &rec.stages {
        put_len(buf, bins.len());
        for &b in bins {
            buf.put_u64(b);
        }
        buf.put_u64(*under);
        buf.put_u64(*over);
    }
    put_len(buf, rec.ring_cap);
    put_len(buf, rec.ring.len());
    for r in &rec.ring {
        encode_trace(buf, r);
    }
    buf.put_u64(rec.ring_dropped);
}

fn encode_trace(buf: &mut Vec<u8>, r: &TraceRecord) {
    put_time(buf, r.at);
    match r.kind {
        TraceKind::EpisodeStarted { episode } => {
            buf.put_u8(0);
            buf.put_u32(episode);
        }
        TraceKind::EpisodeEnded { completed } => {
            buf.put_u8(1);
            put_bool(buf, completed);
        }
        TraceKind::ToolInUse { node } => {
            buf.put_u8(2);
            buf.put_u16(node);
        }
        TraceKind::RadioDelivered { node, attempts } => {
            buf.put_u8(3);
            buf.put_u16(node);
            buf.put_u8(attempts);
        }
        TraceKind::RadioLost { node, attempts } => {
            buf.put_u8(4);
            buf.put_u16(node);
            buf.put_u8(attempts);
        }
        TraceKind::StepExtracted { step } => {
            buf.put_u8(5);
            buf.put_u16(step.raw());
        }
        TraceKind::IdleDetected { idle_ms } => {
            buf.put_u8(6);
            buf.put_u32(idle_ms);
        }
        TraceKind::ReminderIssued { tool, specific, wrong_tool } => {
            buf.put_u8(7);
            buf.put_u16(tool.raw());
            put_bool(buf, specific);
            put_bool(buf, wrong_tool);
        }
        TraceKind::LedCommand { tool, red, delivered } => {
            buf.put_u8(8);
            buf.put_u16(tool.raw());
            put_bool(buf, red);
            put_bool(buf, delivered);
        }
        TraceKind::Praised { latency_ms } => {
            buf.put_u8(9);
            buf.put_u32(latency_ms);
        }
        TraceKind::Reprompt { escalations } => {
            buf.put_u8(10);
            buf.put_u8(escalations);
        }
        TraceKind::SessionStarted { name } => {
            buf.put_u8(11);
            buf.put_u32(u32::try_from(name.index()).expect("name ids are u32"));
        }
        TraceKind::SessionEnded { name, completed } => {
            buf.put_u8(12);
            buf.put_u32(u32::try_from(name.index()).expect("name ids are u32"));
            put_bool(buf, completed);
        }
        TraceKind::CrossActivity { name } => {
            buf.put_u8(13);
            buf.put_u32(u32::try_from(name.index()).expect("name ids are u32"));
        }
    }
}

// ---------------------------------------------------------------------
// Reader side
// ---------------------------------------------------------------------

struct Reader<'a> {
    buf: &'a [u8],
}

impl Reader<'_> {
    fn need(&self, n: usize) -> Result<(), CheckpointError> {
        if self.buf.remaining() < n {
            Err(CheckpointError::Truncated { len: self.buf.remaining() })
        } else {
            Ok(())
        }
    }

    fn u8(&mut self) -> Result<u8, CheckpointError> {
        self.need(1)?;
        Ok(self.buf.get_u8())
    }

    fn u16(&mut self) -> Result<u16, CheckpointError> {
        self.need(2)?;
        Ok(self.buf.get_u16())
    }

    fn u32(&mut self) -> Result<u32, CheckpointError> {
        self.need(4)?;
        Ok(self.buf.get_u32())
    }

    fn u64(&mut self) -> Result<u64, CheckpointError> {
        self.need(8)?;
        Ok(self.buf.get_u64())
    }

    fn i64(&mut self) -> Result<i64, CheckpointError> {
        #[allow(clippy::cast_possible_wrap)]
        Ok(self.u64()? as i64)
    }

    fn f64(&mut self) -> Result<f64, CheckpointError> {
        let v = f64::from_bits(self.u64()?);
        if v.is_finite() {
            Ok(v)
        } else {
            Err(CheckpointError::CorruptValue(v))
        }
    }

    fn bool(&mut self) -> Result<bool, CheckpointError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            t => Err(CheckpointError::CorruptTag(t)),
        }
    }

    fn opt(&mut self) -> Result<bool, CheckpointError> {
        self.bool()
    }

    fn len(&mut self) -> Result<usize, CheckpointError> {
        Ok(self.u32()? as usize)
    }

    fn time(&mut self) -> Result<SimTime, CheckpointError> {
        Ok(SimTime::from_millis(self.u64()?))
    }

    fn opt_time(&mut self) -> Result<Option<SimTime>, CheckpointError> {
        if self.opt()? {
            Ok(Some(self.time()?))
        } else {
            Ok(None)
        }
    }

    fn rng(&mut self) -> Result<([u64; 4], u64), CheckpointError> {
        let state = [self.u64()?, self.u64()?, self.u64()?, self.u64()?];
        let base = self.u64()?;
        Ok((state, base))
    }

    /// LEB128 counterpart of [`put_var`]. Non-canonical (overlong)
    /// encodings are accepted — integrity comes from the manifest CRC,
    /// not from canonical form — but a continuation run past the u64
    /// range is rejected rather than shifted out of bounds.
    fn var(&mut self) -> Result<u64, CheckpointError> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let byte = self.u8()?;
            if shift >= 64 {
                return Err(CheckpointError::CorruptTag(byte));
            }
            v |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    fn var_len(&mut self) -> Result<usize, CheckpointError> {
        let v = self.var()?;
        usize::try_from(v).map_err(|_| CheckpointError::Truncated { len: self.buf.remaining() })
    }

    fn var_time(&mut self) -> Result<SimTime, CheckpointError> {
        Ok(SimTime::from_millis(self.var()?))
    }

    fn var_i64(&mut self) -> Result<i64, CheckpointError> {
        let z = self.var()?;
        #[allow(clippy::cast_possible_wrap)]
        Ok(((z >> 1) as i64) ^ -((z & 1) as i64))
    }
}

fn decode_home(blob: &[u8]) -> Result<HomeCheckpoint, CheckpointError> {
    let mut r = Reader { buf: blob };
    let n_systems = r.len()?;
    let mut systems = Vec::with_capacity(n_systems.min(64));
    for _ in 0..n_systems {
        systems.push(decode_system(&mut r)?);
    }
    let tracker = decode_tracker_slot(&mut r)?;
    let root = r.rng()?;
    let sched = r.rng()?;
    let episode = decode_episode_slot(&mut r)?;
    let ep_index = r.u64()?;
    let next_start = r.time()?;
    let last_handled = r.opt_time()?;
    let stats = decode_stats(&mut r)?;
    let pending = decode_pending(&mut r)?;
    let rec = decode_rec_slot(&mut r)?;
    if r.buf.has_remaining() {
        return Err(CheckpointError::TrailingBytes { extra: r.buf.remaining() });
    }
    Ok(HomeCheckpoint {
        systems,
        tracker,
        root,
        sched,
        episode,
        ep_index,
        next_start,
        last_handled,
        stats,
        pending,
        rec,
    })
}

fn decode_tracker_slot(r: &mut Reader<'_>) -> Result<Option<ActiveSessionState>, CheckpointError> {
    if !r.opt()? {
        return Ok(None);
    }
    let activity_idx = r.len()?;
    let last_report = r.time()?;
    let saw_terminal = r.bool()?;
    let foreign_run = if r.opt()? { Some((r.len()?, r.u32()?)) } else { None };
    Ok(Some(ActiveSessionState { activity_idx, last_report, saw_terminal, foreign_run }))
}

#[allow(clippy::type_complexity)]
fn decode_episode_slot(
    r: &mut Reader<'_>,
) -> Result<Option<(usize, EpisodeState, ([u64; 4], u64))>, CheckpointError> {
    if !r.opt()? {
        return Ok(None);
    }
    let act = r.len()?;
    let ep = decode_episode(r)?;
    let rng = r.rng()?;
    Ok(Some((act, ep, rng)))
}

fn decode_stats(r: &mut Reader<'_>) -> Result<HomeStats, CheckpointError> {
    Ok(HomeStats {
        episodes_started: r.u64()?,
        episodes_completed: r.u64()?,
        reminders: r.u64()?,
        praises: r.u64()?,
        sessions_started: r.u64()?,
        sessions_completed: r.u64()?,
        sessions_abandoned: r.u64()?,
        cross_activity_flags: r.u64()?,
        pipeline_ticks: r.u64()?,
        energy_uj: 0.0,
    })
}

/// Varint mirror of [`decode_stats`]; delta-path counters are small in
/// steady state, so LEB128 shrinks the 72-byte block to ~9-20 bytes.
fn decode_stats_var(r: &mut Reader<'_>) -> Result<HomeStats, CheckpointError> {
    Ok(HomeStats {
        episodes_started: r.var()?,
        episodes_completed: r.var()?,
        reminders: r.var()?,
        praises: r.var()?,
        sessions_started: r.var()?,
        sessions_completed: r.var()?,
        sessions_abandoned: r.var()?,
        cross_activity_flags: r.var()?,
        pipeline_ticks: r.var()?,
        energy_uj: 0.0,
    })
}

fn decode_pending(r: &mut Reader<'_>) -> Result<Vec<SimTime>, CheckpointError> {
    let n_pending = r.len()?;
    let mut pending = Vec::with_capacity(n_pending.min(1024));
    for _ in 0..n_pending {
        pending.push(r.time()?);
    }
    Ok(pending)
}

fn decode_rec_slot(r: &mut Reader<'_>) -> Result<Option<RecorderState>, CheckpointError> {
    if r.opt()? {
        Ok(Some(decode_recorder(r)?))
    } else {
        Ok(None)
    }
}

fn decode_system(r: &mut Reader<'_>) -> Result<SystemState, CheckpointError> {
    let learned = decode_learned(r)?;
    let mut system = decode_system_rest(r)?;
    system.learned = learned;
    Ok(system)
}

fn decode_learned(r: &mut Reader<'_>) -> Result<Option<LearnedState>, CheckpointError> {
    if !r.opt()? {
        return Ok(None);
    }
    let n = r.len()?;
    let mut values = Vec::with_capacity(n.min(65_536));
    for _ in 0..n {
        values.push(r.f64()?);
    }
    let n = r.len()?;
    let mut visits = Vec::with_capacity(n.min(65_536));
    for _ in 0..n {
        visits.push(r.u64()?);
    }
    let n = r.len()?;
    let mut traces = Vec::with_capacity(n.min(65_536));
    for _ in 0..n {
        let s = StateId::new(r.len()?);
        let a = ActionId::new(r.len()?);
        let e = r.f64()?;
        traces.push((s, a, e));
    }
    let updates = r.u64()?;
    let episodes_trained = r.u64()?;
    Ok(Some(LearnedState { values, visits, traces, updates, episodes_trained }))
}

#[allow(clippy::too_many_lines)]
fn decode_system_rest(r: &mut Reader<'_>) -> Result<SystemState, CheckpointError> {
    let sensing_current = if r.opt()? { Some(StepId::from_raw(r.u16()?)) } else { None };
    let sensing_last_report = r.opt_time()?;
    let n = r.len()?;
    let mut sensing_history = Vec::with_capacity(n.min(65_536));
    for _ in 0..n {
        let at = r.time()?;
        let step = StepId::from_raw(r.u16()?);
        sensing_history.push(StepEvent { at, step });
    }
    let n = r.len()?;
    let mut nodes = Vec::with_capacity(n.min(256));
    for _ in 0..n {
        let node = decode_node(r)?;
        let (state, base) = r.rng()?;
        nodes.push((node, state, base));
    }
    let net_rng = r.rng()?;
    let downlink_seq = r.u16()?;
    let n = r.len()?;
    let mut channels = Vec::with_capacity(n.min(256));
    for _ in 0..n {
        let id = NodeId::new(r.u16()?);
        let bad = r.bool()?;
        let sent = r.u64()?;
        let lost = r.u64()?;
        channels.push((id, bad, sent, lost));
    }
    let mut counters = [LinkCounters::default(); 2];
    for c in &mut counters {
        c.frames = r.u64()?;
        c.attempts = r.u64()?;
        c.delivered = r.u64()?;
        c.lost = r.u64()?;
        c.duplicates = r.u64()?;
    }
    let n = r.len()?;
    let mut base_last_seqs = Vec::with_capacity(n.min(256));
    for _ in 0..n {
        let id = NodeId::new(r.u16()?);
        let seq = r.u16()?;
        base_last_seqs.push((id, seq));
    }
    let base_accepted = r.u64()?;
    let base_duplicates = r.u64()?;
    Ok(SystemState {
        learned: None,
        sensing_current,
        sensing_last_report,
        sensing_history,
        nodes,
        net_rng,
        downlink_seq,
        channels,
        uplink: counters[0],
        downlink: counters[1],
        base_last_seqs,
        base_accepted,
        base_duplicates,
    })
}

fn decode_node(r: &mut Reader<'_>) -> Result<NodeState, CheckpointError> {
    let n = r.len()?;
    let mut detector_window = Vec::with_capacity(n.min(64));
    for _ in 0..n {
        detector_window.push(r.bool()?);
    }
    let led_green = r.bool()?;
    let led_red = r.bool()?;
    let energy_uj = r.f64()?;
    let energy_breakdown = (r.u64()?, r.u64()?, r.u64()?, r.u64()?, r.u64()?);
    let next_seq = r.u16()?;
    let window_peak_activation = r.f64()?;
    let windows_closed = r.u64()?;
    let reports_sent = r.u64()?;
    let failed = r.bool()?;
    let flip_false_positive = r.f64()?;
    let flip_false_negative = r.f64()?;
    let clock_skew_ms = r.i64()?;
    Ok(NodeState {
        detector_window,
        led_green,
        led_red,
        energy_uj,
        energy_breakdown,
        next_seq,
        window_peak_activation,
        windows_closed,
        reports_sent,
        failed,
        flip_false_positive,
        flip_false_negative,
        clock_skew_ms,
    })
}

fn decode_episode(r: &mut Reader<'_>) -> Result<EpisodeState, CheckpointError> {
    let phase = match r.u8()? {
        0 => {
            let idx = r.len()?;
            let until = r.time()?;
            PhaseState::Performing { idx, until }
        }
        1 => {
            let tool = ToolId::new(r.u16()?);
            let since = r.time()?;
            let resume_idx = r.len()?;
            PhaseState::Misusing { tool, since, resume_idx }
        }
        2 => {
            let since = r.time()?;
            let resume_idx = r.len()?;
            PhaseState::Frozen { since, resume_idx }
        }
        3 => PhaseState::Done,
        t => return Err(CheckpointError::CorruptTag(t)),
    };
    let tracked = if r.opt()? {
        let prev = StepId::from_raw(r.u16()?);
        let cur = StepId::from_raw(r.u16()?);
        Some((prev, cur))
    } else {
        None
    };
    let pending = if r.opt()? {
        let due = r.time()?;
        let tool = ToolId::new(r.u16()?);
        let level = match r.u8()? {
            0 => ReminderLevel::Minimal,
            1 => ReminderLevel::Specific,
            t => return Err(CheckpointError::CorruptTag(t)),
        };
        Some((due, Prompt { tool, level }))
    } else {
        None
    };
    let last_reminder = r.opt_time()?;
    let reminders_since_advance = r.u32()?;
    let completed = r.bool()?;
    let ticks_done = r.u64()?;
    let max_ticks = r.u64()?;
    let start = r.time()?;
    let finished = r.bool()?;
    Ok(EpisodeState {
        phase,
        tracked,
        pending,
        last_reminder,
        reminders_since_advance,
        completed,
        ticks_done,
        max_ticks,
        start,
        finished,
    })
}

fn decode_recorder(r: &mut Reader<'_>) -> Result<RecorderState, CheckpointError> {
    let n = r.len()?;
    let mut counters = Vec::with_capacity(n.min(256));
    for _ in 0..n {
        counters.push(r.u64()?);
    }
    let n = r.len()?;
    let mut stages = Vec::with_capacity(n.min(64));
    for _ in 0..n {
        let n_bins = r.len()?;
        let mut bins = Vec::with_capacity(n_bins.min(65_536));
        for _ in 0..n_bins {
            bins.push(r.u64()?);
        }
        let under = r.u64()?;
        let over = r.u64()?;
        stages.push((bins, under, over));
    }
    let ring_cap = r.len()?;
    let n = r.len()?;
    let mut ring = Vec::with_capacity(n.min(65_536));
    for _ in 0..n {
        ring.push(decode_trace(r)?);
    }
    let ring_dropped = r.u64()?;
    Ok(RecorderState { counters, stages, ring_cap, ring, ring_dropped })
}

fn decode_trace(r: &mut Reader<'_>) -> Result<TraceRecord, CheckpointError> {
    let at = r.time()?;
    let kind = match r.u8()? {
        0 => TraceKind::EpisodeStarted { episode: r.u32()? },
        1 => TraceKind::EpisodeEnded { completed: r.bool()? },
        2 => TraceKind::ToolInUse { node: r.u16()? },
        3 => TraceKind::RadioDelivered { node: r.u16()?, attempts: r.u8()? },
        4 => TraceKind::RadioLost { node: r.u16()?, attempts: r.u8()? },
        5 => TraceKind::StepExtracted { step: StepId::from_raw(r.u16()?) },
        6 => TraceKind::IdleDetected { idle_ms: r.u32()? },
        7 => TraceKind::ReminderIssued {
            tool: ToolId::new(r.u16()?),
            specific: r.bool()?,
            wrong_tool: r.bool()?,
        },
        8 => TraceKind::LedCommand {
            tool: ToolId::new(r.u16()?),
            red: r.bool()?,
            delivered: r.bool()?,
        },
        9 => TraceKind::Praised { latency_ms: r.u32()? },
        10 => TraceKind::Reprompt { escalations: r.u8()? },
        11 => TraceKind::SessionStarted { name: NameId::from_index(r.u32()? as usize) },
        12 => TraceKind::SessionEnded {
            name: NameId::from_index(r.u32()? as usize),
            completed: r.bool()?,
        },
        13 => TraceKind::CrossActivity { name: NameId::from_index(r.u32()? as usize) },
        t => return Err(CheckpointError::CorruptTag(t)),
    };
    Ok(TraceRecord { at, kind })
}

// ---------------------------------------------------------------------
// Incremental deltas
// ---------------------------------------------------------------------

/// Magic prefix of a delta manifest ([`save_delta`]).
pub const DELTA_MAGIC: &[u8; 4] = b"CRCD";

const DIRTY_SYSTEMS: u16 = 1 << 0;
const DIRTY_TRACKER: u16 = 1 << 1;
const DIRTY_ROOT: u16 = 1 << 2;
const DIRTY_SCHED: u16 = 1 << 3;
const DIRTY_EPISODE: u16 = 1 << 4;
const DIRTY_SCHEDULE: u16 = 1 << 5;
const DIRTY_STATS: u16 = 1 << 6;
const DIRTY_PENDING: u16 = 1 << 7;
const DIRTY_REC: u16 = 1 << 8;
const DIRTY_ALL: u16 = (1 << 9) - 1;

const REST_SENSING: u16 = 1 << 0;
const REST_HISTORY: u16 = 1 << 1;
const REST_NODES: u16 = 1 << 2;
const REST_NET_RNG: u16 = 1 << 3;
const REST_DOWNLINK_SEQ: u16 = 1 << 4;
const REST_CHANNELS: u16 = 1 << 5;
const REST_UPLINK: u16 = 1 << 6;
const REST_DOWNLINK: u16 = 1 << 7;
const REST_BASE_SEQS: u16 = 1 << 8;
const REST_BASE_COUNTS: u16 = 1 << 9;
const REST_ALL: u16 = (1 << 10) - 1;

const NODE_WINDOW: u16 = 1 << 0;
const NODE_LEDS: u16 = 1 << 1;
const NODE_ENERGY: u16 = 1 << 2;
const NODE_BREAKDOWN: u16 = 1 << 3;
const NODE_SEQ: u16 = 1 << 4;
const NODE_PEAK: u16 = 1 << 5;
const NODE_COUNTS: u16 = 1 << 6;
const NODE_FAILED: u16 = 1 << 7;
const NODE_FLIPS: u16 = 1 << 8;
const NODE_SKEW: u16 = 1 << 9;
const NODE_RNG: u16 = 1 << 10;
const NODE_ALL: u16 = (1 << 11) - 1;

/// How one activity's learned Q-state moved relative to the base.
///
/// Serve-only metro runs never touch learned state, so the overwhelmingly
/// common case is [`LearnedDelta::Unchanged`] — zero bytes of Q-table in
/// the delta. Online-learning runs usually touch a handful of cells per
/// interval, captured sparsely by [`LearnedDelta::Cells`].
#[derive(Debug, Clone, PartialEq)]
pub enum LearnedDelta {
    /// Bit-identical to the base (including both being absent).
    Unchanged,
    /// Sparse cell updates against a base whose table shapes match.
    Cells {
        /// `(cell index, new Q-value)` for every changed value cell.
        values: Vec<(u32, f64)>,
        /// `(cell index, new count)` for every changed visit counter.
        visits: Vec<(u32, u64)>,
        /// Eligibility traces, replaced wholesale (they are tiny and
        /// churn completely within an episode).
        traces: Vec<(StateId, ActionId, f64)>,
        /// New total update count.
        updates: u64,
        /// New trained-episode count.
        episodes_trained: u64,
    },
    /// Wholesale replacement: presence flipped or the table was resized.
    Full(Option<LearnedState>),
}

/// Delta of one activity system against the base.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemDelta {
    /// Learned-state movement (the bulk of a full system snapshot).
    pub learned: LearnedDelta,
    /// Dirty non-learned fields, diffed field by field: a measured 1k-home
    /// steady-state interval spends ~60 % of its delta bytes on wholesale
    /// node re-encodes, almost all of which is unchanged fault knobs,
    /// fixed-width counters that moved by a handful, and RNG base seeds
    /// that never move at all.
    pub rest: RestDelta,
}

/// How one system's recognised step history moved relative to the base.
///
/// The history is append-only in normal operation, so the common case
/// stores only the new tail events.
#[derive(Debug, Clone, Default, PartialEq)]
pub enum HistoryDelta {
    /// Bit-identical to the base.
    #[default]
    Unchanged,
    /// The base's history is a strict prefix; these events follow it.
    Append(Vec<StepEvent>),
    /// Wholesale replacement (the history shrank or was rewritten —
    /// never in normal operation, but the codec stays total).
    Replace(Vec<StepEvent>),
}

/// Sparse update of a slot vector whose shape rarely changes (per-link
/// channel state, the base station's dedup table).
#[derive(Debug, Clone, Default, PartialEq)]
pub enum SlotsDelta<T> {
    /// Bit-identical to the base.
    #[default]
    Unchanged,
    /// Same length as the base; only the listed `(index, new value)`
    /// slots changed.
    Sparse(Vec<(u32, T)>),
    /// The length itself moved: replaced wholesale.
    Replace(Vec<T>),
}

/// Dirty fields of one sensor node relative to the base snapshot;
/// `None` means identical to the base. The node RNG's *base seed* is
/// construction-time and never re-stored — only the stream position
/// travels ([`NodeDelta::rng_state`]).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NodeDelta {
    /// New partially-filled detector window.
    pub detector_window: Option<Vec<bool>>,
    /// New `(green, red)` LED pair.
    pub leds: Option<(bool, bool)>,
    /// New energy accumulator.
    pub energy_uj: Option<f64>,
    /// New energy breakdown quintet.
    pub energy_breakdown: Option<(u64, u64, u64, u64, u64)>,
    /// New radio sequence number.
    pub next_seq: Option<u16>,
    /// New window peak activation.
    pub window_peak_activation: Option<f64>,
    /// New `(windows_closed, reports_sent)` pair.
    pub counts: Option<(u64, u64)>,
    /// New crash flag.
    pub failed: Option<bool>,
    /// New `(false positive, false negative)` flip probabilities.
    pub flips: Option<(f64, f64)>,
    /// New clock skew.
    pub clock_skew_ms: Option<i64>,
    /// New RNG stream position.
    pub rng_state: Option<[u64; 4]>,
}

/// Dirty non-learned fields of one [`SystemState`] relative to the
/// base; `None`/`Unchanged`/empty means identical to the base.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RestDelta {
    /// New `(believed current step, last report instant)` pair (they
    /// move together, so they share a dirty bit).
    pub sensing: Option<(Option<StepId>, Option<SimTime>)>,
    /// Recognised-step-history movement.
    pub history: HistoryDelta,
    /// Per-node deltas in spec tool order, `None` for untouched nodes.
    /// Empty means no node changed at all.
    pub nodes: Vec<Option<NodeDelta>>,
    /// New network RNG stream position (base seed is construction-time).
    pub net_rng: Option<[u64; 4]>,
    /// New downlink sequence number.
    pub downlink_seq: Option<u16>,
    /// Per-link channel-state movement.
    pub channels: SlotsDelta<(NodeId, bool, u64, u64)>,
    /// New uplink counters.
    pub uplink: Option<LinkCounters>,
    /// New downlink counters.
    pub downlink: Option<LinkCounters>,
    /// Base-station dedup-table movement.
    pub base_last_seqs: SlotsDelta<(NodeId, u16)>,
    /// New `(accepted, duplicates)` base-station totals.
    pub base_counts: Option<(u64, u64)>,
}

/// Dirty fields of one home relative to a base snapshot. Every field is
/// optional; `None`/empty means "identical to the base". A home that did
/// nothing over the interval costs one byte in the manifest.
#[derive(Debug, Clone, Default, PartialEq)]
#[allow(clippy::type_complexity)]
pub struct HomeDelta {
    /// Per-system deltas in spec order, `None` for untouched systems.
    /// Empty means no system changed at all.
    pub systems: Vec<Option<SystemDelta>>,
    /// New session-tracker slot, if it changed.
    pub tracker: Option<Option<ActiveSessionState>>,
    /// New root RNG position, if advanced.
    pub root: Option<([u64; 4], u64)>,
    /// New scheduling RNG position, if advanced.
    pub sched: Option<([u64; 4], u64)>,
    /// New in-flight-episode slot, if it changed.
    pub episode: Option<Option<(usize, EpisodeState, ([u64; 4], u64))>>,
    /// New `(ep_index, next_start, last_handled)` trio, if any moved
    /// (they move together, so they share a dirty bit).
    pub schedule: Option<(u64, SimTime, Option<SimTime>)>,
    /// New statistics, if any counter moved.
    pub stats: Option<HomeStats>,
    /// New pending-wake set, if it changed.
    pub pending: Option<Vec<SimTime>>,
    /// New flight-recorder state, if it changed.
    pub rec: Option<Option<RecorderState>>,
}

/// A fleet-wide incremental checkpoint: what moved since a specific base
/// snapshot. Applying it to that base ([`apply_delta`]) reproduces the
/// full [`MetroCheckpoint`] at [`DeltaCheckpoint::at`] exactly.
#[derive(Debug, Clone, PartialEq)]
pub struct DeltaCheckpoint {
    /// The delta's instant (the "to" side of the diff).
    pub at: SimTime,
    /// [`config_digest`] of the run's configuration.
    pub digest: u64,
    /// [`checkpoint_fingerprint`] of the base this delta was diffed
    /// against. [`apply_delta`] refuses any other base.
    pub base_fingerprint: u64,
    /// Raw DES events processed up to the delta's instant.
    pub des_events: u64,
    /// Per-home deltas in home-id order; `None` for homes whose entire
    /// state is identical to the base.
    pub homes: Vec<Option<HomeDelta>>,
}

impl DeltaCheckpoint {
    /// Number of homes with any dirty state in this delta.
    #[must_use]
    pub fn dirty_homes(&self) -> usize {
        self.homes.iter().filter(|h| h.is_some()).count()
    }
}

/// Cheap identity fingerprint of a snapshot, stored in every delta to
/// bind it to its exact base. For a deterministic run, `(config digest,
/// instant, DES event count)` pins the fleet state uniquely; the home
/// and traced-home counts additionally distinguish structurally
/// different captures. O(homes), no per-field hashing — the full-state
/// guarantee comes from the codec round-trip tests, not from this hash.
#[must_use]
pub fn checkpoint_fingerprint(ckpt: &MetroCheckpoint) -> u64 {
    let traced = ckpt.homes.iter().filter(|h| h.rec.is_some()).count();
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for v in [
        ckpt.digest,
        ckpt.at.as_millis(),
        ckpt.des_events,
        ckpt.homes.len() as u64,
        traced as u64,
    ] {
        for byte in v.to_be_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
    }
    h
}

/// Diffs `cur` against `base`, producing a delta that [`apply_delta`]
/// turns back into `cur` exactly.
///
/// # Panics
///
/// Panics if the two snapshots come from different configurations or
/// fleets — deltas only make sense along one run's timeline.
#[must_use]
pub fn delta_checkpoint(base: &MetroCheckpoint, cur: &MetroCheckpoint) -> DeltaCheckpoint {
    assert_eq!(base.digest, cur.digest, "deltas require snapshots of the same run");
    assert_eq!(base.homes.len(), cur.homes.len(), "deltas require equal fleet sizes");
    let homes = base
        .homes
        .iter()
        .zip(&cur.homes)
        .map(|(b, c)| if b == c { None } else { Some(home_delta(b, c)) })
        .collect();
    DeltaCheckpoint {
        at: cur.at,
        digest: cur.digest,
        base_fingerprint: checkpoint_fingerprint(base),
        des_events: cur.des_events,
        homes,
    }
}

/// Reconstructs the full snapshot a delta describes by applying it to
/// its base.
///
/// # Errors
///
/// [`CheckpointError::ConfigMismatch`] if the delta belongs to a
/// different run, [`CheckpointError::BaseMismatch`] if it was diffed
/// against a different base snapshot, and
/// [`CheckpointError::ShapeMismatch`] if a (CRC-valid but crafted) delta
/// addresses state the base does not have.
pub fn apply_delta(
    base: &MetroCheckpoint,
    delta: &DeltaCheckpoint,
) -> Result<MetroCheckpoint, CheckpointError> {
    if delta.digest != base.digest {
        return Err(CheckpointError::ConfigMismatch {
            expected: delta.digest,
            actual: base.digest,
        });
    }
    let actual = checkpoint_fingerprint(base);
    if delta.base_fingerprint != actual {
        return Err(CheckpointError::BaseMismatch { expected: delta.base_fingerprint, actual });
    }
    if delta.homes.len() != base.homes.len() {
        return Err(shape_mismatch(delta.homes.len(), base.homes.len()));
    }
    let homes = base
        .homes
        .iter()
        .zip(&delta.homes)
        .map(|(b, d)| match d {
            None => Ok(b.clone()),
            Some(d) => apply_home_delta(b, d),
        })
        .collect::<Result<Vec<_>, _>>()?;
    Ok(MetroCheckpoint { at: delta.at, digest: delta.digest, des_events: delta.des_events, homes })
}

/// Folds a chain of deltas into their base, producing the fresh full
/// snapshot a compaction would write. Each delta must have been diffed
/// against the result of applying all earlier ones.
///
/// # Errors
///
/// Propagates the first [`apply_delta`] failure.
pub fn compact(
    base: &MetroCheckpoint,
    deltas: &[DeltaCheckpoint],
) -> Result<MetroCheckpoint, CheckpointError> {
    let mut cur = base.clone();
    for d in deltas {
        cur = apply_delta(&cur, d)?;
    }
    Ok(cur)
}

fn shape_mismatch(index: usize, bound: usize) -> CheckpointError {
    CheckpointError::ShapeMismatch {
        index: u32::try_from(index).unwrap_or(u32::MAX),
        bound: u32::try_from(bound).unwrap_or(u32::MAX),
    }
}

fn home_delta(base: &HomeCheckpoint, cur: &HomeCheckpoint) -> HomeDelta {
    let mut d = HomeDelta::default();
    if base.systems != cur.systems {
        assert_eq!(
            base.systems.len(),
            cur.systems.len(),
            "system count is pinned by the config digest"
        );
        d.systems = base
            .systems
            .iter()
            .zip(&cur.systems)
            .map(|(b, c)| if b == c { None } else { Some(system_delta(b, c)) })
            .collect();
    }
    if base.tracker != cur.tracker {
        d.tracker = Some(cur.tracker);
    }
    if base.root != cur.root {
        d.root = Some(cur.root);
    }
    if base.sched != cur.sched {
        d.sched = Some(cur.sched);
    }
    if base.episode != cur.episode {
        d.episode = Some(cur.episode);
    }
    if (base.ep_index, base.next_start, base.last_handled)
        != (cur.ep_index, cur.next_start, cur.last_handled)
    {
        d.schedule = Some((cur.ep_index, cur.next_start, cur.last_handled));
    }
    if base.stats != cur.stats {
        d.stats = Some(cur.stats);
    }
    if base.pending != cur.pending {
        d.pending = Some(cur.pending.clone());
    }
    if base.rec != cur.rec {
        d.rec = Some(cur.rec.clone());
    }
    d
}

fn system_delta(base: &SystemState, cur: &SystemState) -> SystemDelta {
    SystemDelta {
        learned: learned_delta(base.learned.as_ref(), cur.learned.as_ref()),
        rest: rest_delta(base, cur),
    }
}

fn rest_delta(base: &SystemState, cur: &SystemState) -> RestDelta {
    let mut d = RestDelta::default();
    if (base.sensing_current, base.sensing_last_report)
        != (cur.sensing_current, cur.sensing_last_report)
    {
        d.sensing = Some((cur.sensing_current, cur.sensing_last_report));
    }
    if base.sensing_history != cur.sensing_history {
        let blen = base.sensing_history.len();
        d.history = if cur.sensing_history.len() >= blen
            && cur.sensing_history[..blen] == base.sensing_history[..]
        {
            HistoryDelta::Append(cur.sensing_history[blen..].to_vec())
        } else {
            HistoryDelta::Replace(cur.sensing_history.clone())
        };
    }
    if base.nodes != cur.nodes {
        assert_eq!(base.nodes.len(), cur.nodes.len(), "node count is pinned by the spec");
        d.nodes = base
            .nodes
            .iter()
            .zip(&cur.nodes)
            .map(|(b, c)| if b == c { None } else { Some(node_delta(b, c)) })
            .collect();
    }
    if base.net_rng != cur.net_rng {
        assert_eq!(base.net_rng.1, cur.net_rng.1, "rng base seed is construction-time");
        d.net_rng = Some(cur.net_rng.0);
    }
    if base.downlink_seq != cur.downlink_seq {
        d.downlink_seq = Some(cur.downlink_seq);
    }
    d.channels = slots_delta(&base.channels, &cur.channels);
    if base.uplink != cur.uplink {
        d.uplink = Some(cur.uplink);
    }
    if base.downlink != cur.downlink {
        d.downlink = Some(cur.downlink);
    }
    d.base_last_seqs = slots_delta(&base.base_last_seqs, &cur.base_last_seqs);
    if (base.base_accepted, base.base_duplicates) != (cur.base_accepted, cur.base_duplicates) {
        d.base_counts = Some((cur.base_accepted, cur.base_duplicates));
    }
    d
}

fn slots_delta<T: Clone + PartialEq>(base: &[T], cur: &[T]) -> SlotsDelta<T> {
    if base == cur {
        SlotsDelta::Unchanged
    } else if base.len() == cur.len() {
        SlotsDelta::Sparse(
            base.iter()
                .zip(cur)
                .enumerate()
                .filter(|(_, (b, c))| b != c)
                .map(|(i, (_, c))| (u32::try_from(i).expect("slots fit in u32"), c.clone()))
                .collect(),
        )
    } else {
        SlotsDelta::Replace(cur.to_vec())
    }
}

fn node_delta(
    base: &(NodeState, [u64; 4], u64),
    cur: &(NodeState, [u64; 4], u64),
) -> NodeDelta {
    assert_eq!(base.2, cur.2, "rng base seed is construction-time");
    let (b, c) = (&base.0, &cur.0);
    let mut d = NodeDelta::default();
    if b.detector_window != c.detector_window {
        d.detector_window = Some(c.detector_window.clone());
    }
    if (b.led_green, b.led_red) != (c.led_green, c.led_red) {
        d.leds = Some((c.led_green, c.led_red));
    }
    if b.energy_uj != c.energy_uj {
        d.energy_uj = Some(c.energy_uj);
    }
    if b.energy_breakdown != c.energy_breakdown {
        d.energy_breakdown = Some(c.energy_breakdown);
    }
    if b.next_seq != c.next_seq {
        d.next_seq = Some(c.next_seq);
    }
    if b.window_peak_activation != c.window_peak_activation {
        d.window_peak_activation = Some(c.window_peak_activation);
    }
    if (b.windows_closed, b.reports_sent) != (c.windows_closed, c.reports_sent) {
        d.counts = Some((c.windows_closed, c.reports_sent));
    }
    if b.failed != c.failed {
        d.failed = Some(c.failed);
    }
    if (b.flip_false_positive, b.flip_false_negative)
        != (c.flip_false_positive, c.flip_false_negative)
    {
        d.flips = Some((c.flip_false_positive, c.flip_false_negative));
    }
    if b.clock_skew_ms != c.clock_skew_ms {
        d.clock_skew_ms = Some(c.clock_skew_ms);
    }
    if base.1 != cur.1 {
        d.rng_state = Some(cur.1);
    }
    d
}

fn learned_delta(base: Option<&LearnedState>, cur: Option<&LearnedState>) -> LearnedDelta {
    match (base, cur) {
        (b, c) if b == c => LearnedDelta::Unchanged,
        (Some(b), Some(c))
            if b.values.len() == c.values.len() && b.visits.len() == c.visits.len() =>
        {
            let values = b
                .values
                .iter()
                .zip(&c.values)
                .enumerate()
                .filter(|(_, (bv, cv))| bv != cv)
                .map(|(i, (_, &cv))| (u32::try_from(i).expect("tables fit in u32"), cv))
                .collect();
            let visits = b
                .visits
                .iter()
                .zip(&c.visits)
                .enumerate()
                .filter(|(_, (bv, cv))| bv != cv)
                .map(|(i, (_, &cv))| (u32::try_from(i).expect("tables fit in u32"), cv))
                .collect();
            LearnedDelta::Cells {
                values,
                visits,
                traces: c.traces.clone(),
                updates: c.updates,
                episodes_trained: c.episodes_trained,
            }
        }
        (_, c) => LearnedDelta::Full(c.cloned()),
    }
}

fn apply_home_delta(
    base: &HomeCheckpoint,
    d: &HomeDelta,
) -> Result<HomeCheckpoint, CheckpointError> {
    let mut out = base.clone();
    if !d.systems.is_empty() {
        if d.systems.len() != out.systems.len() {
            return Err(shape_mismatch(d.systems.len(), out.systems.len()));
        }
        for (slot, delta) in out.systems.iter_mut().zip(&d.systems) {
            if let Some(sd) = delta {
                slot.learned = apply_learned_delta(slot.learned.take(), &sd.learned)?;
                apply_rest_delta(slot, &sd.rest)?;
            }
        }
    }
    if let Some(t) = &d.tracker {
        out.tracker = *t;
    }
    if let Some(r) = d.root {
        out.root = r;
    }
    if let Some(r) = d.sched {
        out.sched = r;
    }
    if let Some(ep) = &d.episode {
        out.episode = *ep;
    }
    if let Some((ep_index, next_start, last_handled)) = d.schedule {
        out.ep_index = ep_index;
        out.next_start = next_start;
        out.last_handled = last_handled;
    }
    if let Some(s) = &d.stats {
        out.stats = *s;
    }
    if let Some(p) = &d.pending {
        out.pending = p.clone();
    }
    if let Some(rec) = &d.rec {
        out.rec = rec.clone();
    }
    Ok(out)
}

fn apply_rest_delta(out: &mut SystemState, d: &RestDelta) -> Result<(), CheckpointError> {
    if let Some((current, last_report)) = d.sensing {
        out.sensing_current = current;
        out.sensing_last_report = last_report;
    }
    match &d.history {
        HistoryDelta::Unchanged => {}
        HistoryDelta::Append(tail) => out.sensing_history.extend_from_slice(tail),
        HistoryDelta::Replace(h) => out.sensing_history.clone_from(h),
    }
    if !d.nodes.is_empty() {
        if d.nodes.len() != out.nodes.len() {
            return Err(shape_mismatch(d.nodes.len(), out.nodes.len()));
        }
        for (slot, nd) in out.nodes.iter_mut().zip(&d.nodes) {
            if let Some(nd) = nd {
                apply_node_delta(slot, nd);
            }
        }
    }
    if let Some(state) = d.net_rng {
        out.net_rng.0 = state;
    }
    if let Some(seq) = d.downlink_seq {
        out.downlink_seq = seq;
    }
    apply_slots(&mut out.channels, &d.channels)?;
    if let Some(c) = d.uplink {
        out.uplink = c;
    }
    if let Some(c) = d.downlink {
        out.downlink = c;
    }
    apply_slots(&mut out.base_last_seqs, &d.base_last_seqs)?;
    if let Some((accepted, duplicates)) = d.base_counts {
        out.base_accepted = accepted;
        out.base_duplicates = duplicates;
    }
    Ok(())
}

fn apply_slots<T: Clone>(out: &mut Vec<T>, d: &SlotsDelta<T>) -> Result<(), CheckpointError> {
    match d {
        SlotsDelta::Unchanged => {}
        SlotsDelta::Sparse(updates) => {
            let bound = out.len();
            for (i, v) in updates {
                let slot = out
                    .get_mut(*i as usize)
                    .ok_or_else(|| shape_mismatch(*i as usize, bound))?;
                slot.clone_from(v);
            }
        }
        SlotsDelta::Replace(v) => out.clone_from(v),
    }
    Ok(())
}

fn apply_node_delta(slot: &mut (NodeState, [u64; 4], u64), d: &NodeDelta) {
    let n = &mut slot.0;
    if let Some(w) = &d.detector_window {
        n.detector_window.clone_from(w);
    }
    if let Some((green, red)) = d.leds {
        n.led_green = green;
        n.led_red = red;
    }
    if let Some(e) = d.energy_uj {
        n.energy_uj = e;
    }
    if let Some(b) = d.energy_breakdown {
        n.energy_breakdown = b;
    }
    if let Some(s) = d.next_seq {
        n.next_seq = s;
    }
    if let Some(p) = d.window_peak_activation {
        n.window_peak_activation = p;
    }
    if let Some((windows, reports)) = d.counts {
        n.windows_closed = windows;
        n.reports_sent = reports;
    }
    if let Some(f) = d.failed {
        n.failed = f;
    }
    if let Some((fp, fnp)) = d.flips {
        n.flip_false_positive = fp;
        n.flip_false_negative = fnp;
    }
    if let Some(skew) = d.clock_skew_ms {
        n.clock_skew_ms = skew;
    }
    if let Some(state) = d.rng_state {
        slot.1 = state;
    }
}

fn apply_learned_delta(
    base: Option<LearnedState>,
    d: &LearnedDelta,
) -> Result<Option<LearnedState>, CheckpointError> {
    match d {
        LearnedDelta::Unchanged => Ok(base),
        LearnedDelta::Full(l) => Ok(l.clone()),
        LearnedDelta::Cells { values, visits, traces, updates, episodes_trained } => {
            let mut l = base.ok_or_else(|| shape_mismatch(0, 0))?;
            for &(i, v) in values {
                let slot = l
                    .values
                    .get_mut(i as usize)
                    .ok_or_else(|| shape_mismatch(i as usize, usize::MAX))?;
                *slot = v;
            }
            let bound = l.visits.len();
            for &(i, v) in visits {
                let slot =
                    l.visits.get_mut(i as usize).ok_or_else(|| shape_mismatch(i as usize, bound))?;
                *slot = v;
            }
            l.traces = traces.clone();
            l.updates = *updates;
            l.episodes_trained = *episodes_trained;
            Ok(Some(l))
        }
    }
}

/// Serialises a delta manifest: same framing discipline as
/// [`save_checkpoint`] (magic + version + big-endian body + CRC-16
/// trailer, length-prefixed per-home blobs encoded in parallel), under
/// [`DELTA_MAGIC`]. Output is identical at any worker count.
#[must_use]
pub fn save_delta(delta: &DeltaCheckpoint, jobs: usize) -> Bytes {
    let mut buf = BytesMut::new();
    buf.put_slice(DELTA_MAGIC);
    buf.put_u8(VERSION);
    buf.put_u64(delta.digest);
    buf.put_u64(delta.base_fingerprint);
    buf.put_u64(delta.at.as_millis());
    buf.put_u64(delta.des_events);
    buf.put_u32(u32::try_from(delta.homes.len()).expect("fleets fit in u32"));
    let engine = FleetEngine::new(jobs);
    let blobs = engine.map(delta.homes.iter().collect(), encode_home_delta);
    for blob in blobs {
        buf.put_u32(u32::try_from(blob.len()).expect("home blobs fit in u32"));
        buf.put_slice(&blob);
    }
    let crc = crc16(&buf);
    buf.put_u16(crc);
    buf.freeze()
}

/// Restores a delta manifest produced by [`save_delta`].
///
/// # Errors
///
/// Returns a [`CheckpointError`] if the manifest is malformed,
/// CRC-damaged, or from a different format version. Base compatibility
/// is checked later, by [`apply_delta`].
pub fn load_delta(blob: &[u8], jobs: usize) -> Result<DeltaCheckpoint, CheckpointError> {
    const HEADER: usize = 4 + 1;
    if blob.len() < HEADER + 2 {
        return Err(CheckpointError::Truncated { len: blob.len() });
    }
    let (body, trailer) = blob.split_at(blob.len() - 2);
    let expected = u16::from_be_bytes([trailer[0], trailer[1]]);
    let actual = crc16(body);
    if expected != actual {
        return Err(CheckpointError::BadCrc { expected, actual });
    }
    let mut r = Reader { buf: body };
    let mut magic = [0u8; 4];
    r.need(4)?;
    r.buf.copy_to_slice(&mut magic);
    if &magic != DELTA_MAGIC {
        return Err(CheckpointError::BadMagic(magic));
    }
    let version = r.u8()?;
    if version != VERSION {
        return Err(CheckpointError::UnsupportedVersion(version));
    }
    let digest = r.u64()?;
    let base_fingerprint = r.u64()?;
    let at = r.time()?;
    let des_events = r.u64()?;
    let n_homes = r.len()?;
    let mut slices = Vec::with_capacity(n_homes);
    for _ in 0..n_homes {
        let len = r.len()?;
        r.need(len)?;
        let (head, rest) = r.buf.split_at(len);
        slices.push(head);
        r.buf = rest;
    }
    if r.buf.has_remaining() {
        return Err(CheckpointError::TrailingBytes { extra: r.buf.remaining() });
    }
    let engine = FleetEngine::new(jobs);
    let homes = engine
        .map(slices, decode_home_delta)
        .into_iter()
        .collect::<Result<Vec<Option<HomeDelta>>, CheckpointError>>()?;
    Ok(DeltaCheckpoint { at, digest, base_fingerprint, des_events, homes })
}

fn delta_mask(d: &HomeDelta) -> u16 {
    let mut m = 0;
    if !d.systems.is_empty() {
        m |= DIRTY_SYSTEMS;
    }
    if d.tracker.is_some() {
        m |= DIRTY_TRACKER;
    }
    if d.root.is_some() {
        m |= DIRTY_ROOT;
    }
    if d.sched.is_some() {
        m |= DIRTY_SCHED;
    }
    if d.episode.is_some() {
        m |= DIRTY_EPISODE;
    }
    if d.schedule.is_some() {
        m |= DIRTY_SCHEDULE;
    }
    if d.stats.is_some() {
        m |= DIRTY_STATS;
    }
    if d.pending.is_some() {
        m |= DIRTY_PENDING;
    }
    if d.rec.is_some() {
        m |= DIRTY_REC;
    }
    m
}

fn encode_home_delta(d: &Option<HomeDelta>) -> Vec<u8> {
    let mut buf = Vec::new();
    let Some(d) = d else {
        buf.put_u8(0);
        return buf;
    };
    buf.put_u8(1);
    buf.put_u16(delta_mask(d));
    if !d.systems.is_empty() {
        put_len(&mut buf, d.systems.len());
        for sd in &d.systems {
            match sd {
                None => buf.put_u8(0),
                Some(sd) => {
                    buf.put_u8(1);
                    encode_system_delta(&mut buf, sd);
                }
            }
        }
    }
    if let Some(t) = &d.tracker {
        encode_tracker_slot(&mut buf, t.as_ref());
    }
    if let Some(r) = d.root {
        put_rng(&mut buf, r);
    }
    if let Some(r) = d.sched {
        put_rng(&mut buf, r);
    }
    if let Some(ep) = &d.episode {
        encode_episode_slot(&mut buf, ep.as_ref());
    }
    if let Some((ep_index, next_start, last_handled)) = d.schedule {
        put_var(&mut buf, ep_index);
        put_var_time(&mut buf, next_start);
        match last_handled {
            None => buf.put_u8(0),
            Some(t) => {
                buf.put_u8(1);
                put_var_time(&mut buf, t);
            }
        }
    }
    if let Some(s) = &d.stats {
        encode_stats_var(&mut buf, s);
    }
    if let Some(p) = &d.pending {
        put_var_len(&mut buf, p.len());
        for &due in p {
            put_var_time(&mut buf, due);
        }
    }
    if let Some(rec) = &d.rec {
        encode_rec_slot(&mut buf, rec.as_ref());
    }
    buf
}

fn encode_system_delta(buf: &mut Vec<u8>, sd: &SystemDelta) {
    match &sd.learned {
        LearnedDelta::Unchanged => buf.put_u8(0),
        LearnedDelta::Cells { values, visits, traces, updates, episodes_trained } => {
            buf.put_u8(1);
            put_len(buf, values.len());
            for &(i, v) in values {
                buf.put_u32(i);
                buf.put_f64(v);
            }
            put_len(buf, visits.len());
            for &(i, v) in visits {
                buf.put_u32(i);
                buf.put_u64(v);
            }
            put_len(buf, traces.len());
            for &(st, a, e) in traces {
                put_len(buf, st.index());
                put_len(buf, a.index());
                buf.put_f64(e);
            }
            buf.put_u64(*updates);
            buf.put_u64(*episodes_trained);
        }
        LearnedDelta::Full(l) => {
            buf.put_u8(2);
            encode_learned(buf, l.as_ref());
        }
    }
    encode_rest_delta(buf, &sd.rest);
}

fn rest_mask(d: &RestDelta) -> u16 {
    let mut m = 0;
    if d.sensing.is_some() {
        m |= REST_SENSING;
    }
    if d.history != HistoryDelta::Unchanged {
        m |= REST_HISTORY;
    }
    if !d.nodes.is_empty() {
        m |= REST_NODES;
    }
    if d.net_rng.is_some() {
        m |= REST_NET_RNG;
    }
    if d.downlink_seq.is_some() {
        m |= REST_DOWNLINK_SEQ;
    }
    if d.channels != SlotsDelta::Unchanged {
        m |= REST_CHANNELS;
    }
    if d.uplink.is_some() {
        m |= REST_UPLINK;
    }
    if d.downlink.is_some() {
        m |= REST_DOWNLINK;
    }
    if d.base_last_seqs != SlotsDelta::Unchanged {
        m |= REST_BASE_SEQS;
    }
    if d.base_counts.is_some() {
        m |= REST_BASE_COUNTS;
    }
    m
}

#[allow(clippy::too_many_lines)]
fn encode_rest_delta(buf: &mut Vec<u8>, d: &RestDelta) {
    buf.put_u16(rest_mask(d));
    if let Some((current, last_report)) = d.sensing {
        match current {
            None => buf.put_u8(0),
            Some(step) => {
                buf.put_u8(1);
                buf.put_u16(step.raw());
            }
        }
        match last_report {
            None => buf.put_u8(0),
            Some(t) => {
                buf.put_u8(1);
                put_var_time(buf, t);
            }
        }
    }
    match &d.history {
        HistoryDelta::Unchanged => {}
        HistoryDelta::Append(events) | HistoryDelta::Replace(events) => {
            buf.put_u8(if matches!(d.history, HistoryDelta::Append(_)) { 1 } else { 2 });
            put_var_len(buf, events.len());
            for ev in events {
                put_var_time(buf, ev.at);
                buf.put_u16(ev.step.raw());
            }
        }
    }
    if !d.nodes.is_empty() {
        put_var_len(buf, d.nodes.len());
        for nd in &d.nodes {
            match nd {
                None => buf.put_u8(0),
                Some(nd) => {
                    buf.put_u8(1);
                    encode_node_delta(buf, nd);
                }
            }
        }
    }
    if let Some(state) = d.net_rng {
        for w in state {
            buf.put_u64(w);
        }
    }
    if let Some(seq) = d.downlink_seq {
        buf.put_u16(seq);
    }
    encode_slots(buf, &d.channels, |buf, &(id, bad, sent, lost)| {
        buf.put_u16(id.raw());
        put_bool(buf, bad);
        put_var(buf, sent);
        put_var(buf, lost);
    });
    for c in [d.uplink, d.downlink].into_iter().flatten() {
        for v in [c.frames, c.attempts, c.delivered, c.lost, c.duplicates] {
            put_var(buf, v);
        }
    }
    encode_slots(buf, &d.base_last_seqs, |buf, &(id, seq)| {
        buf.put_u16(id.raw());
        buf.put_u16(seq);
    });
    if let Some((accepted, duplicates)) = d.base_counts {
        put_var(buf, accepted);
        put_var(buf, duplicates);
    }
}

fn encode_slots<T>(buf: &mut Vec<u8>, d: &SlotsDelta<T>, put: impl Fn(&mut Vec<u8>, &T)) {
    match d {
        SlotsDelta::Unchanged => {}
        SlotsDelta::Sparse(updates) => {
            buf.put_u8(1);
            put_var_len(buf, updates.len());
            for (i, v) in updates {
                put_var(buf, u64::from(*i));
                put(buf, v);
            }
        }
        SlotsDelta::Replace(slots) => {
            buf.put_u8(2);
            put_var_len(buf, slots.len());
            for v in slots {
                put(buf, v);
            }
        }
    }
}

fn node_mask(d: &NodeDelta) -> u16 {
    let mut m = 0;
    if d.detector_window.is_some() {
        m |= NODE_WINDOW;
    }
    if d.leds.is_some() {
        m |= NODE_LEDS;
    }
    if d.energy_uj.is_some() {
        m |= NODE_ENERGY;
    }
    if d.energy_breakdown.is_some() {
        m |= NODE_BREAKDOWN;
    }
    if d.next_seq.is_some() {
        m |= NODE_SEQ;
    }
    if d.window_peak_activation.is_some() {
        m |= NODE_PEAK;
    }
    if d.counts.is_some() {
        m |= NODE_COUNTS;
    }
    if d.failed.is_some() {
        m |= NODE_FAILED;
    }
    if d.flips.is_some() {
        m |= NODE_FLIPS;
    }
    if d.clock_skew_ms.is_some() {
        m |= NODE_SKEW;
    }
    if d.rng_state.is_some() {
        m |= NODE_RNG;
    }
    m
}

fn encode_node_delta(buf: &mut Vec<u8>, d: &NodeDelta) {
    buf.put_u16(node_mask(d));
    if let Some(w) = &d.detector_window {
        put_var_len(buf, w.len());
        for &vote in w {
            put_bool(buf, vote);
        }
    }
    if let Some((green, red)) = d.leds {
        buf.put_u8(u8::from(green) | (u8::from(red) << 1));
    }
    if let Some(e) = d.energy_uj {
        buf.put_f64(e);
    }
    if let Some((samples, tx, rx, led, sleep)) = d.energy_breakdown {
        for v in [samples, tx, rx, led, sleep] {
            put_var(buf, v);
        }
    }
    if let Some(seq) = d.next_seq {
        buf.put_u16(seq);
    }
    if let Some(p) = d.window_peak_activation {
        buf.put_f64(p);
    }
    if let Some((windows, reports)) = d.counts {
        put_var(buf, windows);
        put_var(buf, reports);
    }
    if let Some(f) = d.failed {
        put_bool(buf, f);
    }
    if let Some((fp, fnp)) = d.flips {
        buf.put_f64(fp);
        buf.put_f64(fnp);
    }
    if let Some(skew) = d.clock_skew_ms {
        put_var_i64(buf, skew);
    }
    if let Some(state) = d.rng_state {
        for w in state {
            buf.put_u64(w);
        }
    }
}

fn decode_home_delta(blob: &[u8]) -> Result<Option<HomeDelta>, CheckpointError> {
    let mut r = Reader { buf: blob };
    let out = match r.u8()? {
        0 => None,
        1 => {
            let mask = r.u16()?;
            if mask & !DIRTY_ALL != 0 {
                #[allow(clippy::cast_possible_truncation)]
                return Err(CheckpointError::CorruptTag((mask >> 8) as u8));
            }
            let mut d = HomeDelta::default();
            if mask & DIRTY_SYSTEMS != 0 {
                let n = r.len()?;
                let mut systems = Vec::with_capacity(n.min(64));
                for _ in 0..n {
                    systems.push(if r.opt()? {
                        Some(decode_system_delta(&mut r)?)
                    } else {
                        None
                    });
                }
                d.systems = systems;
            }
            if mask & DIRTY_TRACKER != 0 {
                d.tracker = Some(decode_tracker_slot(&mut r)?);
            }
            if mask & DIRTY_ROOT != 0 {
                d.root = Some(r.rng()?);
            }
            if mask & DIRTY_SCHED != 0 {
                d.sched = Some(r.rng()?);
            }
            if mask & DIRTY_EPISODE != 0 {
                d.episode = Some(decode_episode_slot(&mut r)?);
            }
            if mask & DIRTY_SCHEDULE != 0 {
                let ep_index = r.var()?;
                let next_start = r.var_time()?;
                let last_handled = if r.opt()? { Some(r.var_time()?) } else { None };
                d.schedule = Some((ep_index, next_start, last_handled));
            }
            if mask & DIRTY_STATS != 0 {
                d.stats = Some(decode_stats_var(&mut r)?);
            }
            if mask & DIRTY_PENDING != 0 {
                let n = r.var_len()?;
                let mut pending = Vec::with_capacity(n.min(256));
                for _ in 0..n {
                    pending.push(r.var_time()?);
                }
                d.pending = Some(pending);
            }
            if mask & DIRTY_REC != 0 {
                d.rec = Some(decode_rec_slot(&mut r)?);
            }
            Some(d)
        }
        t => return Err(CheckpointError::CorruptTag(t)),
    };
    if r.buf.has_remaining() {
        return Err(CheckpointError::TrailingBytes { extra: r.buf.remaining() });
    }
    Ok(out)
}

fn decode_system_delta(r: &mut Reader<'_>) -> Result<SystemDelta, CheckpointError> {
    let learned = match r.u8()? {
        0 => LearnedDelta::Unchanged,
        1 => {
            let n = r.len()?;
            let mut values = Vec::with_capacity(n.min(65_536));
            for _ in 0..n {
                let i = r.u32()?;
                let v = r.f64()?;
                values.push((i, v));
            }
            let n = r.len()?;
            let mut visits = Vec::with_capacity(n.min(65_536));
            for _ in 0..n {
                let i = r.u32()?;
                let v = r.u64()?;
                visits.push((i, v));
            }
            let n = r.len()?;
            let mut traces = Vec::with_capacity(n.min(65_536));
            for _ in 0..n {
                let s = StateId::new(r.len()?);
                let a = ActionId::new(r.len()?);
                let e = r.f64()?;
                traces.push((s, a, e));
            }
            let updates = r.u64()?;
            let episodes_trained = r.u64()?;
            LearnedDelta::Cells { values, visits, traces, updates, episodes_trained }
        }
        2 => LearnedDelta::Full(decode_learned(r)?),
        t => return Err(CheckpointError::CorruptTag(t)),
    };
    let rest = decode_rest_delta(r)?;
    Ok(SystemDelta { learned, rest })
}

#[allow(clippy::too_many_lines)]
fn decode_rest_delta(r: &mut Reader<'_>) -> Result<RestDelta, CheckpointError> {
    let mask = r.u16()?;
    if mask & !REST_ALL != 0 {
        #[allow(clippy::cast_possible_truncation)]
        return Err(CheckpointError::CorruptTag((mask >> 8) as u8));
    }
    let mut d = RestDelta::default();
    if mask & REST_SENSING != 0 {
        let current = if r.opt()? { Some(StepId::from_raw(r.u16()?)) } else { None };
        let last_report = if r.opt()? { Some(r.var_time()?) } else { None };
        d.sensing = Some((current, last_report));
    }
    if mask & REST_HISTORY != 0 {
        let tag = r.u8()?;
        let n = r.var_len()?;
        let mut events = Vec::with_capacity(n.min(65_536));
        for _ in 0..n {
            let at = r.var_time()?;
            let step = StepId::from_raw(r.u16()?);
            events.push(StepEvent { at, step });
        }
        d.history = match tag {
            1 => HistoryDelta::Append(events),
            2 => HistoryDelta::Replace(events),
            t => return Err(CheckpointError::CorruptTag(t)),
        };
    }
    if mask & REST_NODES != 0 {
        let n = r.var_len()?;
        let mut nodes = Vec::with_capacity(n.min(256));
        for _ in 0..n {
            nodes.push(if r.opt()? { Some(decode_node_delta(r)?) } else { None });
        }
        d.nodes = nodes;
    }
    if mask & REST_NET_RNG != 0 {
        d.net_rng = Some([r.u64()?, r.u64()?, r.u64()?, r.u64()?]);
    }
    if mask & REST_DOWNLINK_SEQ != 0 {
        d.downlink_seq = Some(r.u16()?);
    }
    if mask & REST_CHANNELS != 0 {
        d.channels = decode_slots(r, |r| {
            let id = NodeId::new(r.u16()?);
            let bad = r.bool()?;
            let sent = r.var()?;
            let lost = r.var()?;
            Ok((id, bad, sent, lost))
        })?;
    }
    if mask & REST_UPLINK != 0 {
        d.uplink = Some(decode_link_counters_var(r)?);
    }
    if mask & REST_DOWNLINK != 0 {
        d.downlink = Some(decode_link_counters_var(r)?);
    }
    if mask & REST_BASE_SEQS != 0 {
        d.base_last_seqs = decode_slots(r, |r| {
            let id = NodeId::new(r.u16()?);
            let seq = r.u16()?;
            Ok((id, seq))
        })?;
    }
    if mask & REST_BASE_COUNTS != 0 {
        d.base_counts = Some((r.var()?, r.var()?));
    }
    Ok(d)
}

fn decode_slots<T>(
    r: &mut Reader<'_>,
    get: impl Fn(&mut Reader<'_>) -> Result<T, CheckpointError>,
) -> Result<SlotsDelta<T>, CheckpointError> {
    match r.u8()? {
        1 => {
            let n = r.var_len()?;
            let mut updates = Vec::with_capacity(n.min(256));
            for _ in 0..n {
                let i = u32::try_from(r.var()?)
                    .map_err(|_| CheckpointError::Truncated { len: r.buf.remaining() })?;
                updates.push((i, get(r)?));
            }
            Ok(SlotsDelta::Sparse(updates))
        }
        2 => {
            let n = r.var_len()?;
            let mut slots = Vec::with_capacity(n.min(256));
            for _ in 0..n {
                slots.push(get(r)?);
            }
            Ok(SlotsDelta::Replace(slots))
        }
        t => Err(CheckpointError::CorruptTag(t)),
    }
}

fn decode_link_counters_var(r: &mut Reader<'_>) -> Result<LinkCounters, CheckpointError> {
    Ok(LinkCounters {
        frames: r.var()?,
        attempts: r.var()?,
        delivered: r.var()?,
        lost: r.var()?,
        duplicates: r.var()?,
    })
}

fn decode_node_delta(r: &mut Reader<'_>) -> Result<NodeDelta, CheckpointError> {
    let mask = r.u16()?;
    if mask & !NODE_ALL != 0 {
        #[allow(clippy::cast_possible_truncation)]
        return Err(CheckpointError::CorruptTag((mask >> 8) as u8));
    }
    let mut d = NodeDelta::default();
    if mask & NODE_WINDOW != 0 {
        let n = r.var_len()?;
        let mut window = Vec::with_capacity(n.min(64));
        for _ in 0..n {
            window.push(r.bool()?);
        }
        d.detector_window = Some(window);
    }
    if mask & NODE_LEDS != 0 {
        let packed = r.u8()?;
        if packed > 3 {
            return Err(CheckpointError::CorruptTag(packed));
        }
        d.leds = Some((packed & 1 != 0, packed & 2 != 0));
    }
    if mask & NODE_ENERGY != 0 {
        d.energy_uj = Some(r.f64()?);
    }
    if mask & NODE_BREAKDOWN != 0 {
        d.energy_breakdown = Some((r.var()?, r.var()?, r.var()?, r.var()?, r.var()?));
    }
    if mask & NODE_SEQ != 0 {
        d.next_seq = Some(r.u16()?);
    }
    if mask & NODE_PEAK != 0 {
        d.window_peak_activation = Some(r.f64()?);
    }
    if mask & NODE_COUNTS != 0 {
        d.counts = Some((r.var()?, r.var()?));
    }
    if mask & NODE_FAILED != 0 {
        d.failed = Some(r.bool()?);
    }
    if mask & NODE_FLIPS != 0 {
        d.flips = Some((r.f64()?, r.f64()?));
    }
    if mask & NODE_SKEW != 0 {
        d.clock_skew_ms = Some(r.var_i64()?);
    }
    if mask & NODE_RNG != 0 {
        d.rng_state = Some([r.u64()?, r.u64()?, r.u64()?, r.u64()?]);
    }
    Ok(d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use coreda_sensornet::network::LinkCounters;

    /// A synthetic checkpoint exercising every optional branch and enum
    /// variant the codec knows: live episode in each phase, open session
    /// with a foreign run, traced recorder with a wrapped ring.
    fn sample() -> MetroCheckpoint {
        let node = NodeState {
            detector_window: vec![true, false, true],
            led_green: true,
            led_red: false,
            energy_uj: 1234.5,
            energy_breakdown: (10, 20, 30, 40, 50),
            next_seq: 7,
            window_peak_activation: 0.75,
            windows_closed: 11,
            reports_sent: 3,
            failed: false,
            flip_false_positive: 0.01,
            flip_false_negative: 0.02,
            clock_skew_ms: -250,
        };
        let system = SystemState {
            learned: Some(LearnedState {
                values: vec![0.5, -1.25, 3.0],
                visits: vec![1, 0, 9],
                traces: vec![(StateId::new(2), ActionId::new(1), 0.125)],
                updates: 42,
                episodes_trained: 150,
            }),
            sensing_current: Some(StepId::from_raw(3)),
            sensing_last_report: Some(SimTime::from_secs(12)),
            sensing_history: vec![StepEvent { at: SimTime::from_secs(1), step: StepId::IDLE }],
            nodes: vec![(node, [1, 2, 3, 4], 99)],
            net_rng: ([5, 6, 7, 8], 100),
            downlink_seq: 513,
            channels: vec![(NodeId::new(1), true, 12, 2)],
            uplink: LinkCounters { frames: 1, attempts: 2, delivered: 3, lost: 4, duplicates: 5 },
            downlink: LinkCounters::default(),
            base_last_seqs: vec![(NodeId::new(1), 6)],
            base_accepted: 12,
            base_duplicates: 1,
        };
        let episode = EpisodeState {
            phase: PhaseState::Misusing {
                tool: ToolId::new(4),
                since: SimTime::from_secs(30),
                resume_idx: 2,
            },
            tracked: Some((StepId::IDLE, StepId::from_raw(1))),
            pending: Some((
                SimTime::from_secs(31),
                Prompt { tool: ToolId::new(2), level: ReminderLevel::Specific },
            )),
            last_reminder: Some(SimTime::from_secs(29)),
            reminders_since_advance: 2,
            completed: false,
            ticks_done: 310,
            max_ticks: 9000,
            start: SimTime::ZERO,
            finished: false,
        };
        let rec = RecorderState {
            counters: vec![7; crate::telemetry::Ctr::COUNT],
            stages: vec![
                (vec![0; 300], 0, 1),
                (vec![2; 300], 0, 0),
                (vec![0; 300], 3, 0),
            ],
            ring_cap: 4,
            ring: vec![
                TraceRecord {
                    at: SimTime::from_secs(1),
                    kind: TraceKind::ReminderIssued {
                        tool: ToolId::new(2),
                        specific: true,
                        wrong_tool: false,
                    },
                },
                TraceRecord {
                    at: SimTime::from_secs(2),
                    kind: TraceKind::SessionEnded {
                        name: NameId::from_index(1),
                        completed: true,
                    },
                },
            ],
            ring_dropped: 6,
        };
        let busy = HomeCheckpoint {
            systems: vec![system],
            tracker: Some(ActiveSessionState {
                activity_idx: 1,
                last_report: SimTime::from_secs(40),
                saw_terminal: false,
                foreign_run: Some((0, 2)),
            }),
            root: ([11, 12, 13, 14], 200),
            sched: ([15, 16, 17, 18], 201),
            episode: Some((0, episode, ([19, 20, 21, 22], 202))),
            ep_index: 5,
            next_start: SimTime::from_secs(100),
            last_handled: Some(SimTime::from_secs(45)),
            stats: HomeStats { episodes_started: 5, reminders: 3, ..HomeStats::default() },
            pending: vec![SimTime::from_secs(46), SimTime::from_secs(50)],
            rec: Some(rec),
        };
        let idle = HomeCheckpoint {
            systems: vec![SystemState {
                learned: None,
                sensing_current: None,
                sensing_last_report: None,
                sensing_history: Vec::new(),
                nodes: Vec::new(),
                net_rng: ([1, 1, 1, 1], 0),
                downlink_seq: 0,
                channels: Vec::new(),
                uplink: LinkCounters::default(),
                downlink: LinkCounters::default(),
                base_last_seqs: Vec::new(),
                base_accepted: 0,
                base_duplicates: 0,
            }],
            tracker: None,
            root: ([0, 0, 0, 1], 1),
            sched: ([0, 0, 0, 2], 1),
            episode: None,
            ep_index: 0,
            next_start: SimTime::from_secs(999),
            last_handled: None,
            stats: HomeStats::default(),
            pending: Vec::new(),
            rec: None,
        };
        MetroCheckpoint {
            at: SimTime::from_secs(45),
            digest: 0xDEAD_BEEF_F00D_CAFE,
            des_events: 123_456,
            homes: vec![busy, idle],
        }
    }

    #[test]
    fn round_trip_is_exact() {
        let ckpt = sample();
        let blob = save_checkpoint(&ckpt, 1);
        let back = load_checkpoint(&blob, 1).unwrap();
        assert_eq!(back, ckpt);
    }

    #[test]
    fn encoding_is_jobs_invariant() {
        let ckpt = sample();
        let serial = save_checkpoint(&ckpt, 1);
        for jobs in [2, 4, 8] {
            assert_eq!(save_checkpoint(&ckpt, jobs), serial, "jobs={jobs}");
            assert_eq!(load_checkpoint(&serial, jobs).unwrap(), ckpt, "jobs={jobs}");
        }
    }

    #[test]
    fn corruption_is_detected() {
        let blob = save_checkpoint(&sample(), 1).to_vec();
        for i in (0..blob.len()).step_by(97) {
            let mut bad = blob.clone();
            bad[i] ^= 0x08;
            assert!(load_checkpoint(&bad, 1).is_err(), "flipping byte {i} went undetected");
        }
    }

    #[test]
    fn truncation_is_detected() {
        let blob = save_checkpoint(&sample(), 1);
        for n in [0, 4, 10, blob.len() / 2, blob.len() - 1] {
            assert!(load_checkpoint(&blob[..n], 1).is_err(), "truncated at {n}");
        }
    }

    #[test]
    fn wrong_version_is_rejected() {
        let mut blob = save_checkpoint(&sample(), 1).to_vec();
        blob[4] = 99;
        // Re-stamp the CRC so only the version differs.
        let body = blob.len() - 2;
        let crc = crc16(&blob[..body]);
        blob[body..].copy_from_slice(&crc.to_be_bytes());
        assert_eq!(
            load_checkpoint(&blob, 1),
            Err(CheckpointError::UnsupportedVersion(99))
        );
    }

    #[test]
    fn digest_ignores_resume_knobs_but_pins_the_run() {
        let base = MetroConfig::default();
        let d = config_digest(&base);
        // Knobs a resume may change leave the digest alone...
        assert_eq!(d, config_digest(&MetroConfig { jobs: 99, ..base.clone() }));
        assert_eq!(
            d,
            config_digest(&MetroConfig {
                horizon: coreda_des::time::SimDuration::from_secs(1),
                ..base.clone()
            })
        );
        assert_eq!(
            d,
            config_digest(&MetroConfig { engine: crate::metro::EngineKind::Heap, ..base.clone() })
        );
        assert_eq!(
            d,
            config_digest(&MetroConfig {
                sched: crate::metro::SchedMode::Strict,
                ..base.clone()
            })
        );
        // ...while anything trajectory-shaping changes it.
        assert_ne!(d, config_digest(&MetroConfig { homes: 17, ..base.clone() }));
        assert_ne!(d, config_digest(&MetroConfig { seed: 3, ..base.clone() }));
        assert_ne!(d, config_digest(&MetroConfig { train_episodes: 1, ..base }));
    }

    #[test]
    fn error_messages_read_well() {
        assert!(CheckpointError::ConfigMismatch { expected: 1, actual: 2 }
            .to_string()
            .contains("different run configuration"));
        assert!(CheckpointError::Truncated { len: 3 }.to_string().contains("3 bytes"));
        assert!(CheckpointError::CorruptTag(9).to_string().contains("tag 9"));
        assert!(CheckpointError::BaseMismatch { expected: 1, actual: 2 }
            .to_string()
            .contains("different base snapshot"));
        assert!(CheckpointError::ShapeMismatch { index: 7, bound: 3 }
            .to_string()
            .contains("index 7"));
        assert!(CheckpointError::WalDivergence { at: SimTime::from_secs(2), home: 5 }
            .to_string()
            .contains("2000ms"));
    }

    /// An evolved `sample()`: home 0 learned a Q-cell, issued a reminder,
    /// advanced its RNGs and pending wakes; home 1 did nothing.
    fn evolved() -> MetroCheckpoint {
        let mut cur = sample();
        cur.at = SimTime::from_secs(75);
        cur.des_events = 234_567;
        let busy = &mut cur.homes[0];
        let learned = busy.systems[0].learned.as_mut().unwrap();
        learned.values[1] = -0.75;
        learned.visits[2] = 10;
        learned.updates = 43;
        busy.systems[0].base_accepted = 14;
        busy.root.0[0] ^= 0x55;
        busy.sched.0[3] ^= 0x21;
        busy.stats.reminders = 4;
        busy.ep_index = 6;
        busy.next_start = SimTime::from_secs(140);
        busy.pending = vec![SimTime::from_secs(80)];
        busy.tracker = None;
        cur
    }

    #[test]
    fn delta_round_trip_is_exact_and_rebuilds_the_full_snapshot() {
        let base = sample();
        let cur = evolved();
        let delta = delta_checkpoint(&base, &cur);
        assert_eq!(delta.dirty_homes(), 1, "only home 0 moved");
        let blob = save_delta(&delta, 1);
        let back = load_delta(&blob, 1).unwrap();
        assert_eq!(back, delta);
        assert_eq!(apply_delta(&base, &back).unwrap(), cur);
    }

    #[test]
    fn unchanged_learned_state_costs_no_table_bytes() {
        let base = sample();
        let mut cur = evolved();
        // Undo the learned-state movement: only the rest of system 0 moved.
        cur.homes[0].systems[0].learned = base.homes[0].systems[0].learned.clone();
        let delta = delta_checkpoint(&base, &cur);
        let Some(d) = &delta.homes[0] else { panic!("home 0 moved") };
        let Some(sd) = &d.systems[0] else { panic!("system 0 moved") };
        assert_eq!(sd.learned, LearnedDelta::Unchanged);
        // And sparse cell updates beat re-encoding the whole table.
        let sparse = delta_checkpoint(&base, &evolved());
        let Some(d) = &sparse.homes[0] else { panic!("home 0 moved") };
        let Some(sd) = &d.systems[0] else { panic!("system 0 moved") };
        let LearnedDelta::Cells { values, visits, .. } = &sd.learned else {
            panic!("expected sparse cells, got {:?}", sd.learned)
        };
        assert_eq!(values.as_slice(), &[(1, -0.75)]);
        assert_eq!(visits.as_slice(), &[(2, 10)]);
    }

    #[test]
    fn learned_shape_changes_fall_back_to_full_replacement() {
        let base = sample();
        let mut cur = evolved();
        cur.homes[0].systems[0].learned.as_mut().unwrap().values.push(9.0);
        let delta = delta_checkpoint(&base, &cur);
        let sd = delta.homes[0].as_ref().unwrap().systems[0].as_ref().unwrap();
        assert!(matches!(sd.learned, LearnedDelta::Full(Some(_))));
        assert_eq!(apply_delta(&base, &delta).unwrap(), cur);
    }

    #[test]
    fn identical_snapshots_produce_an_empty_delta() {
        let base = sample();
        let delta = delta_checkpoint(&base, &base);
        assert_eq!(delta.dirty_homes(), 0);
        let blob = save_delta(&delta, 1);
        // Header + per-home one-byte "unchanged" markers + CRC: far below
        // the full manifest.
        assert!(blob.len() < 64, "empty delta took {} bytes", blob.len());
        assert_eq!(apply_delta(&base, &delta).unwrap(), base);
    }

    #[test]
    fn deltas_refuse_the_wrong_base() {
        let base = sample();
        let cur = evolved();
        let delta = delta_checkpoint(&base, &cur);
        // A base from a different instant: fingerprint mismatch.
        let err = apply_delta(&cur, &delta).unwrap_err();
        assert!(matches!(err, CheckpointError::BaseMismatch { .. }), "{err}");
        // A base from a different run: digest mismatch wins.
        let mut foreign = base.clone();
        foreign.digest ^= 1;
        let err = apply_delta(&foreign, &delta).unwrap_err();
        assert!(matches!(err, CheckpointError::ConfigMismatch { .. }), "{err}");
    }

    #[test]
    fn crafted_cell_indices_are_rejected_not_panicking() {
        let base = sample();
        let mut delta = delta_checkpoint(&base, &evolved());
        let sd = delta.homes[0].as_mut().unwrap().systems[0].as_mut().unwrap();
        let LearnedDelta::Cells { values, .. } = &mut sd.learned else {
            panic!("expected cells")
        };
        values.push((999, 1.0));
        let err = apply_delta(&base, &delta).unwrap_err();
        assert!(matches!(err, CheckpointError::ShapeMismatch { .. }), "{err}");
    }

    #[test]
    fn compaction_folds_a_delta_chain_into_the_final_snapshot() {
        let base = sample();
        let mid = evolved();
        let mut end = mid.clone();
        end.at = SimTime::from_secs(90);
        end.des_events = 345_678;
        end.homes[1].stats.pipeline_ticks = 17;
        end.homes[1].sched.0[1] ^= 9;
        let d1 = delta_checkpoint(&base, &mid);
        let d2 = delta_checkpoint(&mid, &end);
        assert_eq!(compact(&base, &[d1.clone(), d2.clone()]).unwrap(), end);
        // Out of order, the chain refuses to fold.
        assert!(compact(&base, &[d2, d1]).is_err());
    }

    #[test]
    fn delta_encoding_is_jobs_invariant() {
        let delta = delta_checkpoint(&sample(), &evolved());
        let serial = save_delta(&delta, 1);
        for jobs in [2, 4, 8] {
            assert_eq!(save_delta(&delta, jobs), serial, "jobs={jobs}");
            assert_eq!(load_delta(&serial, jobs).unwrap(), delta, "jobs={jobs}");
        }
    }

    #[test]
    fn delta_corruption_and_truncation_are_detected() {
        let blob = save_delta(&delta_checkpoint(&sample(), &evolved()), 1).to_vec();
        for i in 0..blob.len() {
            for bit in 0..8 {
                let mut bad = blob.clone();
                bad[i] ^= 1 << bit;
                assert!(load_delta(&bad, 1).is_err(), "flipping byte {i} bit {bit} undetected");
            }
        }
        for n in [0, 4, 10, blob.len() / 2, blob.len() - 1] {
            assert!(load_delta(&blob[..n], 1).is_err(), "truncated at {n}");
        }
        // A checkpoint manifest is not a delta manifest.
        let full = save_checkpoint(&sample(), 1);
        assert_eq!(load_delta(&full, 1), Err(CheckpointError::BadMagic(*MAGIC)));
    }
}
