//! Deterministic parallel fleet-training engine.
//!
//! The ROADMAP north-star is per-user retraining at fleet scale: every
//! sweep in `coreda-bench` runs a `configs × seeds` grid of *independent*
//! training jobs, and a production deployment runs one training job per
//! `(patient, seed, config)` triple. This module fans those jobs out over
//! a scoped worker pool while keeping the results **bit-identical to the
//! serial path at any worker count**.
//!
//! # Why results are worker-count-invariant
//!
//! Parallel numerics usually diverge because threads share a random
//! stream or reduce floating-point sums in arrival order. The fleet
//! engine forbids both by construction:
//!
//! 1. **Jobs are pure functions of their input.** A job receives
//!    everything it needs — including its own RNG seed — in its input
//!    value. Nothing is drawn from a shared stream, so the draws a job
//!    sees do not depend on which worker runs it or when.
//! 2. **Seeds are derived counter-based, not sequentially.** Each job's
//!    seed is a hash/XOR of the sweep's base seed and the job's grid
//!    coordinates (see [`derive_seed`] and `SimRng::substream`), exactly
//!    the scheme the serial sweeps already used. Job *k* gets the same
//!    stream whether it runs first, last, or alone.
//! 3. **Results are returned in input order.** Workers self-schedule
//!    from an atomic cursor and send `(index, output)` pairs back over a
//!    channel; the engine reassembles the output vector by index, so
//!    downstream reductions always fold in the same order.
//!
//! Together these make `map(jobs=N)` literally the identity
//! transformation of `map(jobs=1)` over wall-clock layout: same inputs,
//! same streams, same fold order — same bits.
//!
//! # Job granularity
//!
//! One job = one `(config, seed)` grid cell (one full training run, a
//! few hundred episodes). That is coarse enough that scheduling overhead
//! (one atomic increment + one channel send per job) is noise, and fine
//! enough that a typical sweep (tens of cells) saturates any desktop
//! core count.
//!
//! # Examples
//!
//! ```
//! use coreda_core::fleet::FleetEngine;
//!
//! let engine = FleetEngine::new(4);
//! let squares = engine.map((0u64..64).collect(), |n| n * n);
//! assert_eq!(squares, (0u64..64).map(|n| n * n).collect::<Vec<_>>());
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Mutex};
use std::thread;

/// The number of workers to use when the caller does not say: the
/// machine's available parallelism (1 if it cannot be determined).
#[must_use]
pub fn default_jobs() -> usize {
    thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Derives a job seed from a sweep's base seed and the job's grid
/// coordinates, FNV-1a style. Counter-based: depends only on the label,
/// never on how many jobs were derived before it.
#[must_use]
pub fn derive_seed(base_seed: u64, domain: &str, index: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in domain.bytes().chain(index.to_le_bytes()) {
        h ^= u64::from(byte);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h ^ base_seed
}

/// A scoped worker pool for independent training jobs.
#[derive(Debug, Clone, Copy)]
pub struct FleetEngine {
    jobs: usize,
}

impl Default for FleetEngine {
    fn default() -> Self {
        Self::new(default_jobs())
    }
}

impl FleetEngine {
    /// An engine with `jobs` workers (clamped to at least 1).
    #[must_use]
    pub fn new(jobs: usize) -> Self {
        Self { jobs: jobs.max(1) }
    }

    /// The worker count.
    #[must_use]
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Runs `f` over every input and returns the outputs in input order.
    ///
    /// With one worker (or one input) this degenerates to a plain serial
    /// `map` with no threads spawned, which doubles as the reference
    /// implementation the determinism test compares against.
    ///
    /// # Panics
    ///
    /// Propagates a panic from any job after the remaining workers have
    /// drained.
    pub fn map<I, O, F>(&self, inputs: Vec<I>, f: F) -> Vec<O>
    where
        I: Send,
        O: Send,
        F: Fn(I) -> O + Sync,
    {
        let n = inputs.len();
        let workers = self.jobs.min(n);
        if workers <= 1 {
            return inputs.into_iter().map(f).collect();
        }

        // Each slot is taken exactly once by the worker that claims its
        // index from the cursor; the Mutex is uncontended by construction.
        let slots: Vec<Mutex<Option<I>>> =
            inputs.into_iter().map(|i| Mutex::new(Some(i))).collect();
        let cursor = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<(usize, O)>();

        let mut outputs: Vec<Option<O>> = std::iter::repeat_with(|| None).take(n).collect();
        thread::scope(|scope| {
            let slots = &slots;
            let cursor = &cursor;
            let f = &f;
            for _ in 0..workers {
                let tx = tx.clone();
                scope.spawn(move || loop {
                    let idx = cursor.fetch_add(1, Ordering::Relaxed);
                    if idx >= n {
                        break;
                    }
                    let input = slots[idx]
                        .lock()
                        .expect("job slot poisoned")
                        .take()
                        .expect("job slot claimed twice");
                    // A send only fails if the receiver is gone, which
                    // means the scope is already unwinding.
                    let _ = tx.send((idx, f(input)));
                });
            }
            drop(tx);
            for (idx, out) in rx {
                outputs[idx] = Some(out);
            }
        });

        outputs
            .into_iter()
            .map(|o| o.expect("every job sends exactly one result"))
            .collect()
    }

    /// Runs one training job per grid cell of `configs × seeds`, passing
    /// `f` the config, the seed index, and the per-cell seed derived
    /// from `base_seed` with [`derive_seed`]. Outputs are grouped per
    /// config, seeds in order — the layout every sweep reduction expects.
    pub fn map_grid<C, O, F>(
        &self,
        configs: &[C],
        seeds: usize,
        base_seed: u64,
        domain: &str,
        f: F,
    ) -> Vec<Vec<O>>
    where
        C: Sync,
        O: Send,
        F: Fn(&C, usize, u64) -> O + Sync,
    {
        let cells: Vec<(usize, usize)> = (0..configs.len())
            .flat_map(|c| (0..seeds).map(move |s| (c, s)))
            .collect();
        let flat = self.map(cells, |(c, s)| {
            let seed = derive_seed(base_seed, domain, (c * seeds + s) as u64);
            f(&configs[c], s, seed)
        });
        let mut grouped: Vec<Vec<O>> = Vec::with_capacity(configs.len());
        let mut it = flat.into_iter();
        for _ in 0..configs.len() {
            grouped.push(it.by_ref().take(seeds).collect());
        }
        grouped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_input_order() {
        let engine = FleetEngine::new(8);
        let out = engine.map((0..100u64).collect(), |n| n * 3);
        assert_eq!(out, (0..100u64).map(|n| n * 3).collect::<Vec<_>>());
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let work = |seed: u64| {
            // A toy "training job": deterministic in its seed.
            let mut rng = coreda_des::rng::SimRng::seed_from(seed);
            (0..1_000).map(|_| rng.uniform()).sum::<f64>()
        };
        let inputs: Vec<u64> = (0..23).collect();
        let serial = FleetEngine::new(1).map(inputs.clone(), work);
        for jobs in [2, 3, 4, 8, 16] {
            let parallel = FleetEngine::new(jobs).map(inputs.clone(), work);
            assert_eq!(serial, parallel, "jobs={jobs} must be bit-identical");
        }
    }

    #[test]
    fn empty_and_single_inputs() {
        let engine = FleetEngine::new(4);
        assert_eq!(engine.map(Vec::<u64>::new(), |n| n), Vec::<u64>::new());
        assert_eq!(engine.map(vec![42u64], |n| n + 1), vec![43]);
    }

    #[test]
    fn grid_layout_groups_by_config() {
        let engine = FleetEngine::new(4);
        let grouped = engine.map_grid(&[10u64, 20, 30], 2, 7, "test", |c, s, seed| {
            (*c, s, seed)
        });
        assert_eq!(grouped.len(), 3);
        for (ci, row) in grouped.iter().enumerate() {
            assert_eq!(row.len(), 2);
            for (si, &(c, s, seed)) in row.iter().enumerate() {
                assert_eq!(c, [10, 20, 30][ci]);
                assert_eq!(s, si);
                assert_eq!(seed, derive_seed(7, "test", (ci * 2 + si) as u64));
            }
        }
    }

    #[test]
    fn derived_seeds_are_label_stable() {
        assert_eq!(derive_seed(1, "a", 0), derive_seed(1, "a", 0));
        assert_ne!(derive_seed(1, "a", 0), derive_seed(1, "a", 1));
        assert_ne!(derive_seed(1, "a", 0), derive_seed(1, "b", 0));
        assert_ne!(derive_seed(1, "a", 0), derive_seed(2, "a", 0));
    }

    #[test]
    #[should_panic(expected = "panicked")]
    fn job_panics_propagate() {
        let engine = FleetEngine::new(4);
        let _ = engine.map((0..16u64).collect(), |n| {
            assert!(n != 11, "boom");
            n
        });
    }

    #[test]
    fn default_jobs_is_positive() {
        assert!(default_jobs() >= 1);
        assert!(FleetEngine::default().jobs() >= 1);
    }
}
