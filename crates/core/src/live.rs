//! Patient behaviours and the live episode log.
//!
//! The live system (see [`crate::system`]) drives a patient model through
//! an ADL over the full sensor → radio → sensing → planning → reminding
//! pipeline. The patient is abstracted behind [`PatientBehavior`] so the
//! same runner serves both the stochastic evaluation patients and the
//! scripted Figure 1 scenario.

use std::collections::HashMap;
use std::fmt;

use coreda_adl::activity::AdlSpec;
use coreda_adl::patient::{PatientAction, PatientProfile};
use coreda_adl::routine::Routine;
use coreda_adl::step::{Step, StepId};
use coreda_adl::tool::ToolId;
use coreda_des::rng::SimRng;
use coreda_des::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

use crate::reminding::{Prompt, Reminder};

/// A patient model the live runner can drive.
pub trait PatientBehavior: fmt::Debug {
    /// Decides what the patient does when about to start the routine step
    /// at position `idx` (never called for position 0 — people start
    /// their ADL on their own).
    fn at_boundary(
        &mut self,
        idx: usize,
        routine: &Routine,
        spec: &AdlSpec,
        rng: &mut SimRng,
    ) -> PatientAction;

    /// How long the patient spends on `step`.
    fn step_duration(&mut self, step: &Step, rng: &mut SimRng) -> SimDuration;

    /// Whether the patient follows `prompt` (only consulted while frozen
    /// or misusing a tool).
    fn complies(&mut self, prompt: &Prompt, rng: &mut SimRng) -> bool;
}

/// The default behaviour: a [`PatientProfile`] drawn stochastically.
#[derive(Debug, Clone)]
pub struct StochasticBehavior {
    profile: PatientProfile,
    /// Reused candidate-tool buffer so step boundaries allocate nothing
    /// in steady state. Pure scratch: contents never survive a call, so
    /// one behaviour instance can serve a whole fleet of homes.
    scratch_others: Vec<ToolId>,
}

impl StochasticBehavior {
    /// Wraps a profile.
    #[must_use]
    pub fn new(profile: PatientProfile) -> Self {
        StochasticBehavior { profile, scratch_others: Vec::new() }
    }

    /// The underlying profile.
    #[must_use]
    pub const fn profile(&self) -> &PatientProfile {
        &self.profile
    }
}

impl PatientBehavior for StochasticBehavior {
    fn at_boundary(
        &mut self,
        idx: usize,
        routine: &Routine,
        spec: &AdlSpec,
        rng: &mut SimRng,
    ) -> PatientAction {
        let correct = routine.steps()[idx];
        self.scratch_others.clear();
        self.scratch_others.extend(
            spec.tools()
                .iter()
                .map(coreda_adl::tool::Tool::id)
                .filter(|&t| StepId::from_tool(t) != correct),
        );
        self.profile.decide_next(routine, idx.saturating_sub(1), &self.scratch_others, rng)
    }

    fn step_duration(&mut self, step: &Step, rng: &mut SimRng) -> SimDuration {
        self.profile.step_duration(step, rng)
    }

    fn complies(&mut self, prompt: &Prompt, rng: &mut SimRng) -> bool {
        self.profile.respond_to_prompt(prompt.tool, rng) == PatientAction::Proceed
    }
}

/// A deterministic script: fixed step durations and errors injected at
/// chosen boundaries. Used to replay the paper's Figure 1 scenario
/// exactly.
#[derive(Debug, Clone, Default)]
pub struct ScriptedBehavior {
    /// Error to perform when reaching each boundary (consumed once).
    errors: HashMap<usize, PatientAction>,
    /// Fixed duration per step id; falls back to the step's mean.
    durations: HashMap<StepId, SimDuration>,
}

impl ScriptedBehavior {
    /// A script with no errors.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Injects `action` the first time boundary `idx` is reached.
    #[must_use]
    pub fn with_error(mut self, idx: usize, action: PatientAction) -> Self {
        self.errors.insert(idx, action);
        self
    }

    /// Fixes the duration of `step`.
    #[must_use]
    pub fn with_duration(mut self, step: StepId, d: SimDuration) -> Self {
        self.durations.insert(step, d);
        self
    }
}

impl PatientBehavior for ScriptedBehavior {
    fn at_boundary(
        &mut self,
        idx: usize,
        _routine: &Routine,
        _spec: &AdlSpec,
        _rng: &mut SimRng,
    ) -> PatientAction {
        self.errors.remove(&idx).unwrap_or(PatientAction::Proceed)
    }

    fn step_duration(&mut self, step: &Step, _rng: &mut SimRng) -> SimDuration {
        self.durations
            .get(&step.id())
            .copied()
            .unwrap_or_else(|| SimDuration::from_secs_f64(step.mean_duration_s()))
    }

    fn complies(&mut self, _prompt: &Prompt, _rng: &mut SimRng) -> bool {
        true
    }
}

/// One entry of a live episode's log.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LogKind {
    /// The sensing subsystem recognised a new step.
    StepSensed(StepId),
    /// A reminder was delivered.
    ReminderIssued(Reminder),
    /// The user followed a prompt correctly and was praised (Figure 1's
    /// fixed "Excellent!", so the entry carries no per-event string).
    Praised,
    /// The ADL completed.
    AdlCompleted,
    /// Ground truth: the patient froze.
    PatientFroze,
    /// Ground truth: the patient grabbed the wrong tool.
    PatientMisused(ToolId),
    /// Ground truth: the patient (re)started a routine step.
    PatientStarted(StepId),
}

/// A timestamped live episode record — the machine-readable version of
/// the paper's Figure 1 timeline.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct EpisodeLog {
    entries: Vec<(SimTime, LogKind)>,
}

impl EpisodeLog {
    /// An empty log.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an entry.
    pub fn push(&mut self, at: SimTime, kind: LogKind) {
        self.entries.push((at, kind));
    }

    /// All entries, oldest first.
    #[must_use]
    pub fn entries(&self) -> &[(SimTime, LogKind)] {
        &self.entries
    }

    /// The reminders issued, with timestamps.
    #[must_use]
    pub fn reminders(&self) -> Vec<(SimTime, &Reminder)> {
        self.entries
            .iter()
            .filter_map(|(t, k)| match k {
                LogKind::ReminderIssued(r) => Some((*t, r)),
                _ => None,
            })
            .collect()
    }

    /// Number of praise events.
    #[must_use]
    pub fn praise_count(&self) -> usize {
        self.entries.iter().filter(|(_, k)| matches!(k, LogKind::Praised)).count()
    }

    /// When the ADL completed, if it did.
    #[must_use]
    pub fn completed_at(&self) -> Option<SimTime> {
        self.entries.iter().find_map(|(t, k)| matches!(k, LogKind::AdlCompleted).then_some(*t))
    }

    /// The sensed step sequence.
    #[must_use]
    pub fn sensed_steps(&self) -> Vec<StepId> {
        self.entries
            .iter()
            .filter_map(|(_, k)| match k {
                LogKind::StepSensed(s) => Some(*s),
                _ => None,
            })
            .collect()
    }

    /// Renders the log as a human-readable timeline (one line per entry).
    #[must_use]
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (t, kind) in &self.entries {
            let line = match kind {
                LogKind::StepSensed(s) => format!("sensed {s}"),
                LogKind::ReminderIssued(r) => {
                    let text = r.methods.iter().find_map(|m| match m {
                        crate::reminding::ReminderMethod::TextMessage(t) => Some(t.as_str()),
                        _ => None,
                    });
                    format!(
                        "reminder ({} methods, {} level): {}",
                        r.method_count(),
                        r.prompt.level,
                        text.unwrap_or("<no text>")
                    )
                }
                LogKind::Praised => "praise: Excellent!".to_owned(),
                LogKind::AdlCompleted => "ADL completed".to_owned(),
                LogKind::PatientFroze => "patient froze".to_owned(),
                LogKind::PatientMisused(tool) => format!("patient misuses {tool}"),
                LogKind::PatientStarted(s) => format!("patient starts {s}"),
            };
            let _ = writeln!(out, "[{t:>9}] {line}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reminding::{ReminderLevel, RemindingSubsystem, Trigger};
    use coreda_adl::activity::catalog;

    #[test]
    fn scripted_behavior_consumes_errors_once() {
        let tea = catalog::tea_making();
        let routine = Routine::canonical(&tea);
        let mut rng = SimRng::seed_from(0);
        let mut b = ScriptedBehavior::new().with_error(1, PatientAction::Freeze);
        assert_eq!(b.at_boundary(1, &routine, &tea, &mut rng), PatientAction::Freeze);
        assert_eq!(b.at_boundary(1, &routine, &tea, &mut rng), PatientAction::Proceed);
        assert_eq!(b.at_boundary(2, &routine, &tea, &mut rng), PatientAction::Proceed);
    }

    #[test]
    fn scripted_durations_override_means() {
        let tea = catalog::tea_making();
        let step = &tea.steps()[0];
        let mut rng = SimRng::seed_from(0);
        let mut b = ScriptedBehavior::new().with_duration(step.id(), SimDuration::from_secs(13));
        assert_eq!(b.step_duration(step, &mut rng), SimDuration::from_secs(13));
        let other = &tea.steps()[1];
        assert_eq!(
            b.step_duration(other, &mut rng),
            SimDuration::from_secs_f64(other.mean_duration_s())
        );
    }

    #[test]
    fn stochastic_behavior_unimpaired_always_proceeds() {
        let tea = catalog::tea_making();
        let routine = Routine::canonical(&tea);
        let mut rng = SimRng::seed_from(1);
        let mut b = StochasticBehavior::new(PatientProfile::unimpaired("x"));
        for idx in 1..4 {
            assert_eq!(b.at_boundary(idx, &routine, &tea, &mut rng), PatientAction::Proceed);
        }
    }

    #[test]
    fn log_queries_work() {
        let tea = catalog::tea_making();
        let mut log = EpisodeLog::new();
        let reminder = RemindingSubsystem::new("X").compose(
            Prompt { tool: ToolId::new(catalog::POT), level: ReminderLevel::Minimal },
            Trigger::IdleTimeout,
            &tea,
        );
        log.push(SimTime::from_secs(1), LogKind::StepSensed(StepId::from_raw(catalog::TEA_BOX)));
        log.push(SimTime::from_secs(13), LogKind::ReminderIssued(reminder));
        log.push(SimTime::from_secs(23), LogKind::Praised);
        log.push(SimTime::from_secs(80), LogKind::AdlCompleted);
        assert_eq!(log.reminders().len(), 1);
        assert_eq!(log.praise_count(), 1);
        assert_eq!(log.completed_at(), Some(SimTime::from_secs(80)));
        assert_eq!(log.sensed_steps(), vec![StepId::from_raw(catalog::TEA_BOX)]);
        let rendered = log.render();
        assert!(rendered.contains("Excellent!"));
        assert!(rendered.contains("ADL completed"));
    }
}
