//! Measurement helpers behind the paper's evaluation numbers.

use serde::{Deserialize, Serialize};

/// A hit/total counter that renders as a precision percentage.
///
/// # Examples
///
/// ```
/// use coreda_core::metrics::PrecisionCounter;
///
/// let mut p = PrecisionCounter::new();
/// p.record(true);
/// p.record(true);
/// p.record(false);
/// assert!((p.precision() - 2.0 / 3.0).abs() < 1e-12);
/// assert_eq!(p.to_string(), "67% (2/3)");
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PrecisionCounter {
    hits: u64,
    total: u64,
}

impl PrecisionCounter {
    /// An empty counter.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one trial.
    pub fn record(&mut self, hit: bool) {
        self.total += 1;
        if hit {
            self.hits += 1;
        }
    }

    /// Successful trials.
    #[must_use]
    pub const fn hits(&self) -> u64 {
        self.hits
    }

    /// Total trials.
    #[must_use]
    pub const fn total(&self) -> u64 {
        self.total
    }

    /// Hit fraction (1.0 when nothing was recorded).
    #[must_use]
    pub fn precision(&self) -> f64 {
        if self.total == 0 {
            1.0
        } else {
            self.hits as f64 / self.total as f64
        }
    }

    /// Merges another counter into this one.
    pub fn merge(&mut self, other: PrecisionCounter) {
        self.hits += other.hits;
        self.total += other.total;
    }

    /// Precision as a whole percentage, rounded half away from zero
    /// (`2/3` → 67, `1/3` → 33, `1/2` → 50).
    ///
    /// [`Display`](std::fmt::Display) goes through this so the rendered
    /// percentage is rounded by construction rather than by an accident
    /// of float formatting.
    #[must_use]
    pub fn percent(&self) -> u64 {
        // precision() ∈ [0, 1], so the product is in [0, 100] and the
        // cast is lossless after rounding.
        (self.precision() * 100.0).round() as u64
    }
}

impl std::fmt::Display for PrecisionCounter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}% ({}/{})", self.percent(), self.hits, self.total)
    }
}

/// Mean of a slice (`NaN`-free: 0.0 for an empty slice).
#[must_use]
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Population standard deviation (0.0 for fewer than two values).
#[must_use]
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Element-wise mean of equally long rows (e.g. learning curves across
/// seeds).
///
/// # Panics
///
/// Panics if rows have different lengths.
#[must_use]
pub fn mean_curve(rows: &[Vec<f64>]) -> Vec<f64> {
    let Some(first) = rows.first() else {
        return Vec::new();
    };
    let n = first.len();
    for r in rows {
        assert_eq!(r.len(), n, "all curves must have equal length");
    }
    (0..n).map(|i| mean(&rows.iter().map(|r| r[i]).collect::<Vec<_>>())).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_counter_is_vacuously_perfect() {
        assert_eq!(PrecisionCounter::new().precision(), 1.0);
    }

    #[test]
    fn counter_tracks_hits() {
        let mut p = PrecisionCounter::new();
        for i in 0..10 {
            p.record(i % 2 == 0);
        }
        assert_eq!(p.hits(), 5);
        assert_eq!(p.total(), 10);
        assert_eq!(p.precision(), 0.5);
    }

    #[test]
    fn merge_combines() {
        let mut a = PrecisionCounter::new();
        a.record(true);
        let mut b = PrecisionCounter::new();
        b.record(false);
        b.record(true);
        a.merge(b);
        assert_eq!(a.hits(), 2);
        assert_eq!(a.total(), 3);
    }

    #[test]
    fn display_rounds_percentage() {
        let mut p = PrecisionCounter::new();
        for _ in 0..17 {
            p.record(true);
        }
        for _ in 0..3 {
            p.record(false);
        }
        assert_eq!(p.to_string(), "85% (17/20)");
    }

    #[test]
    fn display_rounds_at_the_boundaries() {
        // (hits, total, rendered) at 0, 1/3, 1/2, 2/3, and 1: rounding
        // must be explicit (half away from zero), not truncation —
        // truncation would render 2/3 as 66%.
        for (hits, total, want) in [
            (0, 3, "0% (0/3)"),
            (1, 3, "33% (1/3)"),
            (1, 2, "50% (1/2)"),
            (2, 3, "67% (2/3)"),
            (3, 3, "100% (3/3)"),
        ] {
            let mut p = PrecisionCounter::new();
            for i in 0..total {
                p.record(i < hits);
            }
            assert_eq!(p.to_string(), want);
        }
        assert_eq!(PrecisionCounter::new().percent(), 100, "empty counter is vacuously perfect");
    }

    #[test]
    fn mean_and_std() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(std_dev(&[5.0]), 0.0);
        assert!((std_dev(&[2.0, 4.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mean_curve_averages_pointwise() {
        let rows = vec![vec![0.0, 1.0], vec![1.0, 0.0]];
        assert_eq!(mean_curve(&rows), vec![0.5, 0.5]);
        assert!(mean_curve(&[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn ragged_curves_rejected() {
        let _ = mean_curve(&[vec![1.0], vec![1.0, 2.0]]);
    }
}
