//! Saving and restoring learned policies.
//!
//! A routine takes weeks of real use to learn; losing it to a server
//! reboot would be unacceptable in a care home. This module serialises a
//! planner's learned state to a small, versioned, CRC-protected binary
//! blob and restores it into a fresh planner — after verifying the blob
//! actually belongs to the same ADL (same step ids, same tools).
//!
//! The format is hand-rolled on [`bytes`] rather than pulled from a
//! serialisation framework: it is ~40 lines, has no schema drift, and the
//! CRC catches torn writes from a crashed save.

use std::error::Error;
use std::fmt;

use bytes::{Buf, BufMut, Bytes, BytesMut};
use coreda_adl::step::StepId;
use coreda_adl::tool::ToolId;
use coreda_sensornet::packet::crc16;

use crate::planning::PlanningSubsystem;

/// Magic prefix of a policy blob.
pub const MAGIC: &[u8; 4] = b"CRDA";
/// Current format version.
pub const VERSION: u8 = 1;

/// Serialises the planner's learned state.
///
/// # Examples
///
/// ```
/// use coreda_adl::activity::catalog;
/// use coreda_adl::routine::Routine;
/// use coreda_core::persistence;
/// use coreda_core::planning::{PlanningConfig, PlanningSubsystem};
/// use coreda_des::rng::SimRng;
///
/// let tea = catalog::tea_making();
/// let routine = Routine::canonical(&tea);
/// let mut planner = PlanningSubsystem::new(&tea, PlanningConfig::default());
/// let mut rng = SimRng::seed_from(1);
/// for _ in 0..150 {
///     planner.train_episode(routine.steps(), &mut rng);
/// }
/// let blob = persistence::save_policy(&planner);
///
/// let mut fresh = PlanningSubsystem::new(&tea, PlanningConfig::default());
/// persistence::restore_policy(&mut fresh, &blob)?;
/// assert_eq!(fresh.accuracy_vs_routine(&routine), 1.0);
/// # Ok::<(), coreda_core::persistence::PersistError>(())
/// ```
#[must_use]
pub fn save_policy(planner: &PlanningSubsystem) -> Bytes {
    let encoder = planner.encoder();
    let q = planner.q_table();
    let shape = q.shape();
    let mut buf = BytesMut::new();
    buf.put_slice(MAGIC);
    buf.put_u8(VERSION);
    let step_ids = encoder.step_ids();
    buf.put_u16(u16::try_from(step_ids.len()).expect("ADLs are small"));
    for s in step_ids {
        buf.put_u16(s.raw());
    }
    let tools = encoder.tools();
    buf.put_u16(u16::try_from(tools.len()).expect("ADLs are small"));
    for t in tools {
        buf.put_u16(t.raw());
    }
    buf.put_u64(planner.episodes_trained());
    buf.put_u32(u32::try_from(shape.table_len()).expect("tables are small"));
    for s in shape.state_ids() {
        for a in shape.action_ids() {
            buf.put_f64(q.value(s, a));
        }
    }
    let crc = crc16(&buf);
    buf.put_u16(crc);
    buf.freeze()
}

/// Restores a previously saved policy into `planner`.
///
/// # Errors
///
/// Returns a [`PersistError`] if the blob is malformed, CRC-damaged, from
/// a different format version, or belongs to a different ADL than the
/// planner was built for.
pub fn restore_policy(planner: &mut PlanningSubsystem, blob: &[u8]) -> Result<(), PersistError> {
    const HEADER: usize = 4 + 1;
    if blob.len() < HEADER + 2 {
        return Err(PersistError::Truncated { len: blob.len() });
    }
    let (body, trailer) = blob.split_at(blob.len() - 2);
    let expected = u16::from_be_bytes([trailer[0], trailer[1]]);
    let actual = crc16(body);
    if expected != actual {
        return Err(PersistError::BadCrc { expected, actual });
    }
    let mut buf = body;
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(PersistError::BadMagic(magic));
    }
    let version = buf.get_u8();
    if version != VERSION {
        return Err(PersistError::UnsupportedVersion(version));
    }

    let need = |buf: &&[u8], n: usize, len: usize| {
        if buf.remaining() < n {
            Err(PersistError::Truncated { len })
        } else {
            Ok(())
        }
    };

    need(&buf, 2, blob.len())?;
    let n_steps = buf.get_u16() as usize;
    need(&buf, n_steps * 2, blob.len())?;
    let step_ids: Vec<StepId> = (0..n_steps).map(|_| StepId::from_raw(buf.get_u16())).collect();
    need(&buf, 2, blob.len())?;
    let n_tools = buf.get_u16() as usize;
    need(&buf, n_tools * 2, blob.len())?;
    let tools: Vec<ToolId> = (0..n_tools).map(|_| ToolId::new(buf.get_u16())).collect();

    // The blob must describe the planner's ADL exactly.
    if planner.encoder().step_ids() != step_ids.as_slice()
        || planner.encoder().tools() != tools.as_slice()
    {
        return Err(PersistError::AdlMismatch);
    }

    need(&buf, 8 + 4, blob.len())?;
    let episodes = buf.get_u64();
    let table_len = buf.get_u32() as usize;
    let shape = planner.encoder().shape();
    if table_len != shape.table_len() {
        return Err(PersistError::AdlMismatch);
    }
    need(&buf, table_len * 8, blob.len())?;
    let mut values = Vec::with_capacity(table_len);
    for _ in 0..table_len {
        let v = buf.get_f64();
        if !v.is_finite() {
            return Err(PersistError::CorruptValue(v));
        }
        values.push(v);
    }
    if buf.has_remaining() {
        return Err(PersistError::TrailingBytes { extra: buf.remaining() });
    }

    planner.restore_values(&values, episodes);
    Ok(())
}

/// Persistence failures.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PersistError {
    /// The blob is shorter than its declared contents.
    Truncated {
        /// Observed length.
        len: usize,
    },
    /// The first four bytes are not [`MAGIC`].
    BadMagic([u8; 4]),
    /// The blob is from an unknown format version.
    UnsupportedVersion(u8),
    /// CRC mismatch (torn or corrupted write).
    BadCrc {
        /// CRC stored in the blob.
        expected: u16,
        /// CRC computed over the body.
        actual: u16,
    },
    /// The blob describes a different ADL than the planner's.
    AdlMismatch,
    /// A stored Q-value is not finite.
    CorruptValue(f64),
    /// Extra bytes after the declared contents.
    TrailingBytes {
        /// Number of unread bytes.
        extra: usize,
    },
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Truncated { len } => write!(f, "policy blob truncated at {len} bytes"),
            PersistError::BadMagic(m) => write!(f, "bad magic {m:?}"),
            PersistError::UnsupportedVersion(v) => write!(f, "unsupported format version {v}"),
            PersistError::BadCrc { expected, actual } => {
                write!(f, "crc mismatch: stored {expected:#06x}, computed {actual:#06x}")
            }
            PersistError::AdlMismatch => {
                write!(f, "policy blob belongs to a different activity")
            }
            PersistError::CorruptValue(v) => write!(f, "non-finite stored value {v}"),
            PersistError::TrailingBytes { extra } => write!(f, "{extra} trailing bytes"),
        }
    }
}

impl Error for PersistError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planning::PlanningConfig;
    use coreda_adl::activity::catalog;
    use coreda_adl::routine::Routine;
    use coreda_des::rng::SimRng;

    fn trained_planner() -> (Routine, PlanningSubsystem) {
        let tea = catalog::tea_making();
        let routine = Routine::canonical(&tea);
        let mut planner = PlanningSubsystem::new(&tea, PlanningConfig::default());
        let mut rng = SimRng::seed_from(1);
        for _ in 0..200 {
            planner.train_episode(routine.steps(), &mut rng);
        }
        (routine, planner)
    }

    #[test]
    fn save_restore_roundtrip_preserves_policy() {
        let (routine, planner) = trained_planner();
        let blob = save_policy(&planner);
        let tea = catalog::tea_making();
        let mut fresh = PlanningSubsystem::new(&tea, PlanningConfig::default());
        assert!(fresh.accuracy_vs_routine(&routine) < 1.0, "fresh planner knows nothing");
        restore_policy(&mut fresh, &blob).unwrap();
        assert_eq!(fresh.accuracy_vs_routine(&routine), 1.0);
        assert_eq!(fresh.episodes_trained(), planner.episodes_trained());
        // Values are restored exactly (visit counters are diagnostics and
        // are not persisted).
        let shape = planner.encoder().shape();
        for s in shape.state_ids() {
            assert_eq!(fresh.q_table().row(s), planner.q_table().row(s), "row {s}");
        }
    }

    #[test]
    fn corruption_is_detected() {
        let (_, planner) = trained_planner();
        let blob = save_policy(&planner).to_vec();
        let tea = catalog::tea_making();
        let mut fresh = PlanningSubsystem::new(&tea, PlanningConfig::default());
        for i in (0..blob.len()).step_by(97) {
            let mut bad = blob.clone();
            bad[i] ^= 0x08;
            assert!(
                restore_policy(&mut fresh, &bad).is_err(),
                "flipping byte {i} went undetected"
            );
        }
    }

    #[test]
    fn truncation_is_detected() {
        let (_, planner) = trained_planner();
        let blob = save_policy(&planner);
        let tea = catalog::tea_making();
        let mut fresh = PlanningSubsystem::new(&tea, PlanningConfig::default());
        for n in [0, 4, 10, blob.len() / 2, blob.len() - 1] {
            assert!(restore_policy(&mut fresh, &blob[..n]).is_err(), "truncated at {n}");
        }
    }

    #[test]
    fn wrong_adl_is_rejected() {
        let (_, planner) = trained_planner();
        let blob = save_policy(&planner);
        let tooth = catalog::tooth_brushing();
        let mut other = PlanningSubsystem::new(&tooth, PlanningConfig::default());
        assert_eq!(restore_policy(&mut other, &blob), Err(PersistError::AdlMismatch));
    }

    #[test]
    fn wrong_version_is_rejected() {
        let (_, planner) = trained_planner();
        let mut blob = save_policy(&planner).to_vec();
        blob[4] = 99;
        // Re-stamp the CRC so only the version differs.
        let body = blob.len() - 2;
        let crc = crc16(&blob[..body]);
        blob[body..].copy_from_slice(&crc.to_be_bytes());
        let tea = catalog::tea_making();
        let mut fresh = PlanningSubsystem::new(&tea, PlanningConfig::default());
        assert_eq!(
            restore_policy(&mut fresh, &blob),
            Err(PersistError::UnsupportedVersion(99))
        );
    }

    #[test]
    fn error_messages_read_well() {
        assert!(PersistError::AdlMismatch.to_string().contains("different activity"));
        assert!(PersistError::Truncated { len: 3 }.to_string().contains("3 bytes"));
    }
}
