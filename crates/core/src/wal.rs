//! Write-ahead event log for metro-scale serving.
//!
//! A full fleet snapshot costs O(fleet) bytes no matter how little
//! happened; the write-ahead log is the other half of the durability
//! story — an append-only record of every *observable assistance-state
//! transition* (episode starts/ends, reminders, praises, session
//! events), costing O(activity) bytes. Quiet 100 ms pipeline ticks
//! append nothing: a home's quiet stretch is deterministically
//! re-derivable from the last snapshot, so logging it would record
//! entropy-free bytes. That definition also makes the record stream
//! identical across queue engines (dense polling visits more instants
//! but observes the same transitions) and at any worker count.
//!
//! The log is *not* replayed to reconstruct state — resume replays the
//! simulation itself from base + deltas, which is bit-exact by the
//! determinism guarantee. Instead the log serves two jobs:
//!
//! 1. **Verification**: a resumed run regenerates its log and
//!    cross-checks it against the stored tail
//!    ([`crate::metro::resume_scale_durable`]); any disagreement means
//!    the log and the snapshot chain belong to different histories.
//! 2. **Observability**: the per-home record stream is a caregiver-
//!    inspectable timeline of what the system did and when
//!    ([`render_home_timeline`], `trace --replay-home`).
//!
//! Framing follows the checkpoint house style (magic + version +
//! big-endian body + CRC-16), adapted for append-friendly streams: the
//! body is a sequence of length-prefixed, individually CRC'd chunks of
//! up to [`CHUNK_RECORDS`] fixed-size records, and a whole-stream CRC-16
//! trailer closes the file. Strict decoding ([`decode_wal`]) verifies
//! the trailer first, which deterministically rejects every single-bit
//! flip; tolerant decoding ([`decode_wal_tolerant`]) walks intact
//! chunks and stops at the first torn one — what a resume does with the
//! log a killed run left behind.

use bytes::{BufMut, Bytes, BytesMut};
use coreda_des::time::SimTime;
use coreda_sensornet::packet::crc16;

use crate::checkpoint::CheckpointError;

/// Magic prefix of a write-ahead log stream.
pub const MAGIC: &[u8; 4] = b"CRWL";
/// Current format version (shared discipline with the checkpoint codec,
/// versioned independently).
pub const VERSION: u8 = 1;
/// Fixed encoded size of one [`WalRecord`].
pub const RECORD_BYTES: usize = 20;
/// Records per CRC'd chunk: small enough that a torn tail loses at most
/// a few KB, large enough that framing overhead stays negligible.
pub const CHUNK_RECORDS: usize = 256;

/// Flag bit: a live episode began at this wake.
pub const EPISODE_STARTED: u8 = 1;
/// Flag bit: the running episode ended at this wake.
pub const EPISODE_ENDED: u8 = 1 << 1;
/// Flag bit: the episode that ended was completed by the patient.
pub const EPISODE_COMPLETED: u8 = 1 << 2;
/// [`WalRecord::act`] value meaning "no episode started here".
pub const NO_ACT: u8 = 0xFF;

/// One observable assistance-state transition: what one home's wake at
/// one instant did that a caregiver (or a resume verifier) can see.
/// Fixed [`RECORD_BYTES`] bytes on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalRecord {
    /// Instant of the wake.
    pub at: SimTime,
    /// Fleet-global home id.
    pub home: u32,
    /// Activity index of a started episode, [`NO_ACT`] otherwise.
    pub act: u8,
    /// [`EPISODE_STARTED`] / [`EPISODE_ENDED`] / [`EPISODE_COMPLETED`].
    pub flags: u8,
    /// Reminders issued at this wake.
    pub reminders: u8,
    /// Praises issued at this wake.
    pub praises: u8,
    /// Sessions the tracker opened at this wake.
    pub sessions_started: u8,
    /// Sessions closed with the terminal tool seen.
    pub sessions_completed: u8,
    /// Sessions closed without it.
    pub sessions_abandoned: u8,
    /// Foreign-tool-use flags raised.
    pub cross_activity: u8,
}

impl WalRecord {
    /// A record carrying no transition at all — the serve loop never
    /// appends these.
    #[must_use]
    pub fn is_trivial(&self) -> bool {
        self.flags == 0
            && self.reminders == 0
            && self.praises == 0
            && self.sessions_started == 0
            && self.sessions_completed == 0
            && self.sessions_abandoned == 0
            && self.cross_activity == 0
    }

    /// The record's fixed big-endian wire image — the same
    /// [`RECORD_BYTES`] layout the log stores, shared with the serve
    /// front end's delivery frames so the two codecs cannot drift.
    #[must_use]
    pub fn to_bytes(&self) -> [u8; RECORD_BYTES] {
        let mut b = [0u8; RECORD_BYTES];
        b[0..8].copy_from_slice(&self.at.as_millis().to_be_bytes());
        b[8..12].copy_from_slice(&self.home.to_be_bytes());
        b[12] = self.act;
        b[13] = self.flags;
        b[14] = self.reminders;
        b[15] = self.praises;
        b[16] = self.sessions_started;
        b[17] = self.sessions_completed;
        b[18] = self.sessions_abandoned;
        b[19] = self.cross_activity;
        b
    }

    /// Inverse of [`WalRecord::to_bytes`]. Every byte pattern is a valid
    /// record — integrity is the enclosing codec's job (CRC'd chunks
    /// here, CRC'd frames on the wire).
    #[must_use]
    pub fn from_bytes(b: &[u8; RECORD_BYTES]) -> WalRecord {
        WalRecord {
            at: SimTime::from_millis(u64::from_be_bytes(b[0..8].try_into().expect("8 bytes"))),
            home: u32::from_be_bytes(b[8..12].try_into().expect("4 bytes")),
            act: b[12],
            flags: b[13],
            reminders: b[14],
            praises: b[15],
            sessions_started: b[16],
            sessions_completed: b[17],
            sessions_abandoned: b[18],
            cross_activity: b[19],
        }
    }

    fn encode(&self, buf: &mut BytesMut) {
        buf.put_slice(&self.to_bytes());
    }

    fn decode(b: &[u8]) -> WalRecord {
        debug_assert_eq!(b.len(), RECORD_BYTES);
        WalRecord::from_bytes(b.try_into().expect("RECORD_BYTES slice"))
    }
}

/// What [`decode_wal_tolerant`] salvages from a (possibly torn) log.
#[derive(Debug, Clone, PartialEq)]
pub struct WalTail {
    /// Config digest stored in the header.
    pub digest: u64,
    /// Records from every intact chunk, in stored order.
    pub records: Vec<WalRecord>,
    /// Bytes of the blob covered by the header and intact chunks — where
    /// an appending writer would resume.
    pub valid_bytes: usize,
}

/// Fixed stream header: magic + version + config digest.
pub const HEADER_BYTES: usize = 4 + 1 + 8;

/// Serialises a record stream: header, [`CHUNK_RECORDS`]-record CRC'd
/// chunks, whole-stream CRC trailer.
#[must_use]
pub fn encode_wal(digest: u64, records: &[WalRecord]) -> Bytes {
    let mut buf = BytesMut::with_capacity(HEADER_BYTES + records.len() * (RECORD_BYTES + 1) + 2);
    buf.put_slice(MAGIC);
    buf.put_u8(VERSION);
    buf.put_u64(digest);
    for chunk in records.chunks(CHUNK_RECORDS) {
        let mut payload = BytesMut::with_capacity(chunk.len() * RECORD_BYTES);
        for r in chunk {
            r.encode(&mut payload);
        }
        buf.put_u32(u32::try_from(payload.len()).expect("chunks are bounded"));
        let crc = crc16(&payload);
        buf.put_slice(&payload);
        buf.put_u16(crc);
    }
    let crc = crc16(&buf);
    buf.put_u16(crc);
    buf.freeze()
}

fn decode_header(blob: &[u8]) -> Result<u64, CheckpointError> {
    if blob.len() < HEADER_BYTES {
        return Err(CheckpointError::Truncated { len: blob.len() });
    }
    let magic: [u8; 4] = blob[0..4].try_into().expect("4 bytes");
    if &magic != MAGIC {
        return Err(CheckpointError::BadMagic(magic));
    }
    if blob[4] != VERSION {
        return Err(CheckpointError::UnsupportedVersion(blob[4]));
    }
    Ok(u64::from_be_bytes(blob[5..13].try_into().expect("8 bytes")))
}

/// Walks one chunk at `blob[offset..]`. Returns the offset past the
/// chunk, or `None` if the chunk is torn, mis-sized, or CRC-damaged.
fn walk_chunk(blob: &[u8], offset: usize, records: &mut Vec<WalRecord>) -> Option<usize> {
    let rest = &blob[offset..];
    if rest.len() < 4 {
        return None;
    }
    let len = u32::from_be_bytes(rest[0..4].try_into().expect("4 bytes")) as usize;
    if !len.is_multiple_of(RECORD_BYTES) || len > CHUNK_RECORDS * RECORD_BYTES {
        return None;
    }
    if rest.len() < 4 + len + 2 {
        return None;
    }
    let payload = &rest[4..4 + len];
    let stored = u16::from_be_bytes(rest[4 + len..4 + len + 2].try_into().expect("2 bytes"));
    if crc16(payload) != stored {
        return None;
    }
    records.extend(payload.chunks_exact(RECORD_BYTES).map(WalRecord::decode));
    Some(offset + 4 + len + 2)
}

/// Strict decode of a complete log: the whole-stream CRC trailer is
/// verified first, so every single-bit flip anywhere in the blob is
/// rejected deterministically (per-chunk CRCs alone would miss flips in
/// the length prefixes only probabilistically). Returns the stored
/// config digest and every record.
///
/// # Errors
///
/// [`CheckpointError::Truncated`] / [`CheckpointError::BadMagic`] /
/// [`CheckpointError::UnsupportedVersion`] / [`CheckpointError::BadCrc`]
/// on a malformed or damaged stream.
pub fn decode_wal(blob: &[u8]) -> Result<(u64, Vec<WalRecord>), CheckpointError> {
    if blob.len() < HEADER_BYTES + 2 {
        return Err(CheckpointError::Truncated { len: blob.len() });
    }
    let (body, trailer) = blob.split_at(blob.len() - 2);
    let expected = u16::from_be_bytes([trailer[0], trailer[1]]);
    let actual = crc16(body);
    if expected != actual {
        return Err(CheckpointError::BadCrc { expected, actual });
    }
    let digest = decode_header(body)?;
    let mut records = Vec::new();
    let mut offset = HEADER_BYTES;
    while offset < body.len() {
        offset = walk_chunk(body, offset, &mut records)
            .ok_or(CheckpointError::Truncated { len: body.len() - offset })?;
    }
    Ok((digest, records))
}

/// Tolerant decode of a possibly torn log — what a resume does with the
/// file a killed run left mid-append. The header must be intact; after
/// it, every chunk that is complete and CRC-clean contributes its
/// records, and the walk stops at the first torn or damaged chunk
/// (discarding it and everything after). The whole-stream trailer is
/// ignored: a torn file usually has none.
///
/// # Errors
///
/// Only header damage errors ([`CheckpointError::Truncated`],
/// [`CheckpointError::BadMagic`],
/// [`CheckpointError::UnsupportedVersion`]) — body damage shortens the
/// result instead of failing it.
pub fn decode_wal_tolerant(blob: &[u8]) -> Result<WalTail, CheckpointError> {
    let digest = decode_header(blob)?;
    let mut records = Vec::new();
    let mut offset = HEADER_BYTES;
    while let Some(next) = walk_chunk(blob, offset, &mut records) {
        offset = next;
    }
    Ok(WalTail { digest, records, valid_bytes: offset })
}

/// Renders one home's logged transitions as a human-readable timeline —
/// the time-travel replay behind `trace --replay-home`. Deterministic:
/// depends only on the record stream.
#[must_use]
pub fn render_home_timeline(records: &[WalRecord], home: u32) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let mut logged = 0usize;
    for r in records.iter().filter(|r| r.home == home) {
        logged += 1;
        let mut parts: Vec<String> = Vec::new();
        if r.flags & EPISODE_STARTED != 0 {
            parts.push(format!("episode started (activity {})", r.act));
        }
        for (count, label) in [
            (r.reminders, "reminder"),
            (r.praises, "praise"),
            (r.sessions_started, "session opened"),
            (r.sessions_completed, "session completed"),
            (r.sessions_abandoned, "session abandoned"),
            (r.cross_activity, "cross-activity flag"),
        ] {
            match count {
                0 => {}
                1 => parts.push(label.to_string()),
                n => parts.push(format!("{label} x{n}")),
            }
        }
        if r.flags & EPISODE_ENDED != 0 {
            parts.push(if r.flags & EPISODE_COMPLETED != 0 {
                "episode completed".to_string()
            } else {
                "episode ended incomplete".to_string()
            });
        }
        let secs = r.at.as_millis() as f64 / 1000.0;
        let _ = writeln!(out, "  {secs:>10.1}s  {}", parts.join(", "));
    }
    let _ = writeln!(out, "home {home}: {logged} logged transitions");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records(n: usize) -> Vec<WalRecord> {
        (0..n)
            .map(|i| WalRecord {
                at: SimTime::from_millis(100 * (i as u64 + 1)),
                home: (i % 7) as u32,
                act: if i % 3 == 0 { 0 } else { NO_ACT },
                flags: match i % 4 {
                    0 => EPISODE_STARTED,
                    1 => 0,
                    2 => EPISODE_ENDED | EPISODE_COMPLETED,
                    _ => EPISODE_ENDED,
                },
                reminders: (i % 2) as u8,
                praises: (i % 5 == 0) as u8,
                sessions_started: (i % 4 == 1) as u8,
                sessions_completed: 0,
                sessions_abandoned: (i % 6 == 5) as u8,
                cross_activity: 0,
            })
            .collect()
    }

    #[test]
    fn round_trip_is_exact_across_chunk_boundaries() {
        for n in [0, 1, CHUNK_RECORDS - 1, CHUNK_RECORDS, CHUNK_RECORDS + 1, 1000] {
            let records = sample_records(n);
            let blob = encode_wal(0xABCD, &records);
            let (digest, back) = decode_wal(&blob).unwrap();
            assert_eq!(digest, 0xABCD, "n={n}");
            assert_eq!(back, records, "n={n}");
            // Tolerant decode of an intact stream salvages everything.
            let tail = decode_wal_tolerant(&blob).unwrap();
            assert_eq!(tail.records, records, "n={n}");
            assert_eq!(tail.valid_bytes, blob.len() - 2, "n={n}");
        }
    }

    #[test]
    fn strict_decode_rejects_every_single_bit_flip() {
        let blob = encode_wal(7, &sample_records(40)).to_vec();
        for i in 0..blob.len() {
            for bit in 0..8 {
                let mut bad = blob.clone();
                bad[i] ^= 1 << bit;
                assert!(decode_wal(&bad).is_err(), "flipping byte {i} bit {bit} undetected");
            }
        }
    }

    #[test]
    fn truncation_is_rejected_strictly_and_salvaged_tolerantly() {
        let records = sample_records(3 * CHUNK_RECORDS);
        let blob = encode_wal(7, &records);
        // Cut mid-way through the second chunk.
        let chunk_bytes = 4 + CHUNK_RECORDS * RECORD_BYTES + 2;
        let cut = 13 + chunk_bytes + chunk_bytes / 2;
        let torn = &blob[..cut];
        assert!(decode_wal(torn).is_err(), "strict decode must reject a torn stream");
        let tail = decode_wal_tolerant(torn).unwrap();
        assert_eq!(tail.records, records[..CHUNK_RECORDS], "only the intact chunk survives");
        assert_eq!(tail.valid_bytes, 13 + chunk_bytes);
        // A corrupt mid-chunk also stops the tolerant walk there.
        let mut bad = blob.to_vec();
        bad[13 + chunk_bytes + 10] ^= 1;
        let tail = decode_wal_tolerant(&bad).unwrap();
        assert_eq!(tail.records, records[..CHUNK_RECORDS]);
    }

    #[test]
    fn header_damage_fails_even_tolerant_decode() {
        let blob = encode_wal(7, &sample_records(5)).to_vec();
        assert!(matches!(
            decode_wal_tolerant(&blob[..10]),
            Err(CheckpointError::Truncated { .. })
        ));
        let mut bad = blob.clone();
        bad[0] = b'X';
        assert!(matches!(decode_wal_tolerant(&bad), Err(CheckpointError::BadMagic(_))));
        let mut bad = blob;
        bad[4] = 99;
        assert!(matches!(
            decode_wal_tolerant(&bad),
            Err(CheckpointError::UnsupportedVersion(99))
        ));
    }

    #[test]
    fn empty_log_is_valid_and_tiny() {
        let blob = encode_wal(1, &[]);
        assert_eq!(blob.len(), HEADER_BYTES + 2);
        assert_eq!(decode_wal(&blob).unwrap(), (1, Vec::new()));
    }

    #[test]
    fn timeline_reads_well() {
        let records = vec![
            WalRecord {
                at: SimTime::from_millis(61_500),
                home: 3,
                act: 1,
                flags: EPISODE_STARTED,
                reminders: 0,
                praises: 0,
                sessions_started: 1,
                sessions_completed: 0,
                sessions_abandoned: 0,
                cross_activity: 0,
            },
            WalRecord {
                at: SimTime::from_millis(65_200),
                home: 3,
                act: NO_ACT,
                flags: 0,
                reminders: 2,
                praises: 0,
                sessions_started: 0,
                sessions_completed: 0,
                sessions_abandoned: 0,
                cross_activity: 0,
            },
            WalRecord {
                at: SimTime::from_millis(90_000),
                home: 4, // other home: filtered out
                act: NO_ACT,
                flags: EPISODE_ENDED,
                reminders: 0,
                praises: 0,
                sessions_started: 0,
                sessions_completed: 0,
                sessions_abandoned: 0,
                cross_activity: 0,
            },
            WalRecord {
                at: SimTime::from_millis(99_900),
                home: 3,
                act: NO_ACT,
                flags: EPISODE_ENDED | EPISODE_COMPLETED,
                reminders: 0,
                praises: 1,
                sessions_started: 0,
                sessions_completed: 1,
                sessions_abandoned: 0,
                cross_activity: 0,
            },
        ];
        let text = render_home_timeline(&records, 3);
        assert!(text.contains("episode started (activity 1)"), "{text}");
        assert!(text.contains("reminder x2"), "{text}");
        assert!(text.contains("praise, session completed, episode completed"), "{text}");
        assert!(text.contains("home 3: 3 logged transitions"), "{text}");
        assert!(!text.contains("90.0s"), "other homes' records must be filtered: {text}");
    }
}
