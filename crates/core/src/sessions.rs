//! Activity-session recognition across a whole home.
//!
//! A deployed base station hears tool reports from *every* instrumented
//! activity. Before any per-activity pipeline can run, the server must
//! decide which activity a report belongs to and when a session starts
//! and ends. [`SessionTracker`] does that from uids alone:
//!
//! - the first report opens a session for the owning activity;
//! - reports from another activity's tools are flagged as
//!   [`SessionEvent::CrossActivityUse`] — a realistic dementia confusion
//!   (fetching the toothbrush mid-tea-making) that a caregiver wants to
//!   know about;
//! - a sustained run of foreign reports means the user actually moved on:
//!   the tracker ends the session (abandoned) and opens the new one;
//! - a session closes as *completed* if its terminal tool was seen, or as
//!   *abandoned* after a long silence otherwise.

use coreda_adl::activity::AdlSpec;
use coreda_adl::tool::ToolId;
use coreda_des::time::{SimDuration, SimTime};
use coreda_sensornet::node::NodeId;

/// Events recognised by the tracker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionEvent {
    /// A new activity session opened.
    Started {
        /// Activity name.
        activity: String,
        /// When.
        at: SimTime,
    },
    /// A session closed.
    Ended {
        /// Activity name.
        activity: String,
        /// When.
        at: SimTime,
        /// Whether its terminal tool had been used.
        completed: bool,
    },
    /// A tool of *another* activity was used during an open session.
    CrossActivityUse {
        /// The activity currently in session.
        active: String,
        /// The foreign activity the tool belongs to.
        foreign: String,
        /// The tool used.
        tool: ToolId,
        /// When.
        at: SimTime,
    },
}

#[derive(Debug, Clone)]
struct ActivityInfo {
    name: String,
    tools: Vec<ToolId>,
    terminal_tool: ToolId,
}

#[derive(Debug, Clone)]
struct Active {
    idx: usize,
    last_report: SimTime,
    saw_terminal: bool,
    /// Consecutive foreign reports, with the foreign activity index.
    foreign_run: Option<(usize, u32)>,
}

/// Recognises activity sessions from the home-wide report stream.
///
/// # Examples
///
/// ```
/// use coreda_adl::activity::catalog;
/// use coreda_core::sessions::{SessionEvent, SessionTracker};
/// use coreda_des::time::{SimDuration, SimTime};
/// use coreda_sensornet::node::NodeId;
///
/// let mut tracker = SessionTracker::new(
///     &[catalog::tea_making(), catalog::tooth_brushing()],
///     SimDuration::from_secs(120),
/// );
/// let events = tracker.on_report(NodeId::new(catalog::TEA_BOX), SimTime::from_secs(1));
/// assert!(matches!(&events[0], SessionEvent::Started { activity, .. } if activity == "Tea-making"));
/// ```
#[derive(Debug, Clone)]
pub struct SessionTracker {
    activities: Vec<ActivityInfo>,
    active: Option<Active>,
    /// Silence after which an open session is closed.
    idle_close: SimDuration,
    /// Consecutive foreign reports that constitute a session switch.
    switch_threshold: u32,
}

impl SessionTracker {
    /// Default number of consecutive foreign reports treated as a switch.
    pub const DEFAULT_SWITCH_THRESHOLD: u32 = 3;

    /// Creates a tracker over `specs`.
    ///
    /// # Panics
    ///
    /// Panics if `specs` is empty or two activities share a tool id.
    #[must_use]
    pub fn new(specs: &[AdlSpec], idle_close: SimDuration) -> Self {
        assert!(!specs.is_empty(), "tracker needs at least one activity");
        let mut seen = std::collections::HashSet::new();
        let activities = specs
            .iter()
            .map(|spec| {
                for tool in spec.tools() {
                    assert!(
                        seen.insert(tool.id()),
                        "tool {id} appears in two activities",
                        id = tool.id()
                    );
                }
                ActivityInfo {
                    name: spec.name().to_owned(),
                    tools: spec.tools().iter().map(coreda_adl::tool::Tool::id).collect(),
                    terminal_tool: spec
                        .terminal_step()
                        .tool()
                        .expect("terminal steps use a tool"),
                }
            })
            .collect();
        SessionTracker {
            activities,
            active: None,
            idle_close,
            switch_threshold: Self::DEFAULT_SWITCH_THRESHOLD,
        }
    }

    /// Overrides the foreign-run switch threshold.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    #[must_use]
    pub fn with_switch_threshold(mut self, n: u32) -> Self {
        assert!(n > 0, "switch threshold must be positive");
        self.switch_threshold = n;
        self
    }

    /// The activity currently in session, if any.
    #[must_use]
    pub fn active_activity(&self) -> Option<&str> {
        self.active.as_ref().map(|a| self.activities[a.idx].name.as_str())
    }

    fn owner_of(&self, tool: ToolId) -> Option<usize> {
        self.activities.iter().position(|a| a.tools.contains(&tool))
    }

    /// Feeds one accepted tool report; returns the recognised events, in
    /// order. Reports from unknown tools are ignored.
    pub fn on_report(&mut self, node: NodeId, at: SimTime) -> Vec<SessionEvent> {
        let tool = ToolId::new(node.raw());
        let Some(owner) = self.owner_of(tool) else {
            return Vec::new();
        };
        let mut events = Vec::new();
        match self.active.as_mut() {
            None => {
                self.active = Some(Active {
                    idx: owner,
                    last_report: at,
                    saw_terminal: tool == self.activities[owner].terminal_tool,
                    foreign_run: None,
                });
                events.push(SessionEvent::Started {
                    activity: self.activities[owner].name.clone(),
                    at,
                });
            }
            Some(active) if active.idx == owner => {
                active.last_report = at;
                active.foreign_run = None;
                if tool == self.activities[owner].terminal_tool {
                    active.saw_terminal = true;
                }
            }
            Some(active) => {
                active.last_report = at;
                let run = match active.foreign_run {
                    Some((who, n)) if who == owner => n + 1,
                    _ => 1,
                };
                active.foreign_run = Some((owner, run));
                events.push(SessionEvent::CrossActivityUse {
                    active: self.activities[active.idx].name.clone(),
                    foreign: self.activities[owner].name.clone(),
                    tool,
                    at,
                });
                if run >= self.switch_threshold {
                    // The user really did move on.
                    let old = active.idx;
                    let completed = active.saw_terminal;
                    events.push(SessionEvent::Ended {
                        activity: self.activities[old].name.clone(),
                        at,
                        completed,
                    });
                    self.active = Some(Active {
                        idx: owner,
                        last_report: at,
                        saw_terminal: tool == self.activities[owner].terminal_tool,
                        foreign_run: None,
                    });
                    events.push(SessionEvent::Started {
                        activity: self.activities[owner].name.clone(),
                        at,
                    });
                }
            }
        }
        events
    }

    /// Periodic check: closes the open session after `idle_close` of
    /// silence. Returns the end event if one fired.
    pub fn on_tick(&mut self, now: SimTime) -> Option<SessionEvent> {
        let active = self.active.as_ref()?;
        if now.saturating_duration_since(active.last_report) < self.idle_close {
            return None;
        }
        let ev = SessionEvent::Ended {
            activity: self.activities[active.idx].name.clone(),
            at: now,
            completed: active.saw_terminal,
        };
        self.active = None;
        Some(ev)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coreda_adl::activity::catalog;

    fn tracker() -> SessionTracker {
        SessionTracker::new(
            &[catalog::tea_making(), catalog::tooth_brushing()],
            SimDuration::from_secs(120),
        )
    }

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn first_report_starts_the_owning_session() {
        let mut tr = tracker();
        let ev = tr.on_report(NodeId::new(catalog::BRUSH), t(5));
        assert_eq!(
            ev,
            vec![SessionEvent::Started { activity: "Tooth-brushing".into(), at: t(5) }]
        );
        assert_eq!(tr.active_activity(), Some("Tooth-brushing"));
    }

    #[test]
    fn same_activity_reports_extend_the_session() {
        let mut tr = tracker();
        tr.on_report(NodeId::new(catalog::TEA_BOX), t(1));
        assert!(tr.on_report(NodeId::new(catalog::POT), t(8)).is_empty());
        assert!(tr.on_report(NodeId::new(catalog::KETTLE), t(14)).is_empty());
        assert_eq!(tr.active_activity(), Some("Tea-making"));
    }

    #[test]
    fn completed_session_closes_after_silence() {
        let mut tr = tracker();
        for (tool, at) in [
            (catalog::TEA_BOX, 1),
            (catalog::POT, 8),
            (catalog::KETTLE, 14),
            (catalog::TEA_CUP, 20),
        ] {
            tr.on_report(NodeId::new(tool), t(at));
        }
        assert!(tr.on_tick(t(60)).is_none(), "not silent long enough yet");
        let ev = tr.on_tick(t(200)).unwrap();
        assert_eq!(
            ev,
            SessionEvent::Ended { activity: "Tea-making".into(), at: t(200), completed: true }
        );
        assert_eq!(tr.active_activity(), None);
    }

    #[test]
    fn abandoned_session_closes_uncompleted() {
        let mut tr = tracker();
        tr.on_report(NodeId::new(catalog::TEA_BOX), t(1));
        let ev = tr.on_tick(t(500)).unwrap();
        assert!(matches!(ev, SessionEvent::Ended { completed: false, .. }));
    }

    #[test]
    fn single_foreign_report_is_flagged_not_switched() {
        let mut tr = tracker();
        tr.on_report(NodeId::new(catalog::TEA_BOX), t(1));
        // Mid-tea, the user picks up the toothbrush once — confusion.
        let ev = tr.on_report(NodeId::new(catalog::BRUSH), t(10));
        assert_eq!(ev.len(), 1);
        assert!(matches!(
            &ev[0],
            SessionEvent::CrossActivityUse { active, foreign, tool, .. }
                if active == "Tea-making" && foreign == "Tooth-brushing"
                    && *tool == ToolId::new(catalog::BRUSH)
        ));
        assert_eq!(tr.active_activity(), Some("Tea-making"));
        // Returning to tea clears the foreign run.
        tr.on_report(NodeId::new(catalog::POT), t(15));
        let ev = tr.on_report(NodeId::new(catalog::BRUSH), t(20));
        assert_eq!(ev.len(), 1, "run counter restarted");
    }

    #[test]
    fn sustained_foreign_run_switches_sessions() {
        let mut tr = tracker();
        tr.on_report(NodeId::new(catalog::TEA_BOX), t(1));
        tr.on_report(NodeId::new(catalog::PASTE_TUBE), t(10));
        tr.on_report(NodeId::new(catalog::BRUSH), t(14));
        let ev = tr.on_report(NodeId::new(catalog::BRUSH), t(18));
        // Third consecutive foreign report: flag + end(abandoned) + start.
        assert_eq!(ev.len(), 3, "{ev:#?}");
        assert!(matches!(ev[0], SessionEvent::CrossActivityUse { .. }));
        assert!(matches!(
            &ev[1],
            SessionEvent::Ended { activity, completed: false, .. } if activity == "Tea-making"
        ));
        assert!(matches!(
            &ev[2],
            SessionEvent::Started { activity, .. } if activity == "Tooth-brushing"
        ));
        assert_eq!(tr.active_activity(), Some("Tooth-brushing"));
    }

    #[test]
    fn unknown_tools_are_ignored() {
        let mut tr = tracker();
        assert!(tr.on_report(NodeId::new(99), t(1)).is_empty());
        assert_eq!(tr.active_activity(), None);
    }

    #[test]
    fn back_to_back_sessions() {
        let mut tr = tracker();
        tr.on_report(NodeId::new(catalog::TEA_BOX), t(1));
        tr.on_report(NodeId::new(catalog::TEA_CUP), t(20));
        tr.on_tick(t(300)).unwrap();
        let ev = tr.on_report(NodeId::new(catalog::PASTE_TUBE), t(400));
        assert!(matches!(
            &ev[0],
            SessionEvent::Started { activity, .. } if activity == "Tooth-brushing"
        ));
    }

    #[test]
    #[should_panic(expected = "appears in two activities")]
    fn overlapping_tools_rejected() {
        let tea = catalog::tea_making();
        let _ = SessionTracker::new(&[tea.clone(), tea], SimDuration::from_secs(60));
    }
}
