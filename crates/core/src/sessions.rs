//! Activity-session recognition across a whole home.
//!
//! A deployed base station hears tool reports from *every* instrumented
//! activity. Before any per-activity pipeline can run, the server must
//! decide which activity a report belongs to and when a session starts
//! and ends. [`SessionTracker`] does that from uids alone:
//!
//! - the first report opens a session for the owning activity;
//! - reports from another activity's tools are flagged as
//!   [`SessionEvent::CrossActivityUse`] — a realistic dementia confusion
//!   (fetching the toothbrush mid-tea-making) that a caregiver wants to
//!   know about;
//! - a sustained run of foreign reports means the user actually moved on:
//!   the tracker ends the session (abandoned) and opens the new one;
//! - a session closes as *completed* if its terminal tool was seen, or as
//!   *abandoned* after a long silence otherwise.
//!
//! Activity names are interned into a per-tracker [`NameTable`], so a
//! [`SessionEvent`] is a small `Copy` value carrying [`NameId`]s — no
//! `String` clones on the per-report hot path. Resolve ids back to names
//! only at render time, via [`SessionTracker::activity_name`] or
//! [`SessionTracker::render_event`].

use std::sync::Arc;

use coreda_adl::activity::AdlSpec;
use coreda_adl::intern::{NameId, NameTable};
use coreda_adl::tool::ToolId;
use coreda_des::time::{SimDuration, SimTime};
use coreda_sensornet::node::NodeId;

/// Events recognised by the tracker. `Copy`: activity names are carried
/// as interned [`NameId`]s into the issuing tracker's table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionEvent {
    /// A new activity session opened.
    Started {
        /// Activity name.
        activity: NameId,
        /// When.
        at: SimTime,
    },
    /// A session closed.
    Ended {
        /// Activity name.
        activity: NameId,
        /// When.
        at: SimTime,
        /// Whether its terminal tool had been used.
        completed: bool,
    },
    /// A tool of *another* activity was used during an open session.
    CrossActivityUse {
        /// The activity currently in session.
        active: NameId,
        /// The foreign activity the tool belongs to.
        foreign: NameId,
        /// The tool used.
        tool: ToolId,
        /// When.
        at: SimTime,
    },
}

/// Maximum events a single report can produce (flag + end + start).
const MAX_EVENTS_PER_REPORT: usize = 3;

/// The events recognised from one report, returned inline — no heap
/// allocation per report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionEvents {
    events: [Option<SessionEvent>; MAX_EVENTS_PER_REPORT],
    len: u8,
}

impl SessionEvents {
    fn push(&mut self, ev: SessionEvent) {
        self.events[self.len as usize] = Some(ev);
        self.len += 1;
    }

    /// Number of events recognised.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the report produced no events.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterates the events in recognition order.
    pub fn iter(&self) -> impl Iterator<Item = &SessionEvent> {
        self.events[..self.len as usize].iter().map(|e| e.as_ref().expect("filled up to len"))
    }
}

impl std::ops::Index<usize> for SessionEvents {
    type Output = SessionEvent;

    fn index(&self, i: usize) -> &SessionEvent {
        assert!(i < self.len as usize, "event index {i} out of bounds (len {})", self.len);
        self.events[i].as_ref().expect("filled up to len")
    }
}

impl IntoIterator for SessionEvents {
    type Item = SessionEvent;
    type IntoIter = std::iter::Flatten<std::array::IntoIter<Option<SessionEvent>, 3>>;

    fn into_iter(self) -> Self::IntoIter {
        self.events.into_iter().flatten()
    }
}

impl<'a> IntoIterator for &'a SessionEvents {
    type Item = &'a SessionEvent;
    type IntoIter = std::iter::Flatten<std::slice::Iter<'a, Option<SessionEvent>>>;

    fn into_iter(self) -> Self::IntoIter {
        self.events.iter().flatten()
    }
}

#[derive(Debug, Clone)]
struct ActivityInfo {
    name: NameId,
    tools: Vec<ToolId>,
    terminal_tool: ToolId,
}

#[derive(Debug, Clone)]
struct Active {
    idx: usize,
    last_report: SimTime,
    saw_terminal: bool,
    /// Consecutive foreign reports, with the foreign activity index.
    foreign_run: Option<(usize, u32)>,
}

/// The resumable state of an open session, as captured by
/// [`SessionTracker::export_active`]. Activity metadata and interned
/// names are rebuilt from the specs (in the same order, so the same
/// [`NameId`]s come out) and are not part of the snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ActiveSessionState {
    /// Index of the activity in session (spec order).
    pub activity_idx: usize,
    /// Last report instant.
    pub last_report: SimTime,
    /// Whether the terminal tool has been seen.
    pub saw_terminal: bool,
    /// In-progress foreign run: `(foreign activity index, run length)`.
    pub foreign_run: Option<(usize, u32)>,
}

/// Recognises activity sessions from the home-wide report stream.
///
/// # Examples
///
/// ```
/// use coreda_adl::activity::catalog;
/// use coreda_core::sessions::{SessionEvent, SessionTracker};
/// use coreda_des::time::{SimDuration, SimTime};
/// use coreda_sensornet::node::NodeId;
///
/// let mut tracker = SessionTracker::new(
///     &[catalog::tea_making(), catalog::tooth_brushing()],
///     SimDuration::from_secs(120),
/// );
/// let events = tracker.on_report(NodeId::new(catalog::TEA_BOX), SimTime::from_secs(1));
/// assert!(matches!(
///     events[0],
///     SessionEvent::Started { activity, .. } if tracker.activity_name(activity) == "Tea-making"
/// ));
/// ```
#[derive(Debug, Clone)]
pub struct SessionTracker {
    /// Immutable after construction and shared: cloning a tracker (one
    /// per home in a metro fleet) costs two `Arc` bumps, not a rebuild of
    /// the activity metadata and interner.
    activities: Arc<Vec<ActivityInfo>>,
    names: Arc<NameTable>,
    active: Option<Active>,
    /// Silence after which an open session is closed.
    idle_close: SimDuration,
    /// Consecutive foreign reports that constitute a session switch.
    switch_threshold: u32,
}

impl SessionTracker {
    /// Default number of consecutive foreign reports treated as a switch.
    pub const DEFAULT_SWITCH_THRESHOLD: u32 = 3;

    /// Creates a tracker over `specs`.
    ///
    /// # Panics
    ///
    /// Panics if `specs` is empty or two activities share a tool id.
    #[must_use]
    pub fn new(specs: &[AdlSpec], idle_close: SimDuration) -> Self {
        assert!(!specs.is_empty(), "tracker needs at least one activity");
        let mut seen = std::collections::HashSet::new();
        let mut names = NameTable::new();
        let activities = specs
            .iter()
            .map(|spec| {
                for tool in spec.tools() {
                    assert!(
                        seen.insert(tool.id()),
                        "tool {id} appears in two activities",
                        id = tool.id()
                    );
                }
                ActivityInfo {
                    name: names.intern(spec.name()),
                    tools: spec.tools().iter().map(coreda_adl::tool::Tool::id).collect(),
                    terminal_tool: spec
                        .terminal_step()
                        .tool()
                        .expect("terminal steps use a tool"),
                }
            })
            .collect();
        SessionTracker {
            activities: Arc::new(activities),
            names: Arc::new(names),
            active: None,
            idle_close,
            switch_threshold: Self::DEFAULT_SWITCH_THRESHOLD,
        }
    }

    /// Overrides the foreign-run switch threshold.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    #[must_use]
    pub fn with_switch_threshold(mut self, n: u32) -> Self {
        assert!(n > 0, "switch threshold must be positive");
        self.switch_threshold = n;
        self
    }

    /// The activity currently in session, if any.
    #[must_use]
    pub fn active_activity(&self) -> Option<&str> {
        self.active.as_ref().map(|a| self.names.resolve(self.activities[a.idx].name))
    }

    /// Resolves an interned activity name id issued by this tracker.
    #[must_use]
    pub fn activity_name(&self, id: NameId) -> &str {
        self.names.resolve(id)
    }

    /// The id this tracker interned `name` under, if it tracks it.
    #[must_use]
    pub fn activity_id(&self, name: &str) -> Option<NameId> {
        self.names.get(name)
    }

    /// Renders an event with its names resolved, for logs and caregiver
    /// reports.
    #[must_use]
    pub fn render_event(&self, ev: &SessionEvent) -> String {
        match *ev {
            SessionEvent::Started { activity, at } => {
                format!("[{at}] session started: {}", self.names.resolve(activity))
            }
            SessionEvent::Ended { activity, at, completed } => {
                let how = if completed { "completed" } else { "abandoned" };
                format!("[{at}] session ended ({how}): {}", self.names.resolve(activity))
            }
            SessionEvent::CrossActivityUse { active, foreign, tool, at } => format!(
                "[{at}] cross-activity use: tool {tool} of {} during {}",
                self.names.resolve(foreign),
                self.names.resolve(active)
            ),
        }
    }

    /// When the open session will be closed by silence, if a session is
    /// open: the instant [`SessionTracker::on_tick`] first fires.
    #[must_use]
    pub fn idle_deadline(&self) -> Option<SimTime> {
        self.active.as_ref().map(|a| a.last_report + self.idle_close)
    }

    fn owner_of(&self, tool: ToolId) -> Option<usize> {
        self.activities.iter().position(|a| a.tools.contains(&tool))
    }

    /// Feeds one accepted tool report; returns the recognised events, in
    /// order. Reports from unknown tools are ignored.
    pub fn on_report(&mut self, node: NodeId, at: SimTime) -> SessionEvents {
        let tool = ToolId::new(node.raw());
        let mut events = SessionEvents::default();
        let Some(owner) = self.owner_of(tool) else {
            return events;
        };
        match self.active.as_mut() {
            None => {
                self.active = Some(Active {
                    idx: owner,
                    last_report: at,
                    saw_terminal: tool == self.activities[owner].terminal_tool,
                    foreign_run: None,
                });
                events.push(SessionEvent::Started { activity: self.activities[owner].name, at });
            }
            Some(active) if active.idx == owner => {
                active.last_report = at;
                active.foreign_run = None;
                if tool == self.activities[owner].terminal_tool {
                    active.saw_terminal = true;
                }
            }
            Some(active) => {
                active.last_report = at;
                let run = match active.foreign_run {
                    Some((who, n)) if who == owner => n + 1,
                    _ => 1,
                };
                active.foreign_run = Some((owner, run));
                events.push(SessionEvent::CrossActivityUse {
                    active: self.activities[active.idx].name,
                    foreign: self.activities[owner].name,
                    tool,
                    at,
                });
                if run >= self.switch_threshold {
                    // The user really did move on.
                    let old = active.idx;
                    let completed = active.saw_terminal;
                    events.push(SessionEvent::Ended {
                        activity: self.activities[old].name,
                        at,
                        completed,
                    });
                    self.active = Some(Active {
                        idx: owner,
                        last_report: at,
                        saw_terminal: tool == self.activities[owner].terminal_tool,
                        foreign_run: None,
                    });
                    events.push(SessionEvent::Started {
                        activity: self.activities[owner].name,
                        at,
                    });
                }
            }
        }
        events
    }

    /// Captures the open-session state, if any (checkpointing).
    #[must_use]
    pub fn export_active(&self) -> Option<ActiveSessionState> {
        self.active.as_ref().map(|a| ActiveSessionState {
            activity_idx: a.idx,
            last_report: a.last_report,
            saw_terminal: a.saw_terminal,
            foreign_run: a.foreign_run,
        })
    }

    /// Restores the open-session state captured by
    /// [`SessionTracker::export_active`] onto a tracker freshly built
    /// from the same specs.
    ///
    /// # Panics
    ///
    /// Panics if a referenced activity index is out of range.
    pub fn restore_active(&mut self, state: Option<ActiveSessionState>) {
        self.active = state.map(|s| {
            assert!(s.activity_idx < self.activities.len(), "active activity index out of range");
            if let Some((who, _)) = s.foreign_run {
                assert!(who < self.activities.len(), "foreign activity index out of range");
            }
            Active {
                idx: s.activity_idx,
                last_report: s.last_report,
                saw_terminal: s.saw_terminal,
                foreign_run: s.foreign_run,
            }
        });
    }

    /// Periodic check: closes the open session after `idle_close` of
    /// silence. Returns the end event if one fired.
    pub fn on_tick(&mut self, now: SimTime) -> Option<SessionEvent> {
        let active = self.active.as_ref()?;
        if now.saturating_duration_since(active.last_report) < self.idle_close {
            return None;
        }
        let ev = SessionEvent::Ended {
            activity: self.activities[active.idx].name,
            at: now,
            completed: active.saw_terminal,
        };
        self.active = None;
        Some(ev)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coreda_adl::activity::catalog;

    fn tracker() -> SessionTracker {
        SessionTracker::new(
            &[catalog::tea_making(), catalog::tooth_brushing()],
            SimDuration::from_secs(120),
        )
    }

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn first_report_starts_the_owning_session() {
        let mut tr = tracker();
        let ev = tr.on_report(NodeId::new(catalog::BRUSH), t(5));
        let brushing = tr.activity_id("Tooth-brushing").unwrap();
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0], SessionEvent::Started { activity: brushing, at: t(5) });
        assert_eq!(tr.active_activity(), Some("Tooth-brushing"));
    }

    #[test]
    fn same_activity_reports_extend_the_session() {
        let mut tr = tracker();
        tr.on_report(NodeId::new(catalog::TEA_BOX), t(1));
        assert!(tr.on_report(NodeId::new(catalog::POT), t(8)).is_empty());
        assert!(tr.on_report(NodeId::new(catalog::KETTLE), t(14)).is_empty());
        assert_eq!(tr.active_activity(), Some("Tea-making"));
    }

    #[test]
    fn completed_session_closes_after_silence() {
        let mut tr = tracker();
        for (tool, at) in [
            (catalog::TEA_BOX, 1),
            (catalog::POT, 8),
            (catalog::KETTLE, 14),
            (catalog::TEA_CUP, 20),
        ] {
            tr.on_report(NodeId::new(tool), t(at));
        }
        assert!(tr.on_tick(t(60)).is_none(), "not silent long enough yet");
        let ev = tr.on_tick(t(200)).unwrap();
        let tea = tr.activity_id("Tea-making").unwrap();
        assert_eq!(ev, SessionEvent::Ended { activity: tea, at: t(200), completed: true });
        assert_eq!(tr.active_activity(), None);
    }

    #[test]
    fn abandoned_session_closes_uncompleted() {
        let mut tr = tracker();
        tr.on_report(NodeId::new(catalog::TEA_BOX), t(1));
        let ev = tr.on_tick(t(500)).unwrap();
        assert!(matches!(ev, SessionEvent::Ended { completed: false, .. }));
    }

    #[test]
    fn idle_deadline_tracks_last_report() {
        let mut tr = tracker();
        assert_eq!(tr.idle_deadline(), None);
        tr.on_report(NodeId::new(catalog::TEA_BOX), t(1));
        assert_eq!(tr.idle_deadline(), Some(t(121)));
        tr.on_report(NodeId::new(catalog::POT), t(30));
        assert_eq!(tr.idle_deadline(), Some(t(150)));
        // The deadline is exactly when on_tick first closes the session.
        assert!(tr.on_tick(t(149)).is_none());
        assert!(tr.on_tick(t(150)).is_some());
        assert_eq!(tr.idle_deadline(), None);
    }

    #[test]
    fn single_foreign_report_is_flagged_not_switched() {
        let mut tr = tracker();
        tr.on_report(NodeId::new(catalog::TEA_BOX), t(1));
        // Mid-tea, the user picks up the toothbrush once — confusion.
        let ev = tr.on_report(NodeId::new(catalog::BRUSH), t(10));
        let tea = tr.activity_id("Tea-making").unwrap();
        let brushing = tr.activity_id("Tooth-brushing").unwrap();
        assert_eq!(ev.len(), 1);
        assert!(matches!(
            ev[0],
            SessionEvent::CrossActivityUse { active, foreign, tool, .. }
                if active == tea && foreign == brushing && tool == ToolId::new(catalog::BRUSH)
        ));
        assert_eq!(tr.active_activity(), Some("Tea-making"));
        // Returning to tea clears the foreign run.
        tr.on_report(NodeId::new(catalog::POT), t(15));
        let ev = tr.on_report(NodeId::new(catalog::BRUSH), t(20));
        assert_eq!(ev.len(), 1, "run counter restarted");
    }

    #[test]
    fn sustained_foreign_run_switches_sessions() {
        let mut tr = tracker();
        tr.on_report(NodeId::new(catalog::TEA_BOX), t(1));
        tr.on_report(NodeId::new(catalog::PASTE_TUBE), t(10));
        tr.on_report(NodeId::new(catalog::BRUSH), t(14));
        let ev = tr.on_report(NodeId::new(catalog::BRUSH), t(18));
        let tea = tr.activity_id("Tea-making").unwrap();
        let brushing = tr.activity_id("Tooth-brushing").unwrap();
        // Third consecutive foreign report: flag + end(abandoned) + start.
        assert_eq!(ev.len(), 3, "{ev:#?}");
        assert!(matches!(ev[0], SessionEvent::CrossActivityUse { .. }));
        assert!(matches!(
            ev[1],
            SessionEvent::Ended { activity, completed: false, .. } if activity == tea
        ));
        assert!(matches!(
            ev[2],
            SessionEvent::Started { activity, .. } if activity == brushing
        ));
        assert_eq!(tr.active_activity(), Some("Tooth-brushing"));
    }

    #[test]
    fn unknown_tools_are_ignored() {
        let mut tr = tracker();
        assert!(tr.on_report(NodeId::new(99), t(1)).is_empty());
        assert_eq!(tr.active_activity(), None);
    }

    #[test]
    fn back_to_back_sessions() {
        let mut tr = tracker();
        tr.on_report(NodeId::new(catalog::TEA_BOX), t(1));
        tr.on_report(NodeId::new(catalog::TEA_CUP), t(20));
        tr.on_tick(t(300)).unwrap();
        let ev = tr.on_report(NodeId::new(catalog::PASTE_TUBE), t(400));
        let brushing = tr.activity_id("Tooth-brushing").unwrap();
        assert!(matches!(
            ev[0],
            SessionEvent::Started { activity, .. } if activity == brushing
        ));
    }

    #[test]
    fn events_iterate_and_render() {
        let mut tr = tracker();
        tr.on_report(NodeId::new(catalog::TEA_BOX), t(1));
        tr.on_report(NodeId::new(catalog::PASTE_TUBE), t(10));
        tr.on_report(NodeId::new(catalog::BRUSH), t(14));
        let ev = tr.on_report(NodeId::new(catalog::BRUSH), t(18));
        assert_eq!(ev.iter().count(), 3);
        assert_eq!((&ev).into_iter().count(), 3);
        assert_eq!(ev.into_iter().count(), 3);
        let rendered: Vec<String> = ev.iter().map(|e| tr.render_event(e)).collect();
        assert!(rendered[0].contains("cross-activity use"));
        assert!(rendered[1].contains("session ended (abandoned): Tea-making"));
        assert!(rendered[2].contains("session started: Tooth-brushing"));
    }

    #[test]
    #[should_panic(expected = "appears in two activities")]
    fn overlapping_tools_rejected() {
        let tea = catalog::tea_making();
        let _ = SessionTracker::new(&[tea.clone(), tea], SimDuration::from_secs(60));
    }
}
