//! A whole home: several instrumented activities behind one base station.
//!
//! The paper instruments two ADLs in the same dwelling (the bathroom's
//! tooth-brushing tools and the kitchen's tea tools). [`CoredaHome`]
//! manages one [`Coreda`] instance per activity, routes tool ids to the
//! owning activity, and enforces the global uniqueness of PAVENET uids
//! that the routing relies on.

use std::error::Error;
use std::fmt;

use coreda_adl::activity::AdlSpec;
use coreda_adl::routine::Routine;
use coreda_adl::tool::ToolId;
use coreda_des::rng::SimRng;

use crate::live::{EpisodeLog, PatientBehavior};
use crate::system::{Coreda, CoredaConfig};

/// Errors raised by [`CoredaHome`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HomeError {
    /// An activity with this name is already installed.
    DuplicateActivity(String),
    /// A tool id is already claimed by another activity.
    ToolConflict {
        /// The conflicting tool.
        tool: ToolId,
        /// The activity that already owns it.
        owner: String,
    },
    /// No activity with this name is installed.
    UnknownActivity(String),
}

impl fmt::Display for HomeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HomeError::DuplicateActivity(name) => {
                write!(f, "activity {name:?} is already installed")
            }
            HomeError::ToolConflict { tool, owner } => {
                write!(f, "tool {tool} is already attached to activity {owner:?}")
            }
            HomeError::UnknownActivity(name) => write!(f, "no activity named {name:?}"),
        }
    }
}

impl Error for HomeError {}

/// All of one user's instrumented activities.
///
/// # Examples
///
/// ```
/// use coreda_adl::activity::catalog;
/// use coreda_core::home::CoredaHome;
/// use coreda_core::system::CoredaConfig;
///
/// let mut home = CoredaHome::new("Mr. Tanaka", CoredaConfig::default(), 2007);
/// home.install(catalog::tea_making())?;
/// home.install(catalog::tooth_brushing())?;
/// assert_eq!(home.activities().count(), 2);
/// # Ok::<(), coreda_core::home::HomeError>(())
/// ```
#[derive(Debug)]
pub struct CoredaHome {
    user_name: String,
    config: CoredaConfig,
    seed: u64,
    systems: Vec<Coreda>,
}

impl CoredaHome {
    /// Creates an empty home.
    #[must_use]
    pub fn new(user_name: impl Into<String>, config: CoredaConfig, seed: u64) -> Self {
        CoredaHome { user_name: user_name.into(), config, seed, systems: Vec::new() }
    }

    /// Installs an activity: builds its nodes, network and subsystems.
    ///
    /// # Errors
    ///
    /// Returns [`HomeError::DuplicateActivity`] when the name is taken and
    /// [`HomeError::ToolConflict`] when a tool id is already attached to
    /// another activity (PAVENET uids must be globally unique).
    pub fn install(&mut self, spec: AdlSpec) -> Result<(), HomeError> {
        if self.systems.iter().any(|s| s.spec().name() == spec.name()) {
            return Err(HomeError::DuplicateActivity(spec.name().to_owned()));
        }
        for tool in spec.tools() {
            if let Some(owner) = self.owner_of(tool.id()) {
                return Err(HomeError::ToolConflict {
                    tool: tool.id(),
                    owner: owner.to_owned(),
                });
            }
        }
        let seed = self.seed.wrapping_add(self.systems.len() as u64 + 1);
        self.systems.push(Coreda::new(spec, &self.user_name, self.config, seed));
        Ok(())
    }

    /// The activity that owns `tool`, if any.
    #[must_use]
    pub fn owner_of(&self, tool: ToolId) -> Option<&str> {
        self.systems
            .iter()
            .find(|s| s.spec().tool(tool).is_some())
            .map(|s| s.spec().name())
    }

    /// Iterates over the installed activities' names.
    pub fn activities(&self) -> impl Iterator<Item = &str> {
        self.systems.iter().map(|s| s.spec().name())
    }

    /// The system guiding `activity`.
    ///
    /// # Errors
    ///
    /// Returns [`HomeError::UnknownActivity`] if nothing by that name is
    /// installed.
    pub fn system(&self, activity: &str) -> Result<&Coreda, HomeError> {
        self.systems
            .iter()
            .find(|s| s.spec().name() == activity)
            .ok_or_else(|| HomeError::UnknownActivity(activity.to_owned()))
    }

    /// Mutable access to the system guiding `activity`.
    ///
    /// # Errors
    ///
    /// Returns [`HomeError::UnknownActivity`] if nothing by that name is
    /// installed.
    pub fn system_mut(&mut self, activity: &str) -> Result<&mut Coreda, HomeError> {
        self.systems
            .iter_mut()
            .find(|s| s.spec().name() == activity)
            .ok_or_else(|| HomeError::UnknownActivity(activity.to_owned()))
    }

    /// Runs a live episode of `activity`.
    ///
    /// # Errors
    ///
    /// Returns [`HomeError::UnknownActivity`] if nothing by that name is
    /// installed.
    pub fn run_live(
        &mut self,
        activity: &str,
        routine: &Routine,
        behavior: &mut dyn PatientBehavior,
        rng: &mut SimRng,
    ) -> Result<EpisodeLog, HomeError> {
        Ok(self.system_mut(activity)?.run_live(routine, behavior, rng))
    }

    /// Total energy consumed by every node in the home, in microjoules.
    #[must_use]
    pub fn total_energy_uj(&self) -> f64 {
        self.systems.iter().map(Coreda::total_energy_uj).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::live::StochasticBehavior;
    use coreda_adl::activity::catalog;
    use coreda_adl::patient::PatientProfile;
    use coreda_adl::step::Step;
    use coreda_adl::tool::Tool;
    use coreda_sensornet::signal::SignalModel;

    fn home() -> CoredaHome {
        let mut h = CoredaHome::new("Mr. Tanaka", CoredaConfig::default(), 1);
        h.install(catalog::tea_making()).unwrap();
        h.install(catalog::tooth_brushing()).unwrap();
        h
    }

    #[test]
    fn installs_and_lists_activities() {
        let h = home();
        let names: Vec<&str> = h.activities().collect();
        assert_eq!(names, vec!["Tea-making", "Tooth-brushing"]);
    }

    #[test]
    fn routes_tools_to_their_activity() {
        let h = home();
        assert_eq!(h.owner_of(ToolId::new(catalog::POT)), Some("Tea-making"));
        assert_eq!(h.owner_of(ToolId::new(catalog::BRUSH)), Some("Tooth-brushing"));
        assert_eq!(h.owner_of(ToolId::new(99)), None);
    }

    #[test]
    fn duplicate_activity_rejected() {
        let mut h = home();
        assert_eq!(
            h.install(catalog::tea_making()),
            Err(HomeError::DuplicateActivity("Tea-making".to_owned()))
        );
    }

    #[test]
    fn tool_conflict_rejected() {
        let mut h = home();
        // A new activity trying to reuse the tea-box's uid.
        let conflicting = AdlSpec::new(
            "Coffee-making",
            vec![Tool::new(
                ToolId::new(catalog::TEA_BOX),
                "coffee-tin",
                SignalModel::accelerometer(0.03, 0.45, 0.5),
            )],
            vec![Step::new("Scoop coffee", ToolId::new(catalog::TEA_BOX), 4.0, 0.8)],
        );
        assert_eq!(
            h.install(conflicting),
            Err(HomeError::ToolConflict {
                tool: ToolId::new(catalog::TEA_BOX),
                owner: "Tea-making".to_owned(),
            })
        );
    }

    #[test]
    fn unknown_activity_errors() {
        let mut h = home();
        assert!(matches!(h.system("Gardening"), Err(HomeError::UnknownActivity(_))));
        assert!(matches!(h.system_mut("Gardening"), Err(HomeError::UnknownActivity(_))));
        let err = h.system("Gardening").unwrap_err();
        assert!(err.to_string().contains("Gardening"));
    }

    #[test]
    fn trains_and_runs_each_activity_independently() {
        let mut h = home();
        let mut rng = SimRng::seed_from(2);
        for name in ["Tea-making", "Tooth-brushing"] {
            let spec = h.system(name).unwrap().spec().clone();
            let routine = Routine::canonical(&spec);
            for _ in 0..200 {
                h.system_mut(name)
                    .unwrap()
                    .planner_mut()
                    .train_episode(routine.steps(), &mut rng);
            }
            let mut behavior = StochasticBehavior::new(PatientProfile::mild("x"));
            let log = h.run_live(name, &routine, &mut behavior, &mut rng).unwrap();
            assert!(log.completed_at().is_some(), "{name}:\n{}", log.render());
        }
        assert!(h.total_energy_uj() > 0.0);
    }
}
