//! Caregiver escalation policy engine and fleet-wide care analytics.
//!
//! The source paper stops at prompting the patient; the follow-on work
//! (Remindful, the caregiver-in-the-loop task-verification framework)
//! closes the loop to a human when prompting fails. This module is that
//! loop, grown to metro scale:
//!
//! * a **policy engine** ([`CarePolicy`] + [`CareMonitor`]) that folds a
//!   home's [`WalRecord`] stream — the same engine/jobs-invariant event
//!   log the durability layer derives — into severity-leveled
//!   escalations ([`CareEvent`]): repeated prompt failures, missed
//!   critical ADLs, and compliance-trend drift;
//! * a **simulated caregiver channel** with deterministic
//!   acknowledgment and resolution timing (per-severity ack delays,
//!   optional no-ack outage windows for fault injection);
//! * a **fleet analytics reduction** ([`FleetAnalytics`]): per-home
//!   compliance and episode-latency trends rolled up to fleet
//!   p50/p95/p99 histograms, merged deterministically in home order
//!   exactly like telemetry.
//!
//! # Determinism
//!
//! A monitor is a *pure fold*: its only inputs are the policy, the
//! home's WAL records in time order, and the run horizon. The WAL is
//! bit-identical at any `--jobs`, either queue engine, and served ≡
//! batch — so the escalation log inherits every one of those
//! invariances for free. Events carry a per-home monotone sequence
//! number and sort globally by `(at, home, seq)`.
//!
//! # Lifecycle — why escalations can never flap
//!
//! Per `(home, trigger)` at most one escalation is open at a time. A
//! trigger's streak counter resets when it fires; while the escalation
//! is open (raised or acked but unresolved) the trigger cannot fire
//! again. Only after the caregiver resolves it can a fresh threshold
//! crossing raise a new one. The testkit's `escalation_consistency`
//! oracle checks exactly this shape.

use coreda_des::stats::Histogram;
use coreda_des::time::SimTime;

use crate::wal::{WalRecord, EPISODE_COMPLETED, EPISODE_ENDED, EPISODE_STARTED};

/// How urgently the caregiver should react.
///
/// The discriminant doubles as the wire byte and as the index into
/// [`CarePolicy::ack_delay_ms`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Severity {
    /// Informational: a trend moved, nobody is in danger.
    Notice = 0,
    /// Prompting is failing; a check-in is due.
    Warning = 1,
    /// A critical ADL is being missed; intervene now.
    Critical = 2,
}

impl Severity {
    /// All severities, lowest first.
    pub const ALL: [Severity; 3] = [Severity::Notice, Severity::Warning, Severity::Critical];

    /// Stable snake_case name (logs, JSONL, CLI).
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            Severity::Notice => "notice",
            Severity::Warning => "warning",
            Severity::Critical => "critical",
        }
    }

    fn from_byte(b: u8) -> Option<Severity> {
        match b {
            0 => Some(Severity::Notice),
            1 => Some(Severity::Warning),
            2 => Some(Severity::Critical),
            _ => None,
        }
    }
}

/// What tripped the escalation. Each trigger maps to a fixed severity
/// ([`CareTrigger::severity`]) — the policy table lives in DESIGN.md.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum CareTrigger {
    /// Reminders-per-window trend drifted past the baseline ratio.
    ComplianceDrift = 0,
    /// A streak of reminders went by without a single compliance.
    RepeatedPromptFailures = 1,
    /// A streak of episodes ended without reaching completion.
    MissedCriticalAdl = 2,
}

impl CareTrigger {
    /// All triggers, in discriminant order.
    pub const ALL: [CareTrigger; 3] = [
        CareTrigger::ComplianceDrift,
        CareTrigger::RepeatedPromptFailures,
        CareTrigger::MissedCriticalAdl,
    ];

    /// Stable snake_case name (logs, JSONL, CLI).
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            CareTrigger::ComplianceDrift => "compliance_drift",
            CareTrigger::RepeatedPromptFailures => "repeated_prompt_failures",
            CareTrigger::MissedCriticalAdl => "missed_critical_adl",
        }
    }

    /// The severity this trigger escalates at.
    #[must_use]
    pub const fn severity(self) -> Severity {
        match self {
            CareTrigger::ComplianceDrift => Severity::Notice,
            CareTrigger::RepeatedPromptFailures => Severity::Warning,
            CareTrigger::MissedCriticalAdl => Severity::Critical,
        }
    }

    fn from_byte(b: u8) -> Option<CareTrigger> {
        match b {
            0 => Some(CareTrigger::ComplianceDrift),
            1 => Some(CareTrigger::RepeatedPromptFailures),
            2 => Some(CareTrigger::MissedCriticalAdl),
            _ => None,
        }
    }
}

/// Where an escalation is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum CareEventKind {
    /// The policy engine raised the escalation.
    Raised = 0,
    /// The simulated caregiver acknowledged it.
    Acked = 1,
    /// The caregiver resolved it; the trigger may fire again.
    Resolved = 2,
}

impl CareEventKind {
    /// Stable snake_case name (logs, JSONL, CLI).
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            CareEventKind::Raised => "raised",
            CareEventKind::Acked => "acked",
            CareEventKind::Resolved => "resolved",
        }
    }

    fn from_byte(b: u8) -> Option<CareEventKind> {
        match b {
            0 => Some(CareEventKind::Raised),
            1 => Some(CareEventKind::Acked),
            2 => Some(CareEventKind::Resolved),
            _ => None,
        }
    }
}

/// Wire size of one encoded [`CareEvent`] (the CRSV `Escalate` frame
/// payload): 8-byte timestamp, 4-byte home, 4-byte per-home sequence,
/// then kind/severity/trigger bytes.
pub const EVENT_BYTES: usize = 19;

/// One entry in the escalation log / one `Escalate` frame payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CareEvent {
    /// When it happened (raise: the WAL record's instant; ack/resolve:
    /// the caregiver-model due instant).
    pub at: SimTime,
    /// The home it belongs to.
    pub home: u32,
    /// Per-home monotone sequence number (ties on `at` stay ordered).
    pub seq: u32,
    /// Lifecycle stage.
    pub kind: CareEventKind,
    /// Severity the escalation was raised at.
    pub severity: Severity,
    /// What tripped it.
    pub trigger: CareTrigger,
}

impl CareEvent {
    /// Big-endian fixed-width encoding, mirroring the WAL record codec.
    #[must_use]
    pub fn to_bytes(&self) -> [u8; EVENT_BYTES] {
        let mut b = [0u8; EVENT_BYTES];
        b[0..8].copy_from_slice(&self.at.as_millis().to_be_bytes());
        b[8..12].copy_from_slice(&self.home.to_be_bytes());
        b[12..16].copy_from_slice(&self.seq.to_be_bytes());
        b[16] = self.kind as u8;
        b[17] = self.severity as u8;
        b[18] = self.trigger as u8;
        b
    }

    /// Decodes [`CareEvent::to_bytes`]' output. Returns `None` when a
    /// discriminant byte has no meaning — a corrupted frame that slipped
    /// past the CRC must not materialise as a phantom enum value.
    #[must_use]
    pub fn from_bytes(b: &[u8; EVENT_BYTES]) -> Option<CareEvent> {
        let at = SimTime::from_millis(u64::from_be_bytes(b[0..8].try_into().expect("8 bytes")));
        let home = u32::from_be_bytes(b[8..12].try_into().expect("4 bytes"));
        let seq = u32::from_be_bytes(b[12..16].try_into().expect("4 bytes"));
        Some(CareEvent {
            at,
            home,
            seq,
            kind: CareEventKind::from_byte(b[16])?,
            severity: Severity::from_byte(b[17])?,
            trigger: CareTrigger::from_byte(b[18])?,
        })
    }

    /// One deterministic log line; the escalation-log goldens and the
    /// jobs/engine/served differentials compare these bytes.
    #[must_use]
    pub fn render(&self) -> String {
        format!(
            "[{:>8}ms] home {:>4} #{:<3} {:<8} {} ({})",
            self.at.as_millis(),
            self.home,
            self.seq,
            self.kind.name(),
            self.severity.name(),
            self.trigger.name(),
        )
    }
}

/// The escalation policy: integer thresholds and caregiver-model
/// timing. Deliberately *not* part of `MetroConfig` — a care run is an
/// overlay on a configured fleet, and the checkpoint config digest must
/// not change for existing runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CarePolicy {
    /// Consecutive reminders with no intervening compliance before
    /// [`CareTrigger::RepeatedPromptFailures`] fires (Warning).
    pub prompt_failure_streak: u64,
    /// Consecutive episodes ended without completion before
    /// [`CareTrigger::MissedCriticalAdl`] fires (Critical).
    pub missed_adl_streak: u64,
    /// Episodes per compliance-trend window.
    pub drift_window: u64,
    /// Drift fires when `recent * drift_den > baseline * drift_num`
    /// (i.e. the recent window is worse than baseline by more than
    /// `num/den`), integer-exact.
    pub drift_num: u64,
    /// Denominator of the drift ratio.
    pub drift_den: u64,
    /// Absolute floor: a window with fewer reminders than this never
    /// drifts, whatever the ratio says.
    pub drift_min_reminders: u64,
    /// Caregiver acknowledgment delay per severity, indexed by
    /// [`Severity`] discriminant (critical pages are answered fastest).
    pub ack_delay_ms: [u64; 3],
    /// Delay from acknowledgment to resolution.
    pub resolve_after_ms: u64,
    /// Caregiver outage windows `[from_ms, to_ms)`: an ack that falls
    /// due inside one slips to the window's end plus the ack delay.
    /// Fault-injection data (the testkit's `caregiver_no_ack` kind) —
    /// pure policy input, so runs stay deterministic.
    pub no_ack_windows: Vec<(u64, u64)>,
}

impl Default for CarePolicy {
    fn default() -> Self {
        CarePolicy {
            prompt_failure_streak: 3,
            missed_adl_streak: 2,
            drift_window: 8,
            drift_num: 3,
            drift_den: 2,
            drift_min_reminders: 4,
            ack_delay_ms: [120_000, 60_000, 30_000],
            resolve_after_ms: 180_000,
            no_ack_windows: Vec::new(),
        }
    }
}

impl CarePolicy {
    /// When the caregiver acknowledges an escalation raised at
    /// `raised_ms` with `severity`, accounting for outage windows.
    #[must_use]
    pub fn ack_due_ms(&self, raised_ms: u64, severity: Severity) -> u64 {
        let delay = self.ack_delay_ms[severity as usize];
        let mut due = raised_ms.saturating_add(delay);
        // Each pass moves `due` strictly past a window's end, so this
        // terminates after at most `no_ack_windows.len()` full sweeps.
        loop {
            let mut moved = false;
            for &(from, to) in &self.no_ack_windows {
                if due >= from && due < to {
                    due = to.saturating_add(delay);
                    moved = true;
                }
            }
            if !moved {
                return due;
            }
        }
    }
}

/// An escalation the caregiver has not yet resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct OpenCare {
    severity: Severity,
    acked: bool,
    /// Next caregiver action due (ack if `!acked`, else resolve).
    next_due_ms: u64,
}

/// Fleet-wide streaming analytics: per-home compliance and per-episode
/// latency/burden histograms, merged in home order like telemetry.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetAnalytics {
    /// Per-home episode completion rate, percent.
    pub compliance_pct: Histogram,
    /// Per-episode start→end latency, milliseconds.
    pub episode_latency_ms: Histogram,
    /// Per-episode reminder burden.
    pub reminders_per_episode: Histogram,
}

impl Default for FleetAnalytics {
    fn default() -> Self {
        Self::new()
    }
}

impl FleetAnalytics {
    /// Empty analytics with the fixed fleet bin layout.
    #[must_use]
    pub fn new() -> Self {
        FleetAnalytics {
            compliance_pct: Histogram::new(0.0, 100.0, 50),
            episode_latency_ms: Histogram::new(0.0, 600_000.0, 600),
            reminders_per_episode: Histogram::new(0.0, 64.0, 64),
        }
    }

    /// Folds another shard's analytics into this one. Called in home
    /// (chunk) order, though histogram merge is order-insensitive.
    pub fn merge(&mut self, other: &FleetAnalytics) {
        self.compliance_pct.merge(&other.compliance_pct);
        self.episode_latency_ms.merge(&other.episode_latency_ms);
        self.reminders_per_episode.merge(&other.reminders_per_episode);
    }

    /// Deterministic fleet quantile summary, one line per metric.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "  compliance: {}\n",
            render_quantiles(&self.compliance_pct, "%"),
        ));
        out.push_str(&format!(
            "  episode latency: {}\n",
            render_quantiles(&self.episode_latency_ms, "ms"),
        ));
        out.push_str(&format!(
            "  reminders/episode: {}\n",
            render_quantiles(&self.reminders_per_episode, ""),
        ));
        out
    }
}

fn render_quantiles(h: &Histogram, unit: &str) -> String {
    match (h.quantile(0.5), h.quantile(0.95), h.quantile(0.99)) {
        (Some(p50), Some(p95), Some(p99)) => format!(
            "n={} p50={p50:.0}{unit} p95={p95:.0}{unit} p99={p99:.0}{unit}",
            h.total(),
        ),
        _ => format!("n={} (no samples)", h.total()),
    }
}

/// One home's escalation state: the pure fold over its WAL records.
#[derive(Debug, Clone, PartialEq)]
pub struct CareMonitor {
    home: u32,
    next_seq: u32,
    events: Vec<CareEvent>,
    open: [Option<OpenCare>; 3],
    fail_streak: u64,
    missed_streak: u64,
    episode_start: Option<SimTime>,
    episode_reminders: u64,
    window_episodes: u64,
    window_reminders: u64,
    baseline: Option<u64>,
    trend_windows: u64,
    episodes_ended: u64,
    episodes_completed: u64,
    finished: bool,
}

impl CareMonitor {
    /// A fresh monitor for `home`.
    #[must_use]
    pub fn new(home: u32) -> Self {
        CareMonitor {
            home,
            next_seq: 0,
            events: Vec::new(),
            open: [None; 3],
            fail_streak: 0,
            missed_streak: 0,
            episode_start: None,
            episode_reminders: 0,
            window_episodes: 0,
            window_reminders: 0,
            baseline: None,
            trend_windows: 0,
            episodes_ended: 0,
            episodes_completed: 0,
            finished: false,
        }
    }

    /// Every event emitted so far, in per-home `(at, seq)` order.
    #[must_use]
    pub fn events(&self) -> &[CareEvent] {
        &self.events
    }

    /// Completed compliance-trend windows (the `care_trend_windows`
    /// telemetry counter).
    #[must_use]
    pub const fn trend_windows(&self) -> u64 {
        self.trend_windows
    }

    /// Folds one non-trivial WAL record into the monitor. Records must
    /// arrive in the home's time order — exactly how `poll_wake`
    /// derives them.
    pub fn observe(&mut self, policy: &CarePolicy, rec: &WalRecord, analytics: &mut FleetAnalytics) {
        debug_assert_eq!(rec.home, self.home, "record routed to the wrong monitor");
        let now_ms = rec.at.as_millis();
        // Caregiver actions that fell due before this record happen
        // first, keeping the per-home event log in time order.
        self.drain_due(policy, now_ms);

        if rec.flags & EPISODE_STARTED != 0 {
            self.episode_start = Some(rec.at);
            self.episode_reminders = 0;
        }
        let reminders = u64::from(rec.reminders);
        self.episode_reminders += reminders;
        self.window_reminders += reminders;

        // Prompt-failure streak: a compliance anywhere in the record
        // clears it, otherwise unanswered reminders accumulate.
        if rec.praises > 0 {
            self.fail_streak = 0;
        } else if reminders > 0 {
            self.fail_streak += reminders;
            if self.fail_streak >= policy.prompt_failure_streak {
                self.raise(policy, CareTrigger::RepeatedPromptFailures, rec.at);
            }
        }

        if rec.flags & EPISODE_ENDED != 0 {
            self.episodes_ended += 1;
            if let Some(start) = self.episode_start.take() {
                let latency = now_ms.saturating_sub(start.as_millis());
                #[allow(clippy::cast_precision_loss)]
                analytics.episode_latency_ms.record(latency as f64);
            }
            #[allow(clippy::cast_precision_loss)]
            analytics.reminders_per_episode.record(self.episode_reminders as f64);
            self.episode_reminders = 0;

            if rec.flags & EPISODE_COMPLETED != 0 {
                self.episodes_completed += 1;
                self.missed_streak = 0;
            } else {
                self.missed_streak += 1;
                if self.missed_streak >= policy.missed_adl_streak {
                    self.raise(policy, CareTrigger::MissedCriticalAdl, rec.at);
                }
            }

            // Compliance-trend window: first full window is the
            // baseline, later windows drift when they are worse than
            // baseline by more than num/den.
            self.window_episodes += 1;
            if self.window_episodes >= policy.drift_window {
                let w = self.window_reminders;
                self.trend_windows += 1;
                match self.baseline {
                    None => self.baseline = Some(w),
                    Some(base) => {
                        if w >= policy.drift_min_reminders
                            && w.saturating_mul(policy.drift_den)
                                > base.saturating_mul(policy.drift_num)
                        {
                            self.raise(policy, CareTrigger::ComplianceDrift, rec.at);
                        }
                    }
                }
                self.window_episodes = 0;
                self.window_reminders = 0;
            }
        }
    }

    /// Ends the fold at the run horizon: remaining caregiver actions
    /// due by then happen, and the home contributes its compliance
    /// sample to the fleet analytics. Idempotent.
    pub fn finish(&mut self, policy: &CarePolicy, horizon: SimTime, analytics: &mut FleetAnalytics) {
        if self.finished {
            return;
        }
        self.finished = true;
        self.drain_due(policy, horizon.as_millis());
        if self.episodes_ended > 0 {
            #[allow(clippy::cast_precision_loss)]
            let pct = (self.episodes_completed * 100) as f64 / self.episodes_ended as f64;
            analytics.compliance_pct.record(pct);
        }
    }

    fn raise(&mut self, policy: &CarePolicy, trigger: CareTrigger, at: SimTime) {
        let slot = trigger as usize;
        if self.open[slot].is_some() {
            // An open escalation absorbs further crossings — this is
            // the never-flap guarantee.
            return;
        }
        let severity = trigger.severity();
        self.push_event(at, CareEventKind::Raised, severity, trigger);
        self.open[slot] = Some(OpenCare {
            severity,
            acked: false,
            next_due_ms: policy.ack_due_ms(at.as_millis(), severity),
        });
        match trigger {
            CareTrigger::RepeatedPromptFailures => self.fail_streak = 0,
            CareTrigger::MissedCriticalAdl => self.missed_streak = 0,
            CareTrigger::ComplianceDrift => {}
        }
    }

    /// Emits every caregiver action due at or before `now_ms`, in due
    /// order (ties break on trigger index).
    fn drain_due(&mut self, policy: &CarePolicy, now_ms: u64) {
        loop {
            let mut next: Option<(u64, usize)> = None;
            for (slot, open) in self.open.iter().enumerate() {
                if let Some(o) = open {
                    if o.next_due_ms <= now_ms
                        && next.is_none_or(|(due, _)| o.next_due_ms < due)
                    {
                        next = Some((o.next_due_ms, slot));
                    }
                }
            }
            let Some((due, slot)) = next else { return };
            let trigger = CareTrigger::ALL[slot];
            let at = SimTime::from_millis(due);
            let o = self.open[slot].as_mut().expect("slot was just inspected");
            if o.acked {
                let severity = o.severity;
                self.open[slot] = None;
                self.push_event(at, CareEventKind::Resolved, severity, trigger);
            } else {
                o.acked = true;
                o.next_due_ms = due.saturating_add(policy.resolve_after_ms);
                let severity = o.severity;
                self.push_event(at, CareEventKind::Acked, severity, trigger);
            }
        }
    }

    fn push_event(
        &mut self,
        at: SimTime,
        kind: CareEventKind,
        severity: Severity,
        trigger: CareTrigger,
    ) {
        self.events.push(CareEvent { at, home: self.home, seq: self.next_seq, kind, severity, trigger });
        self.next_seq += 1;
    }
}

/// A whole run's care output: the globally ordered escalation log plus
/// the fleet analytics reduction.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CareOutput {
    /// Every escalation event, sorted by `(at, home, seq)`.
    pub events: Vec<CareEvent>,
    /// Fleet-wide quantile rollup.
    pub analytics: FleetAnalytics,
}

impl CareOutput {
    /// The full escalation log, one deterministic line per event.
    #[must_use]
    pub fn render_log(&self) -> String {
        let mut out = String::new();
        for ev in &self.events {
            out.push_str(&ev.render());
            out.push('\n');
        }
        out
    }

    /// Deterministic care summary: escalation counts by severity and
    /// lifecycle stage, then the fleet analytics quantiles.
    #[must_use]
    pub fn render(&self) -> String {
        let mut raised = [0u64; 3];
        let mut acked = 0u64;
        let mut resolved = 0u64;
        for ev in &self.events {
            match ev.kind {
                CareEventKind::Raised => raised[ev.severity as usize] += 1,
                CareEventKind::Acked => acked += 1,
                CareEventKind::Resolved => resolved += 1,
            }
        }
        let total: u64 = raised.iter().sum();
        let mut out = String::new();
        out.push_str(&format!(
            "caregiver escalations: {total} raised ({} notice, {} warning, {} critical), \
             {acked} acked, {resolved} resolved\n",
            raised[Severity::Notice as usize],
            raised[Severity::Warning as usize],
            raised[Severity::Critical as usize],
        ));
        out.push_str("fleet analytics:\n");
        out.push_str(&self.analytics.render());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wal::NO_ACT;

    fn rec(at_ms: u64, home: u32) -> WalRecord {
        WalRecord {
            at: SimTime::from_millis(at_ms),
            home,
            act: NO_ACT,
            flags: 0,
            reminders: 0,
            praises: 0,
            sessions_started: 0,
            sessions_completed: 0,
            sessions_abandoned: 0,
            cross_activity: 0,
        }
    }

    fn reminder(at_ms: u64, n: u8) -> WalRecord {
        WalRecord { reminders: n, ..rec(at_ms, 0) }
    }

    fn policy() -> CarePolicy {
        CarePolicy {
            prompt_failure_streak: 3,
            missed_adl_streak: 2,
            ack_delay_ms: [4_000, 2_000, 1_000],
            resolve_after_ms: 5_000,
            ..CarePolicy::default()
        }
    }

    #[test]
    fn prompt_failures_fire_exactly_once_at_the_threshold() {
        let p = policy();
        let mut m = CareMonitor::new(0);
        let mut a = FleetAnalytics::new();
        m.observe(&p, &reminder(1_000, 1), &mut a);
        m.observe(&p, &reminder(2_000, 1), &mut a);
        assert!(m.events().is_empty(), "below threshold, nothing fires");
        m.observe(&p, &reminder(3_000, 1), &mut a);
        let raised: Vec<_> =
            m.events().iter().filter(|e| e.kind == CareEventKind::Raised).collect();
        assert_eq!(raised.len(), 1, "fires exactly at the third unanswered reminder");
        assert_eq!(raised[0].at.as_millis(), 3_000);
        assert_eq!(raised[0].severity, Severity::Warning);
        assert_eq!(raised[0].trigger, CareTrigger::RepeatedPromptFailures);
        // Further failures while the escalation is open never flap.
        m.observe(&p, &reminder(3_500, 3), &mut a);
        m.observe(&p, &reminder(3_600, 3), &mut a);
        let raised = m.events().iter().filter(|e| e.kind == CareEventKind::Raised).count();
        assert_eq!(raised, 1, "open escalation absorbs further crossings");
    }

    #[test]
    fn praise_clears_the_failure_streak() {
        let p = policy();
        let mut m = CareMonitor::new(0);
        let mut a = FleetAnalytics::new();
        m.observe(&p, &reminder(1_000, 2), &mut a);
        m.observe(&p, &WalRecord { praises: 1, ..rec(2_000, 0) }, &mut a);
        m.observe(&p, &reminder(3_000, 2), &mut a);
        assert!(m.events().is_empty(), "praise at 2s reset the streak");
    }

    #[test]
    fn ack_then_resolve_then_refire() {
        let p = policy();
        let mut m = CareMonitor::new(7);
        let mut a = FleetAnalytics::new();
        m.observe(&p, &WalRecord { home: 7, ..reminder(1_000, 3) }, &mut a);
        // Warning acks after 2s, resolves 5s later; a fresh streak
        // after resolution fires a second escalation.
        m.observe(&p, &WalRecord { home: 7, ..reminder(20_000, 3) }, &mut a);
        let kinds: Vec<_> = m.events().iter().map(|e| (e.at.as_millis(), e.kind)).collect();
        assert_eq!(
            kinds,
            vec![
                (1_000, CareEventKind::Raised),
                (3_000, CareEventKind::Acked),
                (8_000, CareEventKind::Resolved),
                (20_000, CareEventKind::Raised),
            ],
        );
        // Per-home seq is monotone and events are in time order.
        for (i, ev) in m.events().iter().enumerate() {
            assert_eq!(ev.seq, u32::try_from(i).expect("few events"));
            assert_eq!(ev.home, 7);
        }
    }

    #[test]
    fn no_ack_window_defers_the_ack() {
        let mut p = policy();
        // Warning raised at 1s would ack at 3s; the outage covers it.
        p.no_ack_windows = vec![(2_000, 10_000)];
        let mut m = CareMonitor::new(0);
        let mut a = FleetAnalytics::new();
        m.observe(&p, &reminder(1_000, 3), &mut a);
        m.finish(&p, SimTime::from_millis(60_000), &mut a);
        let acked: Vec<_> =
            m.events().iter().filter(|e| e.kind == CareEventKind::Acked).collect();
        assert_eq!(acked.len(), 1);
        assert_eq!(
            acked[0].at.as_millis(),
            12_000,
            "ack slips to window end (10s) + warning delay (2s)"
        );
    }

    #[test]
    fn missed_episodes_escalate_critical_and_analytics_sample() {
        let p = policy();
        let mut m = CareMonitor::new(0);
        let mut a = FleetAnalytics::new();
        let start = WalRecord { flags: EPISODE_STARTED, ..rec(1_000, 0) };
        let fail = WalRecord { flags: EPISODE_ENDED, ..rec(5_000, 0) };
        m.observe(&p, &start, &mut a);
        m.observe(&p, &fail, &mut a);
        assert!(m.events().is_empty(), "one miss is below the streak of 2");
        m.observe(&p, &WalRecord { flags: EPISODE_STARTED, ..rec(6_000, 0) }, &mut a);
        m.observe(&p, &WalRecord { flags: EPISODE_ENDED, ..rec(9_000, 0) }, &mut a);
        let raised: Vec<_> =
            m.events().iter().filter(|e| e.kind == CareEventKind::Raised).collect();
        assert_eq!(raised.len(), 1);
        assert_eq!(raised[0].severity, Severity::Critical);
        assert_eq!(raised[0].trigger, CareTrigger::MissedCriticalAdl);
        assert_eq!(a.episode_latency_ms.total(), 2, "both episodes sampled");
        m.finish(&p, SimTime::from_millis(60_000), &mut a);
        assert_eq!(a.compliance_pct.total(), 1, "one per-home compliance sample");
        m.finish(&p, SimTime::from_millis(60_000), &mut a);
        assert_eq!(a.compliance_pct.total(), 1, "finish is idempotent");
    }

    #[test]
    fn drift_fires_when_a_window_outgrows_the_baseline() {
        let p = CarePolicy {
            drift_window: 2,
            drift_num: 3,
            drift_den: 2,
            drift_min_reminders: 4,
            // Thresholds high enough that only drift can fire here.
            prompt_failure_streak: 1_000,
            missed_adl_streak: 1_000,
            ..policy()
        };
        let mut m = CareMonitor::new(0);
        let mut a = FleetAnalytics::new();
        let ended = |at_ms: u64, reminders: u8| WalRecord {
            flags: EPISODE_ENDED | EPISODE_COMPLETED,
            reminders,
            praises: 1,
            ..rec(at_ms, 0)
        };
        // Baseline window: 2 episodes, 2 reminders.
        m.observe(&p, &ended(1_000, 1), &mut a);
        m.observe(&p, &ended(2_000, 1), &mut a);
        assert_eq!(m.trend_windows(), 1);
        // Second window: 6 reminders — 3x the baseline, past 3/2.
        m.observe(&p, &ended(3_000, 3), &mut a);
        m.observe(&p, &ended(4_000, 3), &mut a);
        let raised: Vec<_> =
            m.events().iter().filter(|e| e.kind == CareEventKind::Raised).collect();
        assert_eq!(raised.len(), 1);
        assert_eq!(raised[0].trigger, CareTrigger::ComplianceDrift);
        assert_eq!(raised[0].severity, Severity::Notice);
        assert_eq!(m.trend_windows(), 2);
    }

    #[test]
    fn event_codec_round_trips_and_rejects_phantom_discriminants() {
        let ev = CareEvent {
            at: SimTime::from_millis(123_456),
            home: 42,
            seq: 7,
            kind: CareEventKind::Acked,
            severity: Severity::Critical,
            trigger: CareTrigger::MissedCriticalAdl,
        };
        let bytes = ev.to_bytes();
        assert_eq!(CareEvent::from_bytes(&bytes), Some(ev));
        for idx in [16usize, 17, 18] {
            let mut bad = bytes;
            bad[idx] = 9;
            assert_eq!(CareEvent::from_bytes(&bad), None, "byte {idx} discriminant 9");
        }
    }

    #[test]
    fn render_is_stable() {
        let ev = CareEvent {
            at: SimTime::from_millis(5_000),
            home: 3,
            seq: 0,
            kind: CareEventKind::Raised,
            severity: Severity::Warning,
            trigger: CareTrigger::RepeatedPromptFailures,
        };
        assert_eq!(
            ev.render(),
            "[    5000ms] home    3 #0   raised   warning (repeated_prompt_failures)"
        );
        let out = CareOutput { events: vec![ev], ..CareOutput::default() };
        assert!(out.render().starts_with(
            "caregiver escalations: 1 raised (0 notice, 1 warning, 0 critical), 0 acked, 0 resolved\n"
        ));
        assert!(out.render_log().ends_with("\n"));
    }
}
