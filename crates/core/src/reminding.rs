//! The reminding subsystem (paper §2.3).
//!
//! Receives prompts from the planning subsystem — the tool that should be
//! used next and a reminding level — and renders them as the three
//! delivery methods of the prototype: a text message and a tool picture on
//! the display, and LED blinking on the tools themselves. Two levels
//! exist: *minimal* ("use tea-cup", few blinks) and *specific*
//! ("Mr. Kim, use the black tea-box in front of you.", more blinks).

use std::fmt;

use coreda_adl::activity::AdlSpec;
use coreda_adl::tool::ToolId;
use coreda_sensornet::led::{BlinkPattern, LedColor};
use serde::{Deserialize, Serialize};

/// How insistent a reminder is.
///
/// The reward function (1000 / 100 / 50) is built to make the learned
/// policy prefer [`ReminderLevel::Minimal`]: "This promotes the user to
/// exercise his/her brain instead of depending on the system."
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ReminderLevel {
    /// Short message, fewer blinks.
    Minimal,
    /// Long personalised message, more blinks.
    Specific,
}

impl ReminderLevel {
    /// Both levels, minimal first.
    pub const ALL: [ReminderLevel; 2] = [ReminderLevel::Minimal, ReminderLevel::Specific];
}

impl fmt::Display for ReminderLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ReminderLevel::Minimal => "minimal",
            ReminderLevel::Specific => "specific",
        })
    }
}

/// A planning-subsystem output: "the tool ID that should be used in the
/// next step and the reminding level".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Prompt {
    /// The tool to use next.
    pub tool: ToolId,
    /// How insistently to remind.
    pub level: ReminderLevel,
}

/// What caused a reminder (paper §2.3: the two trigger situations).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Trigger {
    /// "The user does not use the tool s/he should use for a certain
    /// moment."
    IdleTimeout,
    /// "The user incorrectly uses another tool."
    WrongTool {
        /// The tool being wrongly used.
        used: ToolId,
    },
}

/// One concrete delivery action of a reminder.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ReminderMethod {
    /// Text shown on the display.
    TextMessage(String),
    /// Picture of the tool shown on the display (by tool name).
    ToolPicture(String),
    /// Blink the green LED on the target tool.
    GreenLed {
        /// The tool whose LED blinks.
        tool: ToolId,
        /// The blink pattern.
        pattern: BlinkPattern,
    },
    /// Blink the red LED on the wrongly used tool.
    RedLed {
        /// The tool whose LED blinks.
        tool: ToolId,
        /// The blink pattern.
        pattern: BlinkPattern,
    },
}

/// A fully rendered reminder.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Reminder {
    /// The prompt being delivered.
    pub prompt: Prompt,
    /// What triggered it.
    pub trigger: Trigger,
    /// The delivery methods, in presentation order.
    pub methods: Vec<ReminderMethod>,
}

impl Reminder {
    /// Number of delivery methods (Figure 1 shows 4 for a wrong-tool
    /// reminder and 3 for an idle-timeout reminder).
    #[must_use]
    pub fn method_count(&self) -> usize {
        self.methods.len()
    }
}

/// Renders prompts into reminders and praise.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RemindingSubsystem {
    user_name: String,
    /// Caregiver-supplied rich descriptions per tool, used by
    /// specific-level messages ("the black tea-box").
    descriptions: std::collections::HashMap<ToolId, String>,
}

impl RemindingSubsystem {
    /// Creates a renderer that personalises specific-level messages for
    /// `user_name`.
    #[must_use]
    pub fn new(user_name: impl Into<String>) -> Self {
        RemindingSubsystem { user_name: user_name.into(), descriptions: std::collections::HashMap::new() }
    }

    /// Adds a caregiver-supplied description for `tool`, used in
    /// specific-level messages in place of the bare tool name — the
    /// paper's own example is "Mr. Kim, use the *black tea-box* in front
    /// of you."
    #[must_use]
    pub fn with_description(mut self, tool: ToolId, description: impl Into<String>) -> Self {
        self.descriptions.insert(tool, description.into());
        self
    }

    /// The user this subsystem addresses.
    #[must_use]
    pub fn user_name(&self) -> &str {
        &self.user_name
    }

    /// Renders a reminder.
    ///
    /// An idle-timeout reminder carries three methods (text, green LED,
    /// picture); a wrong-tool reminder adds the red LED on the offending
    /// tool, matching the two prompt boxes of Figure 1.
    ///
    /// # Panics
    ///
    /// Panics if the prompted tool is not part of `spec`.
    #[must_use]
    pub fn compose(&self, prompt: Prompt, trigger: Trigger, spec: &AdlSpec) -> Reminder {
        let tool = spec
            .tool(prompt.tool)
            .unwrap_or_else(|| panic!("prompted tool {t} is not in {spec}", t = prompt.tool));
        let text = match prompt.level {
            ReminderLevel::Minimal => format!("Please use {}.", tool.name()),
            ReminderLevel::Specific => {
                let described = self
                    .descriptions
                    .get(&prompt.tool)
                    .map_or(tool.name(), String::as_str);
                format!(
                    "{name}, please use the {described} in front of you.",
                    name = self.user_name,
                )
            }
        };
        let pattern = match prompt.level {
            ReminderLevel::Minimal => BlinkPattern::minimal(LedColor::Green),
            ReminderLevel::Specific => BlinkPattern::specific(LedColor::Green),
        };
        let mut methods = vec![ReminderMethod::TextMessage(text)];
        if let Trigger::WrongTool { used } = trigger {
            // When the planner's prompt targets the very tool being
            // misused (it predicted the step the user is fumbling), a red
            // LED would contradict the green one on the same tool —
            // "stop using the kettle, use the kettle". Only flag tools
            // the prompt is steering *away* from.
            if used != prompt.tool {
                let red = match prompt.level {
                    ReminderLevel::Minimal => BlinkPattern::minimal(LedColor::Red),
                    ReminderLevel::Specific => BlinkPattern::specific(LedColor::Red),
                };
                methods.push(ReminderMethod::RedLed { tool: used, pattern: red });
            }
        }
        methods.push(ReminderMethod::GreenLed { tool: prompt.tool, pattern });
        methods.push(ReminderMethod::ToolPicture(tool.name().to_owned()));
        Reminder { prompt, trigger, methods }
    }

    /// The praise issued when the user takes the correct step
    /// (Figure 1: "Excellent!").
    #[must_use]
    pub fn praise(&self) -> &'static str {
        "Excellent!"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coreda_adl::activity::catalog;

    fn subsystem() -> RemindingSubsystem {
        RemindingSubsystem::new("Mr. Tanaka")
    }

    #[test]
    fn idle_reminder_has_three_methods() {
        // Figure 1, t = 71 s: text + green LED + picture.
        let tea = catalog::tea_making();
        let prompt =
            Prompt { tool: ToolId::new(catalog::TEA_CUP), level: ReminderLevel::Minimal };
        let r = subsystem().compose(prompt, Trigger::IdleTimeout, &tea);
        assert_eq!(r.method_count(), 3);
        assert!(matches!(&r.methods[0], ReminderMethod::TextMessage(t) if t == "Please use tea-cup."));
        assert!(matches!(&r.methods[1], ReminderMethod::GreenLed { tool, .. } if *tool == prompt.tool));
        assert!(matches!(&r.methods[2], ReminderMethod::ToolPicture(n) if n == "tea-cup"));
    }

    #[test]
    fn wrong_tool_reminder_has_four_methods() {
        // Figure 1, t = 13 s: text + red LED on teacup + green LED on pot
        // + picture of pot.
        let tea = catalog::tea_making();
        let prompt = Prompt { tool: ToolId::new(catalog::POT), level: ReminderLevel::Minimal };
        let trigger = Trigger::WrongTool { used: ToolId::new(catalog::TEA_CUP) };
        let r = subsystem().compose(prompt, trigger, &tea);
        assert_eq!(r.method_count(), 4);
        assert!(matches!(&r.methods[1], ReminderMethod::RedLed { tool, .. }
            if *tool == ToolId::new(catalog::TEA_CUP)));
        assert!(matches!(&r.methods[2], ReminderMethod::GreenLed { tool, .. }
            if *tool == ToolId::new(catalog::POT)));
    }

    #[test]
    fn no_red_led_when_the_misused_tool_is_the_prompted_one() {
        // Misusing the very tool the planner prompts for (the user is
        // fumbling the right tool): the reminder must guide, not
        // simultaneously red- and green-blink the same tool.
        let tea = catalog::tea_making();
        let prompt = Prompt { tool: ToolId::new(catalog::POT), level: ReminderLevel::Minimal };
        let trigger = Trigger::WrongTool { used: ToolId::new(catalog::POT) };
        let r = subsystem().compose(prompt, trigger, &tea);
        assert!(
            !r.methods.iter().any(|m| matches!(m, ReminderMethod::RedLed { .. })),
            "{:?}",
            r.methods
        );
        assert!(matches!(&r.methods[1], ReminderMethod::GreenLed { tool, .. }
            if *tool == ToolId::new(catalog::POT)));
    }

    #[test]
    fn specific_messages_are_personalised_and_longer() {
        let tea = catalog::tea_making();
        let min = subsystem().compose(
            Prompt { tool: ToolId::new(catalog::TEA_BOX), level: ReminderLevel::Minimal },
            Trigger::IdleTimeout,
            &tea,
        );
        let spec = subsystem().compose(
            Prompt { tool: ToolId::new(catalog::TEA_BOX), level: ReminderLevel::Specific },
            Trigger::IdleTimeout,
            &tea,
        );
        let text = |r: &Reminder| match &r.methods[0] {
            ReminderMethod::TextMessage(t) => t.clone(),
            other => panic!("expected text, got {other:?}"),
        };
        assert!(text(&spec).contains("Mr. Tanaka"));
        assert!(text(&spec).len() > text(&min).len());
    }

    #[test]
    fn specific_level_blinks_more() {
        let tea = catalog::tea_making();
        let blink_count = |level| {
            let r = subsystem().compose(
                Prompt { tool: ToolId::new(catalog::KETTLE), level },
                Trigger::IdleTimeout,
                &tea,
            );
            r.methods
                .iter()
                .find_map(|m| match m {
                    ReminderMethod::GreenLed { pattern, .. } => Some(pattern.blinks),
                    _ => None,
                })
                .unwrap()
        };
        assert!(blink_count(ReminderLevel::Specific) > blink_count(ReminderLevel::Minimal));
    }

    #[test]
    fn specific_messages_use_caregiver_descriptions() {
        // The paper's own example text: "Mr. Kim, use the black tea-box
        // in front of you."
        let tea = catalog::tea_making();
        let subsystem = RemindingSubsystem::new("Mr. Kim")
            .with_description(ToolId::new(catalog::TEA_BOX), "black tea-box");
        let r = subsystem.compose(
            Prompt { tool: ToolId::new(catalog::TEA_BOX), level: ReminderLevel::Specific },
            Trigger::IdleTimeout,
            &tea,
        );
        let text = match &r.methods[0] {
            ReminderMethod::TextMessage(t) => t.clone(),
            other => panic!("expected text, got {other:?}"),
        };
        assert_eq!(text, "Mr. Kim, please use the black tea-box in front of you.");
        // Minimal messages stay terse and undecorated.
        let r = subsystem.compose(
            Prompt { tool: ToolId::new(catalog::TEA_BOX), level: ReminderLevel::Minimal },
            Trigger::IdleTimeout,
            &tea,
        );
        assert!(matches!(&r.methods[0],
            ReminderMethod::TextMessage(t) if t == "Please use tea-box."));
    }

    #[test]
    fn praise_matches_figure1() {
        assert_eq!(subsystem().praise(), "Excellent!");
    }

    #[test]
    fn levels_display() {
        assert_eq!(ReminderLevel::Minimal.to_string(), "minimal");
        assert_eq!(ReminderLevel::Specific.to_string(), "specific");
    }

    #[test]
    #[should_panic(expected = "is not in")]
    fn prompt_for_foreign_tool_rejected() {
        let tea = catalog::tea_making();
        let _ = subsystem().compose(
            Prompt { tool: ToolId::new(99), level: ReminderLevel::Minimal },
            Trigger::IdleTimeout,
            &tea,
        );
    }
}
